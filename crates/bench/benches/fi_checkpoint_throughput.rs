//! Cold vs checkpointed per-instruction FI campaign throughput on the
//! three largest workloads (hpccg, fft, xsbench). Asserts bit-identity of
//! the two campaigns, reports per-workload wall-clock and speedup, and
//! emits `BENCH_fi_throughput.json` at the repository root. Also measures
//! the resilient scheduler's bookkeeping overhead: the checkpointed
//! campaign timed with the default retry budget vs retries disabled
//! (the pre-scheduler fail-fast behaviour); the target is <3%.
//!
//! Since the `CampaignEngine` refactor the journaled path is parallel
//! too (worker-local record buffers merged by one ordered WAL writer),
//! so this bench also times the journaled per-instruction campaign at
//! 1/2/4/8 worker threads — fresh journal per repetition, so every rep
//! pays full execution cost rather than WAL replay — and records the
//! per-thread-count columns plus the 4-thread speedup. The machine's
//! core count rides along in the JSON: on a single-core runner the
//! thread sweep measures scheduling overhead, not parallel speedup.
//!
//! Run with `cargo bench --bench fi_checkpoint_throughput`.

use criterion::black_box;
use minpsid_faultsim::{
    golden_run, per_instruction_campaign, CampaignConfig, CampaignConfigBuilder, CampaignEngine,
    CampaignJournal, GoldenRun,
};
use minpsid_interp::ProgInput;
use minpsid_ir::Module;
use std::fmt::Write as _;
use std::time::Instant;

const WORKLOADS: &[&str] = &["hpccg", "fft", "xsbench"];
const DEFAULT_REPS: usize = 2;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Best-of-N repetitions per timed measurement. The default keeps the
/// bench fast; `FI_BENCH_REPS=5` tightens the min against ambient noise
/// when regenerating the committed baseline.
fn reps() -> usize {
    std::env::var("FI_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_REPS)
}

/// Repetition floor for the *ratio* columns (scheduler bookkeeping and
/// profiler overhead): these compare two runs of the same campaign whose
/// true difference is low single-digit percent, so a 2-rep min is inside
/// ambient noise and has produced spurious >3% overhead readings. The
/// ratio columns always take at least 5 reps regardless of
/// `FI_BENCH_REPS`.
fn ratio_reps() -> usize {
    reps().max(5)
}

/// Per-instruction injections; default is a trimmed bench budget.
/// `FI_BENCH_INJECTIONS=30` reproduces the `small` preset numbers
/// recorded in EXPERIMENTS.md.
fn injections() -> usize {
    std::env::var("FI_BENCH_INJECTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

struct Row {
    name: &'static str,
    golden_steps: u64,
    snapshots: usize,
    snapshot_bytes: usize,
    /// Injections the checkpointed campaign actually ran.
    injections: u64,
    cold_s: f64,
    warm_s: f64,
    /// Checkpointed campaign re-timed with `--dispatch legacy` (the
    /// tree-walking loop) — the decoded-dispatch A/B column.
    legacy_s: f64,
    sched_retries_off_s: f64,
    sched_default_s: f64,
    /// Checkpointed campaign re-timed with the interpreter sampling
    /// profiler enabled (default 1-in-1024 interval).
    profiled_s: f64,
    /// Journaled campaign wall-clock per entry of [`THREAD_COUNTS`].
    journaled_s: [f64; THREAD_COUNTS.len()],
}

impl Row {
    fn speedup(&self) -> f64 {
        self.cold_s / self.warm_s
    }

    /// Single-core injection throughput of the checkpointed campaign.
    fn injections_per_sec(&self) -> f64 {
        self.injections as f64 / self.warm_s
    }

    /// Mean wall-clock per injection, in microseconds.
    fn per_injection_us(&self) -> f64 {
        self.warm_s * 1e6 / self.injections as f64
    }

    /// Decoded-dispatch speedup over the legacy tree-walking loop on the
    /// same (checkpointed) campaign.
    fn dispatch_speedup(&self) -> f64 {
        self.legacy_s / self.warm_s
    }

    /// Relative cost of the default scheduler (retry budget 2) over the
    /// fail-fast configuration on a clean run, in percent.
    fn sched_overhead_pct(&self) -> f64 {
        (self.sched_default_s / self.sched_retries_off_s - 1.0) * 100.0
    }

    /// Relative cost of the interpreter sampling profiler over the same
    /// campaign with it disabled, in percent. Both sides are timed at
    /// [`ratio_reps`]; the budget is <2%.
    fn profile_overhead_pct(&self) -> f64 {
        (self.profiled_s / self.sched_default_s - 1.0) * 100.0
    }

    /// Journaled 4-thread speedup over journaled serial.
    fn journaled_speedup_4t(&self) -> f64 {
        self.journaled_s[0] / self.journaled_s[2]
    }
}

/// Best-of-`n` wall-clock of one full per-instruction campaign.
fn time_campaign_n(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
    n: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t = Instant::now();
        black_box(per_instruction_campaign(module, input, golden, cfg));
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-[`reps`] wall-clock of one full per-instruction campaign.
fn time_campaign(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
) -> f64 {
    time_campaign_n(module, input, golden, cfg, reps())
}

/// Best-of-REPS wall-clock of one journaled per-instruction campaign.
/// Each rep gets a fresh journal directory: reusing one would serve the
/// recorded outcomes back and time WAL replay instead of execution.
fn time_journaled(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
    dir_tag: &str,
) -> (f64, String) {
    let mut best = f64::INFINITY;
    let mut report = String::new();
    for rep in 0..reps() {
        let dir = std::env::temp_dir().join(format!(
            "minpsid-bench-{dir_tag}-t{}-r{rep}-{}",
            cfg.threads,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let j = CampaignJournal::open(&dir, 0, 0).expect("open bench journal");
        let t = Instant::now();
        let r = CampaignEngine::new(module, input, golden, cfg)
            .with_journal(&j, 0)
            .run_per_instruction()
            .expect("bench campaigns are never interrupted");
        best = best.min(t.elapsed().as_secs_f64());
        report = format!("{:?}", black_box(r).sdc_prob);
        drop(j);
        let _ = std::fs::remove_dir_all(&dir);
    }
    (best, report)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    for &name in WORKLOADS {
        let b = minpsid_workloads::by_name(name).expect("workload exists");
        let module = b.compile();
        let input = b.model.materialize(&b.model.reference());

        let cold_cfg = CampaignConfigBuilder::new(42)
            .per_inst_injections(injections() as u64)
            .expect("positive injection count")
            .no_checkpoints()
            .build();
        let warm_cfg = CampaignConfigBuilder::new(42)
            .per_inst_injections(injections() as u64)
            .expect("positive injection count")
            .build();

        let g_cold = golden_run(&module, &input, &cold_cfg).expect("golden run");
        let g_warm = golden_run(&module, &input, &warm_cfg).expect("golden run");

        // Bit-identity gate: the speedup is meaningless if the campaigns
        // disagree.
        let cold = per_instruction_campaign(&module, &input, &g_cold, &cold_cfg);
        let warm = per_instruction_campaign(&module, &input, &g_warm, &warm_cfg);
        assert_eq!(
            cold.sdc_prob, warm.sdc_prob,
            "{name}: checkpointed campaign diverged from cold campaign"
        );

        let cold_s = time_campaign(&module, &input, &g_cold, &cold_cfg);
        let warm_s = time_campaign(&module, &input, &g_warm, &warm_cfg);

        // decoded-vs-legacy dispatch A/B on the same checkpointed
        // campaign, with its own equivalence gate: the two loops must
        // produce identical reports before a speedup means anything.
        let legacy_cfg = CampaignConfigBuilder::new(42)
            .per_inst_injections(injections() as u64)
            .expect("positive injection count")
            .dispatch("legacy")
            .expect("valid dispatch mode")
            .build();
        let g_legacy = golden_run(&module, &input, &legacy_cfg).expect("golden run");
        let legacy = per_instruction_campaign(&module, &input, &g_legacy, &legacy_cfg);
        assert_eq!(
            legacy.sdc_prob, warm.sdc_prob,
            "{name}: legacy dispatch diverged from decoded dispatch"
        );
        let legacy_s = time_campaign(&module, &input, &g_legacy, &legacy_cfg);
        let total_injections: u64 = warm.counts.iter().map(|c| c.total()).sum();

        // scheduler overhead: the same checkpointed campaign with the
        // retry machinery disabled vs the default retry budget (no chaos,
        // so no retries actually fire — this isolates pure bookkeeping).
        // Ratio columns take the tighter rep floor: at 2 reps the min is
        // still inside ambient noise and the overhead reading is junk.
        let mut retries_off_cfg = warm_cfg.clone();
        retries_off_cfg.sched.max_retries = 0;
        let sched_retries_off_s =
            time_campaign_n(&module, &input, &g_warm, &retries_off_cfg, ratio_reps());
        let sched_default_s = time_campaign_n(&module, &input, &g_warm, &warm_cfg, ratio_reps());

        // interpreter sampling profiler overhead on the same campaign,
        // with an identity gate: profiling must not change the report.
        minpsid_interp::opprof::enable(0);
        let profiled = per_instruction_campaign(&module, &input, &g_warm, &warm_cfg);
        assert_eq!(
            profiled.sdc_prob, warm.sdc_prob,
            "{name}: campaign report changed with the profiler enabled"
        );
        let profiled_s = time_campaign_n(&module, &input, &g_warm, &warm_cfg, ratio_reps());
        minpsid_interp::opprof::disable();
        minpsid_interp::opprof::reset();

        // journaled campaign across the thread sweep, with a determinism
        // gate: the report must be byte-identical at every thread count
        // and match the plain campaign.
        let plain_report = format!("{:?}", warm.sdc_prob);
        let mut journaled_s = [0.0; THREAD_COUNTS.len()];
        for (slot, &threads) in THREAD_COUNTS.iter().enumerate() {
            let mut cfg = warm_cfg.clone();
            cfg.threads = threads;
            let (secs, report) = time_journaled(&module, &input, &g_warm, &cfg, name);
            assert_eq!(
                report, plain_report,
                "{name}: journaled campaign at {threads} threads diverged"
            );
            journaled_s[slot] = secs;
        }

        let row = Row {
            name,
            golden_steps: g_warm.steps,
            snapshots: g_warm.checkpoints.len(),
            snapshot_bytes: g_warm.checkpoints.total_bytes(),
            injections: total_injections,
            cold_s,
            warm_s,
            legacy_s,
            sched_retries_off_s,
            sched_default_s,
            profiled_s,
            journaled_s,
        };
        println!(
            "bench fi/{:<10} cold {:>8.3} s   checkpointed {:>8.3} s   speedup {:>5.2}x   \
             ({} steps, {} snapshots, {} KiB)",
            row.name,
            row.cold_s,
            row.warm_s,
            row.speedup(),
            row.golden_steps,
            row.snapshots,
            row.snapshot_bytes / 1024
        );
        println!(
            "bench fi/{:<10} throughput: {:>8.0} inj/s   {:>8.2} us/inj   \
             legacy {:>8.3} s   dispatch-speedup {:>5.2}x",
            row.name,
            row.injections_per_sec(),
            row.per_injection_us(),
            row.legacy_s,
            row.dispatch_speedup()
        );
        println!(
            "bench fi/{:<10} sched: retries-off {:>8.3} s   default {:>8.3} s   \
             overhead {:>+5.1}%",
            row.name,
            row.sched_retries_off_s,
            row.sched_default_s,
            row.sched_overhead_pct()
        );
        println!(
            "bench fi/{:<10} profiler: off {:>8.3} s   on {:>8.3} s   overhead {:>+5.1}%",
            row.name,
            row.sched_default_s,
            row.profiled_s,
            row.profile_overhead_pct()
        );
        println!(
            "bench fi/{:<10} journaled: 1t {:>7.3} s   2t {:>7.3} s   4t {:>7.3} s   \
             8t {:>7.3} s   4t-speedup {:>5.2}x",
            row.name,
            row.journaled_s[0],
            row.journaled_s[1],
            row.journaled_s[2],
            row.journaled_s[3],
            row.journaled_speedup_4t()
        );
        rows.push(row);
    }

    let mut json = String::from("{\n  \"bench\": \"fi_checkpoint_throughput\",\n");
    writeln!(json, "  \"per_inst_injections\": {},", injections()).unwrap();
    writeln!(json, "  \"cores\": {cores},").unwrap();
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"golden_steps\": {}, \"snapshots\": {}, \
             \"snapshot_bytes\": {}, \"injections\": {}, \"cold_s\": {:.4}, \
             \"checkpointed_s\": {:.4}, \"speedup\": {:.3}, \
             \"injections_per_sec\": {:.1}, \"per_injection_us\": {:.2}, \
             \"legacy_checkpointed_s\": {:.4}, \"dispatch_speedup\": {:.3}, \
             \"sched_retries_off_s\": {:.4}, \
             \"sched_default_s\": {:.4}, \"sched_overhead_pct\": {:.2}, \
             \"profiled_s\": {:.4}, \"profile_overhead_pct\": {:.2}, \
             \"journaled_t1_s\": {:.4}, \"journaled_t2_s\": {:.4}, \
             \"journaled_t4_s\": {:.4}, \"journaled_t8_s\": {:.4}, \
             \"journaled_speedup_4t\": {:.3}}}{}",
            r.name,
            r.golden_steps,
            r.snapshots,
            r.snapshot_bytes,
            r.injections,
            r.cold_s,
            r.warm_s,
            r.speedup(),
            r.injections_per_sec(),
            r.per_injection_us(),
            r.legacy_s,
            r.dispatch_speedup(),
            r.sched_retries_off_s,
            r.sched_default_s,
            r.sched_overhead_pct(),
            r.profiled_s,
            r.profile_overhead_pct(),
            r.journaled_s[0],
            r.journaled_s[1],
            r.journaled_s[2],
            r.journaled_s[3],
            r.journaled_speedup_4t(),
            if i + 1 < rows.len() { "," } else { "" }
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fi_throughput.json"
    );
    std::fs::write(path, json).expect("write BENCH_fi_throughput.json");
    println!("wrote {path}");
}
