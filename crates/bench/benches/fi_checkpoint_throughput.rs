//! Cold vs checkpointed per-instruction FI campaign throughput on the
//! three largest workloads (hpccg, fft, xsbench). Asserts bit-identity of
//! the two campaigns, reports per-workload wall-clock and speedup, and
//! emits `BENCH_fi_throughput.json` at the repository root. Also measures
//! the resilient scheduler's bookkeeping overhead: the checkpointed
//! campaign timed with the default retry budget vs retries disabled
//! (the pre-scheduler fail-fast behaviour); the target is <3%.
//!
//! Since the `CampaignEngine` refactor the journaled path is parallel
//! too (worker-local record buffers merged by one ordered WAL writer),
//! so this bench also times the journaled per-instruction campaign at
//! 1/2/4/8 worker threads — fresh journal per repetition, so every rep
//! pays full execution cost rather than WAL replay — and records the
//! per-thread-count columns plus the 4-thread speedup. The machine's
//! core count rides along in the JSON: on a single-core runner the
//! thread sweep measures scheduling overhead, not parallel speedup.
//!
//! Run with `cargo bench --bench fi_checkpoint_throughput`.

use criterion::black_box;
use minpsid::input_fingerprint;
use minpsid_faultsim::{
    golden_run, per_instruction_campaign, CampaignConfig, CampaignConfigBuilder, CampaignEngine,
    CampaignJournal, GoldenRun, TableMemo,
};
use minpsid_interp::ProgInput;
use minpsid_ir::inst::{BinOp, InstKind};
use minpsid_ir::Module;
use minpsid_store::ArtifactStore;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const WORKLOADS: &[&str] = &["hpccg", "fft", "xsbench"];
const DEFAULT_REPS: usize = 2;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Whole-program campaign size for the fleet-vs-threads CLI columns:
/// the ratio must measure steady-state protocol cost (spool appends,
/// lease renewal), not the fixed process-startup + worker-golden-run
/// cost, which amortizes to nothing on any real campaign. Sized per
/// workload so that fixed cost stays ~1% of the run: hpccg's golden
/// run (183k steps + 427 snapshot captures) costs ~0.1 s per worker
/// process, so it gets a larger campaign than its ~250 us/unit rate
/// alone would suggest.
fn fleet_injections(name: &str) -> usize {
    match name {
        "hpccg" => 12_000,
        "fft" => 30_000,
        _ => 20_000,
    }
}

/// Best-of-N repetitions per timed measurement. The default keeps the
/// bench fast; `FI_BENCH_REPS=5` tightens the min against ambient noise
/// when regenerating the committed baseline.
fn reps() -> usize {
    std::env::var("FI_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_REPS)
}

/// Repetition floor for the *ratio* columns (scheduler bookkeeping and
/// profiler overhead): these compare two runs of the same campaign whose
/// true difference is low single-digit percent, so a 2-rep min is inside
/// ambient noise and has produced spurious >3% overhead readings. The
/// ratio columns always take at least 5 reps regardless of
/// `FI_BENCH_REPS`.
fn ratio_reps() -> usize {
    reps().max(5)
}

/// Per-instruction injections; default is a trimmed bench budget.
/// `FI_BENCH_INJECTIONS=30` reproduces the `small` preset numbers
/// recorded in EXPERIMENTS.md.
fn injections() -> usize {
    std::env::var("FI_BENCH_INJECTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

struct Row {
    name: &'static str,
    golden_steps: u64,
    snapshots: usize,
    snapshot_bytes: usize,
    /// Injections the checkpointed campaign actually ran.
    injections: u64,
    cold_s: f64,
    warm_s: f64,
    /// Checkpointed campaign re-timed with `--dispatch legacy` (the
    /// tree-walking loop) — the decoded-dispatch A/B column.
    legacy_s: f64,
    sched_retries_off_s: f64,
    sched_default_s: f64,
    /// Checkpointed campaign re-timed with the interpreter sampling
    /// profiler enabled (default 1-in-1024 interval).
    profiled_s: f64,
    /// Journaled campaign wall-clock per entry of [`THREAD_COUNTS`].
    journaled_s: [f64; THREAD_COUNTS.len()],
    /// Whole-program CLI campaign at `--workers 4` (raw, whatever the
    /// core count).
    workers_t4_s: f64,
    /// Whole-program CLI campaign at matched parallelism:
    /// `--threads min(4, cores)` vs `--workers min(4, cores)`. On a
    /// single-core runner this compares 1 worker process against 1
    /// thread — the fleet's protocol cost, not oversubscription.
    fleet_threads_s: f64,
    fleet_workers_s: f64,
    /// Median of per-pair workers/threads ratios at matched
    /// parallelism, as a percent overhead; the budget is <5%.
    fleet_overhead_pct: f64,
    /// The function the one-function-edit scenario edits.
    edited_fn: &'static str,
    /// From-scratch campaign (both shapes) of the edited module.
    scratch_s: f64,
    /// Incremental re-campaign of the edited module over the sealed
    /// section tables of the original.
    incr_s: f64,
    /// Injections the incremental re-campaign served from tables vs
    /// executed fresh.
    incr_served: u64,
    incr_executed: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.cold_s / self.warm_s
    }

    /// Single-core injection throughput of the checkpointed campaign.
    fn injections_per_sec(&self) -> f64 {
        self.injections as f64 / self.warm_s
    }

    /// Mean wall-clock per injection, in microseconds.
    fn per_injection_us(&self) -> f64 {
        self.warm_s * 1e6 / self.injections as f64
    }

    /// Decoded-dispatch speedup over the legacy tree-walking loop on the
    /// same (checkpointed) campaign.
    fn dispatch_speedup(&self) -> f64 {
        self.legacy_s / self.warm_s
    }

    /// Relative cost of the default scheduler (retry budget 2) over the
    /// fail-fast configuration on a clean run, in percent.
    fn sched_overhead_pct(&self) -> f64 {
        (self.sched_default_s / self.sched_retries_off_s - 1.0) * 100.0
    }

    /// Relative cost of the interpreter sampling profiler over the same
    /// campaign with it disabled, in percent. Both sides are timed at
    /// [`ratio_reps`]; the budget is <2%.
    fn profile_overhead_pct(&self) -> f64 {
        (self.profiled_s / self.sched_default_s - 1.0) * 100.0
    }

    /// Journaled 4-thread speedup over journaled serial.
    fn journaled_speedup_4t(&self) -> f64 {
        self.journaled_s[0] / self.journaled_s[2]
    }

    /// Share of the incremental re-campaign's injections served from
    /// sealed section tables instead of executing.
    fn sections_reused_pct(&self) -> f64 {
        100.0 * self.incr_served as f64 / (self.incr_served + self.incr_executed).max(1) as f64
    }

    /// Wall-clock speedup of the incremental re-campaign over a
    /// from-scratch campaign of the same edited module; the regression
    /// guard is >1.5x.
    fn incremental_speedup(&self) -> f64 {
        self.scratch_s / self.incr_s
    }
}

/// The `minpsid` CLI binary, for the fleet columns: `--workers` re-execs
/// the CLI as worker processes, so the fleet can only be timed
/// end-to-end through it. Builds it if the release binary is missing.
fn cli_binary() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"));
    let bin = target.join("release/minpsid");
    if !bin.is_file() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let status = std::process::Command::new(cargo)
            .args(["build", "--release", "--offline", "-q", "-p", "minpsid-cli"])
            .status()
            .expect("spawn cargo build");
        assert!(status.success(), "building minpsid-cli failed");
    }
    bin
}

/// One timed whole-program CLI campaign; returns the wall-clock and the
/// (deterministic) report for identity gating.
fn time_cli_once(bin: &PathBuf, name: &str, extra: &[&str]) -> (f64, String) {
    let t = Instant::now();
    let out = std::process::Command::new(bin)
        .args(["fi", name, "--seed", "42"])
        .args(["--injections", &fleet_injections(name).to_string()])
        .args(extra)
        .output()
        .expect("spawn minpsid fi");
    let secs = t.elapsed().as_secs_f64();
    assert!(out.status.success(), "{name}: fi {extra:?} failed");
    (secs, String::from_utf8_lossy(&out.stdout).into_owned())
}

/// Best-of-`n` wall-clock of one whole-program CLI campaign.
fn time_cli(bin: &PathBuf, name: &str, extra: &[&str], n: usize) -> (f64, String) {
    let mut best = f64::INFINITY;
    let mut report = String::new();
    for _ in 0..n {
        let (secs, rep) = time_cli_once(bin, name, extra);
        best = best.min(secs);
        report = rep;
    }
    (best, report)
}

/// A/B timing of two CLI variants with the reps *interleaved* —
/// a, b, a, b, … back-to-back — so slow drift on a noisy shared vCPU
/// hits both sides of the ratio instead of whichever one happened to
/// run second. (Measured drift here is ±10% across a batch, which is
/// larger than the protocol cost this column exists to bound.)
///
/// Returns each side's best wall-clock plus the **median of the
/// per-pair ratios** `b/a`: with ~1 s subprocess runs a single noisy
/// spike lands in exactly one pair, so the median ratio is far more
/// stable than the ratio of the two mins (which couples the two
/// luckiest, possibly unrepresentative, reps).
fn time_cli_ab(
    bin: &PathBuf,
    name: &str,
    a: &[&str],
    b: &[&str],
    n: usize,
) -> ((f64, String), (f64, String), f64) {
    let mut best = (f64::INFINITY, f64::INFINITY);
    let mut reports = (String::new(), String::new());
    let mut ratios = Vec::with_capacity(n);
    for _ in 0..n {
        let (sa, ra) = time_cli_once(bin, name, a);
        let (sb, rb) = time_cli_once(bin, name, b);
        best.0 = best.0.min(sa);
        best.1 = best.1.min(sb);
        ratios.push(sb / sa);
        reports = (ra, rb);
    }
    ratios.sort_by(|x, y| x.total_cmp(y));
    let median = if ratios.len() % 2 == 1 {
        ratios[ratios.len() / 2]
    } else {
        (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
    };
    ((best.0, reports.0), (best.1, reports.1), median)
}

/// Whole-program campaign size for the one-function-edit incremental
/// scenario: big enough that the program shape dominates the injection
/// budget (as real campaigns do), small enough to keep the bench fast.
fn incr_program_injections() -> u64 {
    std::env::var("FI_BENCH_INCR_INJECTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_500)
}

/// Which function the one-function-edit scenario edits: a small routine
/// with thin callers, so most injection mass lives in untouched sections
/// — the realistic "tweak one utility function" re-campaign.
fn edit_target(name: &str) -> &'static str {
    match name {
        "hpccg" => "init",
        "fft" => "condition",
        "xsbench" => "resonance",
        other => panic!("no edit target for workload {other}"),
    }
}

/// Value-preserving one-function edit: swap the operands of the first
/// commutative binop in `fname` (IEEE add and mul are bitwise
/// commutative). The function's content fingerprint changes; the golden
/// output, step count, and every section's dynamic profile do not —
/// exactly the edit shape whose sealed tables must survive.
fn edit_one_function(module: &Module, fname: &str) -> Module {
    let mut m = module.clone();
    let fid = m.func_by_name(fname).expect("edit target exists");
    for inst in &mut m.funcs[fid.0 as usize].insts {
        if let InstKind::Bin {
            op: BinOp::Add | BinOp::Mul,
            lhs,
            rhs,
        } = &mut inst.kind
        {
            if lhs != rhs {
                std::mem::swap(lhs, rhs);
                return m;
            }
        }
    }
    panic!("no commutative binop to edit in {fname}");
}

/// Recursive copy of a sealed store: the incremental re-campaign seals
/// tables for the edited sections, so each timed rep needs a pristine
/// copy or later reps would serve everything and time nothing.
fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).expect("create store copy dir");
    for entry in std::fs::read_dir(src).expect("read store dir") {
        let entry = entry.expect("store dir entry");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy store file");
        }
    }
}

/// Both campaign shapes back to back (the incremental scenario budgets
/// program + per-instruction together, like a real `minpsid fi` run).
fn run_both_shapes(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
    memo: Option<&TableMemo>,
) -> (String, String) {
    let mut e = CampaignEngine::new(module, input, golden, cfg);
    if let Some(m) = memo {
        e = e.with_tables(m);
    }
    let program = e
        .run_program()
        .expect("bench campaigns are never interrupted");
    let per_inst = e
        .run_per_instruction()
        .expect("bench campaigns are never interrupted");
    (format!("{program:?}"), format!("{per_inst:?}"))
}

/// Best-of-`n` wall-clock of one full per-instruction campaign.
fn time_campaign_n(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
    n: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t = Instant::now();
        black_box(per_instruction_campaign(module, input, golden, cfg));
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-[`reps`] wall-clock of one full per-instruction campaign.
fn time_campaign(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
) -> f64 {
    time_campaign_n(module, input, golden, cfg, reps())
}

/// Best-of-REPS wall-clock of one journaled per-instruction campaign.
/// Each rep gets a fresh journal directory: reusing one would serve the
/// recorded outcomes back and time WAL replay instead of execution.
fn time_journaled(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
    dir_tag: &str,
) -> (f64, String) {
    let mut best = f64::INFINITY;
    let mut report = String::new();
    for rep in 0..reps() {
        let dir = std::env::temp_dir().join(format!(
            "minpsid-bench-{dir_tag}-t{}-r{rep}-{}",
            cfg.threads,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let j = CampaignJournal::open(&dir, 0, 0).expect("open bench journal");
        let t = Instant::now();
        let r = CampaignEngine::new(module, input, golden, cfg)
            .with_journal(&j, 0)
            .run_per_instruction()
            .expect("bench campaigns are never interrupted");
        best = best.min(t.elapsed().as_secs_f64());
        report = format!("{:?}", black_box(r).sdc_prob);
        drop(j);
        let _ = std::fs::remove_dir_all(&dir);
    }
    (best, report)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    for &name in WORKLOADS {
        let b = minpsid_workloads::by_name(name).expect("workload exists");
        let module = b.compile();
        let input = b.model.materialize(&b.model.reference());

        let cold_cfg = CampaignConfigBuilder::new(42)
            .per_inst_injections(injections() as u64)
            .expect("positive injection count")
            .no_checkpoints()
            .build();
        let warm_cfg = CampaignConfigBuilder::new(42)
            .per_inst_injections(injections() as u64)
            .expect("positive injection count")
            .build();

        let g_cold = golden_run(&module, &input, &cold_cfg).expect("golden run");
        let g_warm = golden_run(&module, &input, &warm_cfg).expect("golden run");

        // Bit-identity gate: the speedup is meaningless if the campaigns
        // disagree.
        let cold = per_instruction_campaign(&module, &input, &g_cold, &cold_cfg);
        let warm = per_instruction_campaign(&module, &input, &g_warm, &warm_cfg);
        assert_eq!(
            cold.sdc_prob, warm.sdc_prob,
            "{name}: checkpointed campaign diverged from cold campaign"
        );

        let cold_s = time_campaign(&module, &input, &g_cold, &cold_cfg);
        let warm_s = time_campaign(&module, &input, &g_warm, &warm_cfg);

        // decoded-vs-legacy dispatch A/B on the same checkpointed
        // campaign, with its own equivalence gate: the two loops must
        // produce identical reports before a speedup means anything.
        let legacy_cfg = CampaignConfigBuilder::new(42)
            .per_inst_injections(injections() as u64)
            .expect("positive injection count")
            .dispatch("legacy")
            .expect("valid dispatch mode")
            .build();
        let g_legacy = golden_run(&module, &input, &legacy_cfg).expect("golden run");
        let legacy = per_instruction_campaign(&module, &input, &g_legacy, &legacy_cfg);
        assert_eq!(
            legacy.sdc_prob, warm.sdc_prob,
            "{name}: legacy dispatch diverged from decoded dispatch"
        );
        let legacy_s = time_campaign(&module, &input, &g_legacy, &legacy_cfg);
        let total_injections: u64 = warm.counts.iter().map(|c| c.total()).sum();

        // scheduler overhead: the same checkpointed campaign with the
        // retry machinery disabled vs the default retry budget (no chaos,
        // so no retries actually fire — this isolates pure bookkeeping).
        // Ratio columns take the tighter rep floor: at 2 reps the min is
        // still inside ambient noise and the overhead reading is junk.
        // The profiler column rides in the same loop: all three variants
        // are timed back-to-back each rep so slow machine drift cancels
        // out of the ratios instead of landing on whichever variant ran
        // last (drift here is larger than the overheads being bounded).
        let mut retries_off_cfg = warm_cfg.clone();
        retries_off_cfg.sched.max_retries = 0;
        // identity gate first, untimed: profiling must not change the report
        minpsid_interp::opprof::enable(0);
        let profiled = per_instruction_campaign(&module, &input, &g_warm, &warm_cfg);
        assert_eq!(
            profiled.sdc_prob, warm.sdc_prob,
            "{name}: campaign report changed with the profiler enabled"
        );
        minpsid_interp::opprof::disable();
        let mut sched_retries_off_s = f64::INFINITY;
        let mut sched_default_s = f64::INFINITY;
        let mut profiled_s = f64::INFINITY;
        for _ in 0..ratio_reps() {
            sched_retries_off_s = sched_retries_off_s.min(time_campaign_n(
                &module,
                &input,
                &g_warm,
                &retries_off_cfg,
                1,
            ));
            sched_default_s =
                sched_default_s.min(time_campaign_n(&module, &input, &g_warm, &warm_cfg, 1));
            minpsid_interp::opprof::enable(0);
            profiled_s = profiled_s.min(time_campaign_n(&module, &input, &g_warm, &warm_cfg, 1));
            minpsid_interp::opprof::disable();
        }
        minpsid_interp::opprof::reset();

        // journaled campaign across the thread sweep, with a determinism
        // gate: the report must be byte-identical at every thread count
        // and match the plain campaign.
        let plain_report = format!("{:?}", warm.sdc_prob);
        let mut journaled_s = [0.0; THREAD_COUNTS.len()];
        for (slot, &threads) in THREAD_COUNTS.iter().enumerate() {
            let mut cfg = warm_cfg.clone();
            cfg.threads = threads;
            let (secs, report) = time_journaled(&module, &input, &g_warm, &cfg, name);
            assert_eq!(
                report, plain_report,
                "{name}: journaled campaign at {threads} threads diverged"
            );
            journaled_s[slot] = secs;
        }

        // fleet-vs-threads whole-program CLI columns, with an identity
        // gate: the fleet's merged report must be byte-identical to the
        // in-process one before its overhead means anything.
        let bin = cli_binary();
        let matched = cores.min(4).to_string();
        let ((fleet_threads_s, rep_threads), (fleet_workers_s, rep_workers), fleet_ratio) =
            time_cli_ab(
                &bin,
                name,
                &["--threads", &matched],
                &["--workers", &matched],
                ratio_reps(),
            );
        assert_eq!(
            rep_threads, rep_workers,
            "{name}: fleet report diverged from threads report"
        );
        let (workers_t4_s, rep_w4) = time_cli(&bin, name, &["--workers", "4"], reps());
        assert_eq!(
            rep_threads, rep_w4,
            "{name}: 4-worker fleet report diverged"
        );

        // one-function-edit incremental columns: seal section tables for
        // the pristine module, apply a value-preserving edit to one small
        // function, and compare a from-scratch campaign of the edited
        // module against an incremental re-campaign over the sealed
        // tables. Identity gate first: the incremental reports must match
        // from-scratch byte for byte, or the speedup is meaningless.
        let efn = edit_target(name);
        let m2 = edit_one_function(&module, efn);
        let incr_cfg = CampaignConfigBuilder::new(42)
            .injections(incr_program_injections())
            .and_then(|b| b.per_inst_injections(injections() as u64))
            .expect("positive injection counts")
            .build();
        let g1 = golden_run(&module, &input, &incr_cfg).expect("golden run");
        let g2 = golden_run(&m2, &input, &incr_cfg).expect("edited golden run");
        let input_fp = input_fingerprint(&input);
        let seed_store =
            std::env::temp_dir().join(format!("minpsid-bench-incr-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&seed_store);
        {
            let store = Arc::new(ArtifactStore::open(&seed_store).expect("open seed store"));
            let memo = TableMemo::new(store, input_fp);
            black_box(run_both_shapes(
                &module,
                &input,
                &g1,
                &incr_cfg,
                Some(&memo),
            ));
            assert!(memo.stats().tables_sealed > 0, "{name}: no tables sealed");
        }
        let scratch_reports = run_both_shapes(&m2, &input, &g2, &incr_cfg, None);
        let (incr_served, incr_executed) = {
            let dir = seed_store.with_extension("gate");
            let _ = std::fs::remove_dir_all(&dir);
            copy_dir(&seed_store, &dir);
            let store = Arc::new(ArtifactStore::open(&dir).expect("open gate store"));
            let memo = TableMemo::new(store, input_fp);
            let got = run_both_shapes(&m2, &input, &g2, &incr_cfg, Some(&memo));
            assert_eq!(
                got, scratch_reports,
                "{name}: incremental re-campaign diverged from from-scratch"
            );
            let s = memo.stats();
            assert!(
                s.injections_served > 0,
                "{name}: the edit invalidated every section"
            );
            let _ = std::fs::remove_dir_all(&dir);
            (s.injections_served, s.injections_executed)
        };
        let mut scratch_s = f64::INFINITY;
        let mut incr_s = f64::INFINITY;
        for rep in 0..reps() {
            let t = Instant::now();
            black_box(run_both_shapes(&m2, &input, &g2, &incr_cfg, None));
            scratch_s = scratch_s.min(t.elapsed().as_secs_f64());

            let dir = seed_store.with_extension(format!("r{rep}"));
            let _ = std::fs::remove_dir_all(&dir);
            copy_dir(&seed_store, &dir);
            let store = Arc::new(ArtifactStore::open(&dir).expect("open rep store"));
            let memo = TableMemo::new(store, input_fp);
            let t = Instant::now();
            black_box(run_both_shapes(&m2, &input, &g2, &incr_cfg, Some(&memo)));
            incr_s = incr_s.min(t.elapsed().as_secs_f64());
            let _ = std::fs::remove_dir_all(&dir);
        }
        let _ = std::fs::remove_dir_all(&seed_store);

        let row = Row {
            name,
            golden_steps: g_warm.steps,
            snapshots: g_warm.checkpoints.len(),
            snapshot_bytes: g_warm.checkpoints.total_bytes(),
            injections: total_injections,
            cold_s,
            warm_s,
            legacy_s,
            sched_retries_off_s,
            sched_default_s,
            profiled_s,
            journaled_s,
            workers_t4_s,
            fleet_threads_s,
            fleet_workers_s,
            fleet_overhead_pct: (fleet_ratio - 1.0) * 100.0,
            edited_fn: efn,
            scratch_s,
            incr_s,
            incr_served,
            incr_executed,
        };
        println!(
            "bench fi/{:<10} cold {:>8.3} s   checkpointed {:>8.3} s   speedup {:>5.2}x   \
             ({} steps, {} snapshots, {} KiB)",
            row.name,
            row.cold_s,
            row.warm_s,
            row.speedup(),
            row.golden_steps,
            row.snapshots,
            row.snapshot_bytes / 1024
        );
        println!(
            "bench fi/{:<10} throughput: {:>8.0} inj/s   {:>8.2} us/inj   \
             legacy {:>8.3} s   dispatch-speedup {:>5.2}x",
            row.name,
            row.injections_per_sec(),
            row.per_injection_us(),
            row.legacy_s,
            row.dispatch_speedup()
        );
        println!(
            "bench fi/{:<10} sched: retries-off {:>8.3} s   default {:>8.3} s   \
             overhead {:>+5.1}%",
            row.name,
            row.sched_retries_off_s,
            row.sched_default_s,
            row.sched_overhead_pct()
        );
        println!(
            "bench fi/{:<10} profiler: off {:>8.3} s   on {:>8.3} s   overhead {:>+5.1}%",
            row.name,
            row.sched_default_s,
            row.profiled_s,
            row.profile_overhead_pct()
        );
        println!(
            "bench fi/{:<10} journaled: 1t {:>7.3} s   2t {:>7.3} s   4t {:>7.3} s   \
             8t {:>7.3} s   4t-speedup {:>5.2}x",
            row.name,
            row.journaled_s[0],
            row.journaled_s[1],
            row.journaled_s[2],
            row.journaled_s[3],
            row.journaled_speedup_4t()
        );
        println!(
            "bench fi/{:<10} fleet: threads {:>7.3} s   workers {:>7.3} s   \
             overhead {:>+5.1}%   workers-4t {:>7.3} s",
            row.name,
            row.fleet_threads_s,
            row.fleet_workers_s,
            row.fleet_overhead_pct,
            row.workers_t4_s
        );
        println!(
            "bench fi/{:<10} incremental: edit {}: scratch {:>7.3} s   incremental {:>7.3} s   \
             speedup {:>5.2}x   reuse {:>5.1}%   ({} served / {} executed)",
            row.name,
            row.edited_fn,
            row.scratch_s,
            row.incr_s,
            row.incremental_speedup(),
            row.sections_reused_pct(),
            row.incr_served,
            row.incr_executed
        );
        rows.push(row);
    }

    let mut json = String::from("{\n  \"bench\": \"fi_checkpoint_throughput\",\n");
    writeln!(json, "  \"per_inst_injections\": {},", injections()).unwrap();
    writeln!(json, "  \"cores\": {cores},").unwrap();
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"golden_steps\": {}, \"snapshots\": {}, \
             \"snapshot_bytes\": {}, \"injections\": {}, \"cold_s\": {:.4}, \
             \"checkpointed_s\": {:.4}, \"speedup\": {:.3}, \
             \"injections_per_sec\": {:.1}, \"per_injection_us\": {:.2}, \
             \"legacy_checkpointed_s\": {:.4}, \"dispatch_speedup\": {:.3}, \
             \"sched_retries_off_s\": {:.4}, \
             \"sched_default_s\": {:.4}, \"sched_overhead_pct\": {:.2}, \
             \"profiled_s\": {:.4}, \"profile_overhead_pct\": {:.2}, \
             \"journaled_t1_s\": {:.4}, \"journaled_t2_s\": {:.4}, \
             \"journaled_t4_s\": {:.4}, \"journaled_t8_s\": {:.4}, \
             \"journaled_speedup_4t\": {:.3}, \
             \"workers_t4_s\": {:.4}, \"fleet_threads_s\": {:.4}, \
             \"fleet_workers_s\": {:.4}, \"fleet_overhead_pct\": {:.2}, \
             \"edited_fn\": \"{}\", \"scratch_s\": {:.4}, \"incremental_s\": {:.4}, \
             \"incr_served\": {}, \"incr_executed\": {}, \
             \"sections_reused_pct\": {:.2}, \"incremental_speedup\": {:.3}}}{}",
            r.name,
            r.golden_steps,
            r.snapshots,
            r.snapshot_bytes,
            r.injections,
            r.cold_s,
            r.warm_s,
            r.speedup(),
            r.injections_per_sec(),
            r.per_injection_us(),
            r.legacy_s,
            r.dispatch_speedup(),
            r.sched_retries_off_s,
            r.sched_default_s,
            r.sched_overhead_pct(),
            r.profiled_s,
            r.profile_overhead_pct(),
            r.journaled_s[0],
            r.journaled_s[1],
            r.journaled_s[2],
            r.journaled_s[3],
            r.journaled_speedup_4t(),
            r.workers_t4_s,
            r.fleet_threads_s,
            r.fleet_workers_s,
            r.fleet_overhead_pct,
            r.edited_fn,
            r.scratch_s,
            r.incr_s,
            r.incr_served,
            r.incr_executed,
            r.sections_reused_pct(),
            r.incremental_speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fi_throughput.json"
    );
    std::fs::write(path, json).expect("write BENCH_fi_throughput.json");
    println!("wrote {path}");
}
