//! Cold vs checkpointed per-instruction FI campaign throughput on the
//! three largest workloads (hpccg, fft, xsbench). Asserts bit-identity of
//! the two campaigns, reports per-workload wall-clock and speedup, and
//! emits `BENCH_fi_throughput.json` at the repository root. Also measures
//! the resilient scheduler's bookkeeping overhead: the checkpointed
//! campaign timed with the default retry budget vs retries disabled
//! (the pre-scheduler fail-fast behaviour); the target is <3%.
//!
//! Run with `cargo bench --bench fi_checkpoint_throughput`.

use criterion::black_box;
use minpsid_faultsim::{
    golden_run, per_instruction_campaign, CampaignConfig, CheckpointPolicy, GoldenRun,
};
use minpsid_interp::ProgInput;
use minpsid_ir::Module;
use std::fmt::Write as _;
use std::time::Instant;

const WORKLOADS: &[&str] = &["hpccg", "fft", "xsbench"];
const REPS: usize = 2;

/// Per-instruction injections; default is a trimmed bench budget.
/// `FI_BENCH_INJECTIONS=30` reproduces the `small` preset numbers
/// recorded in EXPERIMENTS.md.
fn injections() -> usize {
    std::env::var("FI_BENCH_INJECTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

struct Row {
    name: &'static str,
    golden_steps: u64,
    snapshots: usize,
    snapshot_bytes: usize,
    cold_s: f64,
    warm_s: f64,
    sched_retries_off_s: f64,
    sched_default_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.cold_s / self.warm_s
    }

    /// Relative cost of the default scheduler (retry budget 2) over the
    /// fail-fast configuration on a clean run, in percent.
    fn sched_overhead_pct(&self) -> f64 {
        (self.sched_default_s / self.sched_retries_off_s - 1.0) * 100.0
    }
}

/// Best-of-REPS wall-clock of one full per-instruction campaign.
fn time_campaign(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        black_box(per_instruction_campaign(module, input, golden, cfg));
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut rows = Vec::new();
    for &name in WORKLOADS {
        let b = minpsid_workloads::by_name(name).expect("workload exists");
        let module = b.compile();
        let input = b.model.materialize(&b.model.reference());

        let cold_cfg = CampaignConfig {
            per_inst_injections: injections(),
            seed: 42,
            checkpoints: CheckpointPolicy::Disabled,
            ..CampaignConfig::default()
        };
        let warm_cfg = CampaignConfig {
            checkpoints: CheckpointPolicy::Auto,
            ..cold_cfg.clone()
        };

        let g_cold = golden_run(&module, &input, &cold_cfg).expect("golden run");
        let g_warm = golden_run(&module, &input, &warm_cfg).expect("golden run");

        // Bit-identity gate: the speedup is meaningless if the campaigns
        // disagree.
        let cold = per_instruction_campaign(&module, &input, &g_cold, &cold_cfg);
        let warm = per_instruction_campaign(&module, &input, &g_warm, &warm_cfg);
        assert_eq!(
            cold.sdc_prob, warm.sdc_prob,
            "{name}: checkpointed campaign diverged from cold campaign"
        );

        let cold_s = time_campaign(&module, &input, &g_cold, &cold_cfg);
        let warm_s = time_campaign(&module, &input, &g_warm, &warm_cfg);

        // scheduler overhead: the same checkpointed campaign with the
        // retry machinery disabled vs the default retry budget (no chaos,
        // so no retries actually fire — this isolates pure bookkeeping)
        let mut retries_off_cfg = warm_cfg.clone();
        retries_off_cfg.sched.max_retries = 0;
        let sched_retries_off_s = time_campaign(&module, &input, &g_warm, &retries_off_cfg);
        let sched_default_s = time_campaign(&module, &input, &g_warm, &warm_cfg);

        let row = Row {
            name,
            golden_steps: g_warm.steps,
            snapshots: g_warm.checkpoints.len(),
            snapshot_bytes: g_warm.checkpoints.total_bytes(),
            cold_s,
            warm_s,
            sched_retries_off_s,
            sched_default_s,
        };
        println!(
            "bench fi/{:<10} cold {:>8.3} s   checkpointed {:>8.3} s   speedup {:>5.2}x   \
             ({} steps, {} snapshots, {} KiB)",
            row.name,
            row.cold_s,
            row.warm_s,
            row.speedup(),
            row.golden_steps,
            row.snapshots,
            row.snapshot_bytes / 1024
        );
        println!(
            "bench fi/{:<10} sched: retries-off {:>8.3} s   default {:>8.3} s   \
             overhead {:>+5.1}%",
            row.name,
            row.sched_retries_off_s,
            row.sched_default_s,
            row.sched_overhead_pct()
        );
        rows.push(row);
    }

    let mut json = String::from("{\n  \"bench\": \"fi_checkpoint_throughput\",\n");
    writeln!(json, "  \"per_inst_injections\": {},", injections()).unwrap();
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"golden_steps\": {}, \"snapshots\": {}, \
             \"snapshot_bytes\": {}, \"cold_s\": {:.4}, \"checkpointed_s\": {:.4}, \
             \"speedup\": {:.3}, \"sched_retries_off_s\": {:.4}, \
             \"sched_default_s\": {:.4}, \"sched_overhead_pct\": {:.2}}}{}",
            r.name,
            r.golden_steps,
            r.snapshots,
            r.snapshot_bytes,
            r.cold_s,
            r.warm_s,
            r.speedup(),
            r.sched_retries_off_s,
            r.sched_default_s,
            r.sched_overhead_pct(),
            if i + 1 < rows.len() { "," } else { "" }
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fi_throughput.json"
    );
    std::fs::write(path, json).expect("write BENCH_fi_throughput.json");
    println!("wrote {path}");
}
