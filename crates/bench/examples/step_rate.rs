//! Quick step-rate probe: golden decoded vs legacy steps/sec on hpccg.
use minpsid_interp::{DispatchMode, ExecConfig, Interp};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let b = minpsid_workloads::by_name("hpccg").unwrap();
    let module = b.compile();
    let input = b.model.materialize(&b.model.reference());
    for (name, dispatch) in [
        ("legacy ", DispatchMode::Legacy),
        ("decoded", DispatchMode::Decoded),
    ] {
        let interp = Interp::new(
            &module,
            ExecConfig {
                dispatch,
                ..ExecConfig::default()
            },
        );
        let steps = interp.run(&input).steps;
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            black_box(interp.run(black_box(&input)));
            best = best.min(t.elapsed().as_secs_f64());
        }
        println!(
            "{name}: {:.2} ns/step  ({:.1} Msteps/s, {steps} steps)",
            best * 1e9 / steps as f64,
            steps as f64 / best / 1e6
        );
    }
}
