//! **Ablation — check placement** (DESIGN.md §5): duplication checks
//! before the next synchronization point (paper §II-C) versus immediately
//! after each duplicate. Coverage is equivalent (the check always runs
//! before the value escapes); what changes is detection latency and
//! (marginally) the cycle overhead profile.

use minpsid_bench::{parse_args, prepared_baseline};
use minpsid_faultsim::{golden_run, program_campaign};
use minpsid_interp::{ExecConfig, Interp};
use minpsid_sid::knapsack::greedy_select;
use minpsid_sid::transform::CheckPlacement;
use minpsid_sid::{duplicable, duplicate_module_with};

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let campaign = args.preset.campaign(args.seed);
    let level = 0.5;

    println!("== Ablation: check placement (protection level 50%) ==");
    println!();
    println!(
        "{:<15} {:<12} | {:>8} {:>8} {:>10} | {:>12}",
        "benchmark", "placement", "detected", "sdc", "overhead", "steps(ref run)"
    );

    for b in minpsid_workloads::suite() {
        if let Some(only) = &args.bench {
            if !b.name.eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let prepared = prepared_baseline(&b, &campaign);
        let eligible: Vec<bool> = prepared
            .module
            .iter_insts()
            .map(|(_, i)| duplicable(i))
            .collect();
        let selection = greedy_select(
            &prepared.cb.cost,
            &prepared.cb.benefit,
            &eligible,
            prepared.cb.capacity(level),
        );
        let ref_input = b.model.materialize(&b.model.reference());

        for (label, placement) in [
            ("sync-point", CheckPlacement::BeforeSyncPoint),
            ("immediate", CheckPlacement::Immediate),
        ] {
            let (protected, meta) = duplicate_module_with(&prepared.module, &selection, placement);
            let golden = golden_run(&protected, &ref_input, &campaign).unwrap();
            let c = program_campaign(&protected, &ref_input, &golden, &campaign);
            let exec = ExecConfig {
                profile: true,
                ..ExecConfig::default()
            };
            let run = Interp::new(&protected, exec).run(&ref_input);
            let overhead = meta.dynamic_cycle_overhead(&run.profile.unwrap().inst_cycles);
            println!(
                "{:<15} {:<12} | {:>8} {:>8} {:>9.2}% | {:>12}",
                b.name,
                label,
                c.counts.detected,
                c.counts.sdc,
                overhead * 100.0,
                run.steps
            );
        }
    }
    minpsid_bench::finish_trace();
}
