//! **Ablation — knapsack solver** (DESIGN.md §5): greedy benefit-density
//! selection (what deployed SID systems use, and this repo's default)
//! versus the exact scaled-DP solver. Reports expected coverage, budget
//! utilisation, and solve time.

use minpsid_bench::{parse_args, prepared_baseline};
use minpsid_sid::duplicable;
use minpsid_sid::knapsack::{dp_select, greedy_select, selection_weight};
use std::time::Instant;

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let campaign = args.preset.campaign(args.seed);

    println!("== Ablation: knapsack solver ==");
    println!();
    println!(
        "{:<15} {:>5} {:<7} | {:>9} {:>10} {:>10}",
        "benchmark", "level", "solver", "expected", "used/cap", "time(us)"
    );

    for b in minpsid_workloads::suite() {
        if let Some(only) = &args.bench {
            if !b.name.eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let prepared = prepared_baseline(&b, &campaign);
        let eligible: Vec<bool> = prepared
            .module
            .iter_insts()
            .map(|(_, i)| duplicable(i))
            .collect();
        for level in [0.3, 0.5, 0.7] {
            let cap = prepared.cb.capacity(level);
            for (label, use_dp) in [("greedy", false), ("dp", true)] {
                let t0 = Instant::now();
                let sel = if use_dp {
                    dp_select(
                        &prepared.cb.cost,
                        &prepared.cb.benefit,
                        &eligible,
                        cap,
                        4096,
                    )
                } else {
                    greedy_select(&prepared.cb.cost, &prepared.cb.benefit, &eligible, cap)
                };
                let dt = t0.elapsed();
                let expected = prepared.cb.expected_coverage(&sel);
                let used = selection_weight(&prepared.cb.cost, &sel);
                println!(
                    "{:<15} {:>4.0}% {:<7} | {:>8.2}% {:>9.1}% {:>10}",
                    b.name,
                    level * 100.0,
                    label,
                    expected * 100.0,
                    used as f64 / cap.max(1) as f64 * 100.0,
                    dt.as_micros()
                );
            }
        }
    }
    minpsid_bench::finish_trace();
}
