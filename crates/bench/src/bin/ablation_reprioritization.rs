//! **Ablation — re-prioritization rule** (DESIGN.md §5): how the benefit
//! rewrite for incubative instructions affects worst-case coverage.
//!
//! * `max`  — the paper's rule: highest benefit observed across inputs;
//! * `mean` — mean observed benefit (less conservative);
//! * `ref`  — keep reference benefits (discard incubative knowledge —
//!   degenerates to baseline selection).

use minpsid::ReprioritizeRule;
use minpsid_bench::{eval_coverage_over_inputs, parse_args, prepared_minpsid, Candlestick};
use minpsid_sid::select_and_protect;

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let campaign = args.preset.campaign(args.seed);
    let n_eval = args.preset.eval_inputs();
    let level = 0.5;

    println!("== Ablation: re-prioritization rule (protection level 50%) ==");
    println!();
    println!(
        "{:<15} {:<6} | {:>8} | {:>6} {:>6} {:>6} {:>6} {:>6}",
        "benchmark", "rule", "expected", "min", "q1", "med", "q3", "max"
    );

    let rules = [
        ("max", ReprioritizeRule::Max),
        ("mean", ReprioritizeRule::Mean),
        ("ref", ReprioritizeRule::ReferenceOnly),
    ];
    let mut mins: Vec<(usize, f64)> = Vec::new();
    for b in minpsid_workloads::suite() {
        if let Some(only) = &args.bench {
            if !b.name.eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let cfg = args.preset.minpsid_config(level, args.seed);
        let (prepared, info) = prepared_minpsid(&b, &cfg);
        for (ri, (label, rule)) in rules.iter().enumerate() {
            let mut cb = prepared.cb.clone();
            cb.benefit = info.tracker.reprioritized_with(*rule);
            let (_, expected, protected, _) =
                select_and_protect(&prepared.module, &cb, level, false);
            let coverage = eval_coverage_over_inputs(
                &prepared.module,
                &protected,
                b.model.as_ref(),
                n_eval,
                &campaign,
                args.seed,
            );
            let stick = Candlestick::from(&coverage).expect("non-empty");
            println!(
                "{:<15} {:<6} | {:>7.2}% | {}",
                b.name,
                label,
                expected * 100.0,
                stick.pct()
            );
            mins.push((ri, stick.min));
        }
    }

    println!();
    for (ri, (label, _)) in rules.iter().enumerate() {
        let vals: Vec<f64> = mins
            .iter()
            .filter(|(r, _)| *r == ri)
            .map(|(_, v)| *v)
            .collect();
        if !vals.is_empty() {
            println!(
                "rule {:<5}: mean worst-case coverage {:.2}%",
                label,
                vals.iter().sum::<f64>() / vals.len() as f64 * 100.0
            );
        }
    }
    minpsid_bench::finish_trace();
}
