//! **Ablation — search strategy** (paper §X future work: "more efficient
//! fuzzing algorithms and heuristics"): the GA engine versus simulated
//! annealing versus blind random search, on the benchmarks with the
//! richest incubative structure. Reports incubative instructions found
//! and profiled-run budget consumed per strategy.

use minpsid::SearchStrategy;
use minpsid_bench::{parse_args, prepared_minpsid};
use std::time::Instant;

const BENCHES: [&str; 4] = ["kmeans", "needle", "pathfinder", "knn"];

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let budget = args.preset.max_search_inputs();

    println!("== Ablation: input-search strategy ==");
    println!("preset {:?}, search budget {budget} inputs", args.preset);
    println!();
    println!(
        "{:<12} {:<10} | {:>12} {:>9} {:>10}",
        "benchmark", "strategy", "#incubative", "inputs", "time(s)"
    );

    let strategies = [
        ("genetic", SearchStrategy::Genetic),
        ("annealing", SearchStrategy::Annealing),
        ("random", SearchStrategy::Random),
    ];
    let mut totals = vec![0usize; strategies.len()];
    for name in BENCHES {
        if let Some(only) = &args.bench {
            if !name.eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let b = minpsid_workloads::by_name(name).unwrap();
        for (si, (label, strategy)) in strategies.iter().enumerate() {
            let mut cfg = args.preset.minpsid_config(0.5, args.seed);
            cfg.stagnation_patience = budget;
            cfg.strategy = *strategy;
            let t0 = Instant::now();
            let (_, info) = prepared_minpsid(&b, &cfg);
            totals[si] += info.incubative.len();
            println!(
                "{:<12} {:<10} | {:>12} {:>9} {:>10.1}",
                name,
                label,
                info.incubative.len(),
                info.inputs_searched,
                t0.elapsed().as_secs_f64()
            );
        }
    }
    println!();
    for (si, (label, _)) in strategies.iter().enumerate() {
        println!("total incubative found by {label}: {}", totals[si]);
    }
    minpsid_bench::finish_trace();
}
