//! **Figure 2 + Table II**: the loss of SDC coverage in existing SID.
//!
//! For every benchmark: profile with the reference input, protect at
//! 30/50/70 % levels, then measure SDC coverage over random inputs.
//! Prints the Fig. 2 candlesticks (expected coverage = the red bar) and
//! the Table II percentage of coverage-loss inputs.
//!
//! ```text
//! cargo run --release -p minpsid-bench --bin fig2_baseline_loss -- --preset small
//! ```

use minpsid_bench::{
    eval_coverage_over_inputs, parse_args, prepared_baseline, protect_at_level, Candlestick,
    CoverageRow,
};

const LEVELS: [f64; 3] = [0.3, 0.5, 0.7];

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let campaign = args.preset.campaign(args.seed);
    let n_eval = args.preset.eval_inputs();

    println!("== Figure 2: SDC coverage of baseline SID across inputs ==");
    println!(
        "preset {:?}, {} eval inputs, {} injections/campaign",
        args.preset, n_eval, campaign.injections
    );
    println!();
    println!(
        "{:<15} {:>5} | {:>8} | {:>6} {:>6} {:>6} {:>6} {:>6} | {:>9}",
        "benchmark", "level", "expected", "min", "q1", "med", "q3", "max", "loss-inputs"
    );

    let mut table2: Vec<(String, [f64; 3])> = Vec::new();
    for b in minpsid_workloads::suite() {
        if let Some(only) = &args.bench {
            if !b.name.eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let prepared = prepared_baseline(&b, &campaign);
        let mut loss_row = [0.0f64; 3];
        for (li, &level) in LEVELS.iter().enumerate() {
            let (protected, expected, _, _) = protect_at_level(&prepared, level);
            let coverage = eval_coverage_over_inputs(
                &prepared.module,
                &protected,
                b.model.as_ref(),
                n_eval,
                &campaign,
                args.seed ^ (li as u64) << 8,
            );
            let row = CoverageRow {
                coverage: coverage.clone(),
                expected,
            };
            let stick = Candlestick::from(&coverage).expect("non-empty eval set");
            loss_row[li] = row.loss_fraction_with(args.preset.loss_epsilon());
            println!(
                "{:<15} {:>4.0}% | {:>7.2}% | {} | {:>8.2}%",
                b.name,
                level * 100.0,
                expected * 100.0,
                stick.pct(),
                row.loss_fraction_with(args.preset.loss_epsilon()) * 100.0
            );
        }
        table2.push((b.name.to_string(), loss_row));
    }

    println!();
    println!("== Table II: percentage of random coverage-loss inputs (baseline SID) ==");
    println!(
        "{:<15} {:>10} {:>10} {:>10}",
        "benchmark", "30% level", "50% level", "70% level"
    );
    let mut avg = [0.0f64; 3];
    for (name, row) in &table2 {
        println!(
            "{:<15} {:>9.2}% {:>9.2}% {:>9.2}%",
            name,
            row[0] * 100.0,
            row[1] * 100.0,
            row[2] * 100.0
        );
        for i in 0..3 {
            avg[i] += row[i];
        }
    }
    let n = table2.len().max(1) as f64;
    println!(
        "{:<15} {:>9.2}% {:>9.2}% {:>9.2}%",
        "Average",
        avg[0] / n * 100.0,
        avg[1] / n * 100.0,
        avg[2] / n * 100.0
    );
    minpsid_bench::finish_trace();
}
