//! **Figure 6 + Table III**: MINPSID's mitigation of the SDC-coverage
//! loss, side by side with the baseline SID of Fig. 2.
//!
//! For every benchmark: run the MINPSID search once (incubative
//! identification is level-independent), protect at 30/50/70 %, and
//! measure coverage over the same random-input sets the baseline is
//! evaluated on.
//!
//! ```text
//! cargo run --release -p minpsid-bench --bin fig6_minpsid_mitigation -- --preset small
//! ```

use minpsid_bench::{
    eval_coverage_over_inputs, parse_args, prepared_baseline, prepared_minpsid, protect_at_level,
    Candlestick, CoverageRow,
};

const LEVELS: [f64; 3] = [0.3, 0.5, 0.7];

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let campaign = args.preset.campaign(args.seed);
    let n_eval = args.preset.eval_inputs();
    let eps = args.preset.loss_epsilon();

    println!("== Figure 6: SDC coverage, MINPSID vs baseline SID ==");
    println!(
        "preset {:?}, {} eval inputs, {} injections/campaign",
        args.preset, n_eval, campaign.injections
    );
    println!();
    println!(
        "{:<15} {:>5} {:<8} | {:>8} | {:>6} {:>6} {:>6} {:>6} {:>6} | {:>9}",
        "benchmark", "level", "method", "expected", "min", "q1", "med", "q3", "max", "loss-inputs"
    );

    let mut table3: Vec<(String, [f64; 3])> = Vec::new();
    let mut mitigation_samples: Vec<f64> = Vec::new();
    for b in minpsid_workloads::suite() {
        if let Some(only) = &args.bench {
            if !b.name.eq_ignore_ascii_case(only) {
                continue;
            }
        }
        eprintln!("[fig6] preparing {} ...", b.name);
        let base = prepared_baseline(&b, &campaign);
        let minp_cfg = args.preset.minpsid_config(0.5, args.seed);
        let (hard, info) = prepared_minpsid(&b, &minp_cfg);
        eprintln!(
            "[fig6]   {}: {} incubative instructions from {} searched inputs",
            b.name,
            info.incubative.len(),
            info.inputs_searched
        );

        let mut loss_row = [0.0f64; 3];
        for (li, &level) in LEVELS.iter().enumerate() {
            let eval_seed = args.seed ^ (li as u64) << 8;
            let (base_prot, base_exp, _, _) = protect_at_level(&base, level);
            let base_cov = eval_coverage_over_inputs(
                &base.module,
                &base_prot,
                b.model.as_ref(),
                n_eval,
                &campaign,
                eval_seed,
            );
            let (hard_prot, hard_exp, _, _) = protect_at_level(&hard, level);
            let hard_cov = eval_coverage_over_inputs(
                &hard.module,
                &hard_prot,
                b.model.as_ref(),
                n_eval,
                &campaign,
                eval_seed,
            );

            let base_row = CoverageRow {
                coverage: base_cov.clone(),
                expected: base_exp,
            };
            let hard_row = CoverageRow {
                coverage: hard_cov.clone(),
                expected: hard_exp,
            };
            loss_row[li] = hard_row.loss_fraction_with(eps);

            for (label, row, cov) in [
                ("baseline", &base_row, &base_cov),
                ("minpsid", &hard_row, &hard_cov),
            ] {
                let stick = Candlestick::from(cov).expect("non-empty");
                println!(
                    "{:<15} {:>4.0}% {:<8} | {:>7.2}% | {} | {:>8.2}%",
                    b.name,
                    level * 100.0,
                    label,
                    row.expected * 100.0,
                    stick.pct(),
                    row.loss_fraction_with(eps) * 100.0
                );
            }

            // loss-of-coverage mitigation: how much of the baseline's
            // worst-case shortfall below its expectation MINPSID removes
            let base_short = (base_exp - base_row.min()).max(0.0);
            let hard_short = (hard_exp - hard_row.min()).max(0.0);
            if base_short > 1e-6 {
                mitigation_samples.push(((base_short - hard_short) / base_short).clamp(-1.0, 1.0));
            }
        }
        table3.push((b.name.to_string(), loss_row));
    }

    println!();
    println!("== Table III: percentage of coverage-loss inputs under MINPSID ==");
    println!(
        "{:<15} {:>10} {:>10} {:>10}",
        "benchmark", "30% level", "50% level", "70% level"
    );
    let mut avg = [0.0f64; 3];
    for (name, row) in &table3 {
        println!(
            "{:<15} {:>9.2}% {:>9.2}% {:>9.2}%",
            name,
            row[0] * 100.0,
            row[1] * 100.0,
            row[2] * 100.0
        );
        for i in 0..3 {
            avg[i] += row[i];
        }
    }
    let n = table3.len().max(1) as f64;
    println!(
        "{:<15} {:>9.2}% {:>9.2}% {:>9.2}%",
        "Average",
        avg[0] / n * 100.0,
        avg[1] / n * 100.0,
        avg[2] / n * 100.0
    );
    if !mitigation_samples.is_empty() {
        let m = mitigation_samples.iter().sum::<f64>() / mitigation_samples.len() as f64;
        println!();
        println!(
            "average mitigation of the baseline's worst-case coverage shortfall: {:.1}% (paper: 97%)",
            m * 100.0
        );
    }
    minpsid_bench::finish_trace();
}
