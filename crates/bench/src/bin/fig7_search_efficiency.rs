//! **Figure 7**: incubative instructions identified per searched input —
//! MINPSID's GA input search engine versus the blind random searcher.
//!
//! Three searchers are compared:
//! * `GA` — the paper's engine with the Eq. 3 (unnormalized) fitness;
//! * `GA-shape` — the same engine with a size-normalized fitness (an
//!   adaptation for this reproduction's size-randomized generators, see
//!   EXPERIMENTS.md);
//! * `random` — the blind baseline of the paper's Fig. 7.
//!
//! Prints normalized cumulative counts per searched input (mean across
//! benchmarks) plus per-benchmark finals and the GA advantage.

use minpsid::{FitnessKind, SearchStrategy};
use minpsid_bench::{parse_args, prepared_minpsid};

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let budget = args.preset.max_search_inputs();

    println!("== Figure 7: incubative instructions found vs inputs searched ==");
    println!("preset {:?}, search budget {budget} inputs", args.preset);
    println!();

    let mut series: [Vec<Vec<f64>>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut gains = [Vec::new(), Vec::new()];
    println!(
        "{:<15} {:>9} {:>10} {:>9} | {:>9} {:>10}",
        "benchmark", "GA", "GA-shape", "random", "GA gain", "shape gain"
    );
    for b in minpsid_workloads::suite() {
        if let Some(only) = &args.bench {
            if !b.name.eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let run = |strategy: SearchStrategy, fitness: FitnessKind| {
            let mut cfg = args.preset.minpsid_config(0.5, args.seed);
            cfg.stagnation_patience = budget; // exhaust the budget
            cfg.strategy = strategy;
            cfg.ga.fitness = fitness;
            let (_, info) = prepared_minpsid(&b, &cfg);
            info.incubative_history
        };
        let ga = run(SearchStrategy::Genetic, FitnessKind::Euclidean);
        let ga_shape = run(SearchStrategy::Genetic, FitnessKind::NormalizedEuclidean);
        let rnd = run(SearchStrategy::Random, FitnessKind::Euclidean);

        let last = |h: &[usize]| *h.last().unwrap_or(&0);
        let (ga_n, sh_n, rnd_n) = (last(&ga), last(&ga_shape), last(&rnd));
        let gain = |a: usize, b: usize| -> f64 {
            if b > 0 {
                a as f64 / b as f64 - 1.0
            } else if a > 0 {
                1.0
            } else {
                0.0
            }
        };
        gains[0].push(gain(ga_n, rnd_n));
        gains[1].push(gain(sh_n, rnd_n));
        println!(
            "{:<15} {:>9} {:>10} {:>9} | {:>8.1}% {:>9.1}%",
            b.name,
            ga_n,
            sh_n,
            rnd_n,
            gain(ga_n, rnd_n) * 100.0,
            gain(sh_n, rnd_n) * 100.0
        );

        let norm = ga_n.max(sh_n).max(rnd_n).max(1) as f64;
        series[0].push(pad_normalize(&ga, budget, norm));
        series[1].push(pad_normalize(&ga_shape, budget, norm));
        series[2].push(pad_normalize(&rnd, budget, norm));
    }

    println!();
    println!("normalized cumulative incubative instructions (mean over benchmarks):");
    println!(
        "{:>7} {:>10} {:>10} {:>10}",
        "inputs", "GA", "GA-shape", "random"
    );
    for i in 0..budget {
        println!(
            "{:>7} {:>10.3} {:>10.3} {:>10.3}",
            i + 1,
            mean_at(&series[0], i),
            mean_at(&series[1], i),
            mean_at(&series[2], i)
        );
    }
    for (name, g) in [("GA", &gains[0]), ("GA-shape", &gains[1])] {
        if !g.is_empty() {
            println!(
                "mean {name} advantage over random at convergence: {:+.1}% (paper GA: +45.6%)",
                g.iter().sum::<f64>() / g.len() as f64 * 100.0
            );
        }
    }
    minpsid_bench::finish_trace();
}

/// Pad a cumulative history to `len` (carrying the last value) and
/// normalize by `norm`.
fn pad_normalize(history: &[usize], len: usize, norm: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(len);
    let mut last = 0usize;
    for i in 0..len {
        if i < history.len() {
            last = history[i];
        }
        out.push(last as f64 / norm);
    }
    out
}

fn mean_at(series: &[Vec<f64>], i: usize) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.iter().map(|s| s[i]).sum::<f64>() / series.len() as f64
}
