//! **Figure 8**: wall-clock breakdown of a MINPSID run per benchmark —
//! per-instruction FI on the reference input, per-instruction FI for
//! incubative identification, and the input search engine (the three
//! components covering >98 % of execution time in the paper).

use minpsid_bench::{parse_args, prepared_minpsid};
use std::time::Duration;

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn main() {
    let args = parse_args(std::env::args().skip(1));

    println!("== Figure 8: MINPSID execution-time breakdown (seconds) ==");
    println!("preset {:?}", args.preset);
    println!();
    println!(
        "{:<15} {:>12} {:>16} {:>12} {:>10} {:>8}",
        "benchmark", "ref-input FI", "incubative FI", "search", "other", "total"
    );

    let mut totals = (0.0, 0.0, 0.0, 0.0);
    let mut count = 0usize;
    for b in minpsid_workloads::suite() {
        if let Some(only) = &args.bench {
            if !b.name.eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let cfg = args.preset.minpsid_config(0.5, args.seed);
        let (_, info) = prepared_minpsid(&b, &cfg);
        let t = info.timings;
        println!(
            "{:<15} {:>12.2} {:>16.2} {:>12.2} {:>10.3} {:>8.2}",
            b.name,
            secs(t.ref_fi),
            secs(t.incubative_fi),
            secs(t.search),
            secs(t.other),
            secs(t.total())
        );
        totals.0 += secs(t.ref_fi);
        totals.1 += secs(t.incubative_fi);
        totals.2 += secs(t.search);
        totals.3 += secs(t.other);
        count += 1;
    }
    if count > 0 {
        let n = count as f64;
        println!(
            "{:<15} {:>12.2} {:>16.2} {:>12.2} {:>10.3} {:>8.2}",
            "Average",
            totals.0 / n,
            totals.1 / n,
            totals.2 / n,
            totals.3 / n,
            (totals.0 + totals.1 + totals.2 + totals.3) / n
        );
        println!();
        println!(
            "(paper, at full scale on a 160-core farm: ref FI 3.87 min, incubative FI 26.42 min, \
             search 33.41 min, total 63.71 min average)"
        );
    }
    minpsid_bench::finish_trace();
}
