//! **Figure 9 + Table IV (§VII case study)**: BFS on 30 KONECT-like
//! scale-free graphs and Kmeans on 10 Kaggle-like clustering tables,
//! baseline SID versus MINPSID.
//!
//! Both protections are built exactly as in the main evaluation (random
//! reference input / GA search over the *generator's* input space); only
//! the evaluation inputs come from the fixed "real-world" dataset lists.

use minpsid::InputModel;
use minpsid_bench::{
    experiment::eval_coverage_over_fixed, parse_args, prepared_baseline, prepared_minpsid,
    protect_at_level, Candlestick, CoverageRow,
};
use minpsid_workloads::datasets::{BfsRealWorld, KmeansRealWorld};

const LEVELS: [f64; 3] = [0.3, 0.5, 0.7];

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let campaign = args.preset.campaign(args.seed);
    let eps = args.preset.loss_epsilon();

    println!("== Figure 9 / Table IV: MINPSID with real-world-like program inputs ==");
    println!("preset {:?}", args.preset);
    println!();
    println!(
        "{:<18} {:>5} {:<8} | {:>8} | {:>6} {:>6} {:>6} {:>6} {:>6} | {:>9}",
        "benchmark", "level", "method", "expected", "min", "q1", "med", "q3", "max", "loss-inputs"
    );

    let bfs_rw = BfsRealWorld::new();
    let km_rw = KmeansRealWorld::new();
    run_case(
        &args,
        "bfs",
        &bfs_rw.dataset_params(),
        &bfs_rw,
        &campaign,
        eps,
    );
    run_case(
        &args,
        "kmeans",
        &km_rw.dataset_params(),
        &km_rw,
        &campaign,
        eps,
    );
    minpsid_bench::finish_trace();
}

fn run_case(
    args: &minpsid_bench::ExperimentArgs,
    bench_name: &str,
    dataset: &[Vec<minpsid::ParamValue>],
    rw_model: &dyn InputModel,
    campaign: &minpsid_faultsim::CampaignConfig,
    eps: f64,
) {
    if let Some(only) = &args.bench {
        if !bench_name.eq_ignore_ascii_case(only) {
            return;
        }
    }
    let b = minpsid_workloads::by_name(bench_name).unwrap();
    eprintln!("[fig9] preparing {bench_name} ...");
    let base = prepared_baseline(&b, campaign);
    let cfg = args.preset.minpsid_config(0.5, args.seed);
    let (hard, _) = prepared_minpsid(&b, &cfg);

    for &level in &LEVELS {
        for (label, prepared) in [("baseline", &base), ("minpsid", &hard)] {
            let (protected, expected, _, _) = protect_at_level(prepared, level);
            let coverage =
                eval_coverage_over_fixed(&prepared.module, &protected, rw_model, dataset, campaign);
            let row = CoverageRow {
                coverage: coverage.clone(),
                expected,
            };
            let stick = Candlestick::from(&coverage).expect("non-empty dataset");
            println!(
                "{:<18} {:>4.0}% {:<8} | {:>7.2}% | {} | {:>8.2}%",
                format!("{bench_name} (rw)"),
                level * 100.0,
                label,
                expected * 100.0,
                stick.pct(),
                row.loss_fraction_with(eps) * 100.0
            );
        }
    }
}
