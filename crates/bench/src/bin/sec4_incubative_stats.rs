//! **§IV statistics**: the share of incubative instructions per benchmark
//! (paper: 6.20 % in LU to 32.09 % in Needle, 15.79 % on average) and how
//! much of the baseline's coverage loss they explain — estimated as the
//! worst-case shortfall removed when only re-prioritization of the found
//! incubative set is applied (paper: ≥ 97 %).

use minpsid_bench::{
    eval_coverage_over_inputs, parse_args, prepared_baseline, prepared_minpsid, protect_at_level,
};

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let campaign = args.preset.campaign(args.seed);
    let n_eval = args.preset.eval_inputs();

    println!("== Section IV: incubative-instruction statistics ==");
    println!();
    println!(
        "{:<15} {:>8} {:>12} {:>10} | {:>12} {:>12} {:>12}",
        "benchmark", "#insts", "#incubative", "share", "base worst", "hard worst", "loss explained"
    );

    let mut shares = Vec::new();
    let mut explained = Vec::new();
    for b in minpsid_workloads::suite() {
        if let Some(only) = &args.bench {
            if !b.name.eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let base = prepared_baseline(&b, &campaign);
        let cfg = args.preset.minpsid_config(0.5, args.seed);
        let (hard, info) = prepared_minpsid(&b, &cfg);
        let n_insts = base.module.num_insts();
        let share = info.incubative.len() as f64 / n_insts as f64;
        shares.push(share);

        // coverage shortfall at the 50% level, with and without the
        // incubative re-prioritization
        let level = 0.5;
        let (base_prot, base_exp, _, _) = protect_at_level(&base, level);
        let base_cov = eval_coverage_over_inputs(
            &base.module,
            &base_prot,
            b.model.as_ref(),
            n_eval,
            &campaign,
            args.seed,
        );
        let (hard_prot, _, _, _) = protect_at_level(&hard, level);
        let hard_cov = eval_coverage_over_inputs(
            &hard.module,
            &hard_prot,
            b.model.as_ref(),
            n_eval,
            &campaign,
            args.seed,
        );
        let worst = |cov: &[f64]| cov.iter().copied().fold(f64::INFINITY, f64::min);
        let base_short = (base_exp - worst(&base_cov)).max(0.0);
        let hard_short = (base_exp - worst(&hard_cov)).max(0.0);
        let frac = if base_short > 1e-6 {
            ((base_short - hard_short) / base_short).clamp(0.0, 1.0)
        } else {
            1.0
        };
        explained.push(frac);
        println!(
            "{:<15} {:>8} {:>12} {:>9.2}% | {:>11.2}% {:>11.2}% {:>11.1}%",
            b.name,
            n_insts,
            info.incubative.len(),
            share * 100.0,
            worst(&base_cov) * 100.0,
            worst(&hard_cov) * 100.0,
            frac * 100.0
        );
    }

    if !shares.is_empty() {
        println!();
        println!(
            "incubative share: min {:.2}%, max {:.2}%, mean {:.2}% (paper: 6.20% / 32.09% / 15.79%)",
            shares.iter().copied().fold(f64::INFINITY, f64::min) * 100.0,
            shares.iter().copied().fold(0.0f64, f64::max) * 100.0,
            shares.iter().sum::<f64>() / shares.len() as f64 * 100.0
        );
        println!(
            "mean coverage loss explained by incubative re-prioritization: {:.1}% (paper: >=97%)",
            explained.iter().sum::<f64>() / explained.len() as f64 * 100.0
        );
    }
    minpsid_bench::finish_trace();
}
