//! **§VIII-B**: SID and MINPSID on a multi-threaded FFT with 1 / 2 / 4
//! threads. Detection happens per thread before any synchronization
//! point, so a `T`-thread run is modelled as `T` shard transforms under
//! one protected instruction set (see `fft::MT_SOURCE`).
//!
//! Paper: baseline coverage loss 7.52 / 12.13 / 6.00 % at 1 / 2 / 4
//! threads; MINPSID reduces it to 2.50 / 5.50 / 1.46 %.

use minpsid_bench::{
    eval_coverage_over_inputs, parse_args, prepared_baseline, prepared_minpsid, protect_at_level,
};
use minpsid_workloads::benchmarks::fft::mt_benchmark;

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let campaign = args.preset.campaign(args.seed);
    let n_eval = args.preset.eval_inputs();

    println!("== Section VIII-B: multi-threaded FFT (protection level 50%) ==");
    println!();
    println!(
        "{:<8} {:<8} | {:>8} | {:>8} | {:>10}",
        "threads", "method", "expected", "min cov", "mean loss"
    );

    for threads in [1i64, 2, 4] {
        let b = mt_benchmark(threads);
        let base = prepared_baseline(&b, &campaign);
        let cfg = args.preset.minpsid_config(0.5, args.seed);
        let (hard, _) = prepared_minpsid(&b, &cfg);

        for (label, prepared) in [("baseline", &base), ("minpsid", &hard)] {
            let (protected, expected, _, _) = protect_at_level(prepared, 0.5);
            let coverage = eval_coverage_over_inputs(
                &prepared.module,
                &protected,
                b.model.as_ref(),
                n_eval,
                &campaign,
                args.seed ^ threads as u64,
            );
            let min = coverage.iter().copied().fold(f64::INFINITY, f64::min);
            // mean loss of coverage relative to the expectation
            let mean_loss = coverage
                .iter()
                .map(|c| (expected - c).max(0.0))
                .sum::<f64>()
                / coverage.len().max(1) as f64;
            println!(
                "{:<8} {:<8} | {:>7.2}% | {:>7.2}% | {:>9.2}%",
                threads,
                label,
                expected * 100.0,
                min * 100.0,
                mean_loss * 100.0
            );
        }
    }
    println!();
    println!("(paper: baseline loss 7.52/12.13/6.00%, MINPSID 2.50/5.50/1.46% at 1/2/4 threads)");
    minpsid_bench::finish_trace();
}
