//! **§VIII-A**: performance-overhead variance across inputs — the actual
//! fraction of dynamic instructions duplicated when a protected program
//! runs with random inputs, versus the target protection level.
//!
//! Paper: baseline SID actually duplicates 15.61 / 28.63 / 46.31 % of
//! dynamic instructions at the 30 / 50 / 70 % levels (shortfalls of
//! 14.4 / 21.4 / 23.7 points), and MINPSID behaves similarly.

use minpsid::InputModel;
use minpsid_bench::{parse_args, prepared_baseline, prepared_minpsid, protect_at_level};
use minpsid_interp::{ExecConfig, Interp};
use minpsid_ir::Module;
use minpsid_sid::transform::TransformMeta;
use rand::rngs::StdRng;
use rand::SeedableRng;

const LEVELS: [f64; 3] = [0.3, 0.5, 0.7];

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let campaign = args.preset.campaign(args.seed);
    let n_eval = args.preset.eval_inputs();

    println!("== Section VIII-A: duplicated-dynamic-instruction fraction across inputs ==");
    println!();
    println!(
        "{:<15} {:>5} | {:>12} {:>12} | {:>12} {:>12}",
        "benchmark", "level", "base dup%", "base short", "minpsid dup%", "minpsid short"
    );

    let mut base_avgs = [0.0f64; 3];
    let mut hard_avgs = [0.0f64; 3];
    let mut count = 0usize;
    for b in minpsid_workloads::suite() {
        if let Some(only) = &args.bench {
            if !b.name.eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let base = prepared_baseline(&b, &campaign);
        let cfg = args.preset.minpsid_config(0.5, args.seed);
        let (hard, _) = prepared_minpsid(&b, &cfg);

        for (li, &level) in LEVELS.iter().enumerate() {
            let (base_prot, _, base_meta, _) = protect_at_level(&base, level);
            let (hard_prot, _, hard_meta, _) = protect_at_level(&hard, level);
            let base_frac = mean_dup_fraction(
                &base_prot,
                &base_meta,
                b.model.as_ref(),
                n_eval,
                args.seed ^ li as u64,
            );
            let hard_frac = mean_dup_fraction(
                &hard_prot,
                &hard_meta,
                b.model.as_ref(),
                n_eval,
                args.seed ^ li as u64,
            );
            println!(
                "{:<15} {:>4.0}% | {:>11.2}% {:>11.2}pp | {:>11.2}% {:>11.2}pp",
                b.name,
                level * 100.0,
                base_frac * 100.0,
                (level - base_frac) * 100.0,
                hard_frac * 100.0,
                (level - hard_frac) * 100.0
            );
            base_avgs[li] += base_frac;
            hard_avgs[li] += hard_frac;
        }
        count += 1;
    }
    if count > 0 {
        println!();
        for (li, &level) in LEVELS.iter().enumerate() {
            println!(
                "average @ {:>2.0}%: baseline {:.2}% (short {:.2}pp), minpsid {:.2}% (short {:.2}pp)",
                level * 100.0,
                base_avgs[li] / count as f64 * 100.0,
                (level - base_avgs[li] / count as f64) * 100.0,
                hard_avgs[li] / count as f64 * 100.0,
                (level - hard_avgs[li] / count as f64) * 100.0
            );
        }
        println!("(paper baseline: 15.61 / 28.63 / 46.31% actual at 30 / 50 / 70% targets)");
    }
    minpsid_bench::finish_trace();
}

/// Mean dynamic duplicate fraction of a protected binary over `n` random
/// inputs.
fn mean_dup_fraction(
    protected: &Module,
    meta: &TransformMeta,
    model: &dyn InputModel,
    n: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let exec = ExecConfig {
        profile: true,
        ..ExecConfig::default()
    };
    let interp = Interp::new(protected, exec);
    let mut sum = 0.0;
    let mut got = 0usize;
    let mut attempts = 0usize;
    while got < n && attempts < 10 * n + 20 {
        attempts += 1;
        let input = model.materialize(&model.random(&mut rng));
        let r = interp.run(&input);
        if !r.exited() {
            continue;
        }
        sum += meta.dynamic_dup_fraction(&r.profile.unwrap().inst_counts);
        got += 1;
    }
    if got == 0 {
        0.0
    } else {
        sum / got as f64
    }
}
