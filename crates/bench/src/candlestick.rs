//! Five-number summaries for the coverage "candlesticks" of Figs. 2/6/9.

/// Min / Q1 / median / Q3 / max of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candlestick {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    pub n: usize,
}

impl Candlestick {
    /// Summarize a sample; `None` when empty.
    pub fn from(values: &[f64]) -> Option<Candlestick> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| -> f64 {
            let idx = p * (v.len() as f64 - 1.0);
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
            }
        };
        Some(Candlestick {
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *v.last().unwrap(),
            n: v.len(),
        })
    }

    /// Render as `min/q1/med/q3/max` percentages.
    pub fn pct(&self) -> String {
        format!(
            "{:6.2} {:6.2} {:6.2} {:6.2} {:6.2}",
            self.min * 100.0,
            self.q1 * 100.0,
            self.median * 100.0,
            self.q3 * 100.0,
            self.max * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_numbers_of_a_simple_sample() {
        let c = Candlestick::from(&[0.0, 0.25, 0.5, 0.75, 1.0]).unwrap();
        assert_eq!(c.min, 0.0);
        assert_eq!(c.q1, 0.25);
        assert_eq!(c.median, 0.5);
        assert_eq!(c.q3, 0.75);
        assert_eq!(c.max, 1.0);
        assert_eq!(c.n, 5);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let c = Candlestick::from(&[0.9, 0.1, 0.5]).unwrap();
        assert_eq!(c.min, 0.1);
        assert_eq!(c.max, 0.9);
        assert_eq!(c.median, 0.5);
    }

    #[test]
    fn single_value_collapses() {
        let c = Candlestick::from(&[0.7]).unwrap();
        assert_eq!(c.min, 0.7);
        assert_eq!(c.max, 0.7);
        assert_eq!(c.median, 0.7);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(Candlestick::from(&[]).is_none());
    }

    #[test]
    fn interpolated_quartiles() {
        let c = Candlestick::from(&[0.0, 1.0]).unwrap();
        assert_eq!(c.q1, 0.25);
        assert_eq!(c.median, 0.5);
        assert_eq!(c.q3, 0.75);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The five-number summary is ordered and bounded by the sample.
        #[test]
        fn five_numbers_are_monotone(values in prop::collection::vec(0.0f64..1.0, 1..60)) {
            let c = Candlestick::from(&values).unwrap();
            prop_assert!(c.min <= c.q1);
            prop_assert!(c.q1 <= c.median);
            prop_assert!(c.median <= c.q3);
            prop_assert!(c.q3 <= c.max);
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(c.min, lo);
            prop_assert_eq!(c.max, hi);
            prop_assert_eq!(c.n, values.len());
        }

        /// Permutation invariance: the summary only depends on the multiset.
        #[test]
        fn summary_is_order_invariant(mut values in prop::collection::vec(0.0f64..1.0, 2..40)) {
            let a = Candlestick::from(&values).unwrap();
            values.reverse();
            let b = Candlestick::from(&values).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}
