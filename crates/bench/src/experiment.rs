//! Shared experiment plumbing: profile once per benchmark, protect per
//! level, evaluate coverage over random inputs.

use minpsid::{run_minpsid, InputModel, MinpsidConfig, MinpsidResult};
use minpsid_faultsim::{golden_run, per_instruction_campaign, CampaignConfig};
use minpsid_ir::Module;
use minpsid_sid::transform::TransformMeta;
use minpsid_sid::{measure_coverage, select_and_protect, CostBenefit};
use minpsid_workloads::Benchmark;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A benchmark with its profile, ready for per-level selection.
pub struct Prepared {
    pub module: Module,
    /// Baseline: the reference-input profile. MINPSID: the re-prioritized
    /// profile.
    pub cb: CostBenefit,
}

/// Profile a benchmark the baseline-SID way (reference input only).
pub fn prepared_baseline(b: &Benchmark, campaign: &CampaignConfig) -> Prepared {
    let module = b.compile();
    let ref_input = b.model.materialize(&b.model.reference());
    let golden = golden_run(&module, &ref_input, campaign)
        .unwrap_or_else(|t| panic!("{}: reference input failed: {t:?}", b.name));
    let per_inst = per_instruction_campaign(&module, &ref_input, &golden, campaign);
    let cb = CostBenefit::build(&module, &golden, &per_inst);
    Prepared { module, cb }
}

/// Run the MINPSID search once for a benchmark; the returned profile is
/// level-independent (only the knapsack re-runs per level).
pub fn prepared_minpsid(b: &Benchmark, cfg: &MinpsidConfig) -> (Prepared, MinpsidResult) {
    let module = b.compile();
    let result = run_minpsid(&module, b.model.as_ref(), cfg)
        .unwrap_or_else(|t| panic!("{}: MINPSID failed: {t:?}", b.name));
    let cb = result.cost_benefit.clone();
    (Prepared { module, cb }, result)
}

/// Knapsack + transform at one protection level.
pub fn protect_at_level(
    prepared: &Prepared,
    level: f64,
) -> (Module, f64, TransformMeta, Vec<bool>) {
    let (selection, expected, protected, meta) =
        select_and_protect(&prepared.module, &prepared.cb, level, false);
    (protected, expected, meta, selection)
}

/// Coverage of one protected binary over `n` random inputs.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// Measured SDC coverage per evaluation input.
    pub coverage: Vec<f64>,
    /// The expected coverage the technique promised.
    pub expected: f64,
}

impl CoverageRow {
    /// Fraction of inputs whose measured coverage misses the expectation
    /// (the Table II / III / IV metric). `eps` absorbs campaign sampling
    /// noise — the paper's 1000-injection campaigns carry 0.26–3.1 %
    /// error bars (§III-A3), so a miss inside the error bar is not a loss.
    pub fn loss_fraction_with(&self, eps: f64) -> f64 {
        if self.coverage.is_empty() {
            return 0.0;
        }
        let losses = self
            .coverage
            .iter()
            .filter(|&&c| c + eps < self.expected)
            .count();
        losses as f64 / self.coverage.len() as f64
    }

    /// Strict variant (no noise slack).
    pub fn loss_fraction(&self) -> f64 {
        self.loss_fraction_with(1e-9)
    }

    pub fn min(&self) -> f64 {
        self.coverage.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Evaluate a protected binary: sample `n` *valid* random inputs from the
/// model (§III-A2 filters error-producing inputs) and measure the SDC
/// coverage on each.
pub fn eval_coverage_over_inputs(
    original: &Module,
    protected: &Module,
    model: &dyn InputModel,
    n: usize,
    campaign: &CampaignConfig,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0;
    while out.len() < n && attempts < 10 * n + 20 {
        attempts += 1;
        let params = model.random(&mut rng);
        let input = model.materialize(&params);
        match measure_coverage(original, protected, &input, campaign) {
            Ok(m) => out.push(m.coverage),
            Err(_) => continue, // invalid input: rejected like the paper does
        }
    }
    out
}

/// Evaluate over a *fixed* list of inputs (the §VII case-study datasets).
pub fn eval_coverage_over_fixed(
    original: &Module,
    protected: &Module,
    model: &dyn InputModel,
    params_list: &[Vec<minpsid::ParamValue>],
    campaign: &CampaignConfig,
) -> Vec<f64> {
    params_list
        .iter()
        .filter_map(|params| {
            let input = model.materialize(params);
            measure_coverage(original, protected, &input, campaign)
                .ok()
                .map(|m| m.coverage)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preset::Preset;

    #[test]
    fn baseline_prepare_and_protect_roundtrip() {
        let b = minpsid_workloads::by_name("pathfinder").unwrap();
        let campaign = Preset::Tiny.campaign(3);
        let prepared = prepared_baseline(&b, &campaign);
        let (protected, expected, meta, _) = protect_at_level(&prepared, 0.5);
        assert!(meta.num_dups > 0);
        assert!(expected > 0.0);
        let cov = eval_coverage_over_inputs(
            &prepared.module,
            &protected,
            b.model.as_ref(),
            3,
            &campaign,
            9,
        );
        assert_eq!(cov.len(), 3);
        assert!(cov.iter().all(|c| (0.0..=1.0).contains(c)));
    }

    #[test]
    fn loss_fraction_counts_misses() {
        let row = CoverageRow {
            coverage: vec![0.9, 0.5, 0.95, 1.0],
            expected: 0.93,
        };
        assert_eq!(row.loss_fraction(), 0.5);
        assert_eq!(row.min(), 0.5);
    }
}
