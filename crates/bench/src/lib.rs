//! # minpsid-bench — experiment harness
//!
//! Shared infrastructure for the binaries that regenerate every table and
//! figure of the paper (see DESIGN.md §4 for the index). Each binary
//! accepts:
//!
//! ```text
//! --preset tiny|small|paper   experiment scale (default: tiny)
//! --seed <u64>                master seed (default: 42)
//! --bench <name>              restrict to one benchmark
//! ```
//!
//! `paper` uses the paper's §III-A counts (50 evaluation inputs, 1000
//! whole-program injections, 100 per-instruction injections); `tiny` and
//! `small` scale those down for a single-core box. Coverage *shapes* (who
//! wins, where the loss appears) are stable across presets; only error
//! bars widen.

pub mod candlestick;
pub mod experiment;
pub mod preset;

pub use candlestick::Candlestick;
pub use experiment::{
    eval_coverage_over_fixed, eval_coverage_over_inputs, prepared_baseline, prepared_minpsid,
    protect_at_level, CoverageRow, Prepared,
};
pub use preset::{finish_trace, parse_args, ExperimentArgs, Preset};
