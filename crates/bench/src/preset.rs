//! Experiment presets and command-line parsing (hand-rolled: the
//! dependency budget has no CLI crate, and two flags do not justify one).

use minpsid::{GaConfig, IncubativeConfig, MinpsidConfig, SearchStrategy};
use minpsid_faultsim::{CampaignConfig, CampaignConfigBuilder};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Seconds-to-minutes: CI and smoke runs.
    Tiny,
    /// Minutes: the default for EXPERIMENTS.md numbers.
    Small,
    /// The paper's §III-A counts. Hours on one core.
    Paper,
}

impl Preset {
    pub fn parse(s: &str) -> Option<Preset> {
        match s {
            "tiny" => Some(Preset::Tiny),
            "small" => Some(Preset::Small),
            "paper" => Some(Preset::Paper),
            _ => None,
        }
    }

    /// Number of random inputs used to *evaluate* a protected program
    /// (the paper uses 50 for Fig. 2 and 30 for Fig. 6; we use one count).
    pub fn eval_inputs(self) -> usize {
        match self {
            Preset::Tiny => 6,
            Preset::Small => 15,
            Preset::Paper => 50,
        }
    }

    /// Whole-program campaign size (paper: 1000).
    pub fn injections(self) -> usize {
        match self {
            Preset::Tiny => 150,
            Preset::Small => 400,
            Preset::Paper => 1000,
        }
    }

    /// Per-instruction campaign size (paper: 100).
    pub fn per_inst_injections(self) -> usize {
        match self {
            Preset::Tiny => 12,
            Preset::Small => 30,
            Preset::Paper => 100,
        }
    }

    /// Input-search budget (paper converges around 21 inputs).
    pub fn max_search_inputs(self) -> usize {
        match self {
            Preset::Tiny => 6,
            Preset::Small => 12,
            Preset::Paper => 25,
        }
    }

    /// Noise slack for the "coverage-loss input" criterion, scaled to the
    /// campaign's binomial error bars.
    pub fn loss_epsilon(self) -> f64 {
        match self {
            Preset::Tiny => 0.06,
            Preset::Small => 0.04,
            Preset::Paper => 0.02,
        }
    }

    /// Checkpoint-store size cap for golden runs. Scales with campaign
    /// size: more injections amortize a denser snapshot grid.
    pub fn max_checkpoints(self) -> u64 {
        match self {
            Preset::Tiny => 128,
            Preset::Small => 512,
            Preset::Paper => 2048,
        }
    }

    /// Campaign config for this preset, routed through the shared
    /// [`CampaignConfigBuilder`] so the validation rules live in one
    /// place (preset sizes are positive by construction).
    pub fn campaign(self, seed: u64) -> CampaignConfig {
        CampaignConfigBuilder::new(seed)
            .injections(self.injections() as u64)
            .and_then(|b| b.per_inst_injections(self.per_inst_injections() as u64))
            .and_then(|b| b.max_checkpoints(self.max_checkpoints()))
            .expect("preset campaign sizes are positive")
            .build()
    }

    pub fn minpsid_config(self, level: f64, seed: u64) -> MinpsidConfig {
        MinpsidConfig {
            protection_level: level,
            campaign: self.campaign(seed),
            ga: GaConfig {
                population: if self == Preset::Tiny { 6 } else { 10 },
                max_generations: if self == Preset::Tiny { 4 } else { 8 },
                seed: seed ^ 0x6A,
                ..GaConfig::default()
            },
            incubative: IncubativeConfig::default(),
            max_inputs: self.max_search_inputs(),
            stagnation_patience: if self == Preset::Tiny { 2 } else { 3 },
            strategy: SearchStrategy::Genetic,
            use_dp: false,
            deadline_secs: None,
            incremental: true,
        }
    }
}

/// Parsed common experiment arguments.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    pub preset: Preset,
    pub seed: u64,
    /// Restrict to one benchmark by name.
    pub bench: Option<String>,
    /// Write a structured JSONL trace of the experiment here.
    pub trace_out: Option<String>,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            preset: Preset::Tiny,
            seed: 42,
            bench: None,
            trace_out: None,
        }
    }
}

/// Parse `--preset`, `--seed`, `--bench`, `--trace-out` from an iterator
/// of arguments. Unknown flags abort with a usage message. `--trace-out`
/// also initializes the global trace sink, so every experiment binary gets
/// structured tracing without its own plumbing; binaries must end `main`
/// with [`finish_trace`] or buffered tail events are lost.
pub fn parse_args(args: impl Iterator<Item = String>) -> ExperimentArgs {
    let mut out = ExperimentArgs::default();
    let mut it = args.peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--preset" => {
                let v = value("--preset");
                out.preset = Preset::parse(&v)
                    .unwrap_or_else(|| panic!("unknown preset `{v}` (tiny|small|paper)"));
            }
            "--seed" => {
                let v = value("--seed");
                out.seed = v.parse().unwrap_or_else(|_| panic!("bad seed `{v}`"));
            }
            "--bench" => out.bench = Some(value("--bench")),
            "--trace-out" => {
                let path = value("--trace-out");
                minpsid_trace::init_file(&path)
                    .unwrap_or_else(|e| panic!("cannot open trace file `{path}`: {e}"));
                out.trace_out = Some(path);
            }
            other => {
                panic!("unknown flag `{other}` (expected --preset/--seed/--bench/--trace-out)")
            }
        }
    }
    out
}

/// Finish an experiment: emit `trace_end` and close the trace sink. Call
/// at the end of each experiment binary's `main`; a no-op without
/// `--trace-out`.
pub fn finish_trace() {
    if let Err(e) = minpsid_trace::shutdown() {
        eprintln!("warning: writing trace log: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_faultsim::CheckpointPolicy;

    fn parse(v: &[&str]) -> ExperimentArgs {
        parse_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.preset, Preset::Tiny);
        assert_eq!(a.seed, 42);
        assert!(a.bench.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&["--preset", "paper", "--seed", "7", "--bench", "fft"]);
        assert_eq!(a.preset, Preset::Paper);
        assert_eq!(a.seed, 7);
        assert_eq!(a.bench.as_deref(), Some("fft"));
    }

    #[test]
    #[should_panic(expected = "unknown preset")]
    fn rejects_bad_preset() {
        parse(&["--preset", "huge"]);
    }

    #[test]
    fn paper_preset_matches_paper_counts() {
        assert_eq!(Preset::Paper.injections(), 1000);
        assert_eq!(Preset::Paper.per_inst_injections(), 100);
        assert_eq!(Preset::Paper.eval_inputs(), 50);
    }

    #[test]
    fn presets_are_ordered_by_scale() {
        assert!(Preset::Tiny.injections() < Preset::Small.injections());
        assert!(Preset::Small.injections() < Preset::Paper.injections());
        assert!(Preset::Tiny.max_checkpoints() < Preset::Paper.max_checkpoints());
    }

    #[test]
    fn campaigns_checkpoint_by_default() {
        let c = Preset::Small.campaign(1);
        assert_eq!(c.checkpoints, CheckpointPolicy::Auto);
        assert_eq!(c.max_checkpoints, Preset::Small.max_checkpoints());
    }
}
