//! `minpsid` — command-line driver for the MINPSID reproduction.
//!
//! ```text
//! minpsid list                              # Table I: the benchmark suite
//! minpsid compile <bench|file.mc>           # emit textual IR
//! minpsid run <bench> [--args i:N f:X ...]  # execute and print output
//! minpsid fi <bench> [--injections N]       # whole-program FI campaign
//! minpsid sid <bench> [--level 0.5]         # baseline SID report
//! minpsid minpsid <bench> [--level 0.5]     # full MINPSID pipeline report
//! ```
//!
//! Benchmarks come from `minpsid-workloads`; `compile` also accepts a path
//! to a `.mc` (minic) source file.

use minpsid::{
    config_fingerprint, input_fingerprint, minpsid_config_fingerprint, module_fingerprint,
    module_section_map, run_minpsid_cached, run_minpsid_journaled, GoldenCache, MinpsidConfig,
    PipelineError,
};
use minpsid_faultsim::{
    binomial_ci, golden_run, interrupt, CampaignConfig, CampaignConfigBuilder, CampaignEngine,
    CampaignJournal, Deadline, FailureKind, Outcome, OutcomeCounts, ProgramCampaign, SchedSnapshot,
    Scheduler, TableMemo, TableStatsSnapshot,
};
use minpsid_interp::{ExecConfig, Interp, ProgInput, Scalar};
use minpsid_ir::printer::print_module;
use minpsid_ir::Module;
use minpsid_sid::{run_sid, SidConfig};
use minpsid_store::ArtifactStore;
use minpsid_trace as trace;
use std::io::{IsTerminal as _, Write as _};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Set by `--quiet`: suppresses the CLI's stderr diagnostics (primary
/// results on stdout are unaffected).
static QUIET: AtomicBool = AtomicBool::new(false);

fn quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// A command that succeeded but wants a distinguishing exit code (e.g.
/// `store scrub` found and quarantined corruption: the store is healthy
/// again but CI must notice). 0 = plain success.
static EXIT_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// `store scrub` exit code when the pass quarantined corrupt objects.
const SCRUB_CORRUPTION_EXIT: u8 = 3;

/// All CLI stderr diagnostics go through here so `--quiet` silences them
/// in one place.
macro_rules! diag {
    ($($arg:tt)*) => {
        if !crate::quiet() {
            eprintln!($($arg)*);
        }
    };
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    if rest.iter().any(|a| a == "--quiet") {
        QUIET.store(true, Ordering::Relaxed);
    }
    // Chaos knob for the artifact store, deliberately outside every
    // config fingerprint: flips a bit in stored artifacts to prove the
    // store detects, quarantines, and recomputes. Parsed before
    // dispatch so every store this process (or a re-exec'd worker)
    // opens inherits it.
    if let Some(v) = flag_value(rest, "--chaos-flip-artifact-one-in") {
        match v.parse::<u64>() {
            Ok(n) => minpsid_store::chaos::set_flip_one_in(n),
            Err(_) => {
                eprintln!("error: bad --chaos-flip-artifact-one-in `{v}` (want a count, 0 = off)");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = flag_value(rest, "--trace-out") {
        if let Err(e) = trace::init_file(&path) {
            eprintln!("error: cannot open trace file `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    }
    // --progress is a stderr convenience; --quiet wins outright.
    if rest.iter().any(|a| a == "--progress") && !quiet() {
        install_progress_meter();
    }
    match parse_profile_flags(rest) {
        Ok(Some(every)) => minpsid_interp::opprof::enable(every),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Keep the server alive for the whole run; dropping it (end of main)
    // joins the accept loop.
    let _status_server = match start_status_server(rest) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "list" => cmd_list(),
        "compile" => cmd_compile(rest),
        "run" => cmd_run(rest),
        "fi" => cmd_fi(rest),
        // hidden: fleet worker process, re-exec'd by `fi --workers`
        "worker" => cmd_worker(rest),
        "analyze" => cmd_analyze(rest),
        "cfg" => cmd_cfg(rest),
        "propagate" => cmd_propagate(rest),
        "sid" => cmd_sid(rest),
        "minpsid" => cmd_minpsid(rest),
        "sections" => cmd_sections(rest),
        "store" => cmd_store(rest),
        "trace" => cmd_trace(rest),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    let result = result
        .and_then(|()| finish_interp_profile(rest))
        .and_then(|()| trace::shutdown().map_err(|e| format!("writing trace log: {e}")));
    match result {
        Ok(()) => match EXIT_OVERRIDE.load(Ordering::Relaxed) {
            0 => ExitCode::SUCCESS,
            n => ExitCode::from(n),
        },
        Err(e) => {
            let _ = trace::shutdown();
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Install a live campaign meter (`--progress`): an observer that redraws
/// a single line on every `campaign_progress` sample and clears it when
/// the campaign ends. Works with or without `--trace-out`.
///
/// The meter only uses carriage returns and ANSI erase codes when stderr
/// is an actual terminal; redirected to a file or pipe it degrades to
/// plain lines throttled to at most one per second, so logs don't fill
/// with control bytes (the sampler fires every 50ms).
fn install_progress_meter() {
    let tty = std::io::stderr().is_terminal();
    let last_line = Mutex::new(None::<std::time::Instant>);
    trace::add_observer(move |ev| {
        if quiet() {
            return;
        }
        let mut err = std::io::stderr().lock();
        match &ev.event {
            trace::Event::CampaignProgress {
                kind,
                done,
                total,
                counts,
                elapsed_us,
            } => {
                let secs = (*elapsed_us as f64 / 1e6).max(1e-9);
                let rate = *done as f64 / secs;
                let eta = if rate > 0.0 && total > done {
                    (*total - *done) as f64 / rate
                } else {
                    0.0
                };
                let kind = match kind {
                    trace::CampaignKind::Program => "fi",
                    trace::CampaignKind::PerInst => "per-inst fi",
                };
                let line = format!(
                    "{kind}: {done}/{total} injections ({rate:.0}/s, ETA {eta:.1}s) \
                     sdc {} crash {} hang {} detected {}",
                    counts.sdc, counts.crash, counts.hang, counts.detected
                );
                if tty {
                    let _ = write!(err, "\r{line}   ");
                    let _ = err.flush();
                } else {
                    let mut last = last_line.lock().unwrap_or_else(|e| e.into_inner());
                    let due = last.is_none_or(|t| t.elapsed() >= std::time::Duration::from_secs(1));
                    if due {
                        *last = Some(std::time::Instant::now());
                        let _ = writeln!(err, "{line}");
                    }
                }
            }
            trace::Event::CampaignEnd {
                injections,
                elapsed_us,
                ..
            } => {
                let secs = (*elapsed_us as f64 / 1e6).max(1e-9);
                if tty {
                    let _ = write!(err, "\r\x1b[2K");
                }
                let _ = writeln!(
                    err,
                    "campaign done: {injections} injections in {secs:.2}s ({:.0}/s)",
                    *injections as f64 / secs
                );
                *last_line.lock().unwrap_or_else(|e| e.into_inner()) = None;
            }
            _ => {}
        }
    });
}

/// `--profile-interp` / `--profile-sample-every N`: returns
/// `Some(sample_every)` when the interpreter sampling profiler should be
/// enabled (0 = the profiler's default interval).
fn parse_profile_flags(rest: &[String]) -> Result<Option<u64>, String> {
    let every = match flag_value(rest, "--profile-sample-every") {
        None => None,
        Some(v) => Some(v.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
            format!("bad --profile-sample-every `{v}` (want a positive step count)")
        })?),
    };
    let folded = flag_value(rest, "--profile-folded").is_some();
    if rest.iter().any(|a| a == "--profile-interp") || every.is_some() || folded {
        Ok(Some(every.unwrap_or(0)))
    } else {
        Ok(None)
    }
}

/// `--status-addr ADDR`: start the embedded HTTP status server and bridge
/// the trace event stream into its metrics registry and status board.
fn start_status_server(rest: &[String]) -> Result<Option<minpsid_metrics::StatusServer>, String> {
    let Some(addr) = flag_value(rest, "--status-addr") else {
        return Ok(None);
    };
    let registry = Arc::new(minpsid_metrics::Registry::new());
    registry
        .gauge(
            "minpsid_build_info",
            "Build metadata; the value is always 1.",
            &[("version", env!("CARGO_PKG_VERSION"))],
        )
        .set(1.0);
    let board = Arc::new(minpsid_metrics::StatusBoard::new());
    board.set_tool(concat!("minpsid ", env!("CARGO_PKG_VERSION")));
    // The event stream only carries campaign kinds; label series with the
    // workload being screened (first positional argument).
    let workload = rest
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .unwrap_or("-");
    trace::bridge::install(registry.clone(), board.clone(), workload);
    let server = minpsid_metrics::StatusServer::bind(&addr, registry, board)
        .map_err(|e| format!("cannot bind status server on `{addr}`: {e}"))?;
    diag!(
        "status server on http://{}/  (endpoints: /metrics, /status)",
        server.local_addr()
    );
    Ok(Some(server))
}

/// When the interpreter profiler ran, surface its findings: emit the
/// `interp_profile` trace event (lands in `--trace-out` logs for
/// `minpsid trace report`), write the flamegraph-compatible folded-stacks
/// file (`--profile-folded PATH`), and print a short stderr summary.
/// Stdout is untouched — reports stay byte-identical with profiling on.
fn finish_interp_profile(rest: &[String]) -> Result<(), String> {
    if !minpsid_interp::opprof::enabled() {
        return Ok(());
    }
    let rep = minpsid_interp::opprof::snapshot();
    trace::emit(trace::Event::InterpProfile {
        sample_every: rep.sample_every,
        total_samples: rep.total_samples,
        fused_samples: rep.fused_samples,
        fused_sites: rep.fused_sites,
        total_sites: rep.total_sites,
        encode_ns: rep.encode_ns,
        encode_ops: rep.encode_ops,
        restore_ns: rep.restore_ns,
        restore_ops: rep.restore_ops,
        samples: rep.samples.clone(),
    });
    if let Some(path) = flag_value(rest, "--profile-folded") {
        std::fs::write(&path, rep.folded())
            .map_err(|e| format!("writing folded stacks to {path}: {e}"))?;
        diag!("wrote folded stacks to {path}");
    }
    diag!(
        "interp profile: {} samples (1 per {} steps), {:.1}% on fused superinstructions",
        rep.total_samples,
        rep.sample_every,
        rep.fused_sample_rate() * 100.0
    );
    for (op, n) in rep.samples.iter().take(5) {
        diag!("  {op:<22} {n}");
    }
    Ok(())
}

fn usage() {
    eprintln!(
        "minpsid — MINPSID (SC'22) reproduction driver

usage:
  minpsid list
  minpsid compile <bench|file.mc>
  minpsid run <bench> [--args i:N f:X ...]
  minpsid fi <bench> [--injections N] [--seed S]
  minpsid analyze <bench> [--top N]      # rank instructions by SDC benefit
  minpsid cfg <bench> [--fn NAME]        # weighted CFG as Graphviz DOT
  minpsid propagate <bench> [--nth K] [--bit B]
  minpsid sid <bench> [--level 0.5] [--seed S]
  minpsid minpsid <bench> [--level 0.5] [--seed S] [--json]
  minpsid sections <bench> [--static]    # per-function fingerprints and
                                         # dynamic ranges (incremental FI)
  minpsid trace report <log.jsonl> [-o out/]   # analyze a trace log
  minpsid trace check <log.jsonl>              # validate a trace log
  minpsid store scrub <dir>              # verify every object; exit 3 if
                                         # corruption was found+quarantined
  minpsid store gc <dir>                 # drop unreferenced objects
  minpsid store ls <dir> [--kind K]      # list objects with back-refs,
                                         # filtered by artifact class,
                                         # plus per-kind byte totals

FI campaign options (fi/analyze/sid/minpsid):
  --injections N            whole-program campaign size (default 1000)
  --per-inst N              injections per static instruction (default 100)
  --quick                   small campaign preset for smoke tests
  --threads N               worker threads (default: all cores); reports
                            are byte-identical at any thread count
  --checkpoint-interval N   snapshot the golden run every N dynamic
                            instructions (default: auto, ~sqrt of steps)
  --no-checkpoints          disable checkpointing; replay every injection
                            from scratch
  --snapshot-mode MODE      checkpoint encoding: `delta` (dirty-range
                            diffs with periodic keyframes, the default)
                            or `full` (self-contained snapshots)
  --dispatch MODE           interpreter loop: `decoded` (pre-decoded
                            dispatch, the default) or `legacy` (the
                            tree-walking oracle); results are identical
  --injection-timeout-ms N  per-injection wall-clock budget alongside the
                            step limit (0 = off, the default); overruns
                            classify as engine errors, not hangs
  --chaos-panic-one-in N    test harness: panic inside every Nth injection
                            worker to exercise fault isolation
  --chaos-timeout-one-in N  test harness: synthetic timeout in every Nth
                            injection to exercise retry → quarantine

process-isolated fleet (fi):
  --workers N               run the campaign across N supervised worker
                            processes instead of threads; a worker
                            killed mid-shard (SIGKILL, abort, OOM,
                            hang) is restarted and its shard
                            reassigned, and the report and journal stay
                            byte-identical to a --threads run
  --fleet-lease-ms MS       heartbeat lease on a shard before the
                            holder is presumed hung and killed
                            (default 10000)
  --shards-per-worker N     plan granularity: shards = workers × N
                            (default 4)
  --poison-after K          kills of non-chaos workers a shard may
                            cause before it is quarantined as poisoned
                            (default 3)
  --chaos-kill-worker-ms MS test harness: SIGKILL a random busy worker
                            every MS milliseconds; the report must not
                            change
  --chaos-abort-unit I      test harness: worker aborts at plan index I
                            on the first attempt (transient fault)
  --chaos-poison-unit I     test harness: worker aborts at plan index I
                            on every attempt (poisoned shard)
  --chaos-hang-unit I       test harness: worker hangs at plan index I
                            on the first attempt (lease expiry)

resilient scheduling (fi/analyze/sid/minpsid):
  --deadline-secs S         global wall-clock budget; expired work is
                            truncated (low-benefit sites first) and the
                            report carries a completeness score
  --max-retries N           extra attempts for transient engine failures
                            (default 2; 0 disables retries)
  --quarantine-after N      consecutive exhausted injections before a
                            site is quarantined (default 2)
  --quarantine-cap N        hard cap on quarantined sites (default 64)
  --ci-half-width W         per-site early stop once the 95% Wilson
                            interval half-width is <= W (0 = off)

crash-safe journal (fi/minpsid):
  --journal DIR             journal campaign progress to DIR; SIGINT or
                            SIGTERM flushes and exits with a resume hint
  --resume DIR              resume a journaled run (same flags required)
  --max-inputs N            cap on searched inputs (minpsid; default 25)
  --golden-cache-cap N      LRU-evict golden runs beyond N cache entries

self-verifying artifact store (fi/minpsid):
  --store DIR               persist golden runs, checkpoints, and WAL
                            snapshots in a content-addressed store at
                            DIR (default <journal>/store when journaled;
                            artifacts are digest-verified on load —
                            corruption is quarantined and recomputed,
                            never served)
  --chaos-flip-artifact-one-in N
                            test harness: flip one bit in every Nth
                            published artifact between write and read;
                            reports must not change (corruption is
                            detected and healed by recompute)

incremental re-campaigns (fi/minpsid, needs --store or --journal):
  --incremental             memoize sealed per-section outcome tables in
                            the store and serve them on later runs, so a
                            re-campaign after an edit re-executes only
                            the touched functions (default when a store
                            is attached)
  --no-incremental          always re-execute every injection

live observability:
  --status-addr ADDR        serve /metrics (Prometheus text) and /status
                            (JSON) over HTTP while the run executes,
                            e.g. --status-addr 127.0.0.1:9090
  --profile-interp          interpreter sampling profiler: per-opcode
                            cycle attribution, fusion hit rates, and
                            snapshot encode/restore costs (reported via
                            stderr, the trace log, and trace report)
  --profile-sample-every N  profiler sample interval in dynamic steps
                            (default 8192; implies --profile-interp)
  --profile-folded PATH     write flamegraph-compatible folded stacks
                            (implies --profile-interp)

global options:
  --trace-out PATH          write a structured JSONL trace of the run
                            (analyze with `minpsid trace report`)
  --progress                live campaign meter on stderr (single-line
                            when stderr is a TTY, throttled plain lines
                            otherwise; silenced by --quiet)
  --quiet                   suppress stderr diagnostics"
    );
}

fn cmd_list() -> Result<(), String> {
    println!("{:<15} {:<10} description", "benchmark", "suite");
    for b in minpsid_workloads::suite() {
        println!("{:<15} {:<10} {}", b.name, b.suite, b.description);
    }
    Ok(())
}

fn load_module(name: &str) -> Result<Module, String> {
    if name.ends_with(".mc") {
        let src = std::fs::read_to_string(name).map_err(|e| format!("reading {name}: {e}"))?;
        return minic::compile(&src, name).map_err(|e| format!("compiling {name}: {e}"));
    }
    if name.ends_with(".ir") {
        let src = std::fs::read_to_string(name).map_err(|e| format!("reading {name}: {e}"))?;
        let module =
            minpsid_ir::parser::parse_module(&src).map_err(|e| format!("parsing {name}: {e}"))?;
        if let Err(errs) = minpsid_ir::verify_module(&module) {
            return Err(format!("{name} failed verification: {}", errs[0]));
        }
        return Ok(module);
    }
    minpsid_workloads::by_name(name)
        .map(|b| b.compile())
        .ok_or_else(|| format!("unknown benchmark `{name}` (see `minpsid list`)"))
}

fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1).cloned())
}

fn parse_level(rest: &[String]) -> Result<f64, String> {
    match flag_value(rest, "--level") {
        None => Ok(0.5),
        Some(v) => v
            .parse::<f64>()
            .map_err(|_| format!("bad --level `{v}`"))
            .and_then(|l| {
                if l <= 0.0 {
                    Err(format!(
                        "--level {v} gives a zero protection budget \
                         (no instruction can be selected); use a level in (0, 1]"
                    ))
                } else if l > 1.0 {
                    Err("--level must be in (0, 1]".into())
                } else {
                    Ok(l)
                }
            }),
    }
}

/// Parse a flag whose value must be a positive integer (`0` is always a
/// configuration mistake for these: it silently yields an empty campaign
/// or an empty search).
fn parse_positive(rest: &[String], flag: &str, what: &str) -> Result<Option<u64>, String> {
    match flag_value(rest, flag) {
        None => Ok(None),
        Some(v) => v
            .parse::<u64>()
            .ok()
            .filter(|&n| n > 0)
            .map(Some)
            .ok_or_else(|| format!("bad {flag} `{v}` ({what})")),
    }
}

/// Campaign config from the shared FI flag vocabulary — a thin delegate
/// to [`CampaignConfigBuilder::from_flags`], which owns every validation
/// rule (the bench binaries parse the same flags through the same code).
fn parse_campaign(rest: &[String]) -> Result<CampaignConfig, String> {
    CampaignConfigBuilder::from_flags(rest).map(CampaignConfigBuilder::build)
}

/// `--deadline-secs`: the global wall-clock budget. Not part of the
/// campaign config (and so not of the journal fingerprint) — it bounds
/// how much work runs, never what that work computes.
fn parse_deadline(rest: &[String]) -> Result<Option<f64>, String> {
    CampaignConfigBuilder::from_flags(rest).map(|b| b.deadline())
}

fn first_arg<'a>(rest: &'a [String], what: &str) -> Result<&'a str, String> {
    rest.first()
        .map(|s| s.as_str())
        .filter(|s| !s.starts_with("--"))
        .ok_or_else(|| format!("missing {what}"))
}

fn cmd_compile(rest: &[String]) -> Result<(), String> {
    let name = first_arg(rest, "benchmark name or .mc file")?;
    let mut module = load_module(name)?;
    if rest.iter().any(|a| a == "--opt") {
        let removed = minpsid_ir::opt::optimize(&mut module);
        diag!("; optimizer removed {removed} instructions");
    }
    print!("{}", print_module(&module));
    println!(
        "; {} functions, {} static instructions",
        module.funcs.len(),
        module.num_insts()
    );
    Ok(())
}

/// Parse `--args i:5 f:2.5 ...` into a scalar-argument input; without
/// `--args`, benchmarks use their reference input.
fn parse_input(name: &str, rest: &[String]) -> Result<ProgInput, String> {
    if let Some(pos) = rest.iter().position(|a| a == "--args") {
        let mut scalars = Vec::new();
        for a in &rest[pos + 1..] {
            if a.starts_with("--") {
                break;
            }
            let (kind, v) = a
                .split_once(':')
                .ok_or_else(|| format!("bad arg `{a}` (want i:N or f:X)"))?;
            match kind {
                "i" => scalars.push(Scalar::I(v.parse().map_err(|_| format!("bad int `{v}`"))?)),
                "f" => scalars.push(Scalar::F(
                    v.parse().map_err(|_| format!("bad float `{v}`"))?,
                )),
                _ => return Err(format!("bad arg kind `{kind}`")),
            }
        }
        return Ok(ProgInput::scalars(scalars));
    }
    minpsid_workloads::by_name(name)
        .map(|b| b.model.materialize(&b.model.reference()))
        .ok_or_else(|| {
            format!("`{name}` is not a registered benchmark; pass --args for custom programs")
        })
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let name = first_arg(rest, "benchmark name")?;
    let module = load_module(name)?;
    let input = parse_input(name, rest)?;
    let r = Interp::new(&module, ExecConfig::default()).run(&input);
    for item in &r.output.items {
        println!("{item}");
    }
    diag!(
        "terminated: {:?}, {} dynamic instructions",
        r.termination,
        r.steps
    );
    Ok(())
}

fn cmd_fi(rest: &[String]) -> Result<(), String> {
    let name = first_arg(rest, "benchmark name")?;
    if let Some(w) = parse_positive(rest, "--workers", "want a positive worker-process count")? {
        if parse_deadline(rest)?.is_some() {
            return Err(
                "--workers does not combine with --deadline-secs; deadline-bounded \
                 campaigns use the in-process --threads path"
                    .into(),
            );
        }
        return cmd_fi_fleet(name, rest, w as usize);
    }
    let module = load_module(name)?;
    let input = parse_input(name, rest)?;
    let campaign = parse_campaign(rest)?;
    let sched = Scheduler::new(
        campaign.sched.clone(),
        Deadline::from_secs(parse_deadline(rest)?),
    );
    let store = open_run_store(rest)?;
    let journal = open_fi_journal(rest, &module, &campaign, store.clone())?;
    let golden =
        golden_run(&module, &input, &campaign).map_err(|t| format!("golden run failed: {t:?}"))?;
    let input_fp = input_fingerprint(&input);
    let memo = match (parse_incremental(rest)?, &store) {
        (true, Some(s)) => Some(TableMemo::new(s.clone(), input_fp)),
        _ => None,
    };
    let mut engine =
        CampaignEngine::new(&module, &input, &golden, &campaign).with_scheduler(&sched);
    if let Some(j) = &journal {
        engine = engine.with_journal(j, input_fp);
    }
    if let Some(m) = &memo {
        engine = engine.with_tables(m);
    }
    let c = match engine.run_program() {
        Ok(c) => c,
        Err(_) => {
            let j = journal
                .as_ref()
                .expect("interrupts only surface under a journal");
            return Err(fi_resume_hint(rest, j));
        }
    };
    print_fi_report(&c, &sched.snapshot())?;
    if let Some(j) = &journal {
        let (served, appended) = j.usage();
        diag!(
            "journal: {served} injections served, {appended} records appended ({})",
            j.dir().display()
        );
    }
    if let Some(m) = &memo {
        table_stats_diag(&m.stats());
    }
    Ok(())
}

/// `--incremental` / `--no-incremental`: memoize sealed per-section
/// outcome tables in the artifact store and serve them on later runs.
/// Default *on* whenever a store is attached (the flag is a no-op
/// without one), so `--no-incremental` is the escape hatch.
fn parse_incremental(rest: &[String]) -> Result<bool, String> {
    let on = rest.iter().any(|a| a == "--incremental");
    let off = rest.iter().any(|a| a == "--no-incremental");
    if on && off {
        return Err("--incremental and --no-incremental are mutually exclusive".into());
    }
    Ok(!off)
}

/// One stderr line of section-table usage, the incremental analogue of
/// the journal served/appended line.
fn table_stats_diag(ts: &TableStatsSnapshot) {
    diag!(
        "sections: {} hit / {} missed / {} recomputed; {} injections served \
         from tables, {} executed, {} tables sealed",
        ts.sections_hit,
        ts.sections_missed,
        ts.sections_recomputed,
        ts.injections_served,
        ts.injections_executed,
        ts.tables_sealed,
    );
}

/// `minpsid sections <bench>` — the per-function section table that
/// drives compositional FI: content fingerprint (stable under edits to
/// *other* functions), dense static-instruction range, injectable sites,
/// direct callees, and — unless `--static` — each section's
/// dynamic-instruction range under the benchmark input (golden run).
fn cmd_sections(rest: &[String]) -> Result<(), String> {
    let name = first_arg(rest, "benchmark name")?;
    let module = load_module(name)?;
    let map = module_section_map(&module);
    let calls = minpsid_ir::fingerprint::callees(&module);
    let golden = if rest.iter().any(|a| a == "--static") {
        None
    } else {
        let input = parse_input(name, rest)?;
        let campaign = parse_campaign(rest)?;
        Some(
            golden_run(&module, &input, &campaign)
                .map_err(|t| format!("golden run failed: {t:?}"))?,
        )
    };
    println!(
        "{:<20} {:>16} {:>13} {:>10} {:>21}  callees",
        "function", "fingerprint", "dense range", "injectable", "dynamic steps"
    );
    for ((fid, f), &(fp, base, len)) in module.iter_funcs().zip(&map) {
        let injectable = f.insts.iter().filter(|i| i.injectable()).count();
        let dynamic = match &golden {
            None => "-".to_string(),
            Some(g) => match g.profile.section_range(fid) {
                Some((first, last)) => format!("[{first}, {last}]"),
                None => "(never runs)".to_string(),
            },
        };
        let callees: Vec<&str> = calls[fid.index()]
            .iter()
            .map(|c| module.func(*c).name.as_str())
            .collect();
        println!(
            "{:<20} {fp:016x} {:>13} {injectable:>10} {dynamic:>21}  {}",
            f.name,
            format!("[{base}, {})", base + len),
            if callees.is_empty() {
                "-".to_string()
            } else {
                callees.join(" ")
            }
        );
    }
    Ok(())
}

/// The self-verifying artifact store backing a run: `--store DIR`, or
/// `<journal>/store` when the run is journaled. `None` when neither is
/// given — campaigns then recompute everything in memory as before.
fn open_run_store(rest: &[String]) -> Result<Option<Arc<ArtifactStore>>, String> {
    let dir = match flag_value(rest, "--store") {
        Some(d) => Some(std::path::PathBuf::from(d)),
        None => flag_value(rest, "--journal")
            .or_else(|| flag_value(rest, "--resume"))
            .map(|d| std::path::PathBuf::from(d).join("store")),
    };
    match dir {
        None => Ok(None),
        Some(d) => ArtifactStore::open(&d)
            .map(|s| Some(Arc::new(s)))
            .map_err(|e| format!("opening artifact store {}: {e}", d.display())),
    }
}

/// `minpsid store <scrub|gc|ls> <dir>` — offline maintenance of an
/// artifact store. `scrub` exits with [`SCRUB_CORRUPTION_EXIT`] when it
/// quarantined corrupt objects, so CI can distinguish "store verified
/// clean" from "corruption found (and neutralized)".
fn cmd_store(rest: &[String]) -> Result<(), String> {
    let sub = rest
        .first()
        .map(|s| s.as_str())
        .ok_or("missing store subcommand (scrub|gc|ls)")?;
    let dir = flag_value(rest, "--store")
        .or_else(|| rest.get(1).filter(|s| !s.starts_with("--")).cloned())
        .ok_or("missing store directory (pass a path or --store DIR)")?;
    let store = ArtifactStore::open(std::path::Path::new(&dir))
        .map_err(|e| format!("opening artifact store {dir}: {e}"))?;
    match sub {
        "scrub" => {
            let r = store.scrub().map_err(|e| format!("scrub: {e}"))?;
            println!("scrubbed {} objects ({} bytes)", r.objects, r.bytes);
            for (hex, kind) in &r.quarantined {
                println!("  quarantined: {kind} {hex}");
            }
            for name in &r.dangling_refs {
                println!("  dangling ref: {name} (target recomputes on next run)");
            }
            if r.found_corruption() {
                EXIT_OVERRIDE.store(SCRUB_CORRUPTION_EXIT, Ordering::Relaxed);
                diag!(
                    "scrub: {} corrupt objects quarantined; \
                     affected artifacts will be recomputed",
                    r.quarantined.len()
                );
            } else {
                println!("store clean");
            }
            Ok(())
        }
        "gc" => {
            let r = store.gc().map_err(|e| format!("gc: {e}"))?;
            println!(
                "gc: kept {}, removed {} ({} bytes freed), swept {} stale tmp files",
                r.kept, r.removed, r.bytes_freed, r.tmp_swept
            );
            Ok(())
        }
        "ls" => {
            // `--kind K` keeps only objects referenced under artifact
            // class K (`table`, `wal`, `golden`, ...); the per-kind
            // totals always cover the whole store.
            let kind_filter = flag_value(rest, "--kind");
            let mut totals: std::collections::BTreeMap<String, (u64, u64)> = Default::default();
            for e in store.ls().map_err(|e| format!("ls: {e}"))? {
                let mut kinds: Vec<&str> = e
                    .refs
                    .iter()
                    .map(|r| r.split_once('/').map_or(r.as_str(), |(k, _)| k))
                    .collect();
                kinds.sort_unstable();
                kinds.dedup();
                if kinds.is_empty() {
                    kinds.push("(unreferenced)");
                }
                for k in &kinds {
                    let t = totals.entry((*k).to_string()).or_default();
                    t.0 += 1;
                    t.1 += e.bytes;
                }
                if let Some(f) = &kind_filter {
                    if !kinds.contains(&f.as_str()) {
                        continue;
                    }
                }
                println!(
                    "{} {:>10} {}",
                    e.digest,
                    e.bytes,
                    if e.refs.is_empty() {
                        "(unreferenced)".to_string()
                    } else {
                        e.refs.join(" ")
                    }
                );
            }
            for (k, (n, bytes)) in &totals {
                if kind_filter.as_ref().is_none_or(|f| f == k) {
                    println!("{k}: {n} objects, {bytes} bytes");
                }
            }
            Ok(())
        }
        other => Err(format!("unknown store subcommand `{other}` (scrub|gc|ls)")),
    }
}

/// Journal key for `fi` campaigns. [`config_fingerprint`] hashes only
/// the golden-run-relevant fields; a whole-program campaign's recorded
/// outcomes additionally depend on the seed and the plan size, so both
/// are mixed in — resuming with a different seed must open a different
/// key, not silently serve another campaign's outcomes.
fn fi_journal_key(campaign: &CampaignConfig) -> u64 {
    config_fingerprint(campaign)
        ^ campaign.seed.rotate_left(17)
        ^ (campaign.injections as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// `fi --journal DIR` / `fi --resume DIR`: open (or refuse to resume a
/// missing) campaign journal and install the interrupt handlers that
/// make ^C / SIGTERM flush instead of corrupt.
fn open_fi_journal(
    rest: &[String],
    module: &Module,
    campaign: &CampaignConfig,
    store: Option<Arc<ArtifactStore>>,
) -> Result<Option<CampaignJournal>, String> {
    let resume = flag_value(rest, "--resume");
    let Some(dir) = flag_value(rest, "--journal").or_else(|| resume.clone()) else {
        return Ok(None);
    };
    let dir = std::path::PathBuf::from(dir);
    if resume.is_some() && !dir.join("campaign.wal").is_file() {
        return Err(format!(
            "--resume: no journal found at {} (start one with --journal)",
            dir.display()
        ));
    }
    // Opening through the section map lets a resume after a program edit
    // keep the per-instruction facts of untouched functions instead of
    // refusing outright.
    let j = CampaignJournal::open_with_sections(
        &dir,
        module_fingerprint(module),
        fi_journal_key(campaign),
        &module_section_map(module),
        store,
    )
    .map_err(|e| format!("opening journal: {e}"))?;
    let (recovered, truncated) = j.recovery_stats();
    if recovered > 0 || truncated > 0 {
        diag!("journal: recovered {recovered} records ({truncated} torn-tail bytes truncated)");
    }
    install_interrupt_handlers();
    Ok(Some(j))
}

fn fi_resume_hint(rest: &[String], j: &CampaignJournal) -> String {
    let dir = j.dir().display().to_string();
    let mut args: Vec<String> = Vec::new();
    let mut skip = false;
    for a in rest {
        if skip {
            skip = false;
            continue;
        }
        if a == "--journal" || a == "--resume" {
            skip = true;
            continue;
        }
        args.push(a.clone());
    }
    format!(
        "interrupted; progress saved — resume with: minpsid fi {} --resume {dir}",
        args.join(" ")
    )
}

/// The `fi` report, shared verbatim by the `--threads` and `--workers`
/// paths so process isolation can be byte-identity-tested against
/// in-process execution.
fn print_fi_report(c: &ProgramCampaign, snap: &SchedSnapshot) -> Result<(), String> {
    println!("injections: {}", c.counts.total());
    println!("  benign:   {}", c.counts.benign);
    println!("  sdc:      {}", c.counts.sdc);
    println!("  crash:    {}", c.counts.crash);
    println!("  hang:     {}", c.counts.hang);
    println!("  detected: {}", c.counts.detected);
    if c.counts.engine_error > 0 {
        println!(
            "  engine-err: {} (excluded from rates)",
            c.counts.engine_error
        );
    }
    if c.recovered > 0 {
        println!(
            "  recovered: {} (transient failures healed by retry)",
            c.recovered
        );
    }
    if c.truncated > 0 {
        println!(
            "  truncated: {} of {} planned (deadline expired)",
            c.truncated, c.planned
        );
    }
    if snap.quarantined_injections > 0 {
        println!(
            "  quarantined: {} of {} planned (poisoned shards)",
            snap.quarantined_injections, c.planned
        );
    }
    println!(
        "SDC probability: {:.2}% (95% CI {:.2}%..{:.2}%)",
        c.sdc_prob() * 100.0,
        c.sdc_ci.lo * 100.0,
        c.sdc_ci.hi * 100.0
    );
    println!("completeness: {:.4}", snap.completeness());
    if snap.accounted() != snap.planned {
        return Err(format!(
            "scheduler accounting violated: {} of {} injections unaccounted",
            snap.planned - snap.accounted(),
            snap.planned
        ));
    }
    Ok(())
}

/// Flags the supervisor consumes (or that would be wrong to duplicate
/// in a worker: its own journal, status server, trace file) — stripped
/// from the argv re-exec'd into worker processes. Listed as
/// (flag, takes_value) pairs.
const FLEET_SUPERVISOR_FLAGS: &[(&str, bool)] = &[
    ("--workers", true),
    ("--threads", true),
    ("--journal", true),
    ("--resume", true),
    ("--store", true),
    ("--trace-out", true),
    ("--status-addr", true),
    ("--fleet-lease-ms", true),
    ("--shards-per-worker", true),
    ("--poison-after", true),
    ("--chaos-kill-worker-ms", true),
    ("--progress", false),
    ("--quiet", false),
    // table memoization is supervisor-side (workers have no store)
    ("--incremental", false),
    ("--no-incremental", false),
];

/// The argv a fleet worker is re-exec'd with: the benchmark name plus
/// every campaign-relevant flag, minus supervisor-side concerns.
fn worker_args(name: &str, rest: &[String]) -> Vec<String> {
    let mut out = vec![name.to_string()];
    let mut i = 0;
    let mut seen_name = false;
    while i < rest.len() {
        let a = &rest[i];
        if !seen_name && a == name && !a.starts_with("--") {
            seen_name = true; // the positional we already re-emitted
            i += 1;
            continue;
        }
        if let Some((_, takes_value)) = FLEET_SUPERVISOR_FLAGS.iter().find(|(f, _)| f == a) {
            i += 1 + usize::from(*takes_value);
            continue;
        }
        out.push(a.clone());
        i += 1;
    }
    out
}

/// `fi --workers N`: the process-isolated campaign fleet.
///
/// The supervisor runs its own golden run (for the plan and a
/// determinism cross-check), re-execs this binary as N `worker`
/// processes, leases shards to them, and merges their spool segments in
/// plan order. The printed report — and, under `--journal`, the WAL —
/// is byte-identical to the in-process `--threads` path, including
/// under `--chaos-kill-worker-ms` random kills; shards that keep
/// killing workers are quarantined as poisoned instead of sinking the
/// campaign.
fn cmd_fi_fleet(name: &str, rest: &[String], workers: usize) -> Result<(), String> {
    let module = load_module(name)?;
    let input = parse_input(name, rest)?;
    let campaign = parse_campaign(rest)?;
    let sched = Scheduler::new(campaign.sched.clone(), Deadline::from_secs(None));
    let injections = campaign.injections as u64;
    let input_fp = input_fingerprint(&input);

    let journal = open_fi_journal(rest, &module, &campaign, open_run_store(rest)?)?;
    // Fleet runs are always interruptible: SIGTERM/SIGINT stop leasing,
    // salvage finished units, and (when journaled) leave a resumable WAL.
    install_interrupt_handlers();
    interrupt::clear();

    let golden =
        golden_run(&module, &input, &campaign).map_err(|t| format!("golden run failed: {t:?}"))?;
    let population = golden.profile.injectable_execs;
    if population == 0 || injections == 0 {
        let c = ProgramCampaign {
            counts: OutcomeCounts::default(),
            sdc_ci: binomial_ci(0, 0, campaign.sched.ci_z),
            planned: 0,
            truncated: 0,
            recovered: 0,
        };
        return print_fi_report(&c, &sched.snapshot());
    }

    sched.add_planned(injections);

    // Probe the journal in plan order: served outcomes and honoured
    // quarantines never reach a worker.
    let mut served: Vec<Option<Outcome>> = vec![None; injections as usize];
    let mut prequarantined = vec![false; injections as usize];
    let mut units = Vec::with_capacity(injections as usize);
    for i in 0..injections {
        if let Some(j) = &journal {
            if let Some(o) = j.program_outcome(input_fp, i).and_then(Outcome::from_u8) {
                served[i as usize] = Some(o);
                sched.note_completed(1);
                continue;
            }
            if j.quarantined_site(input_fp, i).is_some() {
                prequarantined[i as usize] = true;
                sched.note_quarantine_skipped(1);
                continue;
            }
        }
        units.push(i);
    }

    let mut fcfg = minpsid_fleet::FleetConfig::new(workers);
    if let Some(ms) = parse_positive(rest, "--fleet-lease-ms", "want milliseconds")? {
        fcfg.lease_ms = ms;
    }
    if let Some(n) = parse_positive(rest, "--shards-per-worker", "want a positive shard count")? {
        fcfg.shards_per_worker = n as usize;
    }
    if let Some(n) = parse_positive(rest, "--poison-after", "want a positive kill count")? {
        fcfg.poison_after = n as u32;
    }
    if let Some(ms) = parse_positive(rest, "--chaos-kill-worker-ms", "want milliseconds")? {
        fcfg.chaos_kill_worker_ms = Some(ms);
    }

    let spool = match &journal {
        Some(j) => j.dir().join("spool"),
        None => std::env::temp_dir().join(format!("minpsid-fleet-{}", std::process::id())),
    };
    let _ = std::fs::remove_dir_all(&spool);

    let exe = std::env::current_exe().map_err(|e| format!("locating own binary: {e}"))?;
    let wargs = worker_args(name, rest);
    diag!(
        "fleet: {workers} worker processes over {} pending of {injections} planned injections",
        units.len()
    );
    let fo = minpsid_fleet::run_fleet(&fcfg, &units, population, &spool, |k| {
        std::process::Command::new(&exe)
            .arg("worker")
            .args(&wargs)
            .args(["--worker-id", &k.to_string(), "--spool-dir"])
            .arg(&spool)
            .arg("--quiet")
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()
    })
    .map_err(|e| format!("fleet supervisor: {e}"))?;

    // Merge in plan order: the journal (and the report) end up
    // byte-identical to a single-process run over the same plan.
    let mut counts = OutcomeCounts::default();
    let mut recovered = 0u64;
    let mut missing = 0u64;
    for i in 0..injections {
        let idx = i as usize;
        if let Some(o) = served[idx] {
            counts.record(o);
            continue;
        }
        if prequarantined[idx] {
            continue;
        }
        if let Some((byte, rec)) = fo.ledger.get(i) {
            let o = Outcome::from_u8(byte)
                .ok_or_else(|| format!("corrupt spool outcome byte {byte} for unit {i}"))?;
            if let Some(j) = &journal {
                j.record_program(input_fp, i, byte);
            }
            sched.note_completed(1);
            counts.record(o);
            recovered += u64::from(rec);
        } else if fo.poisoned.contains(&i) {
            if let Some(j) = &journal {
                j.record_quarantine(input_fp, i, FailureKind::PoisonedShard.to_u8());
            }
            sched.note_quarantine_skipped(1);
        } else {
            missing += 1;
        }
    }
    if let Some(j) = &journal {
        j.sync().map_err(|e| format!("syncing journal: {e}"))?;
    }
    let _ = std::fs::remove_dir_all(&spool);

    if fo.stats.deaths > 0 || fo.stats.poisoned_shards > 0 || fo.stats.corrupt_segments > 0 {
        diag!(
            "fleet: {} spawns, {} deaths ({} chaos kills, {} lease expiries), \
             {} shards reassigned, {} poisoned, {} corrupt segments re-executed",
            fo.stats.spawns,
            fo.stats.deaths,
            fo.stats.chaos_kills,
            fo.stats.lease_expiries,
            fo.stats.reassigned,
            fo.stats.poisoned_shards,
            fo.stats.corrupt_segments
        );
    }
    if fo.interrupted || missing > 0 {
        return Err(match &journal {
            Some(j) => fi_resume_hint(rest, j),
            None => format!(
                "interrupted with {missing} injections unfinished \
                 (add --journal DIR to make fleet runs resumable)"
            ),
        });
    }

    let c = ProgramCampaign {
        counts,
        sdc_ci: binomial_ci(counts.sdc, counts.valid_total(), campaign.sched.ci_z),
        planned: injections,
        truncated: 0,
        recovered,
    };
    print_fi_report(&c, &sched.snapshot())?;
    if let Some(j) = &journal {
        let (served, appended) = j.usage();
        diag!(
            "journal: {served} injections served, {appended} records appended ({})",
            j.dir().display()
        );
    }
    Ok(())
}

/// Hidden subcommand: one fleet worker process. Protocol on
/// stdin/stdout, results spooled to `--spool-dir`; see `minpsid-fleet`.
/// The `--chaos-*-unit` knobs let tests make this process abort or hang
/// at a specific plan index — on the first attempt only (transient) or
/// on every attempt (a poisoned shard).
fn cmd_worker(rest: &[String]) -> Result<(), String> {
    let name = first_arg(rest, "benchmark name")?;
    let spool =
        flag_value(rest, "--spool-dir").ok_or("worker: missing --spool-dir (internal command)")?;
    let chaos = |flag: &str| -> Result<Option<u64>, String> {
        flag_value(rest, flag)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("bad {flag} `{v}` (want a plan index)"))
            })
            .transpose()
    };
    let abort_unit = chaos("--chaos-abort-unit")?;
    let poison_unit = chaos("--chaos-poison-unit")?;
    let hang_unit = chaos("--chaos-hang-unit")?;

    let module = load_module(name)?;
    let input = parse_input(name, rest)?;
    let campaign = parse_campaign(rest)?;
    let sched = Scheduler::new(campaign.sched.clone(), Deadline::from_secs(None));
    let golden = golden_run(&module, &input, &campaign)
        .map_err(|t| format!("worker golden run failed: {t:?}"))?;
    let engine = CampaignEngine::new(&module, &input, &golden, &campaign).with_scheduler(&sched);
    let mut ex = engine.program_executor();
    let population = ex.population();
    minpsid_fleet::run_worker(
        std::path::Path::new(&spool),
        population,
        move |unit, attempt| {
            if poison_unit == Some(unit) {
                std::process::abort(); // poisoned: dies on every attempt
            }
            if abort_unit == Some(unit) && attempt == 0 {
                std::process::abort(); // transient: recovers on reassignment
            }
            if hang_unit == Some(unit) && attempt == 0 {
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            let (o, rec) = ex.run_unit(unit as usize);
            (o.to_u8(), rec)
        },
    )
    .map_err(|e| format!("worker: {e}"))
}

/// Rank instructions by SDC benefit under the reference input — the
/// §II-C profile SID's knapsack consumes, as a human-readable report.
fn cmd_analyze(rest: &[String]) -> Result<(), String> {
    use minpsid_sid::CostBenefit;
    let name = first_arg(rest, "benchmark name")?;
    let module = load_module(name)?;
    let input = parse_input(name, rest)?;
    let top: usize = match flag_value(rest, "--top") {
        None => 15,
        Some(v) => v.parse().map_err(|_| format!("bad --top `{v}`"))?,
    };
    let campaign = parse_campaign(rest)?;
    let sched = Scheduler::new(
        campaign.sched.clone(),
        Deadline::from_secs(parse_deadline(rest)?),
    );
    let golden =
        golden_run(&module, &input, &campaign).map_err(|t| format!("golden run failed: {t:?}"))?;
    let per_inst = CampaignEngine::new(&module, &input, &golden, &campaign)
        .with_scheduler(&sched)
        .run_per_instruction()
        .unwrap_or_else(|_| unreachable!("interrupts are only observed under a journal"));
    let cb = CostBenefit::build(&module, &golden, &per_inst);

    let numbering = module.numbering();
    let mut ranked: Vec<usize> = (0..cb.len()).filter(|&i| cb.benefit[i] > 0.0).collect();
    ranked.sort_by(|&a, &b| cb.benefit[b].partial_cmp(&cb.benefit[a]).unwrap());
    println!(
        "{} static instructions, {} carry measurable SDC benefit; top {}:",
        cb.len(),
        ranked.len(),
        top.min(ranked.len())
    );
    println!(
        "{:>6} {:>9} {:>9} {:>15} {:>11} {:>13} | instruction",
        "rank", "benefit", "sdc-prob", "95%-ci", "dyn-count", "sampling"
    );
    for (rank, &dense) in ranked.iter().take(top).enumerate() {
        let gid = numbering.id_of(dense);
        let func = module.func(gid.func);
        let ci = &per_inst.ci[dense];
        println!(
            "{:>6} {:>9.5} {:>8.1}% {:>6.1}%..{:>5.1}% {:>11} {:>13} | {}::{}",
            rank + 1,
            cb.benefit[dense],
            cb.sdc_prob[dense] * 100.0,
            ci.lo * 100.0,
            ci.hi * 100.0,
            cb.dyn_counts[dense],
            per_inst.status[dense].as_str(),
            func.name,
            minpsid_ir::printer::print_inst(func, gid.inst)
        );
    }
    let quarantined = per_inst.status.iter().filter(|s| !s.trusted()).count();
    let early = per_inst
        .status
        .iter()
        .filter(|s| matches!(s, minpsid_faultsim::SiteStatus::EarlyStopped))
        .count();
    let snap = sched.snapshot();
    println!("quarantined sites: {quarantined}");
    if early > 0 {
        println!("early-stopped sites: {early}");
    }
    println!("completeness: {:.4}", snap.completeness());
    if snap.accounted() != snap.planned {
        return Err(format!(
            "scheduler accounting violated: {} of {} injections unaccounted",
            snap.planned - snap.accounted(),
            snap.planned
        ));
    }
    Ok(())
}

fn cmd_cfg(rest: &[String]) -> Result<(), String> {
    let name = first_arg(rest, "benchmark name")?;
    let module = load_module(name)?;
    let input = parse_input(name, rest)?;
    let exec = ExecConfig {
        profile: true,
        ..ExecConfig::default()
    };
    let r = Interp::new(&module, exec).run(&input);
    if !r.exited() {
        return Err(format!("run failed: {:?}", r.termination));
    }
    let profile = r.profile.expect("profiling enabled");
    let fid = match flag_value(rest, "--fn") {
        None => module.entry,
        Some(fname) => module
            .func_by_name(&fname)
            .ok_or_else(|| format!("no function `{fname}`"))?,
    };
    print!("{}", minpsid::weighted_cfg_dot(&module, &profile, fid));
    Ok(())
}

fn cmd_propagate(rest: &[String]) -> Result<(), String> {
    use minpsid_faultsim::{render_report, trace_fault};
    use minpsid_interp::{FaultSpec, FaultTarget};
    let name = first_arg(rest, "benchmark name")?;
    let module = load_module(name)?;
    let input = parse_input(name, rest)?;
    let nth: u64 = match flag_value(rest, "--nth") {
        None => 100,
        Some(v) => v.parse().map_err(|_| format!("bad --nth `{v}`"))?,
    };
    let bit: u32 = match flag_value(rest, "--bit") {
        None => 33,
        Some(v) => v.parse().map_err(|_| format!("bad --bit `{v}`"))?,
    };
    let golden = Interp::new(&module, ExecConfig::default()).run(&input);
    if !golden.exited() {
        return Err(format!("golden run failed: {:?}", golden.termination));
    }
    let fault = FaultSpec {
        target: FaultTarget::NthDynamic(nth),
        bit,
    };
    let report = trace_fault(&module, &input, fault, &golden.output, golden.steps * 10);
    print!("{}", render_report(&module, &report));
    Ok(())
}

fn cmd_sid(rest: &[String]) -> Result<(), String> {
    let name = first_arg(rest, "benchmark name")?;
    let b =
        minpsid_workloads::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let module = b.compile();
    let ref_input = b.model.materialize(&b.model.reference());
    let cfg = SidConfig {
        protection_level: parse_level(rest)?,
        campaign: parse_campaign(rest)?,
        use_dp: false,
    };
    let r = run_sid(&module, &ref_input, &cfg).map_err(|t| format!("SID failed: {t:?}"))?;
    let selected = r.selection.iter().filter(|&&s| s).count();
    println!(
        "benchmark: {} ({} static instructions)",
        b.name,
        module.num_insts()
    );
    println!("protection level: {:.0}%", cfg.protection_level * 100.0);
    println!("selected instructions: {selected}");
    println!("duplicates inserted: {}", r.meta.num_dups);
    println!("checks inserted: {}", r.meta.num_checks);
    println!("expected SDC coverage: {:.2}%", r.expected_coverage * 100.0);
    Ok(())
}

/// Route SIGINT *and* SIGTERM through the cooperative interrupt flag so
/// a journaled campaign (or a fleet supervisor) flushes its WAL and
/// exits with a resume hint instead of dying mid-write. Process
/// managers and CI cancelers send SIGTERM, interactive ^C sends SIGINT;
/// both deserve the same graceful path. Only an atomic store happens in
/// the handler.
#[cfg(unix)]
fn install_interrupt_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_sig: i32) {
        interrupt::request();
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_interrupt_handlers() {}

fn cmd_minpsid(rest: &[String]) -> Result<(), String> {
    let name = first_arg(rest, "benchmark name")?;
    let b =
        minpsid_workloads::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let module = b.compile();
    let quick = rest.iter().any(|a| a == "--quick");
    let mut cfg = MinpsidConfig {
        protection_level: parse_level(rest)?,
        campaign: parse_campaign(rest)?,
        deadline_secs: parse_deadline(rest)?,
        incremental: parse_incremental(rest)?,
        ..MinpsidConfig::default()
    };
    if quick {
        cfg.ga.population = 4;
        cfg.ga.max_generations = 3;
        cfg.max_inputs = 4;
    }
    if let Some(n) = parse_positive(
        rest,
        "--max-inputs",
        "a zero cap means an empty input search; want a positive count",
    )? {
        cfg.max_inputs = n as usize;
    }
    // One store instance backs both tiers of persistence: the golden
    // cache's cross-invocation artifacts and the journal's compacted
    // WAL snapshots.
    let store = open_run_store(rest)?;
    let cap = parse_positive(rest, "--golden-cache-cap", "want a positive entry count")?
        .map(|n| n as usize)
        .unwrap_or(0);
    let cache = match &store {
        Some(s) => GoldenCache::with_store(cap, s.clone()),
        None => GoldenCache::with_capacity(cap),
    };

    let resume = flag_value(rest, "--resume");
    let journal_dir = flag_value(rest, "--journal").or_else(|| resume.clone());
    let mut journal = None;
    if let Some(dir) = &journal_dir {
        let dir = std::path::PathBuf::from(dir);
        if resume.is_some() && !dir.join("campaign.wal").is_file() {
            return Err(format!(
                "--resume: no journal found at {} (start one with --journal)",
                dir.display()
            ));
        }
        let j = CampaignJournal::open_with_sections(
            &dir,
            module_fingerprint(&module),
            minpsid_config_fingerprint(&cfg),
            &module_section_map(&module),
            store.clone(),
        )
        .map_err(|e| format!("opening journal: {e}"))?;
        let (recovered, truncated) = j.recovery_stats();
        if recovered > 0 || truncated > 0 {
            diag!(
                "journal: recovered {recovered} records \
                 ({truncated} torn-tail bytes truncated)"
            );
        }
        install_interrupt_handlers();
        journal = Some(j);
    }

    let r = match &journal {
        Some(j) => match run_minpsid_journaled(&module, b.model.as_ref(), &cfg, &cache, j) {
            Ok(r) => r,
            Err(PipelineError::Interrupted) => {
                let mut resume_args: Vec<String> = rest
                    .iter()
                    .filter(|a| *a != "--journal" && *a != "--resume")
                    .cloned()
                    .collect();
                resume_args.retain(|a| Some(a) != journal_dir.as_ref());
                return Err(format!(
                    "interrupted; progress saved — resume with: \
                     minpsid minpsid {} --resume {}",
                    resume_args.join(" "),
                    j.dir().display()
                ));
            }
            Err(e) => return Err(format!("MINPSID failed: {e}")),
        },
        None => run_minpsid_cached(&module, b.model.as_ref(), &cfg, &cache)
            .map_err(|t| format!("MINPSID failed: {t:?}"))?,
    };

    if rest.iter().any(|a| a == "--json") {
        println!("{}", minpsid_json(name, &module, &cfg, &r, &cache).render());
    } else {
        println!(
            "benchmark: {} ({} static instructions)",
            b.name,
            module.num_insts()
        );
        println!("protection level: {:.0}%", cfg.protection_level * 100.0);
        println!("inputs searched: {}", r.inputs_searched);
        println!(
            "incubative instructions: {} ({:.2}% of static instructions)",
            r.incubative.len(),
            r.incubative.len() as f64 / module.num_insts() as f64 * 100.0
        );
        println!(
            "expected SDC coverage (conservative): {:.2}%",
            r.expected_coverage * 100.0
        );
        println!("campaign completeness: {:.4}", r.sched.completeness());
        if r.sched.recovered > 0 {
            println!(
                "transient failures recovered by retry: {}",
                r.sched.recovered
            );
        }
        if r.sched.quarantined_sites > 0 {
            println!("quarantined sites: {}", r.sched.quarantined_sites);
        }
        if r.sched.truncated > 0 {
            println!(
                "deadline-truncated injections: {} of {} planned",
                r.sched.truncated, r.sched.planned
            );
        }
    }
    if r.sched.accounted() != r.sched.planned {
        return Err(format!(
            "scheduler accounting violated: {} of {} injections unaccounted",
            r.sched.planned - r.sched.accounted(),
            r.sched.planned
        ));
    }
    print_run_telemetry(&r.timings, &cache);
    if let Some(j) = &journal {
        let (served, appended) = j.usage();
        diag!(
            "  journal        {served} injections/evals served, {appended} records appended ({})",
            j.dir().display()
        );
    }
    if let Some(ts) = &r.table_stats {
        table_stats_diag(ts);
    }
    Ok(())
}

/// End-of-run telemetry (satellite of the tracing layer): the Fig. 8 time
/// breakdown plus golden-cache effectiveness, as a small stderr table so
/// stdout stays parseable.
fn print_run_telemetry(t: &minpsid::Timings, cache: &GoldenCache) {
    let total = t.total().as_secs_f64().max(1e-9);
    let row = |name: &str, d: std::time::Duration| {
        diag!(
            "  {:<14} {:>8.2}s {:>5.1}%",
            name,
            d.as_secs_f64(),
            d.as_secs_f64() / total * 100.0
        );
    };
    diag!("-- run telemetry --");
    row("ref FI", t.ref_fi);
    row("incubative FI", t.incubative_fi);
    row("input search", t.search);
    row("select+xform", t.other);
    row("total", t.total());
    let lookups = cache.hits() + cache.misses() + cache.disk_hits();
    if lookups > 0 {
        diag!(
            "  golden cache   {} hits / {} disk hits / {} misses ({:.0}% hit rate, {} entries)",
            cache.hits(),
            cache.disk_hits(),
            cache.misses(),
            (cache.hits() + cache.disk_hits()) as f64 / lookups as f64 * 100.0,
            cache.len()
        );
    }
    if let Some(s) = cache.store() {
        if let Ok(q) = s.quarantined_count() {
            if q > 0 {
                diag!(
                    "  artifact store {q} quarantined objects (recomputed; \
                     inspect with `minpsid store ls`)"
                );
            }
        }
    }
}

/// Machine-readable `minpsid --json` summary (uses the trace crate's JSON
/// values so numbers round-trip exactly).
fn minpsid_json(
    name: &str,
    module: &Module,
    cfg: &MinpsidConfig,
    r: &minpsid::MinpsidResult,
    cache: &GoldenCache,
) -> trace::json::Json {
    use trace::json::Json;
    let mut timings = Json::obj();
    timings.set("ref_fi_s", Json::F64(r.timings.ref_fi.as_secs_f64()));
    timings.set(
        "incubative_fi_s",
        Json::F64(r.timings.incubative_fi.as_secs_f64()),
    );
    timings.set("search_s", Json::F64(r.timings.search.as_secs_f64()));
    timings.set("other_s", Json::F64(r.timings.other.as_secs_f64()));
    timings.set("total_s", Json::F64(r.timings.total().as_secs_f64()));
    let mut cache_obj = Json::obj();
    cache_obj.set("hits", Json::U64(cache.hits()));
    cache_obj.set("disk_hits", Json::U64(cache.disk_hits()));
    cache_obj.set("misses", Json::U64(cache.misses()));
    cache_obj.set("entries", Json::U64(cache.len() as u64));
    let mut o = Json::obj();
    o.set("benchmark", Json::Str(name.to_string()));
    o.set("static_insts", Json::U64(module.num_insts() as u64));
    o.set("protection_level", Json::F64(cfg.protection_level));
    o.set("inputs_searched", Json::U64(r.inputs_searched as u64));
    o.set("incubative", Json::U64(r.incubative.len() as u64));
    o.set("expected_coverage", Json::F64(r.expected_coverage));
    let mut sched = Json::obj();
    sched.set("planned", Json::U64(r.sched.planned));
    sched.set("completed", Json::U64(r.sched.completed));
    sched.set("retries", Json::U64(r.sched.retries));
    sched.set("recovered", Json::U64(r.sched.recovered));
    sched.set("quarantined_sites", Json::U64(r.sched.quarantined_sites));
    sched.set(
        "quarantined_injections",
        Json::U64(r.sched.quarantined_injections),
    );
    sched.set(
        "early_stopped_sites",
        Json::U64(r.sched.early_stopped_sites),
    );
    sched.set("early_stop_skipped", Json::U64(r.sched.early_stop_skipped));
    sched.set("truncated", Json::U64(r.sched.truncated));
    sched.set("completeness", Json::F64(r.sched.completeness()));
    o.set("sched", sched);
    o.set("timings", timings);
    o.set("golden_cache", cache_obj);
    if let Some(ts) = &r.table_stats {
        let mut t = Json::obj();
        t.set("sections_hit", Json::U64(ts.sections_hit));
        t.set("sections_missed", Json::U64(ts.sections_missed));
        t.set("sections_recomputed", Json::U64(ts.sections_recomputed));
        t.set("injections_served", Json::U64(ts.injections_served));
        t.set("injections_executed", Json::U64(ts.injections_executed));
        t.set("tables_sealed", Json::U64(ts.tables_sealed));
        o.set("section_tables", t);
    }
    o
}

/// `minpsid trace <report|check> <log> [-o out/]` — the offline analyzer.
fn cmd_trace(rest: &[String]) -> Result<(), String> {
    let sub = rest
        .first()
        .map(|s| s.as_str())
        .ok_or("missing trace subcommand (report|check)")?;
    let log_path = rest
        .get(1)
        .map(|s| s.as_str())
        .filter(|s| !s.starts_with('-'))
        .ok_or("missing trace log path")?;
    let text = std::fs::read_to_string(log_path).map_err(|e| format!("reading {log_path}: {e}"))?;
    let events = trace::parse_log(&text)
        .map_err(|(line, e)| format!("{log_path}:{line}: invalid trace line: {e}"))?;
    match sub {
        "check" => {
            println!("{log_path}: {} events, schema ok", events.len());
            Ok(())
        }
        "report" => {
            let summary = trace::summarize(&events);
            let md = trace::render_markdown(&summary);
            match flag_value(rest, "-o").or_else(|| flag_value(rest, "--out")) {
                None => {
                    print!("{md}");
                }
                Some(dir) => {
                    let dir = std::path::Path::new(&dir);
                    std::fs::create_dir_all(dir)
                        .map_err(|e| format!("creating {}: {e}", dir.display()))?;
                    let md_path = dir.join("trace_report.md");
                    let html_path = dir.join("trace_report.html");
                    std::fs::write(&md_path, &md)
                        .map_err(|e| format!("writing {}: {e}", md_path.display()))?;
                    std::fs::write(&html_path, trace::render_html(&summary))
                        .map_err(|e| format!("writing {}: {e}", html_path.display()))?;
                    diag!("wrote {} and {}", md_path.display(), html_path.display());
                }
            }
            Ok(())
        }
        other => Err(format!(
            "unknown trace subcommand `{other}` (want report|check)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_faultsim::CheckpointPolicy;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn worker_args_strip_supervisor_concerns() {
        let rest = args(&[
            "fft",
            "--quick",
            "--workers",
            "4",
            "--seed",
            "7",
            "--journal",
            "/tmp/j",
            "--trace-out",
            "/tmp/t.jsonl",
            "--status-addr",
            "127.0.0.1:9090",
            "--threads",
            "8",
            "--fleet-lease-ms",
            "500",
            "--poison-after",
            "2",
            "--chaos-kill-worker-ms",
            "25",
            "--progress",
            "--chaos-abort-unit",
            "5",
        ]);
        let w = worker_args("fft", &rest);
        // bench name stays first (first_arg only inspects rest[0])
        assert_eq!(w[0], "fft");
        // campaign-relevant flags survive, supervisor concerns don't
        assert_eq!(
            w[1..],
            args(&["--quick", "--seed", "7", "--chaos-abort-unit", "5"])
        );
    }

    #[test]
    fn fi_journal_key_mixes_seed_and_plan_size() {
        let base = CampaignConfig::default();
        let mut other_seed = base.clone();
        other_seed.seed ^= 1;
        let mut other_n = base.clone();
        other_n.injections += 1;
        assert_ne!(fi_journal_key(&base), fi_journal_key(&other_seed));
        assert_ne!(fi_journal_key(&base), fi_journal_key(&other_n));
        assert_eq!(fi_journal_key(&base), fi_journal_key(&base.clone()));
    }

    #[test]
    fn flag_value_finds_pairs() {
        let rest = args(&["bench", "--level", "0.3", "--seed", "9"]);
        assert_eq!(flag_value(&rest, "--level").as_deref(), Some("0.3"));
        assert_eq!(flag_value(&rest, "--seed").as_deref(), Some("9"));
        assert_eq!(flag_value(&rest, "--nope"), None);
    }

    #[test]
    fn level_parsing_validates_range() {
        assert_eq!(parse_level(&args(&["--level", "0.7"])).unwrap(), 0.7);
        assert_eq!(parse_level(&args(&[])).unwrap(), 0.5);
        assert!(parse_level(&args(&["--level", "1.5"])).is_err());
        assert!(parse_level(&args(&["--level", "abc"])).is_err());
        // a zero protection budget is a configuration mistake, not a run
        let err = parse_level(&args(&["--level", "0"])).unwrap_err();
        assert!(err.contains("zero protection budget"), "{err}");
        assert!(parse_level(&args(&["--level", "-0.1"])).is_err());
    }

    #[test]
    fn positive_flags_reject_zero_and_garbage() {
        assert_eq!(
            parse_positive(&args(&["--injections", "50"]), "--injections", "x").unwrap(),
            Some(50)
        );
        assert_eq!(
            parse_positive(&args(&[]), "--injections", "x").unwrap(),
            None
        );
        assert!(parse_positive(&args(&["--injections", "0"]), "--injections", "x").is_err());
        assert!(parse_positive(&args(&["--max-inputs", "0"]), "--max-inputs", "x").is_err());
        assert!(parse_positive(&args(&["--per-inst", "-3"]), "--per-inst", "x").is_err());
        assert!(parse_positive(&args(&["--per-inst", "abc"]), "--per-inst", "x").is_err());
    }

    #[test]
    fn campaign_flags_cover_sizes_timeout_and_chaos() {
        let c = parse_campaign(&args(&[
            "--injections",
            "60",
            "--per-inst",
            "7",
            "--injection-timeout-ms",
            "250",
            "--chaos-panic-one-in",
            "40",
        ]))
        .unwrap();
        assert_eq!(c.injections, 60);
        assert_eq!(c.per_inst_injections, 7);
        assert_eq!(c.exec.wall_clock_ms, 250);
        assert_eq!(c.chaos_panic_one_in, Some(40));

        let q = parse_campaign(&args(&["--quick"])).unwrap();
        assert!(q.injections < CampaignConfig::default().injections);
        // timeout 0 explicitly disables the wall-clock budget
        let off = parse_campaign(&args(&["--injection-timeout-ms", "0"])).unwrap();
        assert_eq!(off.exec.wall_clock_ms, 0);
        assert!(parse_campaign(&args(&["--injections", "0"])).is_err());
        assert!(parse_campaign(&args(&["--chaos-panic-one-in", "0"])).is_err());
        assert!(parse_campaign(&args(&["--chaos-timeout-one-in", "0"])).is_err());
    }

    #[test]
    fn sched_flags_parse_into_sched_config() {
        let c = parse_campaign(&args(&[
            "--chaos-timeout-one-in",
            "50",
            "--max-retries",
            "0",
            "--quarantine-after",
            "3",
            "--quarantine-cap",
            "0",
            "--ci-half-width",
            "0.05",
        ]))
        .unwrap();
        assert_eq!(c.chaos_timeout_one_in, Some(50));
        assert_eq!(c.sched.max_retries, 0, "0 restores fail-fast behaviour");
        assert_eq!(c.sched.quarantine_after, 3);
        assert_eq!(c.sched.quarantine_cap, 0, "0 disables quarantine");
        assert_eq!(c.sched.ci_half_width, 0.05);

        // defaults survive when no flags are given
        let d = parse_campaign(&args(&[])).unwrap();
        assert_eq!(d.sched, minpsid_faultsim::SchedConfig::default());
        assert_eq!(d.chaos_timeout_one_in, None);

        assert!(parse_campaign(&args(&["--max-retries", "abc"])).is_err());
        assert!(parse_campaign(&args(&["--quarantine-after", "0"])).is_err());
        assert!(parse_campaign(&args(&["--ci-half-width", "0.7"])).is_err());
        assert!(parse_campaign(&args(&["--ci-half-width", "-0.1"])).is_err());
    }

    #[test]
    fn deadline_flag_validates() {
        assert_eq!(parse_deadline(&args(&[])).unwrap(), None);
        assert_eq!(
            parse_deadline(&args(&["--deadline-secs", "2.5"])).unwrap(),
            Some(2.5)
        );
        assert_eq!(
            parse_deadline(&args(&["--deadline-secs", "0"])).unwrap(),
            Some(0.0),
            "an already-expired budget is allowed (truncate everything)"
        );
        assert!(parse_deadline(&args(&["--deadline-secs", "-1"])).is_err());
        assert!(parse_deadline(&args(&["--deadline-secs", "inf"])).is_err());
        assert!(parse_deadline(&args(&["--deadline-secs", "soon"])).is_err());
    }

    #[test]
    fn checkpoint_flags_parse_into_policy() {
        let def = parse_campaign(&args(&[])).unwrap();
        assert_eq!(def.checkpoints, CheckpointPolicy::Auto);
        assert_eq!(def.seed, 42);

        let every =
            parse_campaign(&args(&["--checkpoint-interval", "500", "--seed", "7"])).unwrap();
        assert_eq!(every.checkpoints, CheckpointPolicy::Every(500));
        assert_eq!(every.seed, 7);

        let off = parse_campaign(&args(&["--no-checkpoints"])).unwrap();
        assert_eq!(off.checkpoints, CheckpointPolicy::Disabled);

        // --no-checkpoints wins if both are given
        let both =
            parse_campaign(&args(&["--checkpoint-interval", "10", "--no-checkpoints"])).unwrap();
        assert_eq!(both.checkpoints, CheckpointPolicy::Disabled);

        assert!(parse_campaign(&args(&["--checkpoint-interval", "0"])).is_err());
        assert!(parse_campaign(&args(&["--checkpoint-interval", "abc"])).is_err());
    }

    #[test]
    fn snapshot_mode_and_dispatch_flags_parse() {
        use minpsid_faultsim::{DispatchMode, SnapshotMode};
        let def = parse_campaign(&args(&[])).unwrap();
        assert_eq!(def.snapshot_mode, SnapshotMode::Delta);
        assert_eq!(def.exec.dispatch, DispatchMode::Decoded);

        let full = parse_campaign(&args(&["--snapshot-mode", "full"])).unwrap();
        assert_eq!(full.snapshot_mode, SnapshotMode::Full);
        let legacy = parse_campaign(&args(&["--dispatch", "legacy"])).unwrap();
        assert_eq!(legacy.exec.dispatch, DispatchMode::Legacy);

        assert!(parse_campaign(&args(&["--snapshot-mode", "none"])).is_err());
        assert!(parse_campaign(&args(&["--dispatch", "jit"])).is_err());
    }

    #[test]
    fn first_arg_skips_flags() {
        assert_eq!(
            first_arg(&args(&["fft", "--seed", "1"]), "x").unwrap(),
            "fft"
        );
        assert!(first_arg(&args(&["--seed", "1"]), "x").is_err());
        assert!(first_arg(&args(&[]), "x").is_err());
    }

    #[test]
    fn custom_args_parse_into_scalars() {
        let input = parse_input("custom.mc", &args(&["--args", "i:5", "f:2.5"])).unwrap();
        assert_eq!(input.args, vec![Scalar::I(5), Scalar::F(2.5)]);
        assert!(parse_input("custom.mc", &args(&["--args", "x:1"])).is_err());
    }

    #[test]
    fn benchmarks_resolve_reference_inputs() {
        let input = parse_input("fft", &args(&[])).unwrap();
        assert!(!input.args.is_empty());
        assert!(parse_input("not-a-bench", &args(&[])).is_err());
    }
}
