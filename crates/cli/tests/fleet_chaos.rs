//! End-to-end kill-chaos hardening tests for `fi --workers`.
//!
//! Each test drives the real `minpsid` binary: a supervisor that
//! re-execs itself as worker processes. The load-bearing claim is
//! byte-identity — the report (and, when journaled, the WAL) of a
//! fleet run must equal the in-process `--threads` run even while
//! workers are being SIGKILLed mid-shard — plus graceful degradation:
//! a shard whose injection aborts the process on every attempt is
//! quarantined as poisoned and the campaign still completes.

use std::path::PathBuf;
use std::process::{Command, Output};

const BENCH: &str = "fft";

fn minpsid(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_minpsid"))
        .args(args)
        .output()
        .expect("spawn minpsid")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("minpsid-fleet-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The core acceptance criterion: `--threads 4`, `--workers 4`, and
/// `--workers 4` under random SIGKILL chaos print byte-identical
/// reports and leave byte-identical journals.
#[test]
fn fleet_report_and_wal_match_threads_even_under_kill_chaos() {
    let jt = tmpdir("wal-threads");
    let jf = tmpdir("wal-fleet");
    let jc = tmpdir("wal-chaos");
    let base = ["fi", BENCH, "--injections", "300", "--seed", "7"];

    let mut t_args: Vec<&str> = base.to_vec();
    t_args.extend(["--threads", "4", "--journal"]);
    let jt_s = jt.to_str().unwrap();
    t_args.push(jt_s);
    let t = minpsid(&t_args);
    assert!(t.status.success(), "threads run failed: {t:?}");

    let mut f_args: Vec<&str> = base.to_vec();
    f_args.extend(["--workers", "4", "--journal"]);
    let jf_s = jf.to_str().unwrap();
    f_args.push(jf_s);
    let f = minpsid(&f_args);
    assert!(f.status.success(), "fleet run failed: {f:?}");

    let mut c_args: Vec<&str> = base.to_vec();
    c_args.extend([
        "--workers",
        "4",
        "--chaos-kill-worker-ms",
        "20",
        "--journal",
    ]);
    let jc_s = jc.to_str().unwrap();
    c_args.push(jc_s);
    let c = minpsid(&c_args);
    assert!(c.status.success(), "chaos run failed: {c:?}");

    assert_eq!(
        stdout_of(&t),
        stdout_of(&f),
        "fleet report diverged from threads report"
    );
    assert_eq!(
        stdout_of(&t),
        stdout_of(&c),
        "kill chaos changed the report"
    );

    let wal_t = std::fs::read(jt.join("campaign.wal")).unwrap();
    let wal_f = std::fs::read(jf.join("campaign.wal")).unwrap();
    let wal_c = std::fs::read(jc.join("campaign.wal")).unwrap();
    assert_eq!(wal_t, wal_f, "fleet WAL diverged from threads WAL");
    assert_eq!(wal_t, wal_c, "kill chaos changed the WAL");

    for d in [jt, jf, jc] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// A worker that aborts once at a given plan index (a transient wild
/// fault) is restarted, the shard is reassigned, and the report is
/// exactly the one an undisturbed run prints.
#[test]
fn transient_worker_abort_recovers_without_changing_the_report() {
    let base = minpsid(&["fi", BENCH, "--quick", "--seed", "11", "--threads", "2"]);
    assert!(base.status.success());
    let hurt = minpsid(&[
        "fi",
        BENCH,
        "--quick",
        "--seed",
        "11",
        "--workers",
        "2",
        "--chaos-abort-unit",
        "3",
    ]);
    assert!(hurt.status.success(), "abort-chaos run failed: {hurt:?}");
    assert_eq!(stdout_of(&base), stdout_of(&hurt));
    let diag = String::from_utf8_lossy(&hurt.stderr).into_owned();
    assert!(
        diag.contains("shards reassigned"),
        "expected a reassignment diagnostic, got: {diag}"
    );
}

/// A worker hanging mid-shard trips the heartbeat lease: the supervisor
/// kills it, reassigns the shard, and the report is unchanged.
#[test]
fn hung_worker_is_killed_by_lease_expiry_and_report_is_unchanged() {
    let base = minpsid(&["fi", BENCH, "--quick", "--seed", "13", "--threads", "2"]);
    assert!(base.status.success());
    let hung = minpsid(&[
        "fi",
        BENCH,
        "--quick",
        "--seed",
        "13",
        "--workers",
        "2",
        "--chaos-hang-unit",
        "4",
        "--fleet-lease-ms",
        "300",
    ]);
    assert!(hung.status.success(), "hang-chaos run failed: {hung:?}");
    assert_eq!(stdout_of(&base), stdout_of(&hung));
    let diag = String::from_utf8_lossy(&hung.stderr).into_owned();
    assert!(
        diag.contains("lease expiries"),
        "expected a lease-expiry diagnostic, got: {diag}"
    );
}

/// A shard whose injection aborts the process on *every* attempt kills
/// `--poison-after` workers, is quarantined as poisoned, and the
/// campaign completes with exit 0, a quarantined line, and an honest
/// completeness < 1 — instead of crashing the run.
#[test]
fn poisoned_shard_is_quarantined_and_campaign_completes() {
    let out = minpsid(&[
        "fi",
        BENCH,
        "--quick",
        "--seed",
        "17",
        "--workers",
        "2",
        "--chaos-poison-unit",
        "5",
        "--poison-after",
        "2",
    ]);
    assert!(
        out.status.success(),
        "poisoned shard must not sink the campaign: {out:?}"
    );
    let report = stdout_of(&out);
    assert!(
        report.contains("quarantined:"),
        "report must surface the quarantine: {report}"
    );
    let completeness = report
        .lines()
        .find_map(|l| l.strip_prefix("completeness: "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .expect("completeness line");
    assert!(
        completeness < 1.0 && completeness > 0.0,
        "poisoned units must be reflected in completeness, got {completeness}"
    );
    let diag = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(diag.contains("1 poisoned"), "stderr: {diag}");
}

/// SIGTERM mid-campaign: the journaled fleet run salvages finished
/// units, exits with a resume hint, and a `--resume` run completes to
/// a report byte-identical to an undisturbed one.
#[cfg(unix)]
#[test]
fn sigterm_is_graceful_and_resume_completes_the_campaign() {
    let j = tmpdir("sigterm-resume");
    let j_s = j.to_str().unwrap().to_string();

    let baseline = minpsid(&["fi", BENCH, "--quick", "--seed", "19", "--threads", "2"]);
    assert!(baseline.status.success());

    // A hang with an hour-long lease parks the run; SIGTERM must still
    // bring it down promptly with progress saved.
    let child = Command::new(env!("CARGO_BIN_EXE_minpsid"))
        .args([
            "fi",
            BENCH,
            "--quick",
            "--seed",
            "19",
            "--workers",
            "2",
            "--chaos-hang-unit",
            "2",
            "--fleet-lease-ms",
            "3600000",
            "--journal",
            &j_s,
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn supervisor");
    std::thread::sleep(std::time::Duration::from_millis(1500));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let out = child.wait_with_output().expect("wait supervisor");
    assert!(
        !out.status.success(),
        "interrupted run must exit non-zero with a resume hint"
    );
    let diag = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(diag.contains("--resume"), "expected resume hint: {diag}");

    let resumed = minpsid(&[
        "fi",
        BENCH,
        "--quick",
        "--seed",
        "19",
        "--workers",
        "2",
        "--resume",
        &j_s,
    ]);
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    assert_eq!(
        stdout_of(&baseline),
        stdout_of(&resumed),
        "resumed campaign diverged from the undisturbed report"
    );
    let _ = std::fs::remove_dir_all(&j);
}
