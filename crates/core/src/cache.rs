//! A shared cache of golden runs keyed by (module fingerprint, input
//! fingerprint, config fingerprint).
//!
//! Golden runs are pure functions of (module, input, limits): the
//! interpreter is deterministic, so recomputing one is always wasted work.
//! The pipeline hits the same (module, input) pair repeatedly — the
//! reference input is profiled by baseline SID *and* MINPSID, experiment
//! drivers re-evaluate the same inputs at several protection levels, and a
//! GA search can propose duplicate parameter vectors — and with
//! checkpointed golden runs each recomputation also rebuilds the whole
//! snapshot store. [`GoldenCache`] memoizes them behind an `Arc` so
//! concurrent campaign threads share one copy.
//!
//! Fingerprints are FNV-1a over a stable rendering of the value. Module
//! fingerprints hash the full IR (any transform — e.g. SID duplication —
//! changes it); input fingerprints hash scalar args and data streams
//! bit-exactly; config fingerprints hash only the fields that influence
//! the golden run (interpreter limits and checkpoint knobs — not seeds,
//! thread counts, or injection counts).

use minpsid_faultsim::{golden_run, CampaignConfig, GoldenRun};
use minpsid_interp::{ProgInput, Scalar, Stream, Termination};
use minpsid_ir::Module;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a accumulator that doubles as a `fmt::Write` sink, so arbitrary
/// `Debug`-renderable structure can be folded in without allocating the
/// rendered string.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn eat_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn eat_u64(&mut self, v: u64) {
        self.eat_bytes(&v.to_le_bytes());
    }
}

impl std::fmt::Write for Fnv {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.eat_bytes(s.as_bytes());
        Ok(())
    }
}

/// Structural fingerprint of a module: any change to functions, blocks, or
/// instructions changes it.
pub fn module_fingerprint(module: &Module) -> u64 {
    let mut h = Fnv::new();
    write!(h, "{module:?}").expect("fmt to hasher cannot fail");
    h.0
}

/// Bit-exact fingerprint of a program input (floats hash by bit pattern,
/// so -0.0 and NaN payloads are distinguished, matching the interpreter's
/// bit-exact semantics).
pub fn input_fingerprint(input: &ProgInput) -> u64 {
    let mut h = Fnv::new();
    h.eat_u64(input.args.len() as u64);
    for a in &input.args {
        match a {
            Scalar::I(v) => {
                h.eat_bytes(b"i");
                h.eat_u64(*v as u64);
            }
            Scalar::F(v) => {
                h.eat_bytes(b"f");
                h.eat_u64(v.to_bits());
            }
        }
    }
    h.eat_u64(input.streams.len() as u64);
    for s in &input.streams {
        match s {
            Stream::I(v) => {
                h.eat_bytes(b"I");
                h.eat_u64(v.len() as u64);
                for x in v {
                    h.eat_u64(*x as u64);
                }
            }
            Stream::F(v) => {
                h.eat_bytes(b"F");
                h.eat_u64(v.len() as u64);
                for x in v {
                    h.eat_u64(x.to_bits());
                }
            }
        }
    }
    h.0
}

/// Fingerprint of the campaign-config fields a golden run depends on.
/// Seeds, thread counts, and injection counts deliberately do not
/// participate: they change campaigns, not golden runs.
pub fn config_fingerprint(cfg: &CampaignConfig) -> u64 {
    let mut h = Fnv::new();
    write!(
        h,
        "{:?}|{:?}|{}|{}",
        cfg.exec, cfg.checkpoints, cfg.max_checkpoints, cfg.checkpoint_mem_budget
    )
    .expect("fmt to hasher cannot fail");
    h.0
}

type Key = (u64, u64, u64);

/// Thread-safe memo table for golden runs. Cheap to share (`Arc` it, or
/// borrow it down a pipeline); entries are `Arc<GoldenRun>` so campaign
/// fan-out reads one shared copy of the profile and checkpoint store.
#[derive(Default)]
pub struct GoldenCache {
    map: Mutex<HashMap<Key, Arc<GoldenRun>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl GoldenCache {
    pub fn new() -> Self {
        GoldenCache::default()
    }

    /// The golden run of (module, input) under `cfg`, computed at most
    /// once per fingerprint triple. Failed runs (non-exiting inputs) are
    /// not cached — the paper's pipeline filters those inputs out anyway.
    pub fn golden(
        &self,
        module: &Module,
        input: &ProgInput,
        cfg: &CampaignConfig,
    ) -> Result<Arc<GoldenRun>, Termination> {
        let key = (
            module_fingerprint(module),
            input_fingerprint(input),
            config_fingerprint(cfg),
        );
        if let Some(g) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(g));
        }
        // Compute outside the lock so concurrent misses on different keys
        // don't serialize. Two threads racing on the *same* key compute
        // identical results (determinism), so last-write-wins is benign.
        let g = Arc::new(golden_run(module, input, cfg)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map.lock().unwrap().insert(key, Arc::clone(&g));
        Ok(g)
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }
}

impl std::fmt::Debug for GoldenCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GoldenCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> Module {
        minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                let acc = 0;
                for i = 0 to n { acc = acc + i * i; }
                out_i(acc);
            }
            "#,
            "cache-test",
        )
        .unwrap()
    }

    fn input(n: i64) -> ProgInput {
        ProgInput::scalars(vec![Scalar::I(n)])
    }

    #[test]
    fn repeated_lookups_hit() {
        let m = module();
        let cache = GoldenCache::new();
        let cfg = CampaignConfig::quick(1);
        let a = cache.golden(&m, &input(30), &cfg).unwrap();
        let b = cache.golden(&m, &input(30), &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup returns the cached Arc");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_inputs_and_modules_miss() {
        let m = module();
        let cache = GoldenCache::new();
        let cfg = CampaignConfig::quick(1);
        cache.golden(&m, &input(30), &cfg).unwrap();
        cache.golden(&m, &input(31), &cfg).unwrap();
        assert_eq!(cache.misses(), 2);

        let m2 = minic::compile("fn main() { out_i(arg_i(0)); }", "other").unwrap();
        cache.golden(&m2, &input(30), &cfg).unwrap();
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn config_knobs_that_change_the_golden_run_miss() {
        let m = module();
        let cache = GoldenCache::new();
        let a = CampaignConfig::quick(1);
        let mut b = CampaignConfig::quick(1);
        b.checkpoints = minpsid_faultsim::CheckpointPolicy::Disabled;
        cache.golden(&m, &input(30), &a).unwrap();
        cache.golden(&m, &input(30), &b).unwrap();
        assert_eq!(cache.misses(), 2, "checkpoint policy changes the entry");

        // seed/threads/injections do not change golden runs -> hit
        let mut c = CampaignConfig::quick(999);
        c.threads = 1;
        c.injections = 5;
        cache.golden(&m, &input(30), &c).unwrap();
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn failing_inputs_error_and_are_not_cached() {
        let m = minic::compile("fn main() { out_i(10 / arg_i(0)); }", "div").unwrap();
        let cache = GoldenCache::new();
        let cfg = CampaignConfig::quick(1);
        assert!(cache.golden(&m, &input(0), &cfg).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn input_fingerprint_is_bit_exact_for_floats() {
        let a = ProgInput::scalars(vec![Scalar::F(0.0)]);
        let b = ProgInput::scalars(vec![Scalar::F(-0.0)]);
        assert_ne!(input_fingerprint(&a), input_fingerprint(&b));
        assert_eq!(input_fingerprint(&a), input_fingerprint(&a.clone()));
    }
}
