//! A shared cache of golden runs keyed by (module fingerprint, input
//! fingerprint, config fingerprint).
//!
//! Golden runs are pure functions of (module, input, limits): the
//! interpreter is deterministic, so recomputing one is always wasted work.
//! The pipeline hits the same (module, input) pair repeatedly — the
//! reference input is profiled by baseline SID *and* MINPSID, experiment
//! drivers re-evaluate the same inputs at several protection levels, and a
//! GA search can propose duplicate parameter vectors — and with
//! checkpointed golden runs each recomputation also rebuilds the whole
//! snapshot store. [`GoldenCache`] memoizes them behind an `Arc` so
//! concurrent campaign threads share one copy.
//!
//! Fingerprints are FNV-1a over a stable rendering of the value. Module
//! fingerprints hash the full IR (any transform — e.g. SID duplication —
//! changes it); input fingerprints hash scalar args and data streams
//! bit-exactly; config fingerprints hash only the fields that influence
//! the golden run (interpreter limits and checkpoint knobs — not seeds,
//! thread counts, or injection counts).

use minpsid_faultsim::{golden_run, CampaignConfig, GoldenRun};
use minpsid_interp::{Output, OutputItem, ProgInput, Scalar, Stream, Termination};
use minpsid_ir::Module;
use minpsid_store::ArtifactStore;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Store artifact class for a golden run's meta (output+profile+steps).
pub const GOLDEN_ARTIFACT: &str = "golden";
/// Store artifact class for a golden run's checkpoint store.
pub const CKPT_ARTIFACT: &str = "ckpt";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a accumulator that doubles as a `fmt::Write` sink, so arbitrary
/// `Debug`-renderable structure can be folded in without allocating the
/// rendered string.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn eat_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn eat_u64(&mut self, v: u64) {
        self.eat_bytes(&v.to_le_bytes());
    }
}

impl std::fmt::Write for Fnv {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.eat_bytes(s.as_bytes());
        Ok(())
    }
}

/// Structural fingerprint of a module: any change to functions, blocks, or
/// instructions changes it.
pub fn module_fingerprint(module: &Module) -> u64 {
    let mut h = Fnv::new();
    write!(h, "{module:?}").expect("fmt to hasher cannot fail");
    h.0
}

/// FNV-1a over a value's `Debug` rendering (the journal's config
/// fingerprint hashes a whole `MinpsidConfig` this way).
pub(crate) fn fingerprint_debug<T: std::fmt::Debug>(v: &T) -> u64 {
    let mut h = Fnv::new();
    write!(h, "{v:?}").expect("fmt to hasher cannot fail");
    h.0
}

/// Bit-exact fingerprint of a program input (floats hash by bit pattern,
/// so -0.0 and NaN payloads are distinguished, matching the interpreter's
/// bit-exact semantics).
pub fn input_fingerprint(input: &ProgInput) -> u64 {
    let mut h = Fnv::new();
    h.eat_u64(input.args.len() as u64);
    for a in &input.args {
        match a {
            Scalar::I(v) => {
                h.eat_bytes(b"i");
                h.eat_u64(*v as u64);
            }
            Scalar::F(v) => {
                h.eat_bytes(b"f");
                h.eat_u64(v.to_bits());
            }
        }
    }
    h.eat_u64(input.streams.len() as u64);
    for s in &input.streams {
        match s {
            Stream::I(v) => {
                h.eat_bytes(b"I");
                h.eat_u64(v.len() as u64);
                for x in v {
                    h.eat_u64(*x as u64);
                }
            }
            Stream::F(v) => {
                h.eat_bytes(b"F");
                h.eat_u64(v.len() as u64);
                for x in v {
                    h.eat_u64(x.to_bits());
                }
            }
        }
    }
    h.0
}

/// Bit-exact fingerprint of an execution's output — the digest the
/// crash-safe journal stores to verify that a resumed run's recomputed
/// golden runs match the originals.
pub fn output_fingerprint(output: &Output) -> u64 {
    let mut h = Fnv::new();
    h.eat_u64(output.items.len() as u64);
    for item in &output.items {
        match item {
            OutputItem::I(v) => {
                h.eat_bytes(b"i");
                h.eat_u64(*v as u64);
            }
            OutputItem::F(v) => {
                h.eat_bytes(b"f");
                h.eat_u64(v.to_bits());
            }
        }
    }
    h.0
}

/// Fingerprint of the campaign-config fields a golden run depends on.
/// Seeds, thread counts, and injection counts deliberately do not
/// participate: they change campaigns, not golden runs.
pub fn config_fingerprint(cfg: &CampaignConfig) -> u64 {
    let mut h = Fnv::new();
    write!(
        h,
        "{:?}|{:?}|{}|{}|{:?}|{}",
        cfg.exec,
        cfg.checkpoints,
        cfg.max_checkpoints,
        cfg.checkpoint_mem_budget,
        cfg.snapshot_mode,
        cfg.keyframe_every
    )
    .expect("fmt to hasher cannot fail");
    h.0
}

type Key = (u64, u64, u64);

/// Store ref name of a golden run: the fingerprint triple, hex.
fn ref_name((m, i, c): Key) -> String {
    format!("{m:016x}-{i:016x}-{c:016x}")
}

/// A cached golden run stamped with its last-use tick for LRU eviction.
struct Entry {
    run: Arc<GoldenRun>,
    tick: u64,
}

/// Thread-safe memo table for golden runs. Cheap to share (`Arc` it, or
/// borrow it down a pipeline); entries are `Arc<GoldenRun>` so campaign
/// fan-out reads one shared copy of the profile and checkpoint store.
///
/// Checkpointed golden runs can hold megabytes of snapshot state each, so
/// long experiment sweeps bound the cache with [`GoldenCache::with_capacity`]:
/// when full, the least-recently-used entry is evicted before inserting a
/// new one. The default capacity is unbounded (`cap == 0`), preserving the
/// old behaviour for short pipelines.
/// With [`GoldenCache::with_store`], evicted or cold entries fall back
/// to a content-addressed on-disk tier that survives process restarts:
/// each golden run is persisted as two independently corruptible
/// artifacts (`golden` meta and `ckpt` checkpoint store). Loads are
/// digest-verified by the store — an artifact that rots on disk is
/// quarantined and the run is recomputed and republished, never served
/// corrupt.
#[derive(Default)]
pub struct GoldenCache {
    map: Mutex<HashMap<Key, Entry>>,
    cap: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    store: Option<Arc<ArtifactStore>>,
    disk_hits: AtomicU64,
}

impl GoldenCache {
    pub fn new() -> Self {
        GoldenCache::default()
    }

    /// A cache holding at most `cap` golden runs (`0` = unbounded). At
    /// capacity, inserting a new entry first evicts the one with the
    /// oldest last-use tick.
    pub fn with_capacity(cap: usize) -> Self {
        GoldenCache {
            cap,
            ..GoldenCache::default()
        }
    }

    /// A capped cache backed by a content-addressed artifact store:
    /// entries missing from memory are loaded (digest-verified) from the
    /// store, and fresh computes are published back, so golden runs
    /// survive across CLI invocations.
    pub fn with_store(cap: usize, store: Arc<ArtifactStore>) -> Self {
        GoldenCache {
            cap,
            store: Some(store),
            ..GoldenCache::default()
        }
    }

    /// The configured capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The backing artifact store, if one is attached.
    pub fn store(&self) -> Option<&Arc<ArtifactStore>> {
        self.store.as_ref()
    }

    /// The golden run of (module, input) under `cfg`, computed at most
    /// once per fingerprint triple while resident. Failed runs
    /// (non-exiting inputs) are not cached — the paper's pipeline filters
    /// those inputs out anyway.
    pub fn golden(
        &self,
        module: &Module,
        input: &ProgInput,
        cfg: &CampaignConfig,
    ) -> Result<Arc<GoldenRun>, Termination> {
        let key = (
            module_fingerprint(module),
            input_fingerprint(input),
            config_fingerprint(cfg),
        );
        if let Some(e) = self.map.lock().unwrap().get_mut(&key) {
            e.tick = self.tick.fetch_add(1, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&e.run));
        }
        // Disk tier: a verified load from the store skips the recompute.
        // A corrupt artifact was already quarantined by the store — it
        // can never be served — so we fall through to recompute.
        if let Some(g) = self.load_from_store(key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.insert(key, &g);
            return Ok(g);
        }
        // Compute outside the lock so concurrent misses on different keys
        // don't serialize. Two threads racing on the *same* key compute
        // identical results (determinism), so last-write-wins is benign.
        let g = Arc::new(golden_run(module, input, cfg)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.publish_to_store(key, &g);
        self.insert(key, &g);
        Ok(g)
    }

    fn insert(&self, key: Key, g: &Arc<GoldenRun>) {
        let mut map = self.map.lock().unwrap();
        if self.cap > 0 && !map.contains_key(&key) && map.len() >= self.cap {
            let oldest = map.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| *k);
            if let Some(oldest) = oldest {
                map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(
            key,
            Entry {
                run: Arc::clone(g),
                tick: self.tick.fetch_add(1, Ordering::Relaxed),
            },
        );
    }

    /// Verified load of both wire artifacts from the store. `None` on
    /// any failure: absent refs, a digest mismatch (the store has
    /// already quarantined the object and emitted a `store_event`), an
    /// I/O error, or a wire decode error — all degrade to recompute.
    fn load_from_store(&self, key: Key) -> Option<Arc<GoldenRun>> {
        let store = self.store.as_ref()?;
        let name = ref_name(key);
        let fetch = |kind: &str| match store.load_named(kind, &name) {
            Ok(Some((_, bytes))) => Some(bytes),
            Ok(None) => None,
            Err(minpsid_store::StoreError::Corrupt { quarantined, .. }) => {
                eprintln!(
                    "minpsid: STORE CORRUPTION: cached {kind} artifact {name} failed digest \
                     verification; quarantined to {} and recomputing",
                    quarantined.display(),
                );
                None
            }
            Err(_) => None,
        };
        let meta = fetch(GOLDEN_ARTIFACT)?;
        let ckpt = fetch(CKPT_ARTIFACT)?;
        GoldenRun::decode(&meta, &ckpt).ok().map(Arc::new)
    }

    /// Best-effort publish of a freshly computed run; persistence
    /// failures degrade to a cold cache, never to a wrong result.
    fn publish_to_store(&self, key: Key, g: &GoldenRun) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        let name = ref_name(key);
        let publish = || -> std::io::Result<()> {
            let meta = store.publish(GOLDEN_ARTIFACT, &g.encode_meta())?;
            store.set_ref(GOLDEN_ARTIFACT, &name, &meta)?;
            let ckpt = store.publish(CKPT_ARTIFACT, &g.encode_checkpoints())?;
            store.set_ref(CKPT_ARTIFACT, &name, &ckpt)?;
            Ok(())
        };
        let _ = publish();
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// How many entries LRU pressure has pushed out so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Golden runs served from the on-disk store tier (verified loads
    /// that skipped a recompute).
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }
}

impl std::fmt::Debug for GoldenCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GoldenCache")
            .field("entries", &self.len())
            .field("capacity", &self.cap)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .field("disk_hits", &self.disk_hits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> Module {
        minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                let acc = 0;
                for i = 0 to n { acc = acc + i * i; }
                out_i(acc);
            }
            "#,
            "cache-test",
        )
        .unwrap()
    }

    fn input(n: i64) -> ProgInput {
        ProgInput::scalars(vec![Scalar::I(n)])
    }

    #[test]
    fn repeated_lookups_hit() {
        let m = module();
        let cache = GoldenCache::new();
        let cfg = CampaignConfig::quick(1);
        let a = cache.golden(&m, &input(30), &cfg).unwrap();
        let b = cache.golden(&m, &input(30), &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup returns the cached Arc");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_inputs_and_modules_miss() {
        let m = module();
        let cache = GoldenCache::new();
        let cfg = CampaignConfig::quick(1);
        cache.golden(&m, &input(30), &cfg).unwrap();
        cache.golden(&m, &input(31), &cfg).unwrap();
        assert_eq!(cache.misses(), 2);

        let m2 = minic::compile("fn main() { out_i(arg_i(0)); }", "other").unwrap();
        cache.golden(&m2, &input(30), &cfg).unwrap();
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn config_knobs_that_change_the_golden_run_miss() {
        let m = module();
        let cache = GoldenCache::new();
        let a = CampaignConfig::quick(1);
        let mut b = CampaignConfig::quick(1);
        b.checkpoints = minpsid_faultsim::CheckpointPolicy::Disabled;
        cache.golden(&m, &input(30), &a).unwrap();
        cache.golden(&m, &input(30), &b).unwrap();
        assert_eq!(cache.misses(), 2, "checkpoint policy changes the entry");

        let mut d = CampaignConfig::quick(1);
        d.snapshot_mode = minpsid_faultsim::SnapshotMode::Full;
        cache.golden(&m, &input(30), &d).unwrap();
        assert_eq!(cache.misses(), 3, "snapshot encoding changes the entry");

        // seed/threads/injections do not change golden runs -> hit
        let mut c = CampaignConfig::quick(999);
        c.threads = 1;
        c.injections = 5;
        cache.golden(&m, &input(30), &c).unwrap();
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn failing_inputs_error_and_are_not_cached() {
        let m = minic::compile("fn main() { out_i(10 / arg_i(0)); }", "div").unwrap();
        let cache = GoldenCache::new();
        let cfg = CampaignConfig::quick(1);
        assert!(cache.golden(&m, &input(0), &cfg).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn input_fingerprint_is_bit_exact_for_floats() {
        let a = ProgInput::scalars(vec![Scalar::F(0.0)]);
        let b = ProgInput::scalars(vec![Scalar::F(-0.0)]);
        assert_ne!(input_fingerprint(&a), input_fingerprint(&b));
        assert_eq!(input_fingerprint(&a), input_fingerprint(&a.clone()));
    }

    #[test]
    fn output_fingerprint_is_bit_exact_and_order_sensitive() {
        let a = Output {
            items: vec![OutputItem::I(1), OutputItem::F(0.0)],
        };
        let b = Output {
            items: vec![OutputItem::I(1), OutputItem::F(-0.0)],
        };
        let c = Output {
            items: vec![OutputItem::F(0.0), OutputItem::I(1)],
        };
        assert_ne!(output_fingerprint(&a), output_fingerprint(&b));
        assert_ne!(output_fingerprint(&a), output_fingerprint(&c));
        assert_eq!(output_fingerprint(&a), output_fingerprint(&a.clone()));
    }

    #[test]
    fn capped_cache_evicts_least_recently_used() {
        let m = module();
        let cache = GoldenCache::with_capacity(2);
        let cfg = CampaignConfig::quick(1);
        cache.golden(&m, &input(10), &cfg).unwrap();
        cache.golden(&m, &input(11), &cfg).unwrap();
        // Touch 10 so 11 becomes the LRU entry, then insert a third.
        cache.golden(&m, &input(10), &cfg).unwrap();
        cache.golden(&m, &input(12), &cfg).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);

        // 10 survived, 11 was evicted (re-fetching it is a miss).
        let misses = cache.misses();
        cache.golden(&m, &input(10), &cfg).unwrap();
        assert_eq!(cache.misses(), misses, "10 was retained");
        cache.golden(&m, &input(11), &cfg).unwrap();
        assert_eq!(cache.misses(), misses + 1, "11 was evicted");
    }

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("minpsid-cache-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_tier_survives_cache_instances() {
        let dir = store_dir("warm");
        let m = module();
        let cfg = CampaignConfig::quick(1);

        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let first = GoldenCache::with_store(0, store);
        let a = first.golden(&m, &input(30), &cfg).unwrap();
        assert_eq!(first.misses(), 1);
        assert_eq!(first.disk_hits(), 0);

        // a fresh cache (fresh process, conceptually) over the same store
        // serves the run from disk without recomputing
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let second = GoldenCache::with_store(0, store);
        let b = second.golden(&m, &input(30), &cfg).unwrap();
        assert_eq!(second.disk_hits(), 1);
        assert_eq!(second.misses(), 0);
        assert_eq!(b.output, a.output);
        assert_eq!(b.steps, a.steps);
        assert_eq!(b.checkpoints.len(), a.checkpoints.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: an entry whose persisted artifacts fail digest
    /// verification must be quarantined and recomputed — never served.
    /// The chaos-flip knob corrupts each published artifact in place.
    #[test]
    fn corrupt_store_entry_is_quarantined_and_recomputed() {
        let dir = store_dir("rot");
        let m = module();
        let cfg = CampaignConfig::quick(1);

        // flip a bit in every published artifact (one-in-1)
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        store.set_chaos_flip(1);
        let first = GoldenCache::with_store(0, store);
        let a = first.golden(&m, &input(30), &cfg).unwrap();

        // the rotted artifacts are detected on load, quarantined, and the
        // run recomputed; the result is correct, not the corrupt bytes
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let second = GoldenCache::with_store(0, Arc::clone(&store));
        let b = second.golden(&m, &input(30), &cfg).unwrap();
        assert_eq!(second.disk_hits(), 0, "corrupt entry must not be served");
        assert_eq!(second.misses(), 1, "recomputed");
        assert_eq!(b.output, a.output);
        assert_eq!(b.steps, a.steps);
        assert!(store.quarantined_count().unwrap() >= 1);

        // recompute republished clean artifacts (the chaos marker files
        // record each digest as already flipped, so they stay clean):
        // a third instance now hits disk and scrub passes
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let third = GoldenCache::with_store(0, Arc::clone(&store));
        let c = third.golden(&m, &input(30), &cfg).unwrap();
        assert_eq!(third.disk_hits(), 1);
        assert_eq!(c.output, a.output);
        assert!(!store.scrub().unwrap().found_corruption());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let m = module();
        let cache = GoldenCache::new();
        assert_eq!(cache.capacity(), 0);
        let cfg = CampaignConfig::quick(1);
        for n in 0..8 {
            cache.golden(&m, &input(10 + n), &cfg).unwrap();
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.evictions(), 0);
    }
}
