//! Incubative-instruction identification (paper §IV).
//!
//! *"We place instructions into incubative instructions if their benefits
//! fall into the last 1 % of the overall results with one input, but move
//! out of the last 30 % of the overall results when using different
//! inputs."*
//!
//! Thresholds are hybrid. "In the last 1 % under the reference input" is
//! the union of two readings — the bottom 1 % of instructions *by rank*
//! (ties at zero all belong) and the ascending prefix holding ≤ 1 % of
//! the total benefit *mass* (so on small kernels an instruction whose
//! benefit is negligible to the knapsack still counts as near-zero).
//! "Out of the last 30 % under another input" is by rank, like the
//! paper's "overall results".

/// Thresholds of the §IV rule.
#[derive(Debug, Clone, Copy)]
pub struct IncubativeConfig {
    /// "last 1 %": at or below the 1st rank-percentile of reference
    /// benefits, or inside the ≤ 1 %-of-total-mass ascending prefix.
    pub low_quantile: f64,
    /// Mass reading of the low threshold (see module docs).
    pub low_mass: f64,
    /// "last 30 %": strictly above the 30th rank-percentile of the other
    /// input's benefits.
    pub high_quantile: f64,
}

impl Default for IncubativeConfig {
    fn default() -> Self {
        IncubativeConfig {
            low_quantile: 0.01,
            low_mass: 0.01,
            high_quantile: 0.30,
        }
    }
}

/// Value at rank-quantile `q` of `values`.
fn rank_quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Value at rank-quantile `q` of the *positive* entries of `values` —
/// the "overall results" of a per-instruction FI campaign are the
/// instructions that actually showed SDC mass; instructions that were
/// never executed (or never mattered) would otherwise collapse the 30 %
/// threshold to zero and make every faintly-beneficial instruction count
/// as "out of the last 30 %".
fn positive_rank_quantile(values: &[f64], q: f64) -> f64 {
    let positives: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    rank_quantile(&positives, q)
}

/// The largest benefit value still inside the ascending prefix whose mass
/// is ≤ `frac` of the total. Values ≤ the returned threshold are "in the
/// last `frac` of the overall results". Returns `None` for zero total
/// mass (then nothing is above any threshold either).
fn mass_threshold(values: &[f64], frac: f64) -> Option<f64> {
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let budget = total * frac.clamp(0.0, 1.0);
    let mut cum = 0.0;
    let mut thr = 0.0;
    for v in sorted {
        cum += v;
        if cum > budget {
            break;
        }
        thr = v;
    }
    Some(thr)
}

/// Dense indices of the instructions that are incubative between the
/// reference benefit profile and one other input's benefit profile.
pub fn incubative_between(
    ref_benefit: &[f64],
    other_benefit: &[f64],
    cfg: &IncubativeConfig,
) -> Vec<usize> {
    assert_eq!(ref_benefit.len(), other_benefit.len());
    let low = rank_quantile(ref_benefit, cfg.low_quantile)
        .max(mass_threshold(ref_benefit, cfg.low_mass).unwrap_or(0.0));
    let high = positive_rank_quantile(other_benefit, cfg.high_quantile);
    (0..ref_benefit.len())
        .filter(|&i| ref_benefit[i] <= low && other_benefit[i] > high)
        .collect()
}

/// Accumulates incubative instructions and per-instruction benefit maxima
/// across the searched inputs, and answers the search-termination question
/// ("the entire search terminates once the number of incubative
/// instructions no longer increases", §V-B2).
#[derive(Debug, Clone)]
pub struct IncubativeTracker {
    cfg: IncubativeConfig,
    ref_benefit: Vec<f64>,
    /// max benefit observed per instruction across reference + all
    /// searched inputs (the re-prioritization value, Fig. 4 ⑧).
    max_benefit: Vec<f64>,
    /// sum of observed benefits (reference + searched), for the mean-rule
    /// ablation.
    sum_benefit: Vec<f64>,
    incubative: Vec<bool>,
    inputs_seen: usize,
}

/// How incubative instructions' benefits are rewritten before the final
/// knapsack (the paper uses [`ReprioritizeRule::Max`]; the others exist
/// for the re-prioritization ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReprioritizeRule {
    /// Highest benefit observed across all searched inputs (paper ⑧).
    Max,
    /// Mean benefit across reference + searched inputs.
    Mean,
    /// No rewrite — keep the reference benefit (degenerates to baseline
    /// SID selection; incubative knowledge is discarded).
    ReferenceOnly,
}

impl IncubativeTracker {
    pub fn new(ref_benefit: Vec<f64>, cfg: IncubativeConfig) -> Self {
        let max_benefit = ref_benefit.clone();
        let sum_benefit = ref_benefit.clone();
        let n = ref_benefit.len();
        IncubativeTracker {
            cfg,
            ref_benefit,
            max_benefit,
            sum_benefit,
            incubative: vec![false; n],
            inputs_seen: 0,
        }
    }

    /// Fold in one searched input's benefit profile. Returns the number of
    /// *new* incubative instructions this input revealed.
    pub fn observe(&mut self, benefit: &[f64]) -> usize {
        assert_eq!(benefit.len(), self.ref_benefit.len());
        self.inputs_seen += 1;
        for (i, b) in benefit.iter().enumerate() {
            if *b > self.max_benefit[i] {
                self.max_benefit[i] = *b;
            }
            self.sum_benefit[i] += *b;
        }
        let mut new = 0;
        for i in incubative_between(&self.ref_benefit, benefit, &self.cfg) {
            if !self.incubative[i] {
                self.incubative[i] = true;
                new += 1;
            }
        }
        new
    }

    /// Dense indices of all incubative instructions found so far.
    pub fn incubative_indices(&self) -> Vec<usize> {
        (0..self.incubative.len())
            .filter(|&i| self.incubative[i])
            .collect()
    }

    pub fn count(&self) -> usize {
        self.incubative.iter().filter(|&&b| b).count()
    }

    pub fn inputs_seen(&self) -> usize {
        self.inputs_seen
    }

    /// The re-prioritized benefit profile (Fig. 4 ⑧): incubative
    /// instructions take their maximum observed benefit, everything else
    /// keeps the reference benefit.
    pub fn reprioritized_benefit(&self) -> Vec<f64> {
        self.reprioritized_with(ReprioritizeRule::Max)
    }

    /// Re-prioritization under an explicit rule (ablation support).
    pub fn reprioritized_with(&self, rule: ReprioritizeRule) -> Vec<f64> {
        let samples = (self.inputs_seen + 1) as f64;
        (0..self.ref_benefit.len())
            .map(|i| {
                if !self.incubative[i] {
                    return self.ref_benefit[i];
                }
                match rule {
                    ReprioritizeRule::Max => self.max_benefit[i],
                    ReprioritizeRule::Mean => self.sum_benefit[i] / samples,
                    ReprioritizeRule::ReferenceOnly => self.ref_benefit[i],
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_threshold_basics() {
        // total 10; 30% budget = 3: ascending prefix {1, 2} fits, 3 spills
        let v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(mass_threshold(&v, 0.3), Some(2.0));
        // tiny budget: nothing fits except zeros
        assert_eq!(mass_threshold(&v, 0.01), Some(0.0));
        // full budget: everything fits
        assert_eq!(mass_threshold(&v, 1.0), Some(4.0));
        // zero mass
        assert_eq!(mass_threshold(&[0.0, 0.0], 0.3), None);
        assert_eq!(mass_threshold(&[], 0.3), None);
    }

    #[test]
    fn zeros_are_always_in_the_low_mass_prefix() {
        let v = vec![0.0, 0.0, 5.0];
        assert_eq!(mass_threshold(&v, 0.01), Some(0.0));
    }

    #[test]
    fn detects_the_fig3_pattern() {
        // instruction 2 has ~zero benefit under the reference input but a
        // large benefit under the other input — the FFT icmp of Fig. 3
        let ref_b = vec![0.5, 0.3, 0.0, 0.0, 0.1];
        let oth_b = vec![0.5, 0.3, 0.4, 0.0, 0.1];
        let inc = incubative_between(&ref_b, &oth_b, &IncubativeConfig::default());
        assert_eq!(inc, vec![2]);
    }

    #[test]
    fn stable_profiles_yield_no_incubative_instructions() {
        let b = vec![0.5, 0.3, 0.0, 0.1];
        let inc = incubative_between(&b, &b, &IncubativeConfig::default());
        assert!(inc.is_empty());
    }

    #[test]
    fn tracker_accumulates_without_double_counting() {
        let ref_b = vec![0.5, 0.0, 0.0, 0.2];
        let mut t = IncubativeTracker::new(ref_b, IncubativeConfig::default());
        let new1 = t.observe(&[0.5, 0.6, 0.0, 0.2]); // reveals inst 1
        assert_eq!(new1, 1);
        let new2 = t.observe(&[0.5, 0.7, 0.0, 0.2]); // inst 1 again
        assert_eq!(new2, 0);
        let new3 = t.observe(&[0.5, 0.0, 0.6, 0.2]); // reveals inst 2
        assert_eq!(new3, 1);
        assert_eq!(t.count(), 2);
        assert_eq!(t.incubative_indices(), vec![1, 2]);
        assert_eq!(t.inputs_seen(), 3);
    }

    #[test]
    fn reprioritization_takes_the_maximum_for_incubative_only() {
        let ref_b = vec![0.5, 0.0, 0.0];
        let mut t = IncubativeTracker::new(ref_b, IncubativeConfig::default());
        t.observe(&[0.9, 0.4, 0.0]);
        t.observe(&[0.1, 0.6, 0.0]);
        let re = t.reprioritized_benefit();
        // inst 0 is NOT incubative (high ref benefit): keeps 0.5, not 0.9
        assert_eq!(re[0], 0.5);
        // inst 1 is incubative: takes max(0.4, 0.6)
        assert_eq!(re[1], 0.6);
        // inst 2 never shows benefit anywhere
        assert_eq!(re[2], 0.0);
    }

    #[test]
    fn reprioritization_rules_differ_as_specified() {
        let ref_b = vec![0.5, 0.0, 0.3, 0.2];
        let mut t = IncubativeTracker::new(ref_b, IncubativeConfig::default());
        t.observe(&[0.5, 0.4, 0.3, 0.2]);
        t.observe(&[0.5, 0.1, 0.3, 0.2]);
        // inst 1 incubative: ref 0.0, observed 0.4 and 0.1
        let max = t.reprioritized_with(ReprioritizeRule::Max);
        let mean = t.reprioritized_with(ReprioritizeRule::Mean);
        let refonly = t.reprioritized_with(ReprioritizeRule::ReferenceOnly);
        assert_eq!(max[1], 0.4);
        assert!((mean[1] - 0.5 / 3.0).abs() < 1e-12);
        assert_eq!(refonly[1], 0.0);
        // non-incubative inst keeps the reference under all rules
        assert_eq!(max[0], 0.5);
        assert_eq!(mean[0], 0.5);
    }

    #[test]
    fn all_zero_profiles_have_no_incubative_instructions() {
        let z = vec![0.0; 8];
        let inc = incubative_between(&z, &z, &IncubativeConfig::default());
        assert!(inc.is_empty(), "nothing exceeds the 30% quantile of zeros");
    }
}
