//! The program-input model the search engine operates on.
//!
//! A benchmark exposes a vector of *parameters* (its command-line-style
//! arguments plus the generator knobs of its bulk data — sizes, densities,
//! RNG seeds), and a deterministic `materialize` from parameter values to
//! a concrete [`ProgInput`]. The GA mutates and crosses over parameter
//! vectors exactly as §V-B1 describes: numeric parameters get ±10 %
//! perturbations, categorical parameters get re-enumerated, and crossover
//! swaps one parameter between two inputs.

use minpsid_interp::ProgInput;
use rand::rngs::StdRng;
use rand::RngExt;

/// One input parameter's domain.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamKind {
    /// Integer in `[lo, hi]` (inclusive).
    Int { lo: i64, hi: i64 },
    /// Float in `[lo, hi]`.
    Float { lo: f64, hi: f64 },
    /// Categorical: one of the listed values (non-numeric in the paper's
    /// sense — mutation re-enumerates rather than perturbs).
    Choice { options: Vec<i64> },
}

/// A named parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    pub name: &'static str,
    pub kind: ParamKind,
}

impl ParamSpec {
    pub fn int(name: &'static str, lo: i64, hi: i64) -> Self {
        ParamSpec {
            name,
            kind: ParamKind::Int { lo, hi },
        }
    }

    pub fn float(name: &'static str, lo: f64, hi: f64) -> Self {
        ParamSpec {
            name,
            kind: ParamKind::Float { lo, hi },
        }
    }

    pub fn choice(name: &'static str, options: Vec<i64>) -> Self {
        ParamSpec {
            name,
            kind: ParamKind::Choice { options },
        }
    }

    /// Sample a uniformly random valid value.
    pub fn sample(&self, rng: &mut StdRng) -> ParamValue {
        match &self.kind {
            ParamKind::Int { lo, hi } => ParamValue::I(rng.random_range(*lo..=*hi)),
            ParamKind::Float { lo, hi } => ParamValue::F(rng.random_range(*lo..=*hi)),
            ParamKind::Choice { options } => {
                ParamValue::I(options[rng.random_range(0..options.len())])
            }
        }
    }

    /// Clamp a value back into the domain.
    pub fn clamp(&self, v: ParamValue) -> ParamValue {
        match (&self.kind, v) {
            (ParamKind::Int { lo, hi }, ParamValue::I(x)) => ParamValue::I(x.clamp(*lo, *hi)),
            (ParamKind::Float { lo, hi }, ParamValue::F(x)) => ParamValue::F(x.clamp(*lo, *hi)),
            (ParamKind::Choice { options }, ParamValue::I(x)) => {
                if options.contains(&x) {
                    ParamValue::I(x)
                } else {
                    ParamValue::I(options[0])
                }
            }
            (_, v) => v,
        }
    }
}

/// A concrete parameter value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    I(i64),
    F(f64),
}

impl ParamValue {
    pub fn as_i(self) -> i64 {
        match self {
            ParamValue::I(v) => v,
            ParamValue::F(v) => v as i64,
        }
    }

    pub fn as_f(self) -> f64 {
        match self {
            ParamValue::I(v) => v as f64,
            ParamValue::F(v) => v,
        }
    }
}

/// A benchmark's input space.
pub trait InputModel: Sync {
    /// The parameter domains.
    fn spec(&self) -> &[ParamSpec];

    /// Deterministically expand parameter values into the concrete program
    /// input (arguments + generated data streams).
    fn materialize(&self, params: &[ParamValue]) -> ProgInput;

    /// Sample a random parameter vector (defaults to independent uniform
    /// sampling; models can override to enforce cross-parameter
    /// constraints).
    fn random(&self, rng: &mut StdRng) -> Vec<ParamValue> {
        self.spec().iter().map(|p| p.sample(rng)).collect()
    }

    /// The benchmark-suite reference input (paper §III-A4: SID profiles
    /// with the suite's reference input).
    fn reference(&self) -> Vec<ParamValue>;
}

/// GA mutation (§V-B1): pick one parameter; numeric values move by a
/// random amount within ±10 % of the current value (clamped to the
/// domain), categorical values are re-enumerated.
pub fn mutate(spec: &[ParamSpec], params: &[ParamValue], rng: &mut StdRng) -> Vec<ParamValue> {
    assert_eq!(spec.len(), params.len());
    let mut out = params.to_vec();
    if out.is_empty() {
        return out;
    }
    let k = rng.random_range(0..out.len());
    out[k] = match (&spec[k].kind, out[k]) {
        (ParamKind::Choice { .. }, _) => spec[k].sample(rng),
        (_, ParamValue::I(v)) => {
            let span = (v.abs() as f64 * 0.1).max(1.0);
            let delta = rng.random_range(-span..=span);
            spec[k].clamp(ParamValue::I(v + delta.round() as i64))
        }
        (_, ParamValue::F(v)) => {
            let span = (v.abs() * 0.1).max(f64::MIN_POSITIVE);
            let delta = rng.random_range(-span..=span);
            spec[k].clamp(ParamValue::F(v + delta))
        }
    };
    out
}

/// GA crossover (§V-B1): swap one randomly chosen parameter between two
/// inputs.
pub fn crossover(
    a: &[ParamValue],
    b: &[ParamValue],
    rng: &mut StdRng,
) -> (Vec<ParamValue>, Vec<ParamValue>) {
    assert_eq!(a.len(), b.len());
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    if !a.is_empty() {
        let k = rng.random_range(0..a.len());
        std::mem::swap(&mut a[k], &mut b[k]);
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn spec() -> Vec<ParamSpec> {
        vec![
            ParamSpec::int("n", 1, 1000),
            ParamSpec::float("x", -1.0, 1.0),
            ParamSpec::choice("mode", vec![0, 1, 2]),
        ]
    }

    #[test]
    fn sampling_respects_domains() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            for p in &spec {
                match (p.sample(&mut rng), &p.kind) {
                    (ParamValue::I(v), ParamKind::Int { lo, hi }) => {
                        assert!(v >= *lo && v <= *hi)
                    }
                    (ParamValue::F(v), ParamKind::Float { lo, hi }) => {
                        assert!(v >= *lo && v <= *hi)
                    }
                    (ParamValue::I(v), ParamKind::Choice { options }) => {
                        assert!(options.contains(&v))
                    }
                    other => panic!("type mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn mutation_changes_exactly_one_parameter() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(2);
        let base = vec![ParamValue::I(500), ParamValue::F(0.5), ParamValue::I(1)];
        let mut changed_any = false;
        for _ in 0..100 {
            let m = mutate(&spec, &base, &mut rng);
            let diffs = base.iter().zip(&m).filter(|(a, b)| a != b).count();
            assert!(diffs <= 1, "at most one param changes");
            changed_any |= diffs == 1;
        }
        assert!(changed_any);
    }

    #[test]
    fn numeric_mutation_stays_within_ten_percent_and_domain() {
        let spec = vec![ParamSpec::int("n", 1, 1000)];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let m = mutate(&spec, &[ParamValue::I(500)], &mut rng);
            let v = m[0].as_i();
            assert!((450..=550).contains(&v), "±10% of 500: {v}");
        }
    }

    #[test]
    fn mutation_clamps_at_domain_edge() {
        let spec = vec![ParamSpec::int("n", 1, 10)];
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let m = mutate(&spec, &[ParamValue::I(10)], &mut rng);
            assert!(m[0].as_i() <= 10);
        }
    }

    #[test]
    fn crossover_swaps_one_position() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = vec![ParamValue::I(1), ParamValue::I(2), ParamValue::I(3)];
        let b = vec![ParamValue::I(10), ParamValue::I(20), ParamValue::I(30)];
        let (x, y) = crossover(&a, &b, &mut rng);
        let swapped: Vec<usize> = (0..3).filter(|&i| x[i] != a[i]).collect();
        assert_eq!(swapped.len(), 1);
        let k = swapped[0];
        assert_eq!(x[k], b[k]);
        assert_eq!(y[k], a[k]);
    }

    #[test]
    fn param_value_conversions() {
        assert_eq!(ParamValue::I(3).as_f(), 3.0);
        assert_eq!(ParamValue::F(2.9).as_i(), 2);
    }
}
