//! # minpsid — Multi-Input-hardened Selective Instruction Duplication
//!
//! The paper's primary contribution (§V): an automated framework that
//! hardens SID against the loss of SDC coverage across program inputs.
//!
//! ## The problem (§III–IV)
//!
//! Baseline SID profiles cost and benefit under a single *reference input*
//! and promises an expected SDC coverage. A small set of **incubative
//! instructions** — benefit in the bottom 1 % under the reference input but
//! outside the bottom 30 % under some other input — never gets prioritized,
//! so the real coverage collapses when the protected program runs with
//! different inputs (to 0 % in extreme cases, paper Fig. 2).
//!
//! ## The fix (Fig. 4)
//!
//! 1. **SID preparation** (①②): reference-input cost/benefit profile
//!    (delegated to `minpsid-sid`).
//! 2. **Input search engine** (③–⑦): a genetic algorithm over the
//!    program's input space whose fitness (Eq. 3) is the mean Euclidean
//!    distance between the candidate's *indexed weighted-CFG list* (per
//!    basic-block dynamic execution counts, Fig. 5) and those of all
//!    previously searched inputs — inputs that exercise *different paths*
//!    reveal different error-propagation behaviour. Each accepted input
//!    gets a per-instruction FI campaign; incubative instructions
//!    accumulate until the set saturates.
//! 3. **Re-prioritization** (⑧): incubative instructions get their benefit
//!    replaced with the *maximum* observed across all searched inputs, so
//!    the knapsack now prioritizes them.
//! 4. **Selection + transform** (⑨): rerun knapsack + duplication.
//!
//! [`run_minpsid`] is the end-to-end entry point; [`run_baseline_sid`]
//! wraps the unhardened pipeline for comparison, and
//! [`search::random_searcher`] is the blind-search baseline of Fig. 7.

pub mod cache;
pub mod incubative;
pub mod input;
pub mod pipeline;
pub mod search;
pub mod wcfg;

pub use cache::{
    config_fingerprint, input_fingerprint, module_fingerprint, output_fingerprint, GoldenCache,
};
pub use incubative::{incubative_between, IncubativeConfig, IncubativeTracker, ReprioritizeRule};
pub use input::{crossover, mutate, InputModel, ParamKind, ParamSpec, ParamValue};
pub use pipeline::{
    minpsid_config_fingerprint, module_section_map, run_baseline_sid, run_minpsid,
    run_minpsid_cached, run_minpsid_journaled, MinpsidConfig, MinpsidResult, PipelineError,
    SearchStrategy, Timings,
};
pub use search::{random_searcher, EvalMemo, FitnessKind, GaConfig, SearchEngine, SearchOutcome};
pub use wcfg::{
    fitness_score, fitness_score_normalized, indexed_cfg_list, profile_input, weighted_cfg_dot,
};
