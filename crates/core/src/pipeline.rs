//! The end-to-end MINPSID pipeline (paper Fig. 4).

use crate::cache::{fingerprint_debug, input_fingerprint, output_fingerprint, GoldenCache};
use crate::incubative::{IncubativeConfig, IncubativeTracker};
use crate::input::InputModel;
use crate::search::{EvalMemo, GaConfig, SearchEngine};
use minpsid_faultsim::{
    interrupt, CampaignConfig, CampaignEngine, CampaignJournal, Deadline, GoldenRun, Interrupted,
    SchedSnapshot, Scheduler, TableMemo, TableStatsSnapshot,
};
use minpsid_interp::{ProgInput, Termination};
use minpsid_ir::Module;
use minpsid_sid::knapsack::Selection;
use minpsid_sid::transform::TransformMeta;
use minpsid_sid::{select_and_protect, CostBenefit, SidConfig, SidResult};
use minpsid_trace as trace;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which searcher drives step ④ — the GA engine (MINPSID proper) or the
/// blind random searcher (the Fig. 7 baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    Genetic,
    Random,
    /// Simulated annealing (§X future-work exploration).
    Annealing,
}

/// MINPSID configuration.
#[derive(Debug, Clone)]
pub struct MinpsidConfig {
    /// Protection level in `[0, 1]`.
    pub protection_level: f64,
    /// FI campaign parameters (per-instruction counts etc.).
    pub campaign: CampaignConfig,
    pub ga: GaConfig,
    pub incubative: IncubativeConfig,
    /// Hard cap on searched inputs (the paper's searches converge around
    /// 21 inputs).
    pub max_inputs: usize,
    /// Stop when this many consecutive searched inputs reveal no new
    /// incubative instruction ("the entire search process terminates once
    /// the number of incubative instructions no longer increases").
    pub stagnation_patience: usize,
    pub strategy: SearchStrategy,
    /// Exact-DP knapsack instead of greedy (ablation).
    pub use_dp: bool,
    /// Wall-clock budget for the whole run in seconds; `None` is
    /// unbounded. When the budget expires, campaigns truncate their
    /// remaining injections and the search stops — the run still produces
    /// a report, annotated with its completeness. Deliberately excluded
    /// from the journal fingerprint: a truncated run resumed under a
    /// looser (or absent) deadline must converge to the full result.
    pub deadline_secs: Option<f64>,
    /// Memoize sealed per-section FI outcome tables in the golden cache's
    /// artifact store and serve them on later runs, so a re-campaign
    /// after an edit re-executes only the touched sections (O(diff)).
    /// Only engaged when the cache has a store attached. Like
    /// `deadline_secs`, excluded from the journal config fingerprint: it
    /// changes how outcomes are obtained, never what they are.
    pub incremental: bool,
}

impl Default for MinpsidConfig {
    fn default() -> Self {
        MinpsidConfig {
            protection_level: 0.5,
            campaign: CampaignConfig::default(),
            ga: GaConfig::default(),
            incubative: IncubativeConfig::default(),
            max_inputs: 25,
            stagnation_patience: 3,
            strategy: SearchStrategy::Genetic,
            use_dp: false,
            deadline_secs: None,
            incremental: true,
        }
    }
}

/// Wall-clock breakdown of a MINPSID run — the three components of Fig. 8
/// ("Per-Inst-FI (Ref Input)", "Per-Inst-FI (For Incubative Insts.)",
/// "Input Search Engine") plus everything else.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    pub ref_fi: Duration,
    pub incubative_fi: Duration,
    pub search: Duration,
    pub other: Duration,
}

impl Timings {
    pub fn total(&self) -> Duration {
        self.ref_fi + self.incubative_fi + self.search + self.other
    }
}

/// Everything a MINPSID run produces.
#[derive(Debug, Clone)]
pub struct MinpsidResult {
    /// The hardened binary (Fig. 4 ⑨).
    pub protected: Module,
    pub meta: TransformMeta,
    pub selection: Selection,
    /// Expected coverage under the *re-prioritized* profile — the
    /// conservative promise MINPSID reports (red bars of Fig. 6).
    pub expected_coverage: f64,
    /// Dense indices of the incubative instructions found.
    pub incubative: Vec<usize>,
    /// Cumulative incubative count after each searched input (the Fig. 7
    /// convergence series).
    pub incubative_history: Vec<usize>,
    pub inputs_searched: usize,
    pub timings: Timings,
    /// The re-prioritized cost/benefit profile used for selection.
    pub cost_benefit: CostBenefit,
    /// The full benefit-observation state, so callers can re-derive
    /// profiles under alternative re-prioritization rules (ablations).
    pub tracker: IncubativeTracker,
    /// The run's scheduler accounting: retries, quarantines, early stops,
    /// deadline truncation. `sched.completeness()` annotates the report.
    pub sched: SchedSnapshot,
    /// Section-table usage aggregated over every campaign in the run.
    /// `None` when memoization was off (no store, or `incremental:
    /// false`).
    pub table_stats: Option<TableStatsSnapshot>,
}

/// Baseline SID under this crate's naming, for experiment symmetry.
pub fn run_baseline_sid(
    module: &Module,
    model: &dyn InputModel,
    cfg: &MinpsidConfig,
) -> Result<SidResult, Termination> {
    let ref_input = model.materialize(&model.reference());
    minpsid_sid::run_sid(
        module,
        &ref_input,
        &SidConfig {
            protection_level: cfg.protection_level,
            campaign: cfg.campaign.clone(),
            use_dp: cfg.use_dp,
        },
    )
}

/// Run the full MINPSID pipeline on `module` over `model`'s input space.
pub fn run_minpsid(
    module: &Module,
    model: &dyn InputModel,
    cfg: &MinpsidConfig,
) -> Result<MinpsidResult, Termination> {
    run_minpsid_cached(module, model, cfg, &GoldenCache::new())
}

/// [`run_minpsid`] against a caller-owned [`GoldenCache`]. Experiment
/// drivers that evaluate the same (module, input) pairs repeatedly —
/// multiple protection levels, baseline-vs-hardened comparisons — share
/// one cache across calls so each golden run (and its checkpoint store)
/// is computed once.
pub fn run_minpsid_cached(
    module: &Module,
    model: &dyn InputModel,
    cfg: &MinpsidConfig,
    cache: &GoldenCache,
) -> Result<MinpsidResult, Termination> {
    run_minpsid_inner(module, model, cfg, cache, None).map_err(|e| match e {
        PipelineError::Golden(t) => t,
        // interrupts and journal mismatches require an attached journal
        _ => unreachable!("journal-free pipeline raised a journal error"),
    })
}

/// Why a journaled pipeline run stopped without a result.
#[derive(Debug)]
pub enum PipelineError {
    /// The golden run of an input failed to exit normally.
    Golden(Termination),
    /// A cooperative interrupt (SIGINT) stopped the run; all completed
    /// work is in the journal and the run can be resumed.
    Interrupted,
    /// The journal disagrees with this run (e.g. a recomputed golden run
    /// no longer matches its recorded digest).
    Journal(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Golden(t) => write!(f, "golden run did not exit: {t:?}"),
            PipelineError::Interrupted => Interrupted.fmt(f),
            PipelineError::Journal(msg) => write!(f, "journal: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<Termination> for PipelineError {
    fn from(t: Termination) -> Self {
        PipelineError::Golden(t)
    }
}

impl From<Interrupted> for PipelineError {
    fn from(_: Interrupted) -> Self {
        PipelineError::Interrupted
    }
}

/// The config fingerprint a journal header carries for a MINPSID run:
/// everything that changes the run's decisions participates; the worker
/// thread count is normalized out (campaigns are thread-count-invariant,
/// and resuming on a different machine must work).
pub fn minpsid_config_fingerprint(cfg: &MinpsidConfig) -> u64 {
    let mut c = cfg.clone();
    c.campaign.threads = 0;
    // A deadline truncates *which* work runs, never its results; a
    // truncated journal must be resumable under a different budget.
    c.deadline_secs = None;
    // Table memoization changes where outcomes come from, not what they
    // are: an incremental run must resume a non-incremental journal.
    c.incremental = true;
    fingerprint_debug(&c)
}

/// The per-section module identity that
/// [`CampaignJournal::open_with_sections`] expects: one `(fingerprint,
/// dense instruction base, instruction count)` triple per function, in
/// function order. Opening a journal through this map lets a re-campaign
/// after an edit keep the per-instruction facts of untouched functions.
pub fn module_section_map(module: &Module) -> Vec<(u64, u64, u64)> {
    let fps = minpsid_ir::section_fingerprints(module);
    let mut out = Vec::with_capacity(fps.len());
    let mut base = 0u64;
    for (fp, (_, f)) in fps.iter().zip(module.iter_funcs()) {
        let len = f.insts.len() as u64;
        out.push((*fp, base, len));
        base += len;
    }
    out
}

/// The run-scoped scheduler: retry/quarantine knobs from the campaign
/// config, deadline from `deadline_secs`.
fn run_scheduler(cfg: &MinpsidConfig) -> Scheduler {
    Scheduler::new(
        cfg.campaign.sched.clone(),
        Deadline::from_secs(cfg.deadline_secs),
    )
}

/// The journal serves as the GA's evaluation memo: profiled CFG lists are
/// durable, so a resumed search replays candidate evaluations for free.
impl EvalMemo for CampaignJournal {
    fn cfg_list(&self, input_fp: u64) -> Option<Vec<u64>> {
        self.eval_profile(input_fp)
    }

    fn record_cfg_list(&self, input_fp: u64, list: &[u64]) {
        self.record_eval(input_fp, list);
    }
}

/// Fetch the golden run for `input`, verifying (or recording) its journal
/// digest. A digest mismatch means the journal belongs to different work
/// and replaying its outcomes would be silent garbage — refuse loudly.
fn golden_checked(
    module: &Module,
    input: &ProgInput,
    cfg: &MinpsidConfig,
    cache: &GoldenCache,
    journal: &CampaignJournal,
) -> Result<(Arc<GoldenRun>, u64), PipelineError> {
    let fp = input_fingerprint(input);
    let golden = cache.golden(module, input, &cfg.campaign)?;
    let digest = output_fingerprint(&golden.output);
    match journal.golden_digest(fp) {
        Some((d, s)) if d != digest || s != golden.steps => {
            return Err(PipelineError::Journal(format!(
                "golden-run digest mismatch for input {fp:#x}: journal has \
                 (output {d:#x}, {s} steps) but this run computed \
                 (output {digest:#x}, {} steps) — the journal belongs to a \
                 different program or campaign config",
                golden.steps
            )));
        }
        Some(_) => {}
        None => journal.record_golden(fp, digest, golden.steps),
    }
    Ok((golden, fp))
}

/// [`run_minpsid_cached`] with crash-safe progress: every per-injection
/// outcome, golden digest, GA evaluation, accepted input, and the final
/// selection is journaled as it happens. Resume is replay — rerunning
/// with the same journal short-circuits completed work and produces a
/// bit-identical [`MinpsidResult`]; an interrupt (SIGINT) flushes the
/// journal and returns [`PipelineError::Interrupted`].
pub fn run_minpsid_journaled(
    module: &Module,
    model: &dyn InputModel,
    cfg: &MinpsidConfig,
    cache: &GoldenCache,
    journal: &CampaignJournal,
) -> Result<MinpsidResult, PipelineError> {
    run_minpsid_inner(module, model, cfg, cache, Some(journal))
}

/// Fetch the golden run for one input and run its per-instruction FI
/// through the [`CampaignEngine`], with the journal layer attached when
/// one is present (digest-checked golden, served/appended outcomes).
fn engine_per_inst_fi(
    module: &Module,
    input: &ProgInput,
    cfg: &MinpsidConfig,
    cache: &GoldenCache,
    sched: &Scheduler,
    journal: Option<&CampaignJournal>,
    table_stats: &mut Option<TableStatsSnapshot>,
) -> Result<(Arc<GoldenRun>, CostBenefit, Option<u64>), PipelineError> {
    let (golden, input_fp) = match journal {
        Some(j) => {
            let (g, fp) = golden_checked(module, input, cfg, cache, j)?;
            (g, Some(fp))
        }
        None => (cache.golden(module, input, &cfg.campaign)?, None),
    };
    // Section-table memo: scoped to (store, input), shared by every
    // campaign shape over this pair.
    let memo = match (cfg.incremental, cache.store()) {
        (true, Some(store)) => Some(TableMemo::new(
            store.clone(),
            input_fp.unwrap_or_else(|| input_fingerprint(input)),
        )),
        _ => None,
    };
    let mut engine =
        CampaignEngine::new(module, input, &golden, &cfg.campaign).with_scheduler(sched);
    if let (Some(j), Some(fp)) = (journal, input_fp) {
        engine = engine.with_journal(j, fp);
    }
    if let Some(m) = &memo {
        engine = engine.with_tables(m);
    }
    let per_inst = engine.run_per_instruction()?;
    if let Some(m) = &memo {
        table_stats
            .get_or_insert_with(Default::default)
            .merge(&m.stats());
    }
    let cb = CostBenefit::build(module, &golden, &per_inst);
    Ok((golden, cb, input_fp))
}

/// The one pipeline body behind [`run_minpsid_cached`] and
/// [`run_minpsid_journaled`]: identical orchestration, with the journal
/// (durable outcomes, eval memo, interrupt handling, selection record)
/// attached as a layer when present.
fn run_minpsid_inner(
    module: &Module,
    model: &dyn InputModel,
    cfg: &MinpsidConfig,
    cache: &GoldenCache,
    journal: Option<&CampaignJournal>,
) -> Result<MinpsidResult, PipelineError> {
    let mut timings = Timings::default();
    let _pipeline_span = trace::span("minpsid_pipeline");
    let sched = run_scheduler(cfg);
    let mut table_stats: Option<TableStatsSnapshot> = None;

    // ① SID preparation: reference-input profile + per-instruction FI
    let t0 = Instant::now();
    let ref_fi_span = trace::span("ref_fi");
    let ref_input = model.materialize(&model.reference());
    let (ref_golden, ref_cb, _) = engine_per_inst_fi(
        module,
        &ref_input,
        cfg,
        cache,
        &sched,
        journal,
        &mut table_stats,
    )?;
    drop(ref_fi_span);
    timings.ref_fi = t0.elapsed();
    if let Some(j) = journal {
        let _ = j.sync();
    }

    // ③–⑦ input search + incubative identification
    let mut engine = SearchEngine::new(module, model, cfg.campaign.clone(), cfg.ga.clone());
    if let Some(j) = journal {
        engine.set_eval_memo(j);
    }
    engine.set_deadline(sched.deadline());
    engine.record_history(ref_golden.profile.indexed_cfg_list());
    let mut tracker = IncubativeTracker::new(ref_cb.benefit.clone(), cfg.incubative);
    let mut incubative_history = Vec::new();
    let mut stale = 0usize;
    let mut inputs_searched = 0usize;

    while inputs_searched < cfg.max_inputs && stale < cfg.stagnation_patience {
        if journal.is_some() && interrupt::requested() {
            if let Some(j) = journal {
                let _ = j.sync();
            }
            return Err(PipelineError::Interrupted);
        }
        if sched.deadline_exceeded() {
            break; // graceful: report what we have, annotated as partial
        }
        let t_search = Instant::now();
        let search_span = trace::span("search");
        let outcome = match cfg.strategy {
            SearchStrategy::Genetic => engine.next_ga_input(),
            SearchStrategy::Random => engine.next_random_input(),
            SearchStrategy::Annealing => engine.next_annealing_input(),
        };
        drop(search_span);
        timings.search += t_search.elapsed();
        let Some(outcome) = outcome else {
            break; // input space exhausted / generator keeps failing
        };

        // ⑦ per-instruction FI under the searched input
        let t_fi = Instant::now();
        let fi_span = trace::span("incubative_fi");
        let (_, cb, input_fp) = engine_per_inst_fi(
            module,
            &outcome.input,
            cfg,
            cache,
            &sched,
            journal,
            &mut table_stats,
        )?;
        drop(fi_span);
        timings.incubative_fi += t_fi.elapsed();

        engine.record_history(outcome.cfg_list.clone());
        let new = tracker.observe(&cb.benefit);
        incubative_history.push(tracker.count());
        inputs_searched += 1;
        if let (Some(j), Some(fp)) = (journal, input_fp) {
            j.record_accepted(inputs_searched as u64, fp);
            let _ = j.sync();
        }
        if trace::active() {
            trace::emit(trace::Event::SearchInput {
                index: inputs_searched as u64,
                fitness: outcome.fitness,
                new_incubative: new as u64,
                total_incubative: tracker.count() as u64,
            });
        }
        if new == 0 {
            stale += 1;
        } else {
            stale = 0;
        }
    }

    // ⑧ re-prioritization + ⑨ selection & transform
    let t_rest = Instant::now();
    let select_span = trace::span("select_transform");
    let mut cb = ref_cb;
    cb.benefit = tracker.reprioritized_benefit();
    let (selection, expected_coverage, protected, meta) =
        select_and_protect(module, &cb, cfg.protection_level, cfg.use_dp);
    if let Some(j) = journal {
        j.record_selection(&selection);
    }
    drop(select_span);
    timings.other = t_rest.elapsed();
    if trace::active() {
        trace::emit(trace::Event::CacheStats {
            hits: cache.hits(),
            misses: cache.misses(),
            entries: cache.len() as u64,
        });
    }
    if let Some(j) = journal {
        j.emit_stats();
    }
    sched.emit_summary();
    if let Some(j) = journal {
        // completed run: compact the log so the directory stays small
        // across repeated resumes, and make everything durable on the
        // way out
        let _ = j.compact();
        let _ = j.sync();
    }

    Ok(MinpsidResult {
        protected,
        meta,
        selection,
        expected_coverage,
        incubative: tracker.incubative_indices(),
        incubative_history,
        inputs_searched,
        timings,
        cost_benefit: cb,
        tracker,
        sched: sched.snapshot(),
        table_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{ParamSpec, ParamValue};
    use minpsid_interp::{ProgInput, Stream};
    use minpsid_sid::measure_coverage;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A miniature version of the paper's Fig. 3 situation: a comparison
    /// whose SDC-proneness depends on whether the data values sit near the
    /// `> 50` threshold. The reference input keeps all values far below
    /// the threshold, so the multiply path never executes and its
    /// instructions (plus the icmp) carry ~zero benefit. Other inputs
    /// push values above the threshold.
    fn module() -> Module {
        minic::compile(
            r#"
            fn main() {
                let n = data_len(0);
                let acc = 0;
                for i = 0 to n {
                    let v = data_i(0, i);
                    if v > 50 {
                        acc = acc + v * 3 + 17;
                    } else {
                        acc = acc + 1;
                    }
                }
                out_i(acc);
            }
            "#,
            "minpsid-pipeline-test",
        )
        .unwrap()
    }

    struct Model {
        spec: Vec<ParamSpec>,
    }

    impl Model {
        fn new() -> Self {
            Model {
                spec: vec![
                    ParamSpec::int("n", 16, 64),
                    ParamSpec::int("base", 0, 100),
                    ParamSpec::int("seed", 0, 1_000_000),
                ],
            }
        }
    }

    impl InputModel for Model {
        fn spec(&self) -> &[ParamSpec] {
            &self.spec
        }

        fn materialize(&self, params: &[ParamValue]) -> ProgInput {
            let n = params[0].as_i().max(1) as usize;
            let base = params[1].as_i();
            let mut rng = StdRng::seed_from_u64(params[2].as_i() as u64);
            let data: Vec<i64> = (0..n).map(|_| base + rng.random_range(0..20i64)).collect();
            ProgInput::new(vec![], vec![Stream::I(data)])
        }

        fn reference(&self) -> Vec<ParamValue> {
            // all values in [5, 25): the `v > 50` path never runs
            vec![ParamValue::I(32), ParamValue::I(5), ParamValue::I(42)]
        }
    }

    fn quick_cfg(level: f64, strategy: SearchStrategy) -> MinpsidConfig {
        MinpsidConfig {
            protection_level: level,
            campaign: CampaignConfig {
                injections: 200,
                per_inst_injections: 12,
                seed: 7,
                ..CampaignConfig::default()
            },
            ga: GaConfig {
                population: 6,
                max_generations: 4,
                seed: 11,
                ..GaConfig::default()
            },
            max_inputs: 8,
            stagnation_patience: 2,
            strategy,
            ..MinpsidConfig::default()
        }
    }

    #[test]
    fn minpsid_finds_incubative_instructions() {
        let m = module();
        let model = Model::new();
        let r = run_minpsid(&m, &model, &quick_cfg(0.5, SearchStrategy::Genetic)).unwrap();
        assert!(
            !r.incubative.is_empty(),
            "the threshold branch must surface incubative instructions"
        );
        assert!(r.inputs_searched >= 1);
        assert_eq!(r.incubative_history.len(), r.inputs_searched);
        // cumulative count is non-decreasing
        assert!(r.incubative_history.windows(2).all(|w| w[0] <= w[1]));
        assert!(r.timings.ref_fi > Duration::ZERO);
        assert!(r.timings.search > Duration::ZERO);
    }

    #[test]
    fn minpsid_recovers_coverage_on_an_adversarial_input() {
        let m = module();
        let model = Model::new();
        let cfg = quick_cfg(0.6, SearchStrategy::Genetic);

        let baseline = run_baseline_sid(&m, &model, &cfg).unwrap();
        let hardened = run_minpsid(&m, &model, &cfg).unwrap();

        // adversarial input: every value above the threshold
        let bad_params = vec![ParamValue::I(48), ParamValue::I(90), ParamValue::I(3)];
        let bad_input = model.materialize(&bad_params);

        let base_cov =
            measure_coverage(&m, &baseline.protected, &bad_input, &cfg.campaign).unwrap();
        let hard_cov =
            measure_coverage(&m, &hardened.protected, &bad_input, &cfg.campaign).unwrap();

        assert!(
            hard_cov.coverage >= base_cov.coverage,
            "MINPSID must not lose coverage vs baseline on the adversarial input: \
             baseline={:.3}, minpsid={:.3}",
            base_cov.coverage,
            hard_cov.coverage
        );
    }

    #[test]
    fn reprioritized_selection_includes_incubative_instructions() {
        let m = module();
        let model = Model::new();
        let cfg = quick_cfg(0.7, SearchStrategy::Genetic);
        let r = run_minpsid(&m, &model, &cfg).unwrap();
        // at a high protection level, re-prioritized incubative
        // instructions should be selected (that is the whole point)
        let selected_incubative = r.incubative.iter().filter(|&&i| r.selection[i]).count();
        assert!(
            selected_incubative > 0,
            "incubative instructions must be prioritized: {:?}",
            r.incubative
        );
    }

    #[test]
    fn shared_cache_eliminates_repeat_golden_runs() {
        let m = module();
        let model = Model::new();
        let cfg = quick_cfg(0.5, SearchStrategy::Genetic);
        let cache = GoldenCache::new();
        let a = run_minpsid_cached(&m, &model, &cfg, &cache).unwrap();
        let misses_after_first = cache.misses();
        assert!(misses_after_first >= 1);
        // identical rerun: every golden run is served from the cache, and
        // the result is unchanged (campaigns are seed-deterministic)
        let b = run_minpsid_cached(&m, &model, &cfg, &cache).unwrap();
        assert_eq!(cache.misses(), misses_after_first);
        assert!(cache.hits() >= misses_after_first);
        assert_eq!(a.incubative, b.incubative);
        assert_eq!(a.expected_coverage, b.expected_coverage);
    }

    #[test]
    fn random_strategy_runs_to_completion() {
        let m = module();
        let model = Model::new();
        let r = run_minpsid(&m, &model, &quick_cfg(0.5, SearchStrategy::Random)).unwrap();
        assert!(r.inputs_searched >= 1);
    }

    fn journal_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "minpsid-pipeline-journal-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn same_result(a: &MinpsidResult, b: &MinpsidResult) {
        assert_eq!(a.selection, b.selection);
        assert_eq!(a.incubative, b.incubative);
        assert_eq!(a.incubative_history, b.incubative_history);
        assert_eq!(a.inputs_searched, b.inputs_searched);
        assert_eq!(a.expected_coverage, b.expected_coverage);
    }

    /// One test covers fresh-journaled, resumed, and interrupted runs so
    /// nothing else races the process-wide interrupt flag.
    #[test]
    fn journaled_runs_are_bit_identical_and_resumable() {
        let m = module();
        let model = Model::new();
        let cfg = quick_cfg(0.5, SearchStrategy::Genetic);
        let plain = run_minpsid(&m, &model, &cfg).unwrap();

        let dir = journal_dir("pipeline");
        let mfp = crate::cache::module_fingerprint(&m);
        let cfp = minpsid_config_fingerprint(&cfg);

        // fresh journaled run == plain run
        {
            let journal = CampaignJournal::open(&dir, mfp, cfp).unwrap();
            let fresh =
                run_minpsid_journaled(&m, &model, &cfg, &GoldenCache::new(), &journal).unwrap();
            same_result(&plain, &fresh);
            let (_, appended) = journal.usage();
            assert!(appended > 0, "a fresh run journals its work");
        }

        // resumed run (fresh cache, reopened journal) == plain run, with
        // nearly all injections served from the log
        {
            let journal = CampaignJournal::open(&dir, mfp, cfp).unwrap();
            let resumed =
                run_minpsid_journaled(&m, &model, &cfg, &GoldenCache::new(), &journal).unwrap();
            same_result(&plain, &resumed);
            let (served, appended) = journal.usage();
            assert!(served > 0, "a completed journal serves everything");
            assert!(
                appended <= 1,
                "only the (non-idempotent) selection record is re-appended, got {appended}"
            );
        }

        // interrupt before the search loop: progress is kept, a resumed
        // run still matches
        let dir2 = journal_dir("pipeline-interrupt");
        {
            let journal = CampaignJournal::open(&dir2, mfp, cfp).unwrap();
            interrupt::request();
            let r = run_minpsid_journaled(&m, &model, &cfg, &GoldenCache::new(), &journal);
            interrupt::clear();
            assert!(matches!(r, Err(PipelineError::Interrupted)));
        }
        {
            let journal = CampaignJournal::open(&dir2, mfp, cfp).unwrap();
            let (recovered, _) = journal.recovery_stats();
            assert!(recovered > 0, "the interrupted run journaled its ref FI");
            let resumed =
                run_minpsid_journaled(&m, &model, &cfg, &GoldenCache::new(), &journal).unwrap();
            same_result(&plain, &resumed);
        }

        // a config change is refused (journal belongs to different work)
        let other = quick_cfg(0.9, SearchStrategy::Genetic);
        assert!(CampaignJournal::open(&dir, mfp, minpsid_config_fingerprint(&other)).is_err());

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn incremental_runs_serve_sections_from_the_store() {
        let m = module();
        let model = Model::new();
        let cfg = quick_cfg(0.5, SearchStrategy::Genetic);
        let plain = run_minpsid(&m, &model, &cfg).unwrap();
        assert!(plain.table_stats.is_none(), "no store, no memoization");

        let dir = journal_dir("tables");
        let store = Arc::new(minpsid_store::ArtifactStore::open(&dir).unwrap());
        // cold: every section misses, executes, and seals a table
        let cache = GoldenCache::with_store(64, store.clone());
        let cold = run_minpsid_cached(&m, &model, &cfg, &cache).unwrap();
        same_result(&plain, &cold);
        let ts = cold.table_stats.unwrap();
        assert!(ts.injections_executed > 0, "{ts:?}");
        assert_eq!(ts.injections_served, 0, "{ts:?}");
        assert!(ts.tables_sealed > 0, "{ts:?}");

        // warm rerun (fresh golden cache, same store): every injection is
        // served from sealed tables; the interpreter never injects
        let cache = GoldenCache::with_store(64, store);
        let warm = run_minpsid_cached(&m, &model, &cfg, &cache).unwrap();
        same_result(&plain, &warm);
        let ts = warm.table_stats.unwrap();
        assert_eq!(ts.injections_executed, 0, "{ts:?}");
        assert!(ts.injections_served > 0, "{ts:?}");
        assert!(ts.sections_hit > 0, "{ts:?}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_fingerprint_ignores_thread_count_and_deadline() {
        let a = quick_cfg(0.5, SearchStrategy::Genetic);
        let mut b = a.clone();
        b.campaign.threads = 13;
        assert_eq!(
            minpsid_config_fingerprint(&a),
            minpsid_config_fingerprint(&b)
        );
        // a deadline changes how much work runs, not what it computes: a
        // truncated journal must be resumable under a looser budget
        let mut d = a.clone();
        d.deadline_secs = Some(3.5);
        assert_eq!(
            minpsid_config_fingerprint(&a),
            minpsid_config_fingerprint(&d)
        );
        let mut c = a.clone();
        c.protection_level = 0.6;
        assert_ne!(
            minpsid_config_fingerprint(&a),
            minpsid_config_fingerprint(&c)
        );
        // retry/quarantine knobs *do* participate (they can change which
        // outcomes get recorded)
        let mut s = a.clone();
        s.campaign.sched.quarantine_after = 9;
        assert_ne!(
            minpsid_config_fingerprint(&a),
            minpsid_config_fingerprint(&s)
        );
    }

    #[test]
    fn expired_deadline_still_produces_an_annotated_report() {
        let m = module();
        let model = Model::new();
        let mut cfg = quick_cfg(0.5, SearchStrategy::Genetic);
        cfg.deadline_secs = Some(0.0); // already expired at start
        let r = run_minpsid(&m, &model, &cfg).unwrap();
        assert_eq!(r.inputs_searched, 0, "search never starts past deadline");
        assert!(r.sched.truncated > 0, "ref FI is truncated");
        assert!(
            r.sched.completeness() < 1.0,
            "the report must confess its incompleteness: {:?}",
            r.sched
        );
        // unbounded runs report full completeness
        let full = run_minpsid(&m, &model, &quick_cfg(0.5, SearchStrategy::Genetic)).unwrap();
        assert_eq!(full.sched.completeness(), 1.0);
        assert_eq!(full.sched.truncated, 0);
    }

    #[test]
    fn search_terminates_on_stagnation() {
        let m = module();
        let model = Model::new();
        let mut cfg = quick_cfg(0.5, SearchStrategy::Genetic);
        cfg.max_inputs = 100; // only stagnation can stop us in reasonable time
        cfg.stagnation_patience = 2;
        let r = run_minpsid(&m, &model, &cfg).unwrap();
        assert!(
            r.inputs_searched < 100,
            "stagnation patience must terminate the search"
        );
    }
}
