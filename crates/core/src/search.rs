//! The input search engine (paper Fig. 4 ③–⑥): a genetic algorithm whose
//! fitness is the weighted-CFG distance to the search history, plus the
//! blind random searcher used as the baseline in Fig. 7.
//!
//! The search itself only *profiles* candidate inputs (a single
//! interpreter run per candidate, via `wcfg::profile_input`); all actual
//! fault-injection campaigns in the surrounding pipeline go through the
//! faultsim `CampaignEngine`, which is where the scheduler, journal, and
//! thread-count knobs attach.

use crate::cache::input_fingerprint;
use crate::input::{crossover, mutate, InputModel, ParamValue};
use crate::wcfg::{fitness_score, fitness_score_normalized, indexed_cfg_list, profile_input};
use minpsid_faultsim::{CampaignConfig, Deadline};
use minpsid_interp::ProgInput;
use minpsid_ir::Module;
use minpsid_trace as trace;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Memoized profiling results, keyed by input fingerprint. The crash-safe
/// journal implements this so a resumed search replays GA evaluations from
/// the log instead of re-interpreting every candidate; fitness is a pure
/// function of the CFG list and the history, so a served list yields the
/// exact score the original run computed.
pub trait EvalMemo {
    /// The indexed CFG list previously recorded for this input, if any.
    fn cfg_list(&self, input_fp: u64) -> Option<Vec<u64>>;
    /// Record a freshly profiled input's indexed CFG list.
    fn record_cfg_list(&self, input_fp: u64, list: &[u64]);
}

/// Which fitness function drives the GA (Eq. 3 is the paper's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitnessKind {
    /// Unnormalized Euclidean distance over indexed CFG lists (Eq. 3).
    #[default]
    Euclidean,
    /// Shape-normalized variant (see `wcfg::fitness_score_normalized`).
    NormalizedEuclidean,
}

/// GA hyper-parameters. Mutation 0.4 / crossover 0.05 follow the paper's
/// §V-B1 choice of "common heuristics used in GA".
#[derive(Debug, Clone)]
pub struct GaConfig {
    pub population: usize,
    pub mutation_rate: f64,
    pub crossover_rate: f64,
    /// Fitness function (Eq. 3 by default).
    pub fitness: FitnessKind,
    /// Stop an inner GA search when the best fitness has not improved for
    /// this many generations ("the current GA search terminates when the
    /// fitness score no longer improves").
    pub patience: usize,
    /// Hard cap on inner generations.
    pub max_generations: usize,
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 10,
            mutation_rate: 0.4,
            crossover_rate: 0.05,
            fitness: FitnessKind::Euclidean,
            patience: 2,
            max_generations: 8,
            seed: 1234,
        }
    }
}

/// An input accepted by the search, with the indexed CFG list its fitness
/// was scored against (all the pipeline needs for the history; carrying
/// the full `Profile` would defeat memoized resume).
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    pub params: Vec<ParamValue>,
    pub input: ProgInput,
    pub fitness: f64,
    pub cfg_list: Vec<u64>,
}

/// The search engine: owns the history of indexed CFG lists against which
/// fitness is evaluated.
pub struct SearchEngine<'a> {
    module: &'a Module,
    model: &'a dyn InputModel,
    campaign: CampaignConfig,
    ga: GaConfig,
    history: Vec<Vec<u64>>,
    rng: StdRng,
    memo: Option<&'a dyn EvalMemo>,
    deadline: Deadline,
    /// Profiled executions performed *or served from a memo* — memo hits
    /// count so an interrupted-and-resumed search reports the same totals
    /// (and emits the same trace events) as an uninterrupted one.
    pub profiled_runs: u64,
    /// How many of `profiled_runs` were served from the memo.
    pub memo_served: u64,
}

impl<'a> SearchEngine<'a> {
    pub fn new(
        module: &'a Module,
        model: &'a dyn InputModel,
        campaign: CampaignConfig,
        ga: GaConfig,
    ) -> Self {
        let rng = StdRng::seed_from_u64(ga.seed);
        SearchEngine {
            module,
            model,
            campaign,
            ga,
            history: Vec::new(),
            rng,
            memo: None,
            deadline: Deadline::none(),
            profiled_runs: 0,
            memo_served: 0,
        }
    }

    /// Attach a memo (e.g. a crash-safe journal) consulted before every
    /// candidate profiling run and updated after every fresh one.
    pub fn set_eval_memo(&mut self, memo: &'a dyn EvalMemo) {
        self.memo = Some(memo);
    }

    /// Bound the search by a wall-clock deadline: GA generations and
    /// annealing steps stop early once it expires, returning the best
    /// candidate found so far. Unbounded runs are unaffected, so a run
    /// without a deadline stays bit-identical to one that never expires.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
    }

    /// Record an accepted input's indexed CFG list (the reference input is
    /// recorded before the search starts).
    pub fn record_history(&mut self, list: Vec<u64>) {
        self.history.push(list);
    }

    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Evaluate one parameter vector: materialize, profile (or serve the
    /// CFG list from the memo), score. `None` if the input errors out
    /// (filtered per §III-A2).
    fn evaluate(&mut self, params: Vec<ParamValue>) -> Option<ScoredCandidate> {
        let input = self.model.materialize(&params);
        let fp = input_fingerprint(&input);
        let list = match self.memo.and_then(|m| m.cfg_list(fp)) {
            Some(list) => {
                self.memo_served += 1;
                list
            }
            None => {
                let profile = profile_input(self.module, &input, &self.campaign).ok()?;
                let list = indexed_cfg_list(&profile);
                if let Some(m) = self.memo {
                    m.record_cfg_list(fp, &list);
                }
                list
            }
        };
        self.profiled_runs += 1;
        let fitness = match self.ga.fitness {
            FitnessKind::Euclidean => fitness_score(&list, &self.history),
            FitnessKind::NormalizedEuclidean => fitness_score_normalized(&list, &self.history),
        };
        Some(ScoredCandidate {
            params,
            input,
            cfg_list: list,
            fitness,
        })
    }

    fn random_candidate(&mut self, attempts: usize) -> Option<ScoredCandidate> {
        for _ in 0..attempts {
            let params = self.model.random(&mut self.rng);
            if let Some(c) = self.evaluate(params) {
                return Some(c);
            }
        }
        None
    }

    /// One full GA search (Fig. 4 ④–⑥): evolve a population until fitness
    /// stagnates, return the fittest input found. Does *not* record it in
    /// the history — the caller does that after the FI step accepts it.
    pub fn next_ga_input(&mut self) -> Option<SearchOutcome> {
        let pop_size = self.ga.population.max(2);
        let mut pop: Vec<ScoredCandidate> = Vec::with_capacity(pop_size);
        for _ in 0..pop_size {
            if let Some(c) = self.random_candidate(10) {
                pop.push(c);
            }
        }
        if pop.is_empty() {
            return None;
        }
        sort_by_fitness(&mut pop);
        let mut best = pop[0].fitness;
        let mut stale = 0usize;
        // which searched input this GA round is producing (1-based, like
        // the pipeline's `search_input` events)
        let input_index = self.history.len() as u64;

        for gen in 0..self.ga.max_generations {
            if self.deadline.exceeded() {
                break; // out of budget: ship the fittest survivor
            }
            let evals_before = self.profiled_runs;
            // offspring via mutation
            let mut offspring: Vec<Vec<ParamValue>> = Vec::new();
            for c in &pop {
                if self.rng.random_range(0.0..1.0) < self.ga.mutation_rate {
                    offspring.push(mutate(self.model.spec(), &c.params, &mut self.rng));
                }
            }
            // offspring via crossover of two random parents
            if pop.len() >= 2 && self.rng.random_range(0.0..1.0) < self.ga.crossover_rate {
                let a = self.rng.random_range(0..pop.len());
                let mut b = self.rng.random_range(0..pop.len());
                if a == b {
                    b = (b + 1) % pop.len();
                }
                let (x, y) = crossover(&pop[a].params, &pop[b].params, &mut self.rng);
                offspring.push(x);
                offspring.push(y);
            }
            for params in offspring {
                if let Some(c) = self.evaluate(params) {
                    pop.push(c);
                }
            }
            // survival of the fittest
            sort_by_fitness(&mut pop);
            pop.truncate(pop_size);

            if trace::active() {
                let mean = pop.iter().map(|c| c.fitness).sum::<f64>() / pop.len() as f64;
                trace::emit(trace::Event::GaGeneration {
                    input_index,
                    generation: gen as u64,
                    best_fitness: pop[0].fitness,
                    mean_fitness: mean,
                    population: pop.len() as u64,
                    evals: self.profiled_runs - evals_before,
                });
            }

            if pop[0].fitness > best {
                best = pop[0].fitness;
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.ga.patience {
                    break;
                }
            }
        }

        let winner = pop.into_iter().next().unwrap();
        Some(SearchOutcome {
            params: winner.params,
            input: winner.input,
            fitness: winner.fitness,
            cfg_list: winner.cfg_list,
        })
    }

    /// Blind random search (the Fig. 7 baseline): a single random valid
    /// input, no fitness guidance.
    pub fn next_random_input(&mut self) -> Option<SearchOutcome> {
        let c = self.random_candidate(20)?;
        Some(SearchOutcome {
            params: c.params,
            input: c.input,
            fitness: c.fitness,
            cfg_list: c.cfg_list,
        })
    }

    /// Simulated-annealing search — the paper's future-work direction of
    /// "more efficient fuzzing algorithms and heuristics" (§X): a single
    /// mutation chain with temperature-controlled acceptance, spending a
    /// comparable evaluation budget to one GA round but without a
    /// population. Accepts downhill moves with probability
    /// `exp(Δ/T)`, geometric cooling.
    pub fn next_annealing_input(&mut self) -> Option<SearchOutcome> {
        let steps = (self.ga.population * self.ga.max_generations).max(4);
        let mut current = self.random_candidate(10)?;
        let mut best_params = current.params.clone();
        let mut best_fitness = current.fitness;

        // scale T0 to the starting fitness so acceptance is meaningful
        // for both raw and normalized fitness magnitudes
        let mut temp = (current.fitness.abs().max(1e-6)) * 0.5;
        let cooling = 0.85f64;

        for _ in 0..steps {
            if self.deadline.exceeded() {
                break; // out of budget: ship the best point seen
            }
            let proposal = mutate(self.model.spec(), &current.params, &mut self.rng);
            let Some(cand) = self.evaluate(proposal) else {
                continue; // invalid input: stay put
            };
            let delta = cand.fitness - current.fitness;
            let accept = delta >= 0.0 || {
                let p = (delta / temp.max(1e-12)).exp();
                self.rng.random_range(0.0..1.0) < p
            };
            if accept {
                current = cand;
                if current.fitness > best_fitness {
                    best_fitness = current.fitness;
                    best_params = current.params.clone();
                }
            }
            temp *= cooling;
        }

        // re-materialize the best point seen (the chain may have moved on)
        let best = self.evaluate(best_params)?;
        Some(SearchOutcome {
            params: best.params,
            input: best.input,
            fitness: best.fitness,
            cfg_list: best.cfg_list,
        })
    }
}

/// Convenience wrapper used by experiments that only need the baseline.
pub fn random_searcher(
    module: &Module,
    model: &dyn InputModel,
    campaign: &CampaignConfig,
    seed: u64,
) -> Option<SearchOutcome> {
    let mut engine = SearchEngine::new(
        module,
        model,
        campaign.clone(),
        GaConfig {
            seed,
            ..GaConfig::default()
        },
    );
    engine.next_random_input()
}

struct ScoredCandidate {
    params: Vec<ParamValue>,
    input: ProgInput,
    cfg_list: Vec<u64>,
    fitness: f64,
}

fn sort_by_fitness(pop: &mut [ScoredCandidate]) {
    pop.sort_by(|a, b| {
        b.fitness
            .partial_cmp(&a.fitness)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{ParamSpec, ParamValue};
    use minpsid_interp::Scalar;

    struct ToyModel {
        spec: Vec<ParamSpec>,
    }

    impl ToyModel {
        fn new() -> Self {
            ToyModel {
                spec: vec![ParamSpec::int("n", 1, 200)],
            }
        }
    }

    impl InputModel for ToyModel {
        fn spec(&self) -> &[ParamSpec] {
            &self.spec
        }

        fn materialize(&self, params: &[ParamValue]) -> ProgInput {
            ProgInput::scalars(vec![Scalar::I(params[0].as_i())])
        }

        fn reference(&self) -> Vec<ParamValue> {
            vec![ParamValue::I(10)]
        }
    }

    fn module() -> Module {
        minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                let acc = 0;
                for i = 0 to n { acc = acc + i; }
                out_i(acc);
            }
            "#,
            "search-test",
        )
        .unwrap()
    }

    #[test]
    fn ga_prefers_inputs_far_from_history() {
        let m = module();
        let model = ToyModel::new();
        let cfg = CampaignConfig::quick(1);
        let mut engine = SearchEngine::new(&m, &model, cfg.clone(), GaConfig::default());
        // history: the reference input n=10
        let ref_profile = profile_input(&m, &model.materialize(&model.reference()), &cfg).unwrap();
        engine.record_history(indexed_cfg_list(&ref_profile));

        let got = engine.next_ga_input().expect("search succeeds");
        // the trip count of the chosen input should be far from 10 —
        // fitness is monotone in |n - 10| for this toy kernel
        let n = got.params[0].as_i();
        assert!(
            (n - 10).abs() > 40,
            "GA should wander far from the reference (n={n})"
        );
        assert!(got.fitness > 0.0);
    }

    #[test]
    fn annealing_finds_distant_inputs_and_is_deterministic() {
        let m = module();
        let model = ToyModel::new();
        let cfg = CampaignConfig::quick(6);
        let ref_list = indexed_cfg_list(
            &profile_input(&m, &model.materialize(&model.reference()), &cfg).unwrap(),
        );
        let run = |seed: u64| {
            let mut e = SearchEngine::new(
                &m,
                &model,
                cfg.clone(),
                GaConfig {
                    seed,
                    population: 5,
                    max_generations: 4,
                    ..GaConfig::default()
                },
            );
            e.record_history(ref_list.clone());
            e.next_annealing_input().unwrap()
        };
        let a = run(3);
        assert!(a.fitness > 0.0);
        // annealing is a *local* ±10% mutation chain: it must end away
        // from the reference, but unlike the GA it cannot teleport across
        // the domain, so the bar is lower than the GA test's
        assert!(
            (a.params[0].as_i() - 10).abs() > 5,
            "annealing should drift away from the reference (n={})",
            a.params[0].as_i()
        );
        let b = run(3);
        assert_eq!(a.params, b.params, "deterministic given the seed");
    }

    #[test]
    fn random_searcher_returns_valid_inputs() {
        let m = module();
        let model = ToyModel::new();
        let cfg = CampaignConfig::quick(2);
        let got = random_searcher(&m, &model, &cfg, 7).unwrap();
        let n = got.params[0].as_i();
        assert!((1..=200).contains(&n));
    }

    #[test]
    fn search_is_deterministic_given_seed() {
        let m = module();
        let model = ToyModel::new();
        let cfg = CampaignConfig::quick(3);
        let ref_list = indexed_cfg_list(
            &profile_input(&m, &model.materialize(&model.reference()), &cfg).unwrap(),
        );
        let run = |seed| {
            let mut e = SearchEngine::new(
                &m,
                &model,
                cfg.clone(),
                GaConfig {
                    seed,
                    ..GaConfig::default()
                },
            );
            e.record_history(ref_list.clone());
            e.next_ga_input().unwrap().params
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn engine_counts_profiled_runs() {
        let m = module();
        let model = ToyModel::new();
        let cfg = CampaignConfig::quick(4);
        let ref_list = indexed_cfg_list(
            &profile_input(&m, &model.materialize(&model.reference()), &cfg).unwrap(),
        );
        let mut e = SearchEngine::new(&m, &model, cfg, GaConfig::default());
        e.record_history(ref_list);
        let _ = e.next_ga_input();
        assert!(e.profiled_runs >= GaConfig::default().population as u64);
    }
}
