//! Weighted CFG profiling and the GA fitness function (paper Fig. 5,
//! Eq. 3).

use minpsid_faultsim::CampaignConfig;
use minpsid_interp::{ExecConfig, Interp, Profile, ProgInput, Termination};
use minpsid_ir::Module;

/// Execute `input` once with profiling and return the profile — the
/// dynamic-profiling step ⑤ of Fig. 4. Fails on inputs that error out
/// (those are filtered, per the input-generation rules of §III-A2).
pub fn profile_input(
    module: &Module,
    input: &ProgInput,
    campaign: &CampaignConfig,
) -> Result<Profile, Termination> {
    let exec = ExecConfig {
        profile: true,
        ..campaign.exec.clone()
    };
    let r = Interp::new(module, exec).run(input);
    if r.termination != Termination::Exit {
        return Err(r.termination);
    }
    Ok(r.profile.expect("profiling enabled"))
}

/// The indexed weighted-CFG list of a profile: per-basic-block dynamic
/// entry counts, concatenated over all functions (Fig. 5's list form).
pub fn indexed_cfg_list(profile: &Profile) -> Vec<u64> {
    profile.indexed_cfg_list()
}

/// Fitness of a candidate's indexed CFG list against the search history
/// (Eq. 3): the Euclidean distances to every historical list, summed and
/// divided by `|M| + 1`. Higher is better — a distant execution shape
/// means new paths, hence likely new error-propagation behaviour.
pub fn fitness_score(current: &[u64], history: &[Vec<u64>]) -> f64 {
    if history.is_empty() {
        return f64::INFINITY; // first input is always novel
    }
    let mut sum = 0.0;
    for h in history {
        assert_eq!(
            current.len(),
            h.len(),
            "all inputs share the static CFG, so lists have equal length"
        );
        let mut sq = 0.0;
        for (a, b) in current.iter().zip(h) {
            let d = *a as f64 - *b as f64;
            sq += d * d;
        }
        sum += sq.sqrt();
    }
    sum / (history.len() as f64 + 1.0)
}

/// Shape-normalized fitness: each indexed CFG list is scaled to sum to 1
/// before the Eq. 3 distance, so the score measures differences in
/// execution *shape* (which paths, how often relative to each other)
/// rather than raw trip counts.
///
/// The paper's fitness is the unnormalized [`fitness_score`]; this
/// variant exists because the scaled-down benchmark generators randomize
/// instance sizes over wide ranges, and raw Euclidean distance is then
/// dominated by size rather than by the behavioural modes that harbour
/// incubative instructions (see the Fig. 7 discussion in EXPERIMENTS.md).
pub fn fitness_score_normalized(current: &[u64], history: &[Vec<u64>]) -> f64 {
    if history.is_empty() {
        return f64::INFINITY;
    }
    let norm = |l: &[u64]| -> Vec<f64> {
        let total: u64 = l.iter().sum();
        let t = total.max(1) as f64;
        l.iter().map(|&v| v as f64 / t).collect()
    };
    let cur = norm(current);
    let mut sum = 0.0;
    for h in history {
        assert_eq!(current.len(), h.len());
        let hn = norm(h);
        let mut sq = 0.0;
        for (a, b) in cur.iter().zip(&hn) {
            let d = a - b;
            sq += d * d;
        }
        sum += sq.sqrt();
    }
    sum / (history.len() as f64 + 1.0)
}

/// Render one function's weighted CFG as Graphviz DOT: nodes are basic
/// blocks annotated with their dynamic entry counts, edges carry their
/// execution counts (the Fig. 5 picture, machine-generated).
pub fn weighted_cfg_dot(module: &Module, profile: &Profile, func: minpsid_ir::FuncId) -> String {
    use std::fmt::Write as _;
    let f = module.func(func);
    let cfg = minpsid_ir::Cfg::build(f);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", f.name);
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for (bid, block) in f.iter_blocks() {
        let label = block.name.as_deref().unwrap_or("bb");
        let count = profile.block_counts[func.index()][bid.index()];
        let _ = writeln!(
            out,
            "  b{} [label=\"BB{} {label}\\nentries: {count}\"];",
            bid.0, bid.0
        );
    }
    for &(from, to) in cfg.edges() {
        let w = profile.edge_count(func, from, to);
        let style = if w == 0 { ", style=dashed" } else { "" };
        let _ = writeln!(out, "  b{} -> b{} [label=\"{w}\"{style}];", from.0, to.0);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::Scalar;

    fn module() -> Module {
        minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                for i = 0 to n {
                    if i % 2 == 0 { out_i(i); }
                }
            }
            "#,
            "wcfg-test",
        )
        .unwrap()
    }

    #[test]
    fn profiles_differ_between_inputs() {
        let m = module();
        let cfg = CampaignConfig::quick(1);
        let p1 = profile_input(&m, &ProgInput::scalars(vec![Scalar::I(4)]), &cfg).unwrap();
        let p2 = profile_input(&m, &ProgInput::scalars(vec![Scalar::I(40)]), &cfg).unwrap();
        assert_ne!(indexed_cfg_list(&p1), indexed_cfg_list(&p2));
    }

    #[test]
    fn fitness_of_first_input_is_infinite() {
        assert_eq!(fitness_score(&[1, 2, 3], &[]), f64::INFINITY);
    }

    #[test]
    fn identical_execution_has_zero_fitness() {
        let l = vec![5u64, 9, 1];
        assert_eq!(fitness_score(&l, std::slice::from_ref(&l)), 0.0);
    }

    #[test]
    fn fitness_matches_eq3_by_hand() {
        // L = (0,0), history = {(3,4), (0,0)}: distances 5 and 0,
        // S_L = (5 + 0) / (2 + 1)
        let s = fitness_score(&[0, 0], &[vec![3, 4], vec![0, 0]]);
        assert!((s - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn farther_executions_score_higher() {
        let history = vec![vec![10u64, 10]];
        let near = fitness_score(&[11, 10], &history);
        let far = fitness_score(&[100, 10], &history);
        assert!(far > near);
    }

    #[test]
    fn dot_export_contains_blocks_and_edge_weights() {
        let m = module();
        let cfg = CampaignConfig::quick(1);
        let p = profile_input(&m, &ProgInput::scalars(vec![Scalar::I(6)]), &cfg).unwrap();
        let dot = weighted_cfg_dot(&m, &p, m.entry);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("entries:"));
        assert!(dot.contains("->"));
        // the loop body executed 6 times: some edge carries weight 6
        assert!(dot.contains("\"6\""), "{dot}");
    }

    #[test]
    fn trapping_input_is_rejected() {
        let m = minic::compile("fn main() { out_i(1 / arg_i(0)); }", "trap").unwrap();
        let cfg = CampaignConfig::quick(1);
        let r = profile_input(&m, &ProgInput::scalars(vec![Scalar::I(0)]), &cfg);
        assert!(r.is_err());
    }
}
