//! Injection campaigns: golden runs, whole-program FI, per-instruction FI.

use crate::outcome::{classify, Outcome, OutcomeCounts};
use crate::parallel::{default_threads, par_map};
use crate::stats::{binomial_ci, BinomialCi};
use minpsid_interp::{
    ExecConfig, FaultSpec, FaultTarget, Interp, Output, Profile, ProgInput, Termination,
};
use minpsid_ir::{GlobalInstId, Module};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Campaign parameters (defaults follow §III-A3 of the paper).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Whole-program campaign size (paper: 1000).
    pub injections: usize,
    /// Per-static-instruction campaign size (paper: 100).
    pub per_inst_injections: usize,
    /// RNG seed; campaigns are fully deterministic given the seed.
    pub seed: u64,
    /// Worker threads (the paper farms FI out over 160 cores).
    pub threads: usize,
    /// Hang threshold as a multiple of the golden run's dynamic steps.
    pub hang_multiplier: u64,
    /// Base interpreter limits for faulty runs.
    pub exec: ExecConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            injections: 1000,
            per_inst_injections: 100,
            seed: 42,
            threads: default_threads(),
            hang_multiplier: 10,
            exec: ExecConfig::default(),
        }
    }
}

impl CampaignConfig {
    /// Scaled-down preset for tests and tiny experiments.
    pub fn quick(seed: u64) -> Self {
        CampaignConfig {
            injections: 120,
            per_inst_injections: 20,
            seed,
            ..CampaignConfig::default()
        }
    }
}

/// The fault-free reference execution of (module, input).
#[derive(Debug, Clone)]
pub struct GoldenRun {
    pub output: Output,
    pub profile: Profile,
    pub steps: u64,
}

/// Execute the golden (fault-free, profiled) run. Fails if the program
/// does not exit cleanly — campaign inputs must be error-free, matching
/// the paper's input-generation rule §III-A2.
pub fn golden_run(
    module: &Module,
    input: &ProgInput,
    cfg: &CampaignConfig,
) -> Result<GoldenRun, Termination> {
    let exec = ExecConfig {
        profile: true,
        ..cfg.exec.clone()
    };
    let r = Interp::new(module, exec).run(input);
    if r.termination != Termination::Exit {
        return Err(r.termination);
    }
    Ok(GoldenRun {
        output: r.output,
        profile: r.profile.expect("profiling was enabled"),
        steps: r.steps,
    })
}

fn faulty_exec_config(cfg: &CampaignConfig, golden_steps: u64) -> ExecConfig {
    ExecConfig {
        profile: false,
        step_limit: golden_steps.saturating_mul(cfg.hang_multiplier).max(10_000),
        ..cfg.exec.clone()
    }
}

/// Result of a whole-program campaign.
#[derive(Debug, Clone)]
pub struct ProgramCampaign {
    pub counts: OutcomeCounts,
    /// 95 % Wilson interval on the SDC probability.
    pub sdc_ci: BinomialCi,
}

impl ProgramCampaign {
    pub fn sdc_prob(&self) -> f64 {
        self.counts.sdc_prob()
    }
}

/// Inject `cfg.injections` single-bit flips, each into a uniformly random
/// dynamic instruction execution and uniformly random bit, and classify
/// every outcome.
pub fn program_campaign(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
) -> ProgramCampaign {
    let population = golden.profile.injectable_execs;
    let mut counts = OutcomeCounts::default();
    if population == 0 || cfg.injections == 0 {
        return ProgramCampaign {
            counts,
            sdc_ci: binomial_ci(0, 0, 1.96),
        };
    }
    let interp = Interp::new(module, faulty_exec_config(cfg, golden.steps));
    let outcomes = par_map(cfg.injections, cfg.threads, |i| {
        // per-injection RNG: deterministic regardless of thread schedule
        let mut rng =
            StdRng::seed_from_u64(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let fault = FaultSpec {
            target: FaultTarget::NthDynamic(rng.random_range(0..population)),
            bit: rng.random_range(0..64),
        };
        let r = interp.run_with_fault(input, fault);
        debug_assert!(r.fault_applied, "dynamic index within population");
        classify(&golden.output, &r)
    });
    for o in outcomes {
        counts.record(o);
    }
    let sdc_ci = binomial_ci(counts.sdc, counts.total(), 1.96);
    ProgramCampaign { counts, sdc_ci }
}

/// Per-static-instruction SDC profile (dense in module numbering order).
#[derive(Debug, Clone)]
pub struct PerInstSdc {
    /// SDC probability of each static instruction; 0 for never-executed or
    /// non-injectable instructions.
    pub sdc_prob: Vec<f64>,
    /// Raw outcome counts per static instruction.
    pub counts: Vec<OutcomeCounts>,
}

impl PerInstSdc {
    pub fn len(&self) -> usize {
        self.sdc_prob.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sdc_prob.is_empty()
    }
}

/// Measure the SDC probability of every injectable static instruction by
/// injecting `cfg.per_inst_injections` faults into uniformly random dynamic
/// executions of it.
pub fn per_instruction_campaign(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
) -> PerInstSdc {
    let numbering = module.numbering();
    let n = numbering.len();
    let interp = Interp::new(module, faulty_exec_config(cfg, golden.steps));

    // collect the injectable, executed instructions
    let targets: Vec<(usize, GlobalInstId, u64)> = module
        .iter_insts()
        .filter(|(_, inst)| inst.injectable())
        .map(|(gid, _)| {
            let dense = numbering.index(gid);
            (dense, gid, golden.profile.inst_counts[dense])
        })
        .filter(|&(_, _, count)| count > 0)
        .collect();

    let per_target = par_map(targets.len(), cfg.threads, |t| {
        let (dense, gid, count) = targets[t];
        let mut counts = OutcomeCounts::default();
        for k in 0..cfg.per_inst_injections {
            let mut rng = StdRng::seed_from_u64(
                cfg.seed
                    ^ (dense as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
                    ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let fault = FaultSpec {
                target: FaultTarget::NthOfInst(gid, rng.random_range(0..count)),
                bit: rng.random_range(0..64),
            };
            let r = interp.run_with_fault(input, fault);
            debug_assert!(r.fault_applied);
            counts.record(classify(&golden.output, &r));
        }
        (dense, counts)
    });

    let mut sdc_prob = vec![0.0; n];
    let mut counts = vec![OutcomeCounts::default(); n];
    for (dense, c) in per_target {
        sdc_prob[dense] = c.sdc_prob();
        counts[dense] = c;
    }
    PerInstSdc { sdc_prob, counts }
}

/// Count one specific outcome in a program campaign (test/report helper).
pub fn outcome_fraction(counts: &OutcomeCounts, outcome: Outcome) -> f64 {
    let t = counts.total();
    if t == 0 {
        return 0.0;
    }
    let k = match outcome {
        Outcome::Benign => counts.benign,
        Outcome::Sdc => counts.sdc,
        Outcome::Crash => counts.crash,
        Outcome::Hang => counts.hang,
        Outcome::Detected => counts.detected,
    };
    k as f64 / t as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::Scalar;

    /// A small kernel with input-dependent branching: faults on the
    /// comparison flip the branch only when `x` is near the threshold.
    fn test_module() -> Module {
        minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                let acc = 0;
                for i = 0 to n {
                    let v = i * 3 + 1;
                    if v % 7 < 3 { acc = acc + v; }
                }
                out_i(acc);
            }
            "#,
            "campaign-test",
        )
        .unwrap()
    }

    fn input(n: i64) -> ProgInput {
        ProgInput::scalars(vec![Scalar::I(n)])
    }

    #[test]
    fn golden_run_profiles_and_exits() {
        let m = test_module();
        let g = golden_run(&m, &input(50), &CampaignConfig::default()).unwrap();
        assert_eq!(g.output.len(), 1);
        assert!(g.profile.injectable_execs > 0);
        assert!(g.steps > 100);
    }

    #[test]
    fn golden_run_rejects_trapping_input() {
        let m = minic::compile("fn main() { out_i(10 / arg_i(0)); }", "div").unwrap();
        let r = golden_run(&m, &input(0), &CampaignConfig::default());
        assert!(r.is_err());
    }

    #[test]
    fn program_campaign_accounts_for_every_injection() {
        let m = test_module();
        let cfg = CampaignConfig::quick(7);
        let g = golden_run(&m, &input(60), &cfg).unwrap();
        let c = program_campaign(&m, &input(60), &g, &cfg);
        assert_eq!(c.counts.total(), cfg.injections as u64);
        // a real program under random bit flips shows a mix of outcomes
        assert!(c.counts.benign > 0, "some faults must be masked");
        assert!(
            c.counts.sdc > 0,
            "some faults must corrupt the accumulator: {:?}",
            c.counts
        );
    }

    #[test]
    fn campaigns_are_deterministic_given_seed() {
        let m = test_module();
        let cfg = CampaignConfig::quick(99);
        let g = golden_run(&m, &input(40), &cfg).unwrap();
        let a = program_campaign(&m, &input(40), &g, &cfg);
        let b = program_campaign(&m, &input(40), &g, &cfg);
        assert_eq!(a.counts, b.counts);

        let pa = per_instruction_campaign(&m, &input(40), &g, &cfg);
        let pb = per_instruction_campaign(&m, &input(40), &g, &cfg);
        assert_eq!(pa.sdc_prob, pb.sdc_prob);
    }

    #[test]
    fn different_seeds_differ() {
        let m = test_module();
        let g = golden_run(&m, &input(40), &CampaignConfig::default()).unwrap();
        let a = program_campaign(&m, &input(40), &g, &CampaignConfig::quick(1));
        let b = program_campaign(&m, &input(40), &g, &CampaignConfig::quick(2));
        assert_ne!(a.counts, b.counts, "distinct seeds sample differently");
    }

    #[test]
    fn per_instruction_campaign_shapes_match_module() {
        let m = test_module();
        let cfg = CampaignConfig::quick(5);
        let g = golden_run(&m, &input(30), &cfg).unwrap();
        let p = per_instruction_campaign(&m, &input(30), &g, &cfg);
        assert_eq!(p.len(), m.num_insts());
        // the output instruction (out_i) is not injectable -> prob 0;
        // at least one arithmetic instruction must show SDCs
        assert!(p.sdc_prob.iter().any(|&x| x > 0.0));
        assert!(p.sdc_prob.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn per_inst_counts_hit_requested_sample_size() {
        let m = test_module();
        let cfg = CampaignConfig::quick(3);
        let g = golden_run(&m, &input(20), &cfg).unwrap();
        let p = per_instruction_campaign(&m, &input(20), &g, &cfg);
        for (dense, c) in p.counts.iter().enumerate() {
            let executed = g.profile.inst_counts[dense] > 0;
            let inst = m.inst(m.numbering().id_of(dense));
            if executed && inst.injectable() {
                assert_eq!(c.total(), cfg.per_inst_injections as u64);
            } else {
                assert_eq!(c.total(), 0);
            }
        }
    }

    #[test]
    fn single_threaded_and_parallel_agree() {
        let m = test_module();
        let mut cfg1 = CampaignConfig::quick(11);
        cfg1.threads = 1;
        let mut cfg4 = CampaignConfig::quick(11);
        cfg4.threads = 4;
        let g = golden_run(&m, &input(25), &cfg1).unwrap();
        let a = program_campaign(&m, &input(25), &g, &cfg1);
        let b = program_campaign(&m, &input(25), &g, &cfg4);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn hang_detection_catches_loop_bound_corruption() {
        // a loop whose bound lives in memory: flips on the bound load can
        // multiply the trip count far past the hang threshold
        let m = minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                let acc = 0;
                let i = 0;
                while i < n {
                    acc = acc + i;
                    i = i + 1;
                }
                out_i(acc);
            }
            "#,
            "hang-test",
        )
        .unwrap();
        let cfg = CampaignConfig {
            injections: 400,
            seed: 13,
            ..CampaignConfig::default()
        };
        let g = golden_run(&m, &input(100), &cfg).unwrap();
        let c = program_campaign(&m, &input(100), &g, &cfg);
        assert!(
            c.counts.hang > 0,
            "high-bit flips on `i`/`n` should hang: {:?}",
            c.counts
        );
    }
}
