//! Injection campaigns: golden runs, whole-program FI, per-instruction FI.
//!
//! ## Checkpointed injection
//!
//! Faulty runs are bit-identical to the golden run up to the injection
//! point, so [`golden_run`] captures a [`CheckpointStore`] of snapshots
//! and each injection restores the nearest snapshot at or before its
//! target and executes only the suffix. With an interval near
//! sqrt(golden_steps) this cuts the replayed prefix from O(steps) to
//! O(sqrt(steps)) per injection on average, which is where campaigns
//! spend nearly all their time. Results are bit-identical to cold runs:
//! the same `OutcomeCounts` for the same seed with checkpointing on, off,
//! or at any interval.

use crate::outcome::{classify, Outcome, OutcomeCounts};
use crate::parallel::{default_threads, par_map_init};
use crate::stats::{binomial_ci, BinomialCi};
use minpsid_interp::{
    auto_interval, CheckpointConfig, CheckpointStore, ExecConfig, ExecResult, FaultSpec,
    FaultTarget, Interp, MachineState, Output, Profile, ProgInput, Termination,
};
use minpsid_ir::{GlobalInstId, Module};
use minpsid_journal::{interrupt, CampaignJournal, Interrupted};
use minpsid_trace as trace;
use minpsid_trace::{CampaignCounters, CampaignKind, Histogram, OutcomeKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// How often the sampler thread publishes `campaign_progress` events.
const PROGRESS_INTERVAL: Duration = Duration::from_millis(50);

fn outcome_kind(o: Outcome) -> OutcomeKind {
    match o {
        Outcome::Benign => OutcomeKind::Benign,
        Outcome::Sdc => OutcomeKind::Sdc,
        Outcome::Crash => OutcomeKind::Crash,
        Outcome::Hang => OutcomeKind::Hang,
        Outcome::Detected => OutcomeKind::Detected,
        Outcome::EngineError => OutcomeKind::EngineError,
    }
}

fn outcome_tally(c: &OutcomeCounts) -> trace::OutcomeTally {
    trace::OutcomeTally {
        benign: c.benign,
        sdc: c.sdc,
        crash: c.crash,
        hang: c.hang,
        detected: c.detected,
        engine_error: c.engine_error,
    }
}

/// Aggregate a per-instruction campaign's outcome counts by enclosing
/// function and emit one `function_outcomes` event per touched function.
fn emit_function_outcomes(
    module: &Module,
    targets: &[(usize, GlobalInstId, u64)],
    counts: &[OutcomeCounts],
) {
    let mut per_func = vec![OutcomeCounts::default(); module.funcs.len()];
    for &(dense, gid, _) in targets {
        per_func[gid.func.index()].merge(&counts[dense]);
    }
    for (fi, agg) in per_func.iter().enumerate() {
        if agg.total() > 0 {
            trace::emit(trace::Event::FunctionOutcomes {
                func: module.funcs[fi].name.clone(),
                counts: outcome_tally(agg),
            });
        }
    }
}

/// When and how densely the golden run snapshots its state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointPolicy {
    /// Interval tuned to ~sqrt(golden_steps), capped so at most
    /// [`CampaignConfig::max_checkpoints`] snapshots are taken.
    #[default]
    Auto,
    /// Fixed interval in dynamic instructions.
    Every(u64),
    /// No snapshots; every injection replays from scratch.
    Disabled,
}

/// Campaign parameters (defaults follow §III-A3 of the paper).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Whole-program campaign size (paper: 1000).
    pub injections: usize,
    /// Per-static-instruction campaign size (paper: 100).
    pub per_inst_injections: usize,
    /// RNG seed; campaigns are fully deterministic given the seed.
    pub seed: u64,
    /// Worker threads (the paper farms FI out over 160 cores).
    pub threads: usize,
    /// Hang threshold as a multiple of the golden run's dynamic steps.
    pub hang_multiplier: u64,
    /// Base interpreter limits for faulty runs.
    pub exec: ExecConfig,
    /// Golden-run snapshot policy.
    pub checkpoints: CheckpointPolicy,
    /// Snapshot count cap under [`CheckpointPolicy::Auto`].
    pub max_checkpoints: u64,
    /// Total snapshot memory budget; exceeding it thins the store.
    pub checkpoint_mem_budget: usize,
    /// Harness chaos knob: deterministically panic inside every
    /// `n`-th-keyed injection worker. Exercises the `catch_unwind` →
    /// [`Outcome::EngineError`] degradation path in tests and smoke runs;
    /// `None` (the default) in real campaigns.
    pub chaos_panic_one_in: Option<u64>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            injections: 1000,
            per_inst_injections: 100,
            seed: 42,
            threads: default_threads(),
            hang_multiplier: 10,
            exec: ExecConfig::default(),
            checkpoints: CheckpointPolicy::Auto,
            max_checkpoints: 512,
            checkpoint_mem_budget: 256 << 20,
            chaos_panic_one_in: None,
        }
    }
}

impl CampaignConfig {
    /// Scaled-down preset for tests and tiny experiments.
    pub fn quick(seed: u64) -> Self {
        CampaignConfig {
            injections: 120,
            per_inst_injections: 20,
            seed,
            ..CampaignConfig::default()
        }
    }
}

/// The fault-free reference execution of (module, input).
#[derive(Debug, Clone)]
pub struct GoldenRun {
    pub output: Output,
    pub profile: Profile,
    pub steps: u64,
    /// Snapshots for resume-from-checkpoint injection; empty when
    /// checkpointing is disabled.
    pub checkpoints: CheckpointStore,
}

/// Execute the golden (fault-free, profiled) run and, unless disabled,
/// capture its checkpoint store. Fails if the program does not exit
/// cleanly — campaign inputs must be error-free, matching the paper's
/// input-generation rule §III-A2.
///
/// Two passes: a profiled pass (the profile is needed anyway and its
/// overhead would be charged to every snapshot clone), then an unprofiled
/// checkpointed pass whose interval is tuned from the first pass's step
/// count.
pub fn golden_run(
    module: &Module,
    input: &ProgInput,
    cfg: &CampaignConfig,
) -> Result<GoldenRun, Termination> {
    let _span = trace::span("golden_run");
    let exec = ExecConfig {
        profile: true,
        ..cfg.exec.clone()
    };
    let r = Interp::new(module, exec).run(input);
    if r.termination != Termination::Exit {
        return Err(r.termination);
    }

    let interval = match cfg.checkpoints {
        CheckpointPolicy::Auto => Some(auto_interval(r.steps, cfg.max_checkpoints)),
        CheckpointPolicy::Every(n) => Some(n.max(1)),
        CheckpointPolicy::Disabled => None,
    };
    let checkpoints = match interval {
        Some(interval) => {
            let exec = ExecConfig {
                profile: false,
                ..cfg.exec.clone()
            };
            let ck_cfg = CheckpointConfig {
                interval,
                mem_budget_bytes: cfg.checkpoint_mem_budget,
            };
            let (r2, snaps) = Interp::new(module, exec).run_with_checkpoint_config(input, ck_cfg);
            debug_assert_eq!(r2.output, r.output, "checkpointed replay diverged");
            debug_assert_eq!(r2.steps, r.steps);
            CheckpointStore::new(snaps)
        }
        None => CheckpointStore::default(),
    };

    Ok(GoldenRun {
        output: r.output,
        profile: r.profile.expect("profiling was enabled"),
        steps: r.steps,
        checkpoints,
    })
}

/// Run one injection: resume from the nearest safe snapshot when one
/// exists (faults early in the trace may precede the first snapshot),
/// otherwise replay from scratch. `st` is per-worker scratch whose buffers
/// are reused across injections.
fn inject(
    interp: &Interp<'_>,
    st: &mut MachineState,
    golden: &GoldenRun,
    input: &ProgInput,
    fault: FaultSpec,
) -> ExecResult {
    let snap = match fault.target {
        FaultTarget::NthDynamic(n) => golden.checkpoints.nearest_for_dynamic(n),
        FaultTarget::NthOfInst(gid, n) => golden
            .checkpoints
            .nearest_for_inst(interp.dense_index(gid), n),
    };
    match snap {
        Some(s) => interp.resume_with(st, s, input, fault),
        None => interp.run_with_fault(input, fault),
    }
}

/// Does the chaos knob fire for the injection with this deterministic
/// key? (Deterministic so interrupted-and-resumed runs see the same
/// engine errors as uninterrupted ones.)
fn chaos_fires(cfg: &CampaignConfig, key: u64) -> bool {
    matches!(cfg.chaos_panic_one_in, Some(n) if n > 0 && key.is_multiple_of(n))
}

/// Flat injection index of the per-instruction campaign's (dense, k)
/// pair, the chaos key shared by journaled and plain variants.
fn per_inst_chaos_key(cfg: &CampaignConfig, dense: usize, k: usize) -> u64 {
    (dense as u64) * (cfg.per_inst_injections as u64) + k as u64
}

/// [`inject`] with the worker hardened: a panic anywhere inside the
/// replay (an interpreter bug, or the chaos knob) degrades to
/// [`Outcome::EngineError`] instead of poisoning the worker pool and
/// aborting the campaign. The panic still prints to stderr — a degraded
/// run is visible, not silent.
fn inject_classified(
    interp: &Interp<'_>,
    st: &mut MachineState,
    golden: &GoldenRun,
    input: &ProgInput,
    fault: FaultSpec,
    chaos: bool,
) -> (Outcome, u64, u64) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        if chaos {
            panic!("chaos: injected worker panic (chaos_panic_one_in)");
        }
        inject(interp, st, golden, input, fault)
    }));
    match result {
        Ok(r) => {
            debug_assert!(r.fault_applied, "fault target within population");
            let skipped = r.resumed_at.unwrap_or(0);
            let executed = r.steps.saturating_sub(skipped);
            (classify(&golden.output, &r), executed, skipped)
        }
        Err(_) => {
            // the panic may have left the per-worker scratch mid-run;
            // drop it so the next injection starts clean
            *st = MachineState::default();
            (Outcome::EngineError, 0, 0)
        }
    }
}

fn faulty_exec_config(cfg: &CampaignConfig, golden_steps: u64) -> ExecConfig {
    ExecConfig {
        profile: false,
        step_limit: golden_steps.saturating_mul(cfg.hang_multiplier).max(10_000),
        ..cfg.exec.clone()
    }
}

/// Result of a whole-program campaign.
#[derive(Debug, Clone)]
pub struct ProgramCampaign {
    pub counts: OutcomeCounts,
    /// 95 % Wilson interval on the SDC probability.
    pub sdc_ci: BinomialCi,
}

impl ProgramCampaign {
    pub fn sdc_prob(&self) -> f64 {
        self.counts.sdc_prob()
    }
}

/// Inject `cfg.injections` single-bit flips, each into a uniformly random
/// dynamic instruction execution and uniformly random bit, and classify
/// every outcome.
pub fn program_campaign(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
) -> ProgramCampaign {
    let population = golden.profile.injectable_execs;
    let mut counts = OutcomeCounts::default();
    if population == 0 || cfg.injections == 0 {
        return ProgramCampaign {
            counts,
            sdc_ci: binomial_ci(0, 0, 1.96),
        };
    }
    let interp = Interp::new(module, faulty_exec_config(cfg, golden.steps));
    // capture once so workers pay no atomic load when tracing is off
    let tracing = trace::active();
    let counters = CampaignCounters::new(CampaignKind::Program, cfg.injections as u64);
    let suffix_steps = Histogram::new();
    let outcomes = trace::sample_campaign(&counters, PROGRESS_INTERVAL, || {
        par_map_init(
            cfg.injections,
            cfg.threads,
            MachineState::default,
            |st, i| {
                // per-injection RNG: deterministic regardless of thread schedule
                let mut rng = StdRng::seed_from_u64(
                    cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let fault = FaultSpec {
                    target: FaultTarget::NthDynamic(rng.random_range(0..population)),
                    bit: rng.random_range(0..64),
                };
                let (o, executed, skipped) = inject_classified(
                    &interp,
                    st,
                    golden,
                    input,
                    fault,
                    chaos_fires(cfg, i as u64),
                );
                if tracing {
                    counters.record(outcome_kind(o), executed, skipped);
                    suffix_steps.record(executed);
                }
                o
            },
        )
    });
    if tracing {
        suffix_steps.emit("fi.program.suffix_steps");
    }
    for o in outcomes {
        counts.record(o);
    }
    // engine errors carry no information about the program, so the CI is
    // over the injections that produced a real outcome
    let sdc_ci = binomial_ci(counts.sdc, counts.valid_total(), 1.96);
    ProgramCampaign { counts, sdc_ci }
}

/// [`program_campaign`] with crash-safe journaling: outcomes already in
/// `journal` (keyed by `(input_fp, injection index)`) are served without
/// re-execution, fresh outcomes are appended as they complete, and a
/// pending [`interrupt`] makes the campaign drain quickly and return
/// [`Interrupted`] with all finished work durable.
///
/// Bit-identical to [`program_campaign`]: every injection's fault is
/// drawn from an RNG seeded only by `(cfg.seed, index)`, so serving some
/// outcomes from the journal cannot perturb the rest.
pub fn program_campaign_journaled(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
    journal: &CampaignJournal,
    input_fp: u64,
) -> Result<ProgramCampaign, Interrupted> {
    let population = golden.profile.injectable_execs;
    let mut counts = OutcomeCounts::default();
    if population == 0 || cfg.injections == 0 {
        return Ok(ProgramCampaign {
            counts,
            sdc_ci: binomial_ci(0, 0, 1.96),
        });
    }
    let interp = Interp::new(module, faulty_exec_config(cfg, golden.steps));
    let tracing = trace::active();
    let counters = CampaignCounters::new(CampaignKind::Program, cfg.injections as u64);
    let outcomes = trace::sample_campaign(&counters, PROGRESS_INTERVAL, || {
        par_map_init(
            cfg.injections,
            cfg.threads,
            MachineState::default,
            |st, i| {
                if interrupt::requested() {
                    return None;
                }
                if let Some(o) = journal
                    .program_outcome(input_fp, i as u64)
                    .and_then(Outcome::from_u8)
                {
                    if tracing {
                        counters.record(outcome_kind(o), 0, 0);
                    }
                    return Some(o);
                }
                let mut rng = StdRng::seed_from_u64(
                    cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let fault = FaultSpec {
                    target: FaultTarget::NthDynamic(rng.random_range(0..population)),
                    bit: rng.random_range(0..64),
                };
                let (o, executed, skipped) = inject_classified(
                    &interp,
                    st,
                    golden,
                    input,
                    fault,
                    chaos_fires(cfg, i as u64),
                );
                journal.record_program(input_fp, i as u64, o.to_u8());
                if tracing {
                    counters.record(outcome_kind(o), executed, skipped);
                }
                Some(o)
            },
        )
    });
    let complete = outcomes.iter().all(Option::is_some);
    if !complete || interrupt::requested() {
        let _ = journal.sync();
        return Err(Interrupted);
    }
    for o in outcomes.into_iter().flatten() {
        counts.record(o);
    }
    let sdc_ci = binomial_ci(counts.sdc, counts.valid_total(), 1.96);
    Ok(ProgramCampaign { counts, sdc_ci })
}

/// Per-static-instruction SDC profile (dense in module numbering order).
#[derive(Debug, Clone)]
pub struct PerInstSdc {
    /// SDC probability of each static instruction; 0 for never-executed or
    /// non-injectable instructions.
    pub sdc_prob: Vec<f64>,
    /// Raw outcome counts per static instruction.
    pub counts: Vec<OutcomeCounts>,
}

impl PerInstSdc {
    pub fn len(&self) -> usize {
        self.sdc_prob.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sdc_prob.is_empty()
    }
}

/// Measure the SDC probability of every injectable static instruction by
/// injecting `cfg.per_inst_injections` faults into uniformly random dynamic
/// executions of it.
pub fn per_instruction_campaign(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
) -> PerInstSdc {
    let numbering = module.numbering();
    let n = numbering.len();
    let interp = Interp::new(module, faulty_exec_config(cfg, golden.steps));

    // collect the injectable, executed instructions
    let targets: Vec<(usize, GlobalInstId, u64)> = module
        .iter_insts()
        .filter(|(_, inst)| inst.injectable())
        .map(|(gid, _)| {
            let dense = numbering.index(gid);
            (dense, gid, golden.profile.inst_counts[dense])
        })
        .filter(|&(_, _, count)| count > 0)
        .collect();

    let tracing = trace::active();
    let counters = CampaignCounters::new(
        CampaignKind::PerInst,
        (targets.len() * cfg.per_inst_injections) as u64,
    );
    let per_target = trace::sample_campaign(&counters, PROGRESS_INTERVAL, || {
        par_map_init(
            targets.len(),
            cfg.threads,
            MachineState::default,
            |st, t| {
                let (dense, gid, count) = targets[t];
                let mut counts = OutcomeCounts::default();
                for k in 0..cfg.per_inst_injections {
                    let mut rng = StdRng::seed_from_u64(
                        cfg.seed
                            ^ (dense as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
                            ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let fault = FaultSpec {
                        target: FaultTarget::NthOfInst(gid, rng.random_range(0..count)),
                        bit: rng.random_range(0..64),
                    };
                    let chaos = chaos_fires(cfg, per_inst_chaos_key(cfg, dense, k));
                    let (o, executed, skipped) =
                        inject_classified(&interp, st, golden, input, fault, chaos);
                    if tracing {
                        counters.record(outcome_kind(o), executed, skipped);
                    }
                    counts.record(o);
                }
                (dense, counts)
            },
        )
    });

    let mut sdc_prob = vec![0.0; n];
    let mut counts = vec![OutcomeCounts::default(); n];
    for (dense, c) in per_target {
        sdc_prob[dense] = c.sdc_prob();
        counts[dense] = c;
    }
    if tracing {
        emit_function_outcomes(module, &targets, &counts);
    }
    PerInstSdc { sdc_prob, counts }
}

/// [`per_instruction_campaign`] with crash-safe journaling: injections
/// already journaled under `(input_fp, dense, k)` are served without
/// re-execution, fresh ones are appended, and a pending [`interrupt`]
/// returns [`Interrupted`] with all finished injections durable.
/// Bit-identical to the plain variant for the same reason as
/// [`program_campaign_journaled`].
pub fn per_instruction_campaign_journaled(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
    journal: &CampaignJournal,
    input_fp: u64,
) -> Result<PerInstSdc, Interrupted> {
    let numbering = module.numbering();
    let n = numbering.len();
    let interp = Interp::new(module, faulty_exec_config(cfg, golden.steps));

    let targets: Vec<(usize, GlobalInstId, u64)> = module
        .iter_insts()
        .filter(|(_, inst)| inst.injectable())
        .map(|(gid, _)| {
            let dense = numbering.index(gid);
            (dense, gid, golden.profile.inst_counts[dense])
        })
        .filter(|&(_, _, count)| count > 0)
        .collect();

    let tracing = trace::active();
    let counters = CampaignCounters::new(
        CampaignKind::PerInst,
        (targets.len() * cfg.per_inst_injections) as u64,
    );
    let per_target = trace::sample_campaign(&counters, PROGRESS_INTERVAL, || {
        par_map_init(
            targets.len(),
            cfg.threads,
            MachineState::default,
            |st, t| {
                let (dense, gid, count) = targets[t];
                let mut counts = OutcomeCounts::default();
                for k in 0..cfg.per_inst_injections {
                    if interrupt::requested() {
                        return (dense, counts, false);
                    }
                    if let Some(o) = journal
                        .per_inst_outcome(input_fp, dense as u64, k as u64)
                        .and_then(Outcome::from_u8)
                    {
                        counts.record(o);
                        if tracing {
                            counters.record(outcome_kind(o), 0, 0);
                        }
                        continue;
                    }
                    let mut rng = StdRng::seed_from_u64(
                        cfg.seed
                            ^ (dense as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
                            ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let fault = FaultSpec {
                        target: FaultTarget::NthOfInst(gid, rng.random_range(0..count)),
                        bit: rng.random_range(0..64),
                    };
                    let chaos = chaos_fires(cfg, per_inst_chaos_key(cfg, dense, k));
                    let (o, executed, skipped) =
                        inject_classified(&interp, st, golden, input, fault, chaos);
                    journal.record_per_inst(input_fp, dense as u64, k as u64, o.to_u8());
                    counts.record(o);
                    if tracing {
                        counters.record(outcome_kind(o), executed, skipped);
                    }
                }
                (dense, counts, true)
            },
        )
    });

    let complete = per_target.iter().all(|&(_, _, done)| done);
    if !complete || interrupt::requested() {
        let _ = journal.sync();
        return Err(Interrupted);
    }
    let mut sdc_prob = vec![0.0; n];
    let mut counts = vec![OutcomeCounts::default(); n];
    for (dense, c, _) in per_target {
        sdc_prob[dense] = c.sdc_prob();
        counts[dense] = c;
    }
    if tracing {
        emit_function_outcomes(module, &targets, &counts);
    }
    let _ = journal.sync();
    Ok(PerInstSdc { sdc_prob, counts })
}

/// Count one specific outcome in a program campaign (test/report helper).
pub fn outcome_fraction(counts: &OutcomeCounts, outcome: Outcome) -> f64 {
    let t = counts.total();
    if t == 0 {
        return 0.0;
    }
    let k = match outcome {
        Outcome::Benign => counts.benign,
        Outcome::Sdc => counts.sdc,
        Outcome::Crash => counts.crash,
        Outcome::Hang => counts.hang,
        Outcome::Detected => counts.detected,
        Outcome::EngineError => counts.engine_error,
    };
    k as f64 / t as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::Scalar;

    /// A small kernel with input-dependent branching: faults on the
    /// comparison flip the branch only when `x` is near the threshold.
    fn test_module() -> Module {
        minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                let acc = 0;
                for i = 0 to n {
                    let v = i * 3 + 1;
                    if v % 7 < 3 { acc = acc + v; }
                }
                out_i(acc);
            }
            "#,
            "campaign-test",
        )
        .unwrap()
    }

    fn input(n: i64) -> ProgInput {
        ProgInput::scalars(vec![Scalar::I(n)])
    }

    #[test]
    fn golden_run_profiles_and_exits() {
        let m = test_module();
        let g = golden_run(&m, &input(50), &CampaignConfig::default()).unwrap();
        assert_eq!(g.output.len(), 1);
        assert!(g.profile.injectable_execs > 0);
        assert!(g.steps > 100);
    }

    #[test]
    fn golden_run_rejects_trapping_input() {
        let m = minic::compile("fn main() { out_i(10 / arg_i(0)); }", "div").unwrap();
        let r = golden_run(&m, &input(0), &CampaignConfig::default());
        assert!(r.is_err());
    }

    #[test]
    fn program_campaign_accounts_for_every_injection() {
        let m = test_module();
        let cfg = CampaignConfig::quick(7);
        let g = golden_run(&m, &input(60), &cfg).unwrap();
        let c = program_campaign(&m, &input(60), &g, &cfg);
        assert_eq!(c.counts.total(), cfg.injections as u64);
        // a real program under random bit flips shows a mix of outcomes
        assert!(c.counts.benign > 0, "some faults must be masked");
        assert!(
            c.counts.sdc > 0,
            "some faults must corrupt the accumulator: {:?}",
            c.counts
        );
    }

    #[test]
    fn campaigns_are_deterministic_given_seed() {
        let m = test_module();
        let cfg = CampaignConfig::quick(99);
        let g = golden_run(&m, &input(40), &cfg).unwrap();
        let a = program_campaign(&m, &input(40), &g, &cfg);
        let b = program_campaign(&m, &input(40), &g, &cfg);
        assert_eq!(a.counts, b.counts);

        let pa = per_instruction_campaign(&m, &input(40), &g, &cfg);
        let pb = per_instruction_campaign(&m, &input(40), &g, &cfg);
        assert_eq!(pa.sdc_prob, pb.sdc_prob);
    }

    #[test]
    fn different_seeds_differ() {
        let m = test_module();
        let g = golden_run(&m, &input(40), &CampaignConfig::default()).unwrap();
        let a = program_campaign(&m, &input(40), &g, &CampaignConfig::quick(1));
        let b = program_campaign(&m, &input(40), &g, &CampaignConfig::quick(2));
        assert_ne!(a.counts, b.counts, "distinct seeds sample differently");
    }

    #[test]
    fn per_instruction_campaign_shapes_match_module() {
        let m = test_module();
        let cfg = CampaignConfig::quick(5);
        let g = golden_run(&m, &input(30), &cfg).unwrap();
        let p = per_instruction_campaign(&m, &input(30), &g, &cfg);
        assert_eq!(p.len(), m.num_insts());
        // the output instruction (out_i) is not injectable -> prob 0;
        // at least one arithmetic instruction must show SDCs
        assert!(p.sdc_prob.iter().any(|&x| x > 0.0));
        assert!(p.sdc_prob.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn per_inst_counts_hit_requested_sample_size() {
        let m = test_module();
        let cfg = CampaignConfig::quick(3);
        let g = golden_run(&m, &input(20), &cfg).unwrap();
        let p = per_instruction_campaign(&m, &input(20), &g, &cfg);
        for (dense, c) in p.counts.iter().enumerate() {
            let executed = g.profile.inst_counts[dense] > 0;
            let inst = m.inst(m.numbering().id_of(dense));
            if executed && inst.injectable() {
                assert_eq!(c.total(), cfg.per_inst_injections as u64);
            } else {
                assert_eq!(c.total(), 0);
            }
        }
    }

    #[test]
    fn single_threaded_and_parallel_agree() {
        let m = test_module();
        let mut cfg1 = CampaignConfig::quick(11);
        cfg1.threads = 1;
        let mut cfg4 = CampaignConfig::quick(11);
        cfg4.threads = 4;
        let g = golden_run(&m, &input(25), &cfg1).unwrap();
        let a = program_campaign(&m, &input(25), &g, &cfg1);
        let b = program_campaign(&m, &input(25), &g, &cfg4);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn checkpointed_and_cold_campaigns_are_bit_identical() {
        // the load-bearing guarantee of checkpointed FI: the same seed
        // yields the same OutcomeCounts and per-instruction SDC profile
        // with checkpointing on (any interval) or off
        let m = test_module();
        let mut cold = CampaignConfig::quick(77);
        cold.checkpoints = CheckpointPolicy::Disabled;
        let mut auto_cfg = CampaignConfig::quick(77);
        auto_cfg.checkpoints = CheckpointPolicy::Auto;
        let mut fixed = CampaignConfig::quick(77);
        fixed.checkpoints = CheckpointPolicy::Every(23);

        let g_cold = golden_run(&m, &input(60), &cold).unwrap();
        assert!(g_cold.checkpoints.is_empty());
        let g_auto = golden_run(&m, &input(60), &auto_cfg).unwrap();
        assert!(
            !g_auto.checkpoints.is_empty(),
            "run long enough to snapshot"
        );
        let g_fixed = golden_run(&m, &input(60), &fixed).unwrap();

        let a = program_campaign(&m, &input(60), &g_cold, &cold);
        let b = program_campaign(&m, &input(60), &g_auto, &auto_cfg);
        let c = program_campaign(&m, &input(60), &g_fixed, &fixed);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.counts, c.counts);

        let pa = per_instruction_campaign(&m, &input(60), &g_cold, &cold);
        let pb = per_instruction_campaign(&m, &input(60), &g_auto, &auto_cfg);
        let pc = per_instruction_campaign(&m, &input(60), &g_fixed, &fixed);
        assert_eq!(pa.sdc_prob, pb.sdc_prob);
        assert_eq!(pa.counts, pb.counts);
        assert_eq!(pa.counts, pc.counts);
    }

    #[test]
    fn checkpoint_store_respects_memory_budget() {
        let m = test_module();
        let mut cfg = CampaignConfig::quick(5);
        cfg.checkpoints = CheckpointPolicy::Every(10);
        cfg.checkpoint_mem_budget = 8 << 10; // force thinning
        let g = golden_run(&m, &input(200), &cfg).unwrap();
        assert!(g.checkpoints.total_bytes() <= 8 << 10);
        // thinned store must still be usable
        let c = program_campaign(&m, &input(200), &g, &cfg);
        assert_eq!(c.counts.total(), cfg.injections as u64);
    }

    fn journal_dir(name: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("minpsid-campaign-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn journaled_campaigns_match_plain_ones_bit_identically() {
        let m = test_module();
        let cfg = CampaignConfig::quick(21);
        let g = golden_run(&m, &input(50), &cfg).unwrap();
        let plain = program_campaign(&m, &input(50), &g, &cfg);
        let plain_pi = per_instruction_campaign(&m, &input(50), &g, &cfg);

        let dir = journal_dir("bitident");
        let j = CampaignJournal::open(&dir, 1, 2).unwrap();
        // first pass: everything fresh (appended)
        let a = program_campaign_journaled(&m, &input(50), &g, &cfg, &j, 9).unwrap();
        let a_pi = per_instruction_campaign_journaled(&m, &input(50), &g, &cfg, &j, 9).unwrap();
        assert_eq!(a.counts, plain.counts);
        assert_eq!(a_pi.counts, plain_pi.counts);
        let (_, appended) = j.usage();
        assert!(appended > 0);

        // second pass over a reopened journal: everything served, still
        // bit-identical
        j.sync().unwrap();
        drop(j);
        let j = CampaignJournal::open(&dir, 1, 2).unwrap();
        let b = program_campaign_journaled(&m, &input(50), &g, &cfg, &j, 9).unwrap();
        let b_pi = per_instruction_campaign_journaled(&m, &input(50), &g, &cfg, &j, 9).unwrap();
        assert_eq!(b.counts, plain.counts);
        assert_eq!(b_pi.counts, plain_pi.counts);
        assert_eq!(b_pi.sdc_prob, plain_pi.sdc_prob);
        let (served, appended) = j.usage();
        assert_eq!(appended, 0, "a fully journaled rerun executes nothing");
        assert_eq!(
            served,
            (cfg.injections as u64) + plain_pi.counts.iter().map(|c| c.total()).sum::<u64>()
        );
    }

    #[test]
    fn chaos_panic_degrades_to_engine_error_without_aborting() {
        let m = test_module();
        let mut cfg = CampaignConfig::quick(8);
        cfg.chaos_panic_one_in = Some(40);
        let g = golden_run(&m, &input(50), &cfg).unwrap();
        let c = program_campaign(&m, &input(50), &g, &cfg);
        // the campaign completed, engine errors were counted, and they do
        // not contaminate the SDC denominator
        assert_eq!(c.counts.total(), cfg.injections as u64);
        assert_eq!(c.counts.engine_error, (cfg.injections as u64).div_ceil(40));
        assert_eq!(
            c.counts.valid_total(),
            cfg.injections as u64 - c.counts.engine_error
        );

        // deterministic: same seed, same chaos, same counts
        let c2 = program_campaign(&m, &input(50), &g, &cfg);
        assert_eq!(c.counts, c2.counts);
    }

    #[test]
    fn interrupted_campaign_preserves_progress_and_resumes() {
        let m = test_module();
        let mut cfg = CampaignConfig::quick(31);
        cfg.threads = 1;
        let g = golden_run(&m, &input(50), &cfg).unwrap();
        let plain = program_campaign(&m, &input(50), &g, &cfg);

        let dir = journal_dir("interrupt");
        {
            let j = CampaignJournal::open(&dir, 1, 2).unwrap();
            // request the interrupt up front: the campaign must drain
            // immediately and report Interrupted without recording anything
            interrupt::request();
            let r = program_campaign_journaled(&m, &input(50), &g, &cfg, &j, 5);
            interrupt::clear();
            assert_eq!(r.unwrap_err(), Interrupted);
        }
        // resume: completes and matches the uninterrupted counts
        let j = CampaignJournal::open(&dir, 1, 2).unwrap();
        let resumed = program_campaign_journaled(&m, &input(50), &g, &cfg, &j, 5).unwrap();
        assert_eq!(resumed.counts, plain.counts);
    }

    #[test]
    fn hang_detection_catches_loop_bound_corruption() {
        // a loop whose bound lives in memory: flips on the bound load can
        // multiply the trip count far past the hang threshold
        let m = minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                let acc = 0;
                let i = 0;
                while i < n {
                    acc = acc + i;
                    i = i + 1;
                }
                out_i(acc);
            }
            "#,
            "hang-test",
        )
        .unwrap();
        let cfg = CampaignConfig {
            injections: 400,
            seed: 13,
            ..CampaignConfig::default()
        };
        let g = golden_run(&m, &input(100), &cfg).unwrap();
        let c = program_campaign(&m, &input(100), &g, &cfg);
        assert!(
            c.counts.hang > 0,
            "high-bit flips on `i`/`n` should hang: {:?}",
            c.counts
        );
    }
}
