//! Campaign configuration, golden runs, result types and the two
//! convenience entry points.
//!
//! The orchestration core lives in [`crate::engine`]: every campaign —
//! plain, deadline-scheduled, journaled, traced, at any thread count —
//! executes through one [`CampaignEngine`] plan/execute/reduce pipeline.
//! This module keeps what surrounds it: [`CampaignConfig`] (the knobs),
//! [`golden_run`] (the fault-free reference execution and its checkpoint
//! store), the result types ([`ProgramCampaign`], [`PerInstSdc`]) and the
//! two thin wrappers ([`program_campaign`], [`per_instruction_campaign`])
//! for callers that want a default-policy campaign in one call.
//!
//! ## Checkpointed injection
//!
//! Faulty runs are bit-identical to the golden run up to the injection
//! point, so [`golden_run`] captures a [`CheckpointStore`] of snapshots
//! and each injection restores the nearest snapshot at or before its
//! target and executes only the suffix. With an interval near
//! sqrt(golden_steps) this cuts the replayed prefix from O(steps) to
//! O(sqrt(steps)) per injection on average, which is where campaigns
//! spend nearly all their time. Results are bit-identical to cold runs:
//! the same `OutcomeCounts` for the same seed with checkpointing on, off,
//! or at any interval.

use crate::engine::CampaignEngine;
use crate::outcome::{Outcome, OutcomeCounts};
use crate::parallel::default_threads;
use minpsid_interp::{
    auto_interval, CheckpointConfig, CheckpointStore, ExecConfig, Interp, Output, Profile,
    ProgInput, SnapshotMode, Termination,
};
use minpsid_ir::Module;
use minpsid_sched::{binomial_ci, BinomialCi, SchedConfig, SiteStatus};
use minpsid_trace as trace;
use std::time::Duration;

/// How often the sampler thread publishes `campaign_progress` events.
pub(crate) const PROGRESS_INTERVAL: Duration = Duration::from_millis(50);

/// When and how densely the golden run snapshots its state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointPolicy {
    /// Interval tuned to ~sqrt(golden_steps), capped so at most
    /// [`CampaignConfig::max_checkpoints`] snapshots are taken.
    #[default]
    Auto,
    /// Fixed interval in dynamic instructions.
    Every(u64),
    /// No snapshots; every injection replays from scratch.
    Disabled,
}

/// Campaign parameters (defaults follow §III-A3 of the paper).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Whole-program campaign size (paper: 1000).
    pub injections: usize,
    /// Per-static-instruction campaign size (paper: 100).
    pub per_inst_injections: usize,
    /// RNG seed; campaigns are fully deterministic given the seed.
    pub seed: u64,
    /// Worker threads (the paper farms FI out over 160 cores).
    pub threads: usize,
    /// Hang threshold as a multiple of the golden run's dynamic steps.
    pub hang_multiplier: u64,
    /// Base interpreter limits for faulty runs.
    pub exec: ExecConfig,
    /// Golden-run snapshot policy.
    pub checkpoints: CheckpointPolicy,
    /// Snapshot count cap under [`CheckpointPolicy::Auto`].
    pub max_checkpoints: u64,
    /// Total snapshot memory budget; exceeding it thins the store.
    pub checkpoint_mem_budget: usize,
    /// Full snapshots or delta chains (see [`SnapshotMode`]). Campaigns
    /// default to delta: same restore semantics, ~5-10x less memory per
    /// checkpoint, so density can rise inside the same budget.
    pub snapshot_mode: SnapshotMode,
    /// Delta mode: full keyframe every this many stored checkpoints.
    pub keyframe_every: u32,
    /// Harness chaos knob: deterministically panic inside every
    /// `n`-th-keyed injection worker. Exercises the `catch_unwind` →
    /// retry → [`Outcome::EngineError`] degradation path in tests and
    /// smoke runs; `None` (the default) in real campaigns.
    pub chaos_panic_one_in: Option<u64>,
    /// Chaos knob for the other failure class: every `n`-th-keyed
    /// injection (offset by half a period so the two knobs hit different
    /// injections) reports a synthetic wall-clock blowout instead of
    /// executing. Exercises the timeout retry path.
    pub chaos_timeout_one_in: Option<u64>,
    /// Retry / quarantine / early-stop knobs. Part of the config (and so
    /// of the journal fingerprint): two runs with different retry budgets
    /// are different experiments. The wall-clock deadline is *not* here —
    /// it lives on the [`Scheduler`](minpsid_sched::Scheduler) so a
    /// resumed run may get a fresh budget.
    pub sched: SchedConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            injections: 1000,
            per_inst_injections: 100,
            seed: 42,
            threads: default_threads(),
            hang_multiplier: 10,
            exec: ExecConfig::default(),
            checkpoints: CheckpointPolicy::Auto,
            max_checkpoints: 512,
            checkpoint_mem_budget: 256 << 20,
            snapshot_mode: SnapshotMode::Delta,
            keyframe_every: 16,
            chaos_panic_one_in: None,
            chaos_timeout_one_in: None,
            sched: SchedConfig::default(),
        }
    }
}

impl CampaignConfig {
    /// Scaled-down preset for tests and tiny experiments.
    pub fn quick(seed: u64) -> Self {
        CampaignConfig {
            injections: 120,
            per_inst_injections: 20,
            seed,
            ..CampaignConfig::default()
        }
    }
}

/// The fault-free reference execution of (module, input).
#[derive(Debug, Clone)]
pub struct GoldenRun {
    pub output: Output,
    pub profile: Profile,
    pub steps: u64,
    /// Snapshots for resume-from-checkpoint injection; empty when
    /// checkpointing is disabled.
    pub checkpoints: CheckpointStore,
}

impl GoldenRun {
    /// Wire-encode the verdict surface (output, profile, steps) — the
    /// store's `golden` artifact class.
    pub fn encode_meta(&self) -> Vec<u8> {
        minpsid_interp::wire::encode_golden(&self.output, &self.profile, self.steps)
    }

    /// Wire-encode the checkpoint store — the store's `ckpt` artifact
    /// class, persisted separately because it dwarfs the meta and is
    /// independently corruptible.
    pub fn encode_checkpoints(&self) -> Vec<u8> {
        minpsid_interp::wire::encode_checkpoints(&self.checkpoints)
    }

    /// Rebuild a golden run from its two wire images. Checked end to
    /// end: malformed bytes produce an error, never a panic.
    pub fn decode(meta: &[u8], ckpt: &[u8]) -> Result<GoldenRun, minpsid_interp::wire::WireError> {
        let (output, profile, steps) = minpsid_interp::wire::decode_golden(meta)?;
        let checkpoints = minpsid_interp::wire::decode_checkpoints(ckpt)?;
        Ok(GoldenRun {
            output,
            profile,
            steps,
            checkpoints,
        })
    }
}

/// Execute the golden (fault-free, profiled) run and, unless disabled,
/// capture its checkpoint store. Fails if the program does not exit
/// cleanly — campaign inputs must be error-free, matching the paper's
/// input-generation rule §III-A2.
///
/// Two passes: a profiled pass (the profile is needed anyway and its
/// overhead would be charged to every snapshot clone), then an unprofiled
/// checkpointed pass whose interval is tuned from the first pass's step
/// count.
pub fn golden_run(
    module: &Module,
    input: &ProgInput,
    cfg: &CampaignConfig,
) -> Result<GoldenRun, Termination> {
    let _span = trace::span("golden_run");
    let exec = ExecConfig {
        profile: true,
        ..cfg.exec.clone()
    };
    let r = Interp::new(module, exec).run(input);
    if r.termination != Termination::Exit {
        return Err(r.termination);
    }

    let interval = match cfg.checkpoints {
        CheckpointPolicy::Auto => Some(auto_interval(r.steps, cfg.max_checkpoints)),
        CheckpointPolicy::Every(n) => Some(n.max(1)),
        CheckpointPolicy::Disabled => None,
    };
    let checkpoints = match interval {
        Some(interval) => {
            let _span = trace::span("checkpoint_capture");
            let exec = ExecConfig {
                profile: false,
                ..cfg.exec.clone()
            };
            let ck_cfg = CheckpointConfig {
                interval,
                mem_budget_bytes: cfg.checkpoint_mem_budget,
                mode: cfg.snapshot_mode,
                keyframe_every: cfg.keyframe_every,
            };
            let (r2, store) = Interp::new(module, exec).run_with_checkpoint_store(input, ck_cfg);
            debug_assert_eq!(r2.output, r.output, "checkpointed replay diverged");
            debug_assert_eq!(r2.steps, r.steps);
            store
        }
        None => CheckpointStore::default(),
    };

    Ok(GoldenRun {
        output: r.output,
        profile: r.profile.expect("profiling was enabled"),
        steps: r.steps,
        checkpoints,
    })
}

/// Result of a whole-program campaign.
#[derive(Debug, Clone)]
pub struct ProgramCampaign {
    pub counts: OutcomeCounts,
    /// Wilson interval on the SDC probability (at the configured `ci_z`).
    pub sdc_ci: BinomialCi,
    /// Injections the campaign intended to run.
    pub planned: u64,
    /// Injections dropped because the wall-clock deadline expired.
    pub truncated: u64,
    /// Injections that failed at least once and then produced a real
    /// outcome on retry (already counted once in `counts`).
    pub recovered: u64,
}

impl ProgramCampaign {
    pub fn sdc_prob(&self) -> f64 {
        self.counts.sdc_prob()
    }

    pub(crate) fn empty(cfg: &CampaignConfig) -> ProgramCampaign {
        ProgramCampaign {
            counts: OutcomeCounts::default(),
            sdc_ci: binomial_ci(0, 0, cfg.sched.ci_z),
            planned: 0,
            truncated: 0,
            recovered: 0,
        }
    }
}

/// Per-static-instruction SDC profile (dense in module numbering order).
#[derive(Debug, Clone)]
pub struct PerInstSdc {
    /// SDC probability of each static instruction; 0 for never-executed,
    /// non-injectable, or quarantined instructions.
    pub sdc_prob: Vec<f64>,
    /// Raw outcome counts per static instruction.
    pub counts: Vec<OutcomeCounts>,
    /// Wilson interval on each instruction's SDC probability (vacuous for
    /// unsampled or quarantined instructions).
    pub ci: Vec<BinomialCi>,
    /// How sampling ended at each instruction. `Unsampled` for
    /// instructions outside the campaign (never executed, not injectable)
    /// and for sites the deadline prevented entirely.
    pub status: Vec<SiteStatus>,
}

impl PerInstSdc {
    pub fn len(&self) -> usize {
        self.sdc_prob.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sdc_prob.is_empty()
    }
}

/// Inject `cfg.injections` single-bit flips, each into a uniformly random
/// dynamic instruction execution and uniformly random bit, and classify
/// every outcome. Compatibility wrapper over [`CampaignEngine`] with no
/// policy layers attached (retries per `cfg.sched`, no deadline, no
/// journal); attach layers on the engine for anything more.
pub fn program_campaign(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
) -> ProgramCampaign {
    CampaignEngine::new(module, input, golden, cfg)
        .run_program()
        .unwrap_or_else(|_| unreachable!("interrupts only observed under a journal"))
}

/// Measure the SDC probability of every injectable static instruction by
/// injecting `cfg.per_inst_injections` faults into uniformly random
/// dynamic executions of it. Compatibility wrapper over
/// [`CampaignEngine`] with no policy layers attached.
pub fn per_instruction_campaign(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
) -> PerInstSdc {
    CampaignEngine::new(module, input, golden, cfg)
        .run_per_instruction()
        .unwrap_or_else(|_| unreachable!("interrupts only observed under a journal"))
}

/// Count one specific outcome in a program campaign (test/report helper).
pub fn outcome_fraction(counts: &OutcomeCounts, outcome: Outcome) -> f64 {
    let t = counts.total();
    if t == 0 {
        return 0.0;
    }
    let k = match outcome {
        Outcome::Benign => counts.benign,
        Outcome::Sdc => counts.sdc,
        Outcome::Crash => counts.crash,
        Outcome::Hang => counts.hang,
        Outcome::Detected => counts.detected,
        Outcome::EngineError => counts.engine_error,
    };
    k as f64 / t as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::Scalar;
    use minpsid_journal::{interrupt, CampaignJournal, Interrupted};
    use minpsid_sched::Scheduler;

    /// A small kernel with input-dependent branching: faults on the
    /// comparison flip the branch only when `x` is near the threshold.
    fn test_module() -> Module {
        minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                let acc = 0;
                for i = 0 to n {
                    let v = i * 3 + 1;
                    if v % 7 < 3 { acc = acc + v; }
                }
                out_i(acc);
            }
            "#,
            "campaign-test",
        )
        .unwrap()
    }

    fn input(n: i64) -> ProgInput {
        ProgInput::scalars(vec![Scalar::I(n)])
    }

    #[test]
    fn golden_run_profiles_and_exits() {
        let m = test_module();
        let g = golden_run(&m, &input(50), &CampaignConfig::default()).unwrap();
        assert_eq!(g.output.len(), 1);
        assert!(g.profile.injectable_execs > 0);
        assert!(g.steps > 100);
    }

    #[test]
    fn golden_run_round_trips_through_wire_images() {
        let m = test_module();
        let cfg = CampaignConfig::default(); // delta-mode checkpoints
        let g = golden_run(&m, &input(60), &cfg).unwrap();
        assert!(!g.checkpoints.is_empty());
        let back = GoldenRun::decode(&g.encode_meta(), &g.encode_checkpoints()).unwrap();
        assert_eq!(back.output, g.output);
        assert_eq!(back.steps, g.steps);
        assert_eq!(back.profile.inst_counts, g.profile.inst_counts);
        assert_eq!(back.profile.injectable_execs, g.profile.injectable_execs);
        assert_eq!(back.checkpoints.len(), g.checkpoints.len());
        for i in 0..g.checkpoints.len() {
            assert_eq!(back.checkpoints.steps_at(i), g.checkpoints.steps_at(i));
            assert_eq!(back.checkpoints.inj_ctr_at(i), g.checkpoints.inj_ctr_at(i));
        }
        // encoding is deterministic, so the store dedups identical runs
        assert_eq!(g.encode_meta(), back.encode_meta());
        assert_eq!(g.encode_checkpoints(), back.encode_checkpoints());
    }

    #[test]
    fn golden_run_rejects_trapping_input() {
        let m = minic::compile("fn main() { out_i(10 / arg_i(0)); }", "div").unwrap();
        let r = golden_run(&m, &input(0), &CampaignConfig::default());
        assert!(r.is_err());
    }

    #[test]
    fn program_campaign_accounts_for_every_injection() {
        let m = test_module();
        let cfg = CampaignConfig::quick(7);
        let g = golden_run(&m, &input(60), &cfg).unwrap();
        let c = program_campaign(&m, &input(60), &g, &cfg);
        assert_eq!(c.counts.total(), cfg.injections as u64);
        // a real program under random bit flips shows a mix of outcomes
        assert!(c.counts.benign > 0, "some faults must be masked");
        assert!(
            c.counts.sdc > 0,
            "some faults must corrupt the accumulator: {:?}",
            c.counts
        );
    }

    #[test]
    fn unit_executor_reproduces_run_program_in_any_order() {
        let m = test_module();
        let cfg = CampaignConfig::quick(23);
        let g = golden_run(&m, &input(60), &cfg).unwrap();
        let whole = program_campaign(&m, &input(60), &g, &cfg);

        // Resolve the same plan unit-at-a-time in a scrambled order —
        // the order a fleet's shard leases (and reassignments after
        // worker deaths) would produce — and re-aggregate.
        let inp = input(60);
        let engine = CampaignEngine::new(&m, &inp, &g, &cfg);
        let mut ex = engine.program_executor();
        assert_eq!(ex.injections(), cfg.injections);
        assert_eq!(ex.population(), g.profile.injectable_execs);
        let mut order: Vec<usize> = (0..cfg.injections).collect();
        order.reverse();
        order.rotate_left(cfg.injections / 3);
        let mut counts = OutcomeCounts::default();
        for i in order {
            let (o, _recovered) = ex.run_unit(i);
            counts.record(o);
        }
        assert_eq!(
            counts, whole.counts,
            "unit-at-a-time execution must reduce to the run_program report"
        );

        // and re-running a unit is idempotent (at-least-once execution)
        let mut ex2 = engine.program_executor();
        let (a, ra) = ex2.run_unit(3);
        let (b, rb) = ex2.run_unit(3);
        assert_eq!((a, ra), (b, rb));
    }

    #[test]
    fn campaigns_are_deterministic_given_seed() {
        let m = test_module();
        let cfg = CampaignConfig::quick(99);
        let g = golden_run(&m, &input(40), &cfg).unwrap();
        let a = program_campaign(&m, &input(40), &g, &cfg);
        let b = program_campaign(&m, &input(40), &g, &cfg);
        assert_eq!(a.counts, b.counts);

        let pa = per_instruction_campaign(&m, &input(40), &g, &cfg);
        let pb = per_instruction_campaign(&m, &input(40), &g, &cfg);
        assert_eq!(pa.sdc_prob, pb.sdc_prob);
    }

    #[test]
    fn different_seeds_differ() {
        let m = test_module();
        let g = golden_run(&m, &input(40), &CampaignConfig::default()).unwrap();
        let a = program_campaign(&m, &input(40), &g, &CampaignConfig::quick(1));
        let b = program_campaign(&m, &input(40), &g, &CampaignConfig::quick(2));
        assert_ne!(a.counts, b.counts, "distinct seeds sample differently");
    }

    #[test]
    fn per_instruction_campaign_shapes_match_module() {
        let m = test_module();
        let cfg = CampaignConfig::quick(5);
        let g = golden_run(&m, &input(30), &cfg).unwrap();
        let p = per_instruction_campaign(&m, &input(30), &g, &cfg);
        assert_eq!(p.len(), m.num_insts());
        // the output instruction (out_i) is not injectable -> prob 0;
        // at least one arithmetic instruction must show SDCs
        assert!(p.sdc_prob.iter().any(|&x| x > 0.0));
        assert!(p.sdc_prob.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn per_inst_counts_hit_requested_sample_size() {
        let m = test_module();
        let cfg = CampaignConfig::quick(3);
        let g = golden_run(&m, &input(20), &cfg).unwrap();
        let p = per_instruction_campaign(&m, &input(20), &g, &cfg);
        for (dense, c) in p.counts.iter().enumerate() {
            let executed = g.profile.inst_counts[dense] > 0;
            let inst = m.inst(m.numbering().id_of(dense));
            if executed && inst.injectable() {
                assert_eq!(c.total(), cfg.per_inst_injections as u64);
            } else {
                assert_eq!(c.total(), 0);
            }
        }
    }

    #[test]
    fn single_threaded_and_parallel_agree() {
        let m = test_module();
        let mut cfg1 = CampaignConfig::quick(11);
        cfg1.threads = 1;
        let mut cfg4 = CampaignConfig::quick(11);
        cfg4.threads = 4;
        let g = golden_run(&m, &input(25), &cfg1).unwrap();
        let a = program_campaign(&m, &input(25), &g, &cfg1);
        let b = program_campaign(&m, &input(25), &g, &cfg4);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn checkpointed_and_cold_campaigns_are_bit_identical() {
        // the load-bearing guarantee of checkpointed FI: the same seed
        // yields the same OutcomeCounts and per-instruction SDC profile
        // with checkpointing on (any interval) or off
        let m = test_module();
        let mut cold = CampaignConfig::quick(77);
        cold.checkpoints = CheckpointPolicy::Disabled;
        let mut auto_cfg = CampaignConfig::quick(77);
        auto_cfg.checkpoints = CheckpointPolicy::Auto;
        let mut fixed = CampaignConfig::quick(77);
        fixed.checkpoints = CheckpointPolicy::Every(23);

        let g_cold = golden_run(&m, &input(60), &cold).unwrap();
        assert!(g_cold.checkpoints.is_empty());
        let g_auto = golden_run(&m, &input(60), &auto_cfg).unwrap();
        assert!(
            !g_auto.checkpoints.is_empty(),
            "run long enough to snapshot"
        );
        let g_fixed = golden_run(&m, &input(60), &fixed).unwrap();

        let a = program_campaign(&m, &input(60), &g_cold, &cold);
        let b = program_campaign(&m, &input(60), &g_auto, &auto_cfg);
        let c = program_campaign(&m, &input(60), &g_fixed, &fixed);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.counts, c.counts);

        let pa = per_instruction_campaign(&m, &input(60), &g_cold, &cold);
        let pb = per_instruction_campaign(&m, &input(60), &g_auto, &auto_cfg);
        let pc = per_instruction_campaign(&m, &input(60), &g_fixed, &fixed);
        assert_eq!(pa.sdc_prob, pb.sdc_prob);
        assert_eq!(pa.counts, pb.counts);
        assert_eq!(pa.counts, pc.counts);
    }

    #[test]
    fn checkpoint_store_respects_memory_budget() {
        let m = test_module();
        let mut cfg = CampaignConfig::quick(5);
        cfg.checkpoints = CheckpointPolicy::Every(10);
        cfg.checkpoint_mem_budget = 8 << 10; // force thinning
        let g = golden_run(&m, &input(200), &cfg).unwrap();
        assert!(g.checkpoints.total_bytes() <= 8 << 10);
        // thinned store must still be usable
        let c = program_campaign(&m, &input(200), &g, &cfg);
        assert_eq!(c.counts.total(), cfg.injections as u64);
    }

    fn journal_dir(name: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("minpsid-campaign-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn journaled_campaigns_match_plain_ones_bit_identically() {
        let m = test_module();
        let cfg = CampaignConfig::quick(21);
        let g = golden_run(&m, &input(50), &cfg).unwrap();
        let plain = program_campaign(&m, &input(50), &g, &cfg);
        let plain_pi = per_instruction_campaign(&m, &input(50), &g, &cfg);

        let dir = journal_dir("bitident");
        let j = CampaignJournal::open(&dir, 1, 2).unwrap();
        let s = Scheduler::unbounded(cfg.sched.clone());
        let inp = input(50);
        // first pass: everything fresh (appended); scoped so the engine's
        // borrow of the journal ends before the journal is reopened
        {
            let eng = CampaignEngine::new(&m, &inp, &g, &cfg)
                .with_scheduler(&s)
                .with_journal(&j, 9);
            let a = eng.run_program().unwrap();
            let a_pi = eng.run_per_instruction().unwrap();
            assert_eq!(a.counts, plain.counts);
            assert_eq!(a_pi.counts, plain_pi.counts);
            let (_, appended) = j.usage();
            assert!(appended > 0);
            j.sync().unwrap();
        }

        // second pass over a reopened journal: everything served, still
        // bit-identical
        drop(j);
        let j = CampaignJournal::open(&dir, 1, 2).unwrap();
        let s = Scheduler::unbounded(cfg.sched.clone());
        let eng = CampaignEngine::new(&m, &inp, &g, &cfg)
            .with_scheduler(&s)
            .with_journal(&j, 9);
        let b = eng.run_program().unwrap();
        let b_pi = eng.run_per_instruction().unwrap();
        assert_eq!(b.counts, plain.counts);
        assert_eq!(b_pi.counts, plain_pi.counts);
        assert_eq!(b_pi.sdc_prob, plain_pi.sdc_prob);
        let (served, appended) = j.usage();
        assert_eq!(appended, 0, "a fully journaled rerun executes nothing");
        assert_eq!(
            served,
            (cfg.injections as u64) + plain_pi.counts.iter().map(|c| c.total()).sum::<u64>()
        );
    }

    #[test]
    fn chaos_panic_degrades_to_engine_error_without_aborting() {
        let m = test_module();
        let mut cfg = CampaignConfig::quick(8);
        cfg.chaos_panic_one_in = Some(40);
        // retries off: every chaos hit must surface as EngineError, the
        // pre-scheduler behaviour
        cfg.sched.max_retries = 0;
        let g = golden_run(&m, &input(50), &cfg).unwrap();
        let c = program_campaign(&m, &input(50), &g, &cfg);
        // the campaign completed, engine errors were counted, and they do
        // not contaminate the SDC denominator
        assert_eq!(c.counts.total(), cfg.injections as u64);
        assert_eq!(c.counts.engine_error, (cfg.injections as u64).div_ceil(40));
        assert_eq!(
            c.counts.valid_total(),
            cfg.injections as u64 - c.counts.engine_error
        );

        // deterministic: same seed, same chaos, same counts
        let c2 = program_campaign(&m, &input(50), &g, &cfg);
        assert_eq!(c.counts, c2.counts);
    }

    #[test]
    fn interrupted_campaign_preserves_progress_and_resumes() {
        let m = test_module();
        let mut cfg = CampaignConfig::quick(31);
        cfg.threads = 1;
        let g = golden_run(&m, &input(50), &cfg).unwrap();
        let plain = program_campaign(&m, &input(50), &g, &cfg);

        let dir = journal_dir("interrupt");
        {
            let j = CampaignJournal::open(&dir, 1, 2).unwrap();
            // request the interrupt up front: the campaign must drain
            // immediately and report Interrupted without recording anything
            interrupt::request();
            let r = CampaignEngine::new(&m, &input(50), &g, &cfg)
                .with_journal(&j, 5)
                .run_program();
            interrupt::clear();
            assert_eq!(r.unwrap_err(), Interrupted);
        }
        // resume: completes and matches the uninterrupted counts
        let j = CampaignJournal::open(&dir, 1, 2).unwrap();
        let resumed = CampaignEngine::new(&m, &input(50), &g, &cfg)
            .with_journal(&j, 5)
            .run_program()
            .unwrap();
        assert_eq!(resumed.counts, plain.counts);
    }

    fn fast_sched(cfg: &mut CampaignConfig) {
        // tests never want real backoff sleeps
        cfg.sched.backoff_base_ms = 0;
        cfg.sched.backoff_cap_ms = 0;
    }

    #[test]
    fn transient_chaos_recovers_via_retry() {
        let m = test_module();
        let mut cfg = CampaignConfig::quick(8);
        cfg.chaos_panic_one_in = Some(40);
        fast_sched(&mut cfg);
        let g = golden_run(&m, &input(50), &cfg).unwrap();

        // chaos hits keys 0, 40, 80; each fails 1–4 consecutive attempts,
        // so with the default budget (3 attempts) every hit either
        // recovers or exhausts — and nothing is lost either way
        let s = Scheduler::unbounded(cfg.sched.clone());
        let c = CampaignEngine::new(&m, &input(50), &g, &cfg)
            .with_scheduler(&s)
            .run_program()
            .unwrap();
        let snap = s.snapshot();
        assert_eq!(c.counts.total(), cfg.injections as u64);
        assert_eq!(snap.recovered + snap.exhausted, 3, "{snap:?}");
        assert_eq!(c.counts.engine_error, snap.exhausted);
        assert_eq!(c.recovered, snap.recovered);
        assert_eq!(snap.accounted(), snap.planned);

        // deterministic: a fresh scheduler reproduces counts and tallies
        let s2 = Scheduler::unbounded(cfg.sched.clone());
        let c2 = CampaignEngine::new(&m, &input(50), &g, &cfg)
            .with_scheduler(&s2)
            .run_program()
            .unwrap();
        assert_eq!(c.counts, c2.counts);
        assert_eq!(snap, s2.snapshot());
    }

    #[test]
    fn chaos_timeout_knob_hits_offset_keys() {
        let m = test_module();
        let mut cfg = CampaignConfig::quick(8);
        cfg.chaos_panic_one_in = Some(40);
        cfg.chaos_timeout_one_in = Some(40);
        cfg.sched.max_retries = 0;
        fast_sched(&mut cfg);
        let g = golden_run(&m, &input(50), &cfg).unwrap();
        let c = program_campaign(&m, &input(50), &g, &cfg);
        // panic keys 0,40,80 and timeout keys 20,60,100 are disjoint;
        // with retries off all six surface as EngineError
        assert_eq!(c.counts.total(), cfg.injections as u64);
        assert_eq!(c.counts.engine_error, 6, "{:?}", c.counts);
    }

    #[test]
    fn persistently_failing_sites_are_quarantined_up_to_the_cap() {
        let m = test_module();
        let mut cfg = CampaignConfig::quick(9);
        cfg.per_inst_injections = 6;
        cfg.threads = 1;
        cfg.chaos_panic_one_in = Some(1); // every injection fails
        cfg.sched.max_retries = 0;
        cfg.sched.quarantine_cap = 2;
        fast_sched(&mut cfg);
        let g = golden_run(&m, &input(20), &cfg).unwrap();
        let s = Scheduler::unbounded(cfg.sched.clone());
        let p = CampaignEngine::new(&m, &input(20), &g, &cfg)
            .with_scheduler(&s)
            .run_per_instruction()
            .unwrap();
        let snap = s.snapshot();

        // quarantine_after=2: each site records one EngineError, then the
        // second consecutive exhaustion quarantines it — until the cap
        assert_eq!(snap.quarantined_sites, 2);
        let quarantined: Vec<usize> = p
            .status
            .iter()
            .enumerate()
            .filter(|(_, st)| matches!(st, SiteStatus::Quarantined(_)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(quarantined.len(), 2);
        for &dense in &quarantined {
            // estimates from a quarantined site are excluded from rates
            assert_eq!(p.sdc_prob[dense], 0.0);
            assert_eq!((p.ci[dense].lo, p.ci[dense].hi), (0.0, 1.0));
            assert_eq!(
                p.counts[dense].total(),
                1,
                "only the pre-quarantine injection"
            );
        }
        // sites past the cap degrade to plain EngineError outcomes
        let full: Vec<usize> = p
            .status
            .iter()
            .enumerate()
            .filter(|(_, st)| matches!(st, SiteStatus::Full))
            .map(|(i, _)| i)
            .collect();
        assert!(!full.is_empty());
        for &dense in &full {
            assert_eq!(p.counts[dense].engine_error, 6);
        }
        // zero lost injections, and completeness only loses the
        // quarantined work
        assert_eq!(snap.accounted(), snap.planned);
        assert!(snap.completeness() < 1.0);
    }

    #[test]
    fn early_stop_halts_converged_sites_without_losing_completeness() {
        let m = test_module();
        let mut cfg = CampaignConfig::quick(12);
        cfg.per_inst_injections = 50;
        cfg.sched.ci_half_width = 0.4; // generous: converges in a few samples
        fast_sched(&mut cfg);
        let g = golden_run(&m, &input(30), &cfg).unwrap();
        let s = Scheduler::unbounded(cfg.sched.clone());
        let p = CampaignEngine::new(&m, &input(30), &g, &cfg)
            .with_scheduler(&s)
            .run_per_instruction()
            .unwrap();
        let snap = s.snapshot();
        assert!(snap.early_stopped_sites > 0, "{snap:?}");
        assert!(snap.early_stop_skipped > 0);
        assert_eq!(snap.accounted(), snap.planned);
        // an early stop means the estimate converged — nothing was lost
        assert_eq!(snap.completeness(), 1.0);
        assert!(p
            .status
            .iter()
            .any(|st| matches!(st, SiteStatus::EarlyStopped)));
        // every interval actually honoured the threshold
        for (dense, st) in p.status.iter().enumerate() {
            if matches!(st, SiteStatus::EarlyStopped) {
                assert!(p.ci[dense].half_width() <= 0.4, "{:?}", p.ci[dense]);
            }
        }
        // deterministic
        let s2 = Scheduler::unbounded(cfg.sched.clone());
        let p2 = CampaignEngine::new(&m, &input(30), &g, &cfg)
            .with_scheduler(&s2)
            .run_per_instruction()
            .unwrap();
        assert_eq!(p.sdc_prob, p2.sdc_prob);
        assert_eq!(snap, s2.snapshot());
    }

    #[test]
    fn expired_deadline_truncates_gracefully() {
        use minpsid_sched::Deadline;
        let m = test_module();
        let mut cfg = CampaignConfig::quick(4);
        fast_sched(&mut cfg);
        let g = golden_run(&m, &input(30), &cfg).unwrap();

        let s = Scheduler::new(cfg.sched.clone(), Deadline::from_secs(Some(0.0)));
        let c = CampaignEngine::new(&m, &input(30), &g, &cfg)
            .with_scheduler(&s)
            .run_program()
            .unwrap();
        assert_eq!(c.counts.total(), 0);
        assert_eq!(c.truncated, cfg.injections as u64);
        let snap = s.snapshot();
        assert_eq!(snap.accounted(), snap.planned);
        assert_eq!(snap.completeness(), 0.0);

        let s = Scheduler::new(cfg.sched.clone(), Deadline::from_secs(Some(0.0)));
        let p = CampaignEngine::new(&m, &input(30), &g, &cfg)
            .with_scheduler(&s)
            .run_per_instruction()
            .unwrap();
        assert!(p.counts.iter().all(|c| c.total() == 0));
        assert!(p
            .status
            .iter()
            .all(|st| matches!(st, SiteStatus::Unsampled)));
        let snap = s.snapshot();
        assert_eq!(snap.accounted(), snap.planned);
        assert_eq!(snap.completeness(), 0.0);
    }

    #[test]
    fn journaled_quarantine_is_skipped_on_resume() {
        let m = test_module();
        let mut cfg = CampaignConfig::quick(6);
        cfg.per_inst_injections = 4;
        cfg.threads = 1;
        cfg.chaos_panic_one_in = Some(1);
        cfg.sched.max_retries = 0;
        cfg.sched.quarantine_after = 1; // first exhaustion quarantines
        fast_sched(&mut cfg);
        let g = golden_run(&m, &input(20), &cfg).unwrap();

        let dir = journal_dir("quarantine-resume");
        let sites;
        {
            let j = CampaignJournal::open(&dir, 1, 2).unwrap();
            let s = Scheduler::unbounded(cfg.sched.clone());
            let p = CampaignEngine::new(&m, &input(20), &g, &cfg)
                .with_scheduler(&s)
                .with_journal(&j, 9)
                .run_per_instruction()
                .unwrap();
            sites = p
                .status
                .iter()
                .filter(|st| matches!(st, SiteStatus::Quarantined(_)))
                .count() as u64;
            assert!(sites > 0);
            assert_eq!(s.snapshot().quarantined_sites, sites);
            j.sync().unwrap();
        }

        // resume with the chaos gone: the journal's quarantine list still
        // rules those sites out, with zero fresh executions or appends
        let mut calm = cfg.clone();
        calm.chaos_panic_one_in = None;
        let j = CampaignJournal::open(&dir, 1, 2).unwrap();
        let s = Scheduler::unbounded(calm.sched.clone());
        let p = CampaignEngine::new(&m, &input(20), &g, &calm)
            .with_scheduler(&s)
            .with_journal(&j, 9)
            .run_per_instruction()
            .unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.quarantined_sites, sites);
        assert_eq!(snap.quarantined_injections, sites * 4);
        assert_eq!(snap.completed, 0);
        assert_eq!(snap.accounted(), snap.planned);
        assert_eq!(j.usage().1, 0, "resume appends nothing");
        assert!(
            p.status
                .iter()
                .filter(|st| matches!(st, SiteStatus::Quarantined(_)))
                .count() as u64
                == sites
        );
    }

    #[test]
    fn hang_detection_catches_loop_bound_corruption() {
        // a loop whose bound lives in memory: flips on the bound load can
        // multiply the trip count far past the hang threshold
        let m = minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                let acc = 0;
                let i = 0;
                while i < n {
                    acc = acc + i;
                    i = i + 1;
                }
                out_i(acc);
            }
            "#,
            "hang-test",
        )
        .unwrap();
        let cfg = CampaignConfig {
            injections: 400,
            seed: 13,
            ..CampaignConfig::default()
        };
        let g = golden_run(&m, &input(100), &cfg).unwrap();
        let c = program_campaign(&m, &input(100), &g, &cfg);
        assert!(
            c.counts.hang > 0,
            "high-bit flips on `i`/`n` should hang: {:?}",
            c.counts
        );
    }
}
