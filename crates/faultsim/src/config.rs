//! One validated builder for campaign knobs, shared by every front end.
//!
//! The CLI, the bench binaries and the examples all accept the same
//! campaign vocabulary (`--injections`, `--per-inst`, `--threads`,
//! checkpoint flags, chaos knobs, the scheduler's retry/quarantine/
//! early-stop knobs and `--deadline-secs`). Before this module each front
//! end re-parsed and re-validated its own subset, and the validation
//! rules drifted. [`CampaignConfigBuilder`] is the single place those
//! rules live: construct one (or parse one with
//! [`CampaignConfigBuilder::from_flags`]), chain validated setters, then
//! [`build`](CampaignConfigBuilder::build) the [`CampaignConfig`].
//!
//! Validation philosophy, inherited from the CLI: a knob whose zero value
//! silently produces an empty campaign (`injections`, `per-inst`,
//! `threads`, chaos periods, `quarantine-after`, `checkpoint-interval`)
//! rejects zero; a knob where zero is a meaningful mode (`max-retries` =
//! fail fast, `quarantine-cap` = quarantine off, `injection-timeout-ms` =
//! no wall-clock budget, `ci-half-width` = early stop off) accepts it.
//!
//! The deadline rides on the builder but **not** on the built config: it
//! bounds how much work runs, never what that work computes, so it stays
//! out of the journal fingerprint and is handed to the
//! [`Scheduler`](minpsid_sched::Scheduler) separately via
//! [`deadline_secs`](CampaignConfigBuilder::deadline_secs).

use crate::campaign::{CampaignConfig, CheckpointPolicy};
use minpsid_interp::{DispatchMode, SnapshotMode};

/// Builder for [`CampaignConfig`] with every validation rule in one
/// place. Setters take raw values and reject invalid ones with the same
/// messages the CLI shows, so front ends can surface them verbatim.
#[derive(Debug, Clone)]
pub struct CampaignConfigBuilder {
    cfg: CampaignConfig,
    deadline_secs: Option<f64>,
}

impl CampaignConfigBuilder {
    /// Full-size campaign (paper defaults) with the given seed.
    pub fn new(seed: u64) -> Self {
        CampaignConfigBuilder {
            cfg: CampaignConfig {
                seed,
                ..CampaignConfig::default()
            },
            deadline_secs: None,
        }
    }

    /// Scaled-down preset for smoke tests and tiny experiments.
    pub fn quick(seed: u64) -> Self {
        CampaignConfigBuilder {
            cfg: CampaignConfig::quick(seed),
            deadline_secs: None,
        }
    }

    /// Whole-program campaign size (zero would be an empty campaign).
    pub fn injections(mut self, n: u64) -> Result<Self, String> {
        if n == 0 {
            return Err("bad --injections `0` (want a positive campaign size)".into());
        }
        self.cfg.injections = n as usize;
        Ok(self)
    }

    /// Per-static-instruction campaign size (zero would sample nothing).
    pub fn per_inst_injections(mut self, n: u64) -> Result<Self, String> {
        if n == 0 {
            return Err("bad --per-inst `0` (want a positive per-instruction count)".into());
        }
        self.cfg.per_inst_injections = n as usize;
        Ok(self)
    }

    /// Worker thread count (zero would execute nothing; campaigns are
    /// byte-identical at any thread count, so this is purely a
    /// throughput knob).
    pub fn threads(mut self, n: u64) -> Result<Self, String> {
        if n == 0 {
            return Err("bad --threads `0` (want a positive worker count)".into());
        }
        self.cfg.threads = n as usize;
        Ok(self)
    }

    /// Snapshot the golden run every `n` dynamic instructions instead of
    /// the auto (~sqrt of steps) interval.
    pub fn checkpoint_interval(mut self, n: u64) -> Result<Self, String> {
        if n == 0 {
            return Err("bad --checkpoint-interval `0` (want a positive integer)".into());
        }
        // --no-checkpoints wins if both were given, whatever the order
        if self.cfg.checkpoints != CheckpointPolicy::Disabled {
            self.cfg.checkpoints = CheckpointPolicy::Every(n);
        }
        Ok(self)
    }

    /// Disable checkpointing; every injection replays from scratch.
    pub fn no_checkpoints(mut self) -> Self {
        self.cfg.checkpoints = CheckpointPolicy::Disabled;
        self
    }

    /// Snapshot count cap under [`CheckpointPolicy::Auto`]. Zero would
    /// silently disable checkpointing while the policy claims otherwise;
    /// use [`no_checkpoints`](Self::no_checkpoints) for that.
    pub fn max_checkpoints(mut self, n: u64) -> Result<Self, String> {
        if n == 0 {
            return Err(
                "bad --max-checkpoints `0` (want a positive cap, or --no-checkpoints)".into(),
            );
        }
        self.cfg.max_checkpoints = n;
        Ok(self)
    }

    /// Checkpoint encoding: `full` self-contained snapshots, or `delta`
    /// chains with periodic keyframes (the campaign default — same
    /// restore semantics, far less memory per checkpoint).
    pub fn snapshot_mode(mut self, v: &str) -> Result<Self, String> {
        self.cfg.snapshot_mode = match v {
            "full" => SnapshotMode::Full,
            "delta" => SnapshotMode::Delta,
            _ => {
                return Err(format!(
                    "bad --snapshot-mode `{v}` (want `full` or `delta`)"
                ))
            }
        };
        Ok(self)
    }

    /// Interpreter dispatch: `decoded` (the default pre-decoded hot
    /// loop) or `legacy` (the original tree-walking loop, kept as the
    /// equivalence oracle). Profiling and tracing runs use the legacy
    /// loop regardless.
    pub fn dispatch(mut self, v: &str) -> Result<Self, String> {
        self.cfg.exec.dispatch = match v {
            "decoded" => DispatchMode::Decoded,
            "legacy" => DispatchMode::Legacy,
            _ => return Err(format!("bad --dispatch `{v}` (want `legacy` or `decoded`)")),
        };
        Ok(self)
    }

    /// Per-injection wall-clock budget in milliseconds; 0 (the default)
    /// disables it.
    pub fn injection_timeout_ms(mut self, ms: u64) -> Self {
        self.cfg.exec.wall_clock_ms = ms;
        self
    }

    /// Chaos knob: panic inside every `n`-th-keyed injection worker.
    pub fn chaos_panic_one_in(mut self, n: u64) -> Result<Self, String> {
        if n == 0 {
            return Err("bad --chaos-panic-one-in `0` (want a positive period)".into());
        }
        self.cfg.chaos_panic_one_in = Some(n);
        Ok(self)
    }

    /// Chaos knob: synthetic timeout in every `n`-th-keyed injection.
    pub fn chaos_timeout_one_in(mut self, n: u64) -> Result<Self, String> {
        if n == 0 {
            return Err("bad --chaos-timeout-one-in `0` (want a positive period)".into());
        }
        self.cfg.chaos_timeout_one_in = Some(n);
        Ok(self)
    }

    /// Extra attempts for transient engine failures; 0 restores
    /// fail-fast EngineError behaviour.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.cfg.sched.max_retries = n;
        self
    }

    /// Consecutive exhausted injections before a site is quarantined.
    pub fn quarantine_after(mut self, n: u32) -> Result<Self, String> {
        if n == 0 {
            return Err("bad --quarantine-after `0` (want a positive count)".into());
        }
        self.cfg.sched.quarantine_after = n;
        Ok(self)
    }

    /// Hard cap on quarantined sites; 0 disables quarantine entirely.
    pub fn quarantine_cap(mut self, n: u64) -> Self {
        self.cfg.sched.quarantine_cap = n;
        self
    }

    /// Per-site early stop once the Wilson half-width is ≤ `w`; 0
    /// disables early stopping. Widths ≥ 0.5 are vacuous (the interval
    /// starts narrower) and rejected as configuration mistakes.
    pub fn ci_half_width(mut self, w: f64) -> Result<Self, String> {
        if !(0.0..0.5).contains(&w) {
            return Err(format!(
                "bad --ci-half-width `{w}` (want a width in [0, 0.5))"
            ));
        }
        self.cfg.sched.ci_half_width = w;
        Ok(self)
    }

    /// Global wall-clock budget in seconds; 0 means already expired
    /// (truncate everything), which is allowed.
    pub fn deadline_secs(mut self, d: f64) -> Result<Self, String> {
        if !d.is_finite() || d < 0.0 {
            return Err(format!(
                "bad --deadline-secs `{d}` (want a non-negative number)"
            ));
        }
        self.deadline_secs = Some(d);
        Ok(self)
    }

    /// Parse the shared campaign flag vocabulary out of `rest` (flags
    /// irrelevant to campaigns are ignored, so front ends can mix their
    /// own flags in freely): `--seed`, `--quick`, `--injections`,
    /// `--per-inst`, `--threads`, `--checkpoint-interval`,
    /// `--no-checkpoints`, `--snapshot-mode`, `--dispatch`,
    /// `--injection-timeout-ms`, the two chaos knobs, `--max-retries`,
    /// `--quarantine-after`, `--quarantine-cap`, `--ci-half-width` and
    /// `--deadline-secs`.
    pub fn from_flags(rest: &[String]) -> Result<Self, String> {
        let seed = match flag_value(rest, "--seed") {
            None => 42,
            Some(v) => v.parse().map_err(|_| format!("bad --seed `{v}`"))?,
        };
        let mut b = if rest.iter().any(|a| a == "--quick") {
            CampaignConfigBuilder::quick(seed)
        } else {
            CampaignConfigBuilder::new(seed)
        };
        if rest.iter().any(|a| a == "--no-checkpoints") {
            b = b.no_checkpoints();
        }
        if let Some(n) = parse_u64(rest, "--injections")? {
            b = b.injections(n)?;
        }
        if let Some(n) = parse_u64(rest, "--per-inst")? {
            b = b.per_inst_injections(n)?;
        }
        if let Some(n) = parse_u64(rest, "--threads")? {
            b = b.threads(n)?;
        }
        if let Some(n) = parse_u64(rest, "--checkpoint-interval")? {
            b = b.checkpoint_interval(n)?;
        }
        if let Some(v) = flag_value(rest, "--snapshot-mode") {
            b = b.snapshot_mode(&v)?;
        }
        if let Some(v) = flag_value(rest, "--dispatch") {
            b = b.dispatch(&v)?;
        }
        if let Some(ms) = parse_u64(rest, "--injection-timeout-ms")? {
            b = b.injection_timeout_ms(ms);
        }
        if let Some(n) = parse_u64(rest, "--chaos-panic-one-in")? {
            b = b.chaos_panic_one_in(n)?;
        }
        if let Some(n) = parse_u64(rest, "--chaos-timeout-one-in")? {
            b = b.chaos_timeout_one_in(n)?;
        }
        if let Some(n) = parse_u64(rest, "--max-retries")? {
            b = b.max_retries(u32::try_from(n).map_err(|_| "bad --max-retries (too large)")?);
        }
        if let Some(n) = parse_u64(rest, "--quarantine-after")? {
            b = b.quarantine_after(
                u32::try_from(n).map_err(|_| "bad --quarantine-after (too large)")?,
            )?;
        }
        if let Some(n) = parse_u64(rest, "--quarantine-cap")? {
            b = b.quarantine_cap(n);
        }
        if let Some(v) = flag_value(rest, "--ci-half-width") {
            let w: f64 = v
                .parse()
                .map_err(|_| format!("bad --ci-half-width `{v}` (want a width in [0, 0.5))"))?;
            b = b.ci_half_width(w)?;
        }
        if let Some(v) = flag_value(rest, "--deadline-secs") {
            let d: f64 = v
                .parse()
                .map_err(|_| format!("bad --deadline-secs `{v}` (want a non-negative number)"))?;
            b = b.deadline_secs(d)?;
        }
        Ok(b)
    }

    /// The deadline this builder carries, if any (not part of the built
    /// config — hand it to the scheduler).
    pub fn deadline(&self) -> Option<f64> {
        self.deadline_secs
    }

    /// Finish the builder.
    pub fn build(self) -> CampaignConfig {
        self.cfg
    }
}

/// `--flag value` lookup over a raw argument slice.
pub fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1).cloned())
}

fn parse_u64(rest: &[String], flag: &str) -> Result<Option<u64>, String> {
    match flag_value(rest, flag) {
        None => Ok(None),
        Some(v) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("bad {flag} `{v}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_match_campaign_config() {
        let b = CampaignConfigBuilder::from_flags(&args(&[])).unwrap();
        assert_eq!(b.deadline(), None);
        let c = b.build();
        let d = CampaignConfig::default();
        assert_eq!(c.injections, d.injections);
        assert_eq!(c.per_inst_injections, d.per_inst_injections);
        assert_eq!(c.seed, 42);
        assert_eq!(c.checkpoints, CheckpointPolicy::Auto);
        assert_eq!(c.sched, d.sched);
    }

    #[test]
    fn zero_rejecting_knobs_reject_zero() {
        assert!(CampaignConfigBuilder::new(1).injections(0).is_err());
        assert!(CampaignConfigBuilder::new(1)
            .per_inst_injections(0)
            .is_err());
        assert!(CampaignConfigBuilder::new(1).threads(0).is_err());
        assert!(CampaignConfigBuilder::new(1)
            .checkpoint_interval(0)
            .is_err());
        assert!(CampaignConfigBuilder::new(1).chaos_panic_one_in(0).is_err());
        assert!(CampaignConfigBuilder::new(1)
            .chaos_timeout_one_in(0)
            .is_err());
        assert!(CampaignConfigBuilder::new(1).quarantine_after(0).is_err());
    }

    #[test]
    fn zero_meaning_knobs_accept_zero() {
        let c = CampaignConfigBuilder::new(1)
            .max_retries(0)
            .quarantine_cap(0)
            .injection_timeout_ms(0)
            .ci_half_width(0.0)
            .unwrap()
            .build();
        assert_eq!(c.sched.max_retries, 0);
        assert_eq!(c.sched.quarantine_cap, 0);
        assert_eq!(c.exec.wall_clock_ms, 0);
        assert_eq!(c.sched.ci_half_width, 0.0);
    }

    #[test]
    fn threads_flag_is_part_of_the_shared_vocabulary() {
        let c = CampaignConfigBuilder::from_flags(&args(&["--threads", "4"]))
            .unwrap()
            .build();
        assert_eq!(c.threads, 4);
        assert!(CampaignConfigBuilder::from_flags(&args(&["--threads", "0"])).is_err());
        assert!(CampaignConfigBuilder::from_flags(&args(&["--threads", "abc"])).is_err());
    }

    #[test]
    fn no_checkpoints_wins_regardless_of_flag_order() {
        for rest in [
            args(&["--checkpoint-interval", "10", "--no-checkpoints"]),
            args(&["--no-checkpoints", "--checkpoint-interval", "10"]),
        ] {
            let c = CampaignConfigBuilder::from_flags(&rest).unwrap().build();
            assert_eq!(c.checkpoints, CheckpointPolicy::Disabled);
        }
    }

    #[test]
    fn snapshot_mode_and_dispatch_parse_and_reject_nonsense() {
        let c = CampaignConfigBuilder::from_flags(&args(&["--snapshot-mode", "full"]))
            .unwrap()
            .build();
        assert_eq!(c.snapshot_mode, SnapshotMode::Full);
        let c = CampaignConfigBuilder::from_flags(&args(&["--dispatch", "legacy"]))
            .unwrap()
            .build();
        assert_eq!(c.exec.dispatch, DispatchMode::Legacy);
        let d = CampaignConfigBuilder::from_flags(&args(&[]))
            .unwrap()
            .build();
        assert_eq!(d.snapshot_mode, SnapshotMode::Delta, "campaign default");
        assert_eq!(d.exec.dispatch, DispatchMode::Decoded, "default hot loop");
        assert!(CampaignConfigBuilder::from_flags(&args(&["--snapshot-mode", "sparse"])).is_err());
        assert!(CampaignConfigBuilder::from_flags(&args(&["--dispatch", "jit"])).is_err());
    }

    #[test]
    fn ci_half_width_range_is_enforced() {
        assert!(CampaignConfigBuilder::new(1).ci_half_width(0.49).is_ok());
        assert!(CampaignConfigBuilder::new(1).ci_half_width(0.5).is_err());
        assert!(CampaignConfigBuilder::new(1).ci_half_width(-0.1).is_err());
    }

    #[test]
    fn deadline_allows_zero_and_rejects_nonsense() {
        assert_eq!(
            CampaignConfigBuilder::new(1)
                .deadline_secs(0.0)
                .unwrap()
                .deadline(),
            Some(0.0),
            "an already-expired budget is allowed (truncate everything)"
        );
        assert!(CampaignConfigBuilder::new(1).deadline_secs(-1.0).is_err());
        assert!(CampaignConfigBuilder::new(1)
            .deadline_secs(f64::INFINITY)
            .is_err());
        assert!(CampaignConfigBuilder::from_flags(&args(&["--deadline-secs", "soon"])).is_err());
    }

    #[test]
    fn quick_preset_shrinks_campaigns() {
        let q = CampaignConfigBuilder::from_flags(&args(&["--quick", "--seed", "7"]))
            .unwrap()
            .build();
        assert!(q.injections < CampaignConfig::default().injections);
        assert_eq!(q.seed, 7);
    }
}
