//! The unified campaign execution engine: one plan → execute → reduce
//! pipeline behind every campaign composition.
//!
//! Four features grew onto the fault-injection loop one PR at a time —
//! checkpointed replay, tracing, the crash-safe WAL journal, and the
//! resilient scheduler — and each arrived as a forked entry point, until
//! `campaign.rs` carried a 3×2 matrix of near-identical loop bodies.
//! [`CampaignEngine`] folds that matrix back into one orchestration core
//! with the features attached as *policy layers*:
//!
//! * **Scheduling** — retry/backoff, quarantine, early stop and the
//!   wall-clock deadline live on a [`Scheduler`]. The engine owns an
//!   unbounded one by default; [`CampaignEngine::with_scheduler`] attaches
//!   a caller-owned (deadline-aware, shared-accounting) one instead.
//! * **Journaling** — [`CampaignEngine::with_journal`] makes the run
//!   crash-safe: recorded outcomes are served without re-execution, fresh
//!   outcomes are appended, and a pending [`interrupt`] drains the run
//!   into [`Interrupted`] with all finished work durable.
//! * **Tracing** — counters, progress sampling and per-function outcome
//!   events, active whenever the process-wide trace sink is.
//!
//! Execution is parallel for **every** composition. Workers fan out over
//! [`par_map_init`] and each result lands in its plan-ordered slot, so
//! reduction — and therefore every report — is byte-identical at any
//! thread count. Journaled runs stay parallel too: workers buffer their
//! WAL records per work unit and a single [`OrderedWriter`] appends each
//! contiguous prefix of completed units, so the WAL byte stream is as
//! deterministic as the report while finished work still reaches disk
//! *during* the run (a crash loses at most the in-flight units).
//!
//! Determinism contract (unchanged from the pre-engine code, verified by
//! the equivalence tests): every injection's RNG is seeded only by
//! `(cfg.seed, plan position)`, never by thread schedule or by which
//! outcomes a journal served, so plain, scheduled, journaled and resumed
//! runs of the same seed produce bit-identical reports.

use crate::campaign::{CampaignConfig, GoldenRun, PerInstSdc, ProgramCampaign, PROGRESS_INTERVAL};
use crate::outcome::{classify, Outcome, OutcomeCounts};
use crate::parallel::par_map_init;
use minpsid_interp::{
    ExecConfig, ExecResult, ExecScratch, FaultSpec, FaultTarget, Interp, ProgInput,
};
use minpsid_ir::{GlobalInstId, Module};
use minpsid_journal::{interrupt, CampaignJournal, Interrupted};
use minpsid_sched::{
    binomial_ci, splitmix64, AttemptResult, FailureKind, Scheduler, SiteStatus, TaskResult,
};
use minpsid_trace as trace;
use minpsid_trace::{CampaignCounters, CampaignKind, Histogram, OutcomeKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

/// The deterministic work list a campaign executes: one entry per *work
/// unit* — a single injection for program campaigns, a whole site for
/// per-instruction campaigns. Building a plan is pure: it depends only on
/// the module, the golden profile and the config, never on the thread
/// schedule or on journal contents, which is what keeps reduction order
/// (and unit numbering for the ordered journal writer) stable.
#[derive(Debug, Clone)]
pub enum CampaignPlan {
    /// `injections` single-bit flips, each into a uniformly random dynamic
    /// instruction execution out of `population`.
    Program { injections: usize, population: u64 },
    /// One unit per injectable, executed static instruction, highest
    /// dynamic count first so a deadline truncates the low-benefit tail:
    /// `(dense index, instruction id, dynamic count)`.
    PerInst {
        sites: Vec<(usize, GlobalInstId, u64)>,
        injections_per_site: usize,
    },
}

impl CampaignPlan {
    /// Number of work units the executor fans out over.
    pub fn units(&self) -> usize {
        match self {
            CampaignPlan::Program { injections, .. } => *injections,
            CampaignPlan::PerInst { sites, .. } => sites.len(),
        }
    }

    /// Total injections the plan intends to run (the scheduler's
    /// `planned` figure).
    pub fn planned_injections(&self) -> u64 {
        match self {
            CampaignPlan::Program { injections, .. } => *injections as u64,
            CampaignPlan::PerInst {
                sites,
                injections_per_site,
            } => (sites.len() * injections_per_site) as u64,
        }
    }
}

// ---------------------------------------------------------------------------
// Ordered journal writer
// ---------------------------------------------------------------------------

/// One WAL record a worker produced, buffered until the single ordered
/// writer commits its work unit.
enum PendingRecord {
    Program { index: u64, outcome: u8 },
    PerInst { site: u64, k: u64, outcome: u8 },
    Quarantine { site: u64, reason: u8 },
}

/// The single ordered writer behind parallel journaled runs.
///
/// Workers complete units out of order, but the WAL byte stream must not
/// depend on the thread schedule: replay correctness is keyed, yet a
/// deterministic stream is what makes resume diffs and journal
/// compaction reproducible. Each worker hands its unit's record batch to
/// [`OrderedWriter::commit`]; the writer appends the longest contiguous
/// prefix of committed units and holds later units in a reorder buffer.
/// Finished work therefore reaches disk during the run — a crash loses
/// at most the in-flight units behind the first gap — in an order no
/// thread schedule can perturb.
struct OrderedWriter<'j> {
    journal: &'j CampaignJournal,
    input_fp: u64,
    state: Mutex<ReorderBuffer>,
}

#[derive(Default)]
struct ReorderBuffer {
    /// Next unit ordinal the WAL is waiting for.
    next: usize,
    /// Out-of-order batches, keyed by unit ordinal.
    pending: BTreeMap<usize, Vec<PendingRecord>>,
}

impl<'j> OrderedWriter<'j> {
    fn new(journal: &'j CampaignJournal, input_fp: u64) -> Self {
        OrderedWriter {
            journal,
            input_fp,
            state: Mutex::new(ReorderBuffer::default()),
        }
    }

    /// Hand over unit `unit`'s records (possibly empty — served-from-
    /// journal and truncated units still advance the cursor) and flush
    /// every batch that is now part of the contiguous completed prefix.
    fn commit(&self, unit: usize, records: Vec<PendingRecord>) {
        let mut st = self.state.lock().unwrap();
        st.pending.insert(unit, records);
        while let Some(batch) = {
            let next = st.next;
            st.pending.remove(&next)
        } {
            for r in batch {
                self.append(&r);
            }
            st.next += 1;
        }
    }

    /// Drain whatever is still buffered, in unit order. Interrupted runs
    /// leave gaps (units that never committed); everything that *did*
    /// complete still becomes durable.
    fn finish(&self) {
        let mut st = self.state.lock().unwrap();
        for (_, batch) in std::mem::take(&mut st.pending) {
            for r in batch {
                self.append(&r);
            }
        }
    }

    fn append(&self, r: &PendingRecord) {
        match *r {
            PendingRecord::Program { index, outcome } => {
                self.journal.record_program(self.input_fp, index, outcome)
            }
            PendingRecord::PerInst { site, k, outcome } => {
                self.journal
                    .record_per_inst(self.input_fp, site, k, outcome)
            }
            PendingRecord::Quarantine { site, reason } => {
                self.journal.record_quarantine(self.input_fp, site, reason)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Execution helpers (shared by both campaign shapes)
// ---------------------------------------------------------------------------

fn outcome_kind(o: Outcome) -> OutcomeKind {
    match o {
        Outcome::Benign => OutcomeKind::Benign,
        Outcome::Sdc => OutcomeKind::Sdc,
        Outcome::Crash => OutcomeKind::Crash,
        Outcome::Hang => OutcomeKind::Hang,
        Outcome::Detected => OutcomeKind::Detected,
        Outcome::EngineError => OutcomeKind::EngineError,
    }
}

fn outcome_tally(c: &OutcomeCounts) -> trace::OutcomeTally {
    trace::OutcomeTally {
        benign: c.benign,
        sdc: c.sdc,
        crash: c.crash,
        hang: c.hang,
        detected: c.detected,
        engine_error: c.engine_error,
        // the retry/quarantine side-tallies are campaign-level, not
        // per-function
        transient_recovered: 0,
        quarantined: 0,
    }
}

/// Aggregate a per-instruction campaign's outcome counts by enclosing
/// function and emit one `function_outcomes` event per touched function.
fn emit_function_outcomes(
    module: &Module,
    targets: &[(usize, GlobalInstId, u64)],
    counts: &[OutcomeCounts],
) {
    let mut per_func = vec![OutcomeCounts::default(); module.funcs.len()];
    for &(dense, gid, _) in targets {
        per_func[gid.func.index()].merge(&counts[dense]);
    }
    for (fi, agg) in per_func.iter().enumerate() {
        if agg.total() > 0 {
            trace::emit(trace::Event::FunctionOutcomes {
                func: module.funcs[fi].name.clone(),
                counts: outcome_tally(agg),
            });
        }
    }
}

/// Run one injection: resume from the nearest safe snapshot when one
/// exists (faults early in the trace may precede the first snapshot),
/// otherwise replay from scratch. `st` is per-worker scratch whose buffers
/// are reused across injections.
fn inject(
    interp: &Interp<'_>,
    st: &mut ExecScratch,
    golden: &GoldenRun,
    input: &ProgInput,
    fault: FaultSpec,
) -> ExecResult {
    let snap = match fault.target {
        FaultTarget::NthDynamic(n) => golden.checkpoints.nearest_for_dynamic(n),
        FaultTarget::NthOfInst(gid, n) => golden
            .checkpoints
            .nearest_for_inst(interp.dense_index(gid), n),
    };
    match snap {
        Some(i) => interp.resume_from(st, &golden.checkpoints, i, input, fault),
        None => interp.run_with_fault_in(st, input, fault),
    }
}

/// Salt separating the timeout knob's failure-count stream from the panic
/// knob's, so the two chaos classes fail for independent spans.
const CHAOS_TIMEOUT_SALT: u64 = 0xA24B_AED4_963E_E407;

/// Deterministic chaos plan for one injection key: `(kind, n)` means the
/// first `n` attempts at this injection fail with `kind`. `n` spans 1–4,
/// so with the default retry budget of 2 some chaos-hit injections
/// recover and some exhaust — both paths are exercised by one knob.
/// Deterministic in the key alone, so interrupted-and-resumed runs see
/// the same engine failures as uninterrupted ones.
fn chaos_plan(cfg: &CampaignConfig, key: u64) -> Option<(FailureKind, u32)> {
    if let Some(n) = cfg.chaos_panic_one_in.filter(|&n| n > 0) {
        if key.is_multiple_of(n) {
            return Some((FailureKind::Panic, 1 + (splitmix64(key) & 3) as u32));
        }
    }
    if let Some(m) = cfg.chaos_timeout_one_in.filter(|&m| m > 0) {
        if key.wrapping_add(m / 2).is_multiple_of(m) {
            let fails = 1 + (splitmix64(key ^ CHAOS_TIMEOUT_SALT) & 3) as u32;
            return Some((FailureKind::Timeout, fails));
        }
    }
    None
}

/// Flat injection index of the per-instruction campaign's (dense, k)
/// pair, the chaos key shared by journaled and plain variants.
fn per_inst_chaos_key(cfg: &CampaignConfig, dense: usize, k: usize) -> u64 {
    (dense as u64) * (cfg.per_inst_injections as u64) + k as u64
}

/// One attempt at [`inject`], hardened for the retry loop: a panic
/// anywhere inside the replay (an interpreter bug, or the chaos knob)
/// surfaces as [`FailureKind::Panic`] instead of poisoning the worker
/// pool, and a wall-clock blowout (real, or the timeout chaos knob)
/// surfaces as [`FailureKind::Timeout`]. Both are retryable — they say
/// something about the harness or the host, not the program under test.
/// The panic still prints to stderr: a degraded run is visible, not
/// silent.
#[allow(clippy::too_many_arguments)]
fn inject_attempt(
    interp: &Interp<'_>,
    st: &mut ExecScratch,
    golden: &GoldenRun,
    input: &ProgInput,
    fault: FaultSpec,
    chaos: Option<(FailureKind, u32)>,
    attempt: u32,
) -> AttemptResult<(Outcome, u64, u64)> {
    let chaos_hit = matches!(chaos, Some((_, fails)) if attempt < fails);
    if chaos_hit && matches!(chaos, Some((FailureKind::Timeout, _))) {
        // a synthetic wall-clock kill: nothing executed, nothing to classify
        return AttemptResult::Failed(FailureKind::Timeout);
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        if chaos_hit {
            panic!("chaos: injected worker panic (chaos_panic_one_in)");
        }
        inject(interp, st, golden, input, fault)
    }));
    match result {
        Ok(r) => {
            debug_assert!(r.fault_applied, "fault target within population");
            let skipped = r.resumed_at.unwrap_or(0);
            let executed = r.steps.saturating_sub(skipped);
            match classify(&golden.output, &r) {
                // a real wall-clock blowout reflects host pressure, not
                // program behaviour — hand it to the retry loop
                Outcome::EngineError => AttemptResult::Failed(FailureKind::Timeout),
                o => AttemptResult::Ok((o, executed, skipped)),
            }
        }
        Err(_) => {
            // the panic may have left the per-worker scratch mid-run;
            // drop it so the next attempt starts clean
            *st = ExecScratch::default();
            AttemptResult::Failed(FailureKind::Panic)
        }
    }
}

/// Drive one injection through the scheduler's retry loop. Exhaustion
/// collapses to a final [`Outcome::EngineError`] with zero step counts;
/// `recovered` is true when the outcome arrived only after ≥1 retry.
struct ResolvedInjection {
    outcome: Outcome,
    executed: u64,
    skipped: u64,
    recovered: bool,
    exhausted: Option<FailureKind>,
}

#[allow(clippy::too_many_arguments)]
fn resolve_injection(
    sched: &Scheduler,
    kind: CampaignKind,
    site: u64,
    interp: &Interp<'_>,
    st: &mut ExecScratch,
    golden: &GoldenRun,
    input: &ProgInput,
    fault: FaultSpec,
    chaos: Option<(FailureKind, u32)>,
) -> ResolvedInjection {
    match sched.run_task(kind, site, |attempt| {
        inject_attempt(interp, st, golden, input, fault, chaos, attempt)
    }) {
        TaskResult::Done {
            value: (outcome, executed, skipped),
            retries,
        } => ResolvedInjection {
            outcome,
            executed,
            skipped,
            recovered: retries > 0,
            exhausted: None,
        },
        TaskResult::Exhausted { reason, .. } => ResolvedInjection {
            outcome: Outcome::EngineError,
            executed: 0,
            skipped: 0,
            recovered: false,
            exhausted: Some(reason),
        },
    }
}

/// Execute program-campaign unit `i` — the body shared by
/// [`CampaignEngine::run_program`] and the fleet's
/// [`ProgramUnitExecutor`], so an out-of-process shard worker resolves
/// exactly the outcome the in-process parallel executor would.
#[allow(clippy::too_many_arguments)]
fn program_unit(
    cfg: &CampaignConfig,
    sched: &Scheduler,
    interp: &Interp<'_>,
    st: &mut ExecScratch,
    golden: &GoldenRun,
    input: &ProgInput,
    population: u64,
    i: usize,
) -> ResolvedInjection {
    // per-injection RNG: deterministic regardless of thread schedule,
    // journal contents, or which process runs the unit
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let fault = FaultSpec {
        target: FaultTarget::NthDynamic(rng.random_range(0..population)),
        bit: rng.random_range(0..64),
    };
    resolve_injection(
        sched,
        CampaignKind::Program,
        i as u64,
        interp,
        st,
        golden,
        input,
        fault,
        chaos_plan(cfg, i as u64),
    )
}

fn faulty_exec_config(cfg: &CampaignConfig, golden_steps: u64) -> ExecConfig {
    ExecConfig {
        profile: false,
        step_limit: golden_steps.saturating_mul(cfg.hang_multiplier).max(10_000),
        ..cfg.exec.clone()
    }
}

/// How a program-campaign work unit ended.
enum UnitResult {
    Done(Outcome),
    Truncated,
    Interrupted,
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// The single orchestration core every campaign runs through.
///
/// Construct with [`CampaignEngine::new`], attach policy layers with
/// [`with_scheduler`](CampaignEngine::with_scheduler) /
/// [`with_journal`](CampaignEngine::with_journal), then execute a
/// campaign shape with [`run_program`](CampaignEngine::run_program) or
/// [`run_per_instruction`](CampaignEngine::run_per_instruction).
///
/// ```text
/// CampaignEngine::new(&module, &input, &golden, &cfg)
///     .with_scheduler(&sched)        // deadline + shared accounting
///     .with_journal(&journal, fp)    // crash-safe resume
///     .run_per_instruction()?
/// ```
pub struct CampaignEngine<'a> {
    module: &'a Module,
    input: &'a ProgInput,
    golden: &'a GoldenRun,
    cfg: &'a CampaignConfig,
    /// Fallback scheduler (retry knobs from `cfg.sched`, no deadline)
    /// used when the caller does not attach one.
    owned_sched: Scheduler,
    sched: Option<&'a Scheduler>,
    journal: Option<(&'a CampaignJournal, u64)>,
}

impl<'a> CampaignEngine<'a> {
    /// An engine over `(module, input, golden)` with no external policy
    /// layers: retries per `cfg.sched`, no deadline, no journal.
    pub fn new(
        module: &'a Module,
        input: &'a ProgInput,
        golden: &'a GoldenRun,
        cfg: &'a CampaignConfig,
    ) -> Self {
        CampaignEngine {
            module,
            input,
            golden,
            cfg,
            owned_sched: Scheduler::unbounded(cfg.sched.clone()),
            sched: None,
            journal: None,
        }
    }

    /// Attach a caller-owned [`Scheduler`] — the deadline-aware form whose
    /// accounting spans several campaigns of one run.
    pub fn with_scheduler(mut self, sched: &'a Scheduler) -> Self {
        self.sched = Some(sched);
        self
    }

    /// Attach a crash-safe journal layer: outcomes recorded under
    /// `input_fp` are served without re-execution, fresh outcomes are
    /// appended (in deterministic unit order, whatever the thread count),
    /// and a pending [`interrupt`] returns [`Interrupted`] with all
    /// finished work durable.
    pub fn with_journal(mut self, journal: &'a CampaignJournal, input_fp: u64) -> Self {
        self.journal = Some((journal, input_fp));
        self
    }

    /// The scheduler this engine executes under.
    pub fn scheduler(&self) -> &Scheduler {
        self.sched.unwrap_or(&self.owned_sched)
    }

    /// The whole-program plan: `cfg.injections` units over the golden
    /// run's injectable population.
    pub fn plan_program(&self) -> CampaignPlan {
        CampaignPlan::Program {
            injections: self.cfg.injections,
            population: self.golden.profile.injectable_execs,
        }
    }

    /// The per-instruction plan: one unit per injectable, executed static
    /// instruction, highest dynamic count first (deadlines truncate the
    /// low-benefit tail; dense index breaks ties so the order is total).
    pub fn plan_per_instruction(&self) -> CampaignPlan {
        let numbering = self.module.numbering();
        let mut sites: Vec<(usize, GlobalInstId, u64)> = self
            .module
            .iter_insts()
            .filter(|(_, inst)| inst.injectable())
            .map(|(gid, _)| {
                let dense = numbering.index(gid);
                (dense, gid, self.golden.profile.inst_counts[dense])
            })
            .filter(|&(_, _, count)| count > 0)
            .collect();
        sites.sort_unstable_by_key(|&(dense, _, count)| (std::cmp::Reverse(count), dense));
        CampaignPlan::PerInst {
            sites,
            injections_per_site: self.cfg.per_inst_injections,
        }
    }

    /// Execute the whole-program campaign: `cfg.injections` single-bit
    /// flips, each into a uniformly random dynamic instruction execution
    /// and uniformly random bit, every outcome classified against the
    /// golden run. Errs with [`Interrupted`] only when a journal is
    /// attached and an interrupt is pending.
    pub fn run_program(&self) -> Result<ProgramCampaign, Interrupted> {
        let plan_span = trace::span("plan");
        let (injections, population) = match self.plan_program() {
            CampaignPlan::Program {
                injections,
                population,
            } => (injections, population),
            CampaignPlan::PerInst { .. } => unreachable!(),
        };
        drop(plan_span);
        let cfg = self.cfg;
        let sched = self.scheduler();
        if population == 0 || injections == 0 {
            return Ok(ProgramCampaign::empty(cfg));
        }
        sched.add_planned(injections as u64);
        let interp = Interp::new(self.module, faulty_exec_config(cfg, self.golden.steps));
        // capture once so workers pay no atomic load when tracing is off
        let tracing = trace::active();
        let counters = CampaignCounters::new(CampaignKind::Program, injections as u64);
        let suffix_steps = Histogram::new();
        let recovered = AtomicU64::new(0);
        let journal = self.journal;
        let writer = journal.map(|(j, fp)| OrderedWriter::new(j, fp));
        let execute_span = trace::span("execute");
        let results = trace::sample_campaign(&counters, PROGRESS_INTERVAL, || {
            par_map_init(injections, cfg.threads, ExecScratch::default, |st, i| {
                if journal.is_some() && interrupt::requested() {
                    return UnitResult::Interrupted;
                }
                if let Some((j, fp)) = journal {
                    if let Some(o) = j.program_outcome(fp, i as u64).and_then(Outcome::from_u8) {
                        sched.note_completed(1);
                        if tracing {
                            counters.record(outcome_kind(o), 0, 0);
                        }
                        if let Some(w) = &writer {
                            w.commit(i, Vec::new());
                        }
                        return UnitResult::Done(o);
                    }
                }
                if sched.deadline_exceeded() {
                    if let Some(w) = &writer {
                        w.commit(i, Vec::new());
                    }
                    return UnitResult::Truncated;
                }
                let r = program_unit(
                    cfg,
                    sched,
                    &interp,
                    st,
                    self.golden,
                    self.input,
                    population,
                    i,
                );
                if let Some(w) = &writer {
                    w.commit(
                        i,
                        vec![PendingRecord::Program {
                            index: i as u64,
                            outcome: r.outcome.to_u8(),
                        }],
                    );
                }
                sched.note_completed(1);
                if r.recovered {
                    recovered.fetch_add(1, Ordering::Relaxed);
                }
                if tracing {
                    counters.record(outcome_kind(r.outcome), r.executed, r.skipped);
                    if r.recovered {
                        counters.record_recovered();
                    }
                    suffix_steps.record(r.executed);
                }
                UnitResult::Done(r.outcome)
            })
        });
        drop(execute_span);
        if let Some(w) = &writer {
            w.finish();
        }
        if tracing {
            suffix_steps.emit("fi.program.suffix_steps");
        }
        if journal.is_some()
            && (results.iter().any(|r| matches!(r, UnitResult::Interrupted))
                || interrupt::requested())
        {
            if let Some((j, _)) = journal {
                let _ = j.sync();
            }
            return Err(Interrupted);
        }
        let _reduce_span = trace::span("reduce");
        let mut counts = OutcomeCounts::default();
        let mut truncated = 0u64;
        for r in results {
            match r {
                UnitResult::Done(o) => counts.record(o),
                UnitResult::Truncated => truncated += 1,
                UnitResult::Interrupted => unreachable!("handled above"),
            }
        }
        sched.note_truncated(CampaignKind::Program, truncated);
        if let Some((j, _)) = journal {
            let _ = j.sync();
        }
        // engine errors carry no information about the program, so the CI
        // is over the injections that produced a real outcome
        let sdc_ci = binomial_ci(counts.sdc, counts.valid_total(), cfg.sched.ci_z);
        Ok(ProgramCampaign {
            counts,
            sdc_ci,
            planned: injections as u64,
            truncated,
            recovered: recovered.into_inner(),
        })
    }

    /// Execute the per-instruction campaign: `cfg.per_inst_injections`
    /// faults into uniformly random dynamic executions of every site in
    /// the plan. Engine failures are retried; persistently failing sites
    /// are quarantined; converged sites stop early; sites past the
    /// deadline are truncated. Errs with [`Interrupted`] only when a
    /// journal is attached and an interrupt is pending.
    pub fn run_per_instruction(&self) -> Result<PerInstSdc, Interrupted> {
        let plan_span = trace::span("plan");
        let (sites, planned) = match self.plan_per_instruction() {
            CampaignPlan::PerInst {
                sites,
                injections_per_site,
            } => (sites, injections_per_site),
            CampaignPlan::Program { .. } => unreachable!(),
        };
        drop(plan_span);
        let cfg = self.cfg;
        let sched = self.scheduler();
        let n = self.module.numbering().len();
        let interp = Interp::new(self.module, faulty_exec_config(cfg, self.golden.steps));
        sched.add_planned((sites.len() * planned) as u64);
        let tracing = trace::active();
        let counters = CampaignCounters::new(CampaignKind::PerInst, (sites.len() * planned) as u64);
        let journal = self.journal;
        let writer = journal.map(|(j, fp)| OrderedWriter::new(j, fp));
        let execute_span = trace::span("execute");
        let per_site = trace::sample_campaign(&counters, PROGRESS_INTERVAL, || {
            par_map_init(sites.len(), cfg.threads, ExecScratch::default, |st, t| {
                let (dense, gid, count) = sites[t];
                let site = dense as u64;
                let mut counts = OutcomeCounts::default();
                let mut records: Vec<PendingRecord> = Vec::new();
                let commit = |records: Vec<PendingRecord>| {
                    if let Some(w) = &writer {
                        w.commit(t, records);
                    }
                };
                // a site quarantined by a previous (crashed or
                // resumed) run is skipped outright: the journal is
                // the durable quarantine list
                if let Some((j, input_fp)) = journal {
                    if let Some(b) = j.quarantined_site(input_fp, site) {
                        let reason = FailureKind::from_u8(b).unwrap_or(FailureKind::Panic);
                        sched.note_resumed_quarantine();
                        sched.note_quarantine_skipped(planned as u64);
                        if tracing {
                            counters.record_quarantined(planned as u64);
                        }
                        commit(records);
                        return (dense, counts, SiteStatus::Quarantined(reason), true);
                    }
                }
                let mut status = SiteStatus::Full;
                let mut consecutive = 0u32;
                for k in 0..planned {
                    if journal.is_some() && interrupt::requested() {
                        // partial work stays durable: the batch holds
                        // everything this unit finished before the
                        // interrupt
                        commit(records);
                        return (dense, counts, status, false);
                    }
                    if sched.deadline_exceeded() {
                        status = if k == 0 {
                            SiteStatus::Unsampled
                        } else {
                            SiteStatus::Truncated
                        };
                        sched.note_truncated(CampaignKind::PerInst, (planned - k) as u64);
                        break;
                    }
                    if let Some(o) = journal
                        .and_then(|(j, fp)| j.per_inst_outcome(fp, site, k as u64))
                        .and_then(Outcome::from_u8)
                    {
                        counts.record(o);
                        sched.note_completed(1);
                        consecutive = if o == Outcome::EngineError {
                            consecutive + 1
                        } else {
                            0
                        };
                        if tracing {
                            counters.record(outcome_kind(o), 0, 0);
                        }
                        if let Some(hw) = sched.early_stop(counts.sdc, counts.valid_total()) {
                            if k + 1 < planned {
                                let skip = (planned - k - 1) as u64;
                                sched.note_early_stop(
                                    CampaignKind::PerInst,
                                    site,
                                    counts.total(),
                                    hw,
                                    skip,
                                );
                                status = SiteStatus::EarlyStopped;
                                break;
                            }
                        }
                        continue;
                    }
                    let mut rng = StdRng::seed_from_u64(
                        cfg.seed
                            ^ (dense as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
                            ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let fault = FaultSpec {
                        target: FaultTarget::NthOfInst(gid, rng.random_range(0..count)),
                        bit: rng.random_range(0..64),
                    };
                    let chaos_key = per_inst_chaos_key(cfg, dense, k);
                    let r = resolve_injection(
                        sched,
                        CampaignKind::PerInst,
                        chaos_key,
                        &interp,
                        st,
                        self.golden,
                        self.input,
                        fault,
                        chaos_plan(cfg, chaos_key),
                    );
                    if let Some(reason) = r.exhausted {
                        consecutive += 1;
                        if consecutive >= cfg.sched.quarantine_after.max(1)
                            && sched.try_quarantine(
                                CampaignKind::PerInst,
                                site,
                                reason,
                                consecutive,
                            )
                        {
                            // the triggering injection and everything
                            // still pending at this site are charged
                            // to quarantine, not recorded as outcomes
                            if journal.is_some() {
                                records.push(PendingRecord::Quarantine {
                                    site,
                                    reason: reason.to_u8(),
                                });
                            }
                            let skip = (planned - k) as u64;
                            sched.note_quarantine_skipped(skip);
                            if tracing {
                                counters.record_quarantined(skip);
                            }
                            status = SiteStatus::Quarantined(reason);
                            break;
                        }
                        // cap reached or below the threshold: the
                        // exhaustion degrades to a recorded EngineError
                    } else {
                        consecutive = 0;
                    }
                    if journal.is_some() {
                        records.push(PendingRecord::PerInst {
                            site,
                            k: k as u64,
                            outcome: r.outcome.to_u8(),
                        });
                    }
                    counts.record(r.outcome);
                    sched.note_completed(1);
                    if tracing {
                        counters.record(outcome_kind(r.outcome), r.executed, r.skipped);
                        if r.recovered {
                            counters.record_recovered();
                        }
                    }
                    if let Some(hw) = sched.early_stop(counts.sdc, counts.valid_total()) {
                        if k + 1 < planned {
                            let skip = (planned - k - 1) as u64;
                            sched.note_early_stop(
                                CampaignKind::PerInst,
                                site,
                                counts.total(),
                                hw,
                                skip,
                            );
                            status = SiteStatus::EarlyStopped;
                            break;
                        }
                    }
                }
                commit(records);
                (dense, counts, status, true)
            })
        });
        drop(execute_span);
        if let Some(w) = &writer {
            w.finish();
        }

        if journal.is_some() {
            let complete = per_site.iter().all(|&(_, _, _, done)| done);
            if !complete || interrupt::requested() {
                if let Some((j, _)) = journal {
                    let _ = j.sync();
                }
                return Err(Interrupted);
            }
        }
        let _reduce_span = trace::span("reduce");
        let mut sdc_prob = vec![0.0; n];
        let mut counts = vec![OutcomeCounts::default(); n];
        let mut ci = vec![binomial_ci(0, 0, cfg.sched.ci_z); n];
        let mut status = vec![SiteStatus::Unsampled; n];
        for (dense, c, st_, _) in per_site {
            if st_.trusted() {
                sdc_prob[dense] = c.sdc_prob();
                ci[dense] = sched.site_ci(c.sdc, c.valid_total());
            }
            counts[dense] = c;
            status[dense] = st_;
        }
        if tracing {
            emit_function_outcomes(self.module, &sites, &counts);
        }
        if let Some((j, _)) = journal {
            let _ = j.sync();
        }
        Ok(PerInstSdc {
            sdc_prob,
            counts,
            ci,
            status,
        })
    }

    /// A sequential unit-at-a-time executor over this engine's program
    /// plan, for callers that drive unit selection themselves — the fleet
    /// worker resolves exactly the units its leased shard names, in
    /// whatever order the supervisor hands them out, and each unit's
    /// outcome is identical to what [`run_program`](Self::run_program)
    /// would have produced at that plan position.
    pub fn program_executor(&self) -> ProgramUnitExecutor<'_> {
        let (injections, population) = match self.plan_program() {
            CampaignPlan::Program {
                injections,
                population,
            } => (injections, population),
            CampaignPlan::PerInst { .. } => unreachable!(),
        };
        ProgramUnitExecutor {
            cfg: self.cfg,
            sched: self.scheduler(),
            golden: self.golden,
            input: self.input,
            interp: Interp::new(self.module, faulty_exec_config(self.cfg, self.golden.steps)),
            scratch: ExecScratch::default(),
            injections,
            population,
        }
    }
}

// ---------------------------------------------------------------------------
// Pluggable shard executor
// ---------------------------------------------------------------------------

/// Resolves individual program-campaign units on demand.
///
/// This is the engine's seam for out-of-process execution: a fleet worker
/// builds one from its own [`CampaignEngine`] (same module, input, golden
/// run and config as the supervisor planned with) and resolves the unit
/// indices of whatever shard it currently leases. Determinism is carried
/// entirely by the plan position `i` — RNG seed, chaos plan and retry
/// schedule all derive from `(cfg, i)` — so at-least-once execution
/// across worker deaths still reduces to exactly the `--threads` report.
pub struct ProgramUnitExecutor<'e> {
    cfg: &'e CampaignConfig,
    sched: &'e Scheduler,
    golden: &'e GoldenRun,
    input: &'e ProgInput,
    interp: Interp<'e>,
    scratch: ExecScratch,
    injections: usize,
    population: u64,
}

impl ProgramUnitExecutor<'_> {
    /// Units in the plan (`cfg.injections`).
    pub fn injections(&self) -> usize {
        self.injections
    }

    /// Injectable dynamic-execution population of the golden run. When
    /// zero the plan is empty and no unit may be run.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Resolve unit `i`: `(classified outcome, recovered-via-retry)`.
    ///
    /// Panics if `i` is outside the plan or the population is empty —
    /// the supervisor never leases such units.
    pub fn run_unit(&mut self, i: usize) -> (Outcome, bool) {
        assert!(
            i < self.injections && self.population > 0,
            "unit {i} outside plan ({} injections, population {})",
            self.injections,
            self.population
        );
        let r = program_unit(
            self.cfg,
            self.sched,
            &self.interp,
            &mut self.scratch,
            self.golden,
            self.input,
            self.population,
            i,
        );
        (r.outcome, r.recovered)
    }
}
