//! The unified campaign execution engine: one plan → execute → reduce
//! pipeline behind every campaign composition.
//!
//! Four features grew onto the fault-injection loop one PR at a time —
//! checkpointed replay, tracing, the crash-safe WAL journal, and the
//! resilient scheduler — and each arrived as a forked entry point, until
//! `campaign.rs` carried a 3×2 matrix of near-identical loop bodies.
//! [`CampaignEngine`] folds that matrix back into one orchestration core
//! with the features attached as *policy layers*:
//!
//! * **Scheduling** — retry/backoff, quarantine, early stop and the
//!   wall-clock deadline live on a [`Scheduler`]. The engine owns an
//!   unbounded one by default; [`CampaignEngine::with_scheduler`] attaches
//!   a caller-owned (deadline-aware, shared-accounting) one instead.
//! * **Journaling** — [`CampaignEngine::with_journal`] makes the run
//!   crash-safe: recorded outcomes are served without re-execution, fresh
//!   outcomes are appended, and a pending [`interrupt`] drains the run
//!   into [`Interrupted`] with all finished work durable.
//! * **Tracing** — counters, progress sampling and per-function outcome
//!   events, active whenever the process-wide trace sink is.
//!
//! Execution is parallel for **every** composition. Workers fan out over
//! [`par_map_init`] and each result lands in its plan-ordered slot, so
//! reduction — and therefore every report — is byte-identical at any
//! thread count. Journaled runs stay parallel too: workers buffer their
//! WAL records per work unit and a single [`OrderedWriter`] appends each
//! contiguous prefix of completed units, so the WAL byte stream is as
//! deterministic as the report while finished work still reaches disk
//! *during* the run (a crash loses at most the in-flight units).
//!
//! Determinism contract (unchanged from the pre-engine code, verified by
//! the equivalence tests): every injection's RNG is seeded only by
//! `(cfg.seed, plan position)`, never by thread schedule or by which
//! outcomes a journal served, so plain, scheduled, journaled and resumed
//! runs of the same seed produce bit-identical reports.

use crate::campaign::{CampaignConfig, GoldenRun, PerInstSdc, ProgramCampaign, PROGRESS_INTERVAL};
use crate::outcome::{classify, Outcome, OutcomeCounts};
use crate::parallel::par_map_init;
use crate::table::{table_sig, PerInstTable, ProgramTable, TableKind, TableMemo};
use minpsid_interp::{
    ExecConfig, ExecResult, ExecScratch, FaultSpec, FaultTarget, Interp, ProgInput,
};
use minpsid_ir::{section_fingerprints, GlobalInstId, Module};
use minpsid_journal::{interrupt, CampaignJournal, Interrupted};
use minpsid_sched::{
    binomial_ci, splitmix64, AttemptResult, FailureKind, Scheduler, SiteStatus, TaskResult,
};
use minpsid_trace as trace;
use minpsid_trace::{CampaignCounters, CampaignKind, Histogram, OutcomeKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

/// One whole-program-campaign section: a function's slice of the
/// stratified plan. Flat plan positions `unit_base..unit_base+injections`
/// target this function's injectable dynamic executions; allocations are
/// largest-remainder over `pop`, so per-section totals still sum to
/// `cfg.injections` and the sampling stays proportional to execution
/// weight (the same distribution the unstratified sampler converged to).
#[derive(Debug, Clone)]
pub struct ProgramSection {
    /// Function index in the module.
    pub func: usize,
    /// Content fingerprint: the function's own code plus every transitive
    /// callee (see `minpsid_ir::section_fingerprints`).
    pub fp: u64,
    /// Flat plan position of this section's first unit.
    pub unit_base: usize,
    /// Units allocated to this section.
    pub injections: usize,
    /// Injectable dynamic executions within this function.
    pub pop: u64,
    /// Cumulative dynamic counts over the function's injectable sites
    /// with nonzero count, in instruction order: `(gid, count-through-
    /// gid)`. Maps a section-local draw in `0..pop` to a fault target.
    pub prefix: Vec<(GlobalInstId, u64)>,
}

/// One per-instruction-campaign section: a function's injectable,
/// executed sites, highest dynamic count first (a deadline truncates the
/// low-benefit tail *within* each section).
#[derive(Debug, Clone)]
pub struct PerInstSection {
    /// Function index in the module.
    pub func: usize,
    /// Content fingerprint (code + transitive callees).
    pub fp: u64,
    /// Flat plan position of this section's first site.
    pub site_base: usize,
    /// `(dense index, instruction id, dynamic count)`.
    pub sites: Vec<(usize, GlobalInstId, u64)>,
}

/// The deterministic work list a campaign executes: per-section unit
/// groups — a single injection per unit for program campaigns, a whole
/// site per unit for per-instruction campaigns. One *section* is one
/// function; grouping by section is what lets a memoized outcome table
/// stand in for a whole group, and the per-section RNG streams (seeded by
/// content fingerprint, not flat position) are what keep an unedited
/// section's fault sequence stable when a neighbour is edited. Building a
/// plan is pure: it depends only on the module, the golden profile and
/// the config, never on the thread schedule or on journal contents, which
/// is what keeps reduction order (and unit numbering for the ordered
/// journal writer) stable.
#[derive(Debug, Clone)]
pub enum CampaignPlan {
    /// `injections` single-bit flips over `population` injectable dynamic
    /// executions, stratified across `sections`.
    Program {
        injections: usize,
        population: u64,
        sections: Vec<ProgramSection>,
    },
    /// One unit per injectable, executed static instruction, grouped by
    /// enclosing function.
    PerInst {
        sections: Vec<PerInstSection>,
        injections_per_site: usize,
    },
}

impl CampaignPlan {
    /// Number of work units the executor fans out over.
    pub fn units(&self) -> usize {
        match self {
            CampaignPlan::Program { injections, .. } => *injections,
            CampaignPlan::PerInst { sections, .. } => sections.iter().map(|s| s.sites.len()).sum(),
        }
    }

    /// Total injections the plan intends to run (the scheduler's
    /// `planned` figure).
    pub fn planned_injections(&self) -> u64 {
        match self {
            CampaignPlan::Program { injections, .. } => *injections as u64,
            CampaignPlan::PerInst {
                sections,
                injections_per_site,
            } => {
                (sections.iter().map(|s| s.sites.len()).sum::<usize>() * injections_per_site) as u64
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Ordered journal writer
// ---------------------------------------------------------------------------

/// One WAL record a worker produced, buffered until the single ordered
/// writer commits its work unit.
enum PendingRecord {
    Program { index: u64, outcome: u8 },
    PerInst { site: u64, k: u64, outcome: u8 },
    Quarantine { site: u64, reason: u8 },
}

/// The single ordered writer behind parallel journaled runs.
///
/// Workers complete units out of order, but the WAL byte stream must not
/// depend on the thread schedule: replay correctness is keyed, yet a
/// deterministic stream is what makes resume diffs and journal
/// compaction reproducible. Each worker hands its unit's record batch to
/// [`OrderedWriter::commit`]; the writer appends the longest contiguous
/// prefix of committed units and holds later units in a reorder buffer.
/// Finished work therefore reaches disk during the run — a crash loses
/// at most the in-flight units behind the first gap — in an order no
/// thread schedule can perturb.
struct OrderedWriter<'j> {
    journal: &'j CampaignJournal,
    input_fp: u64,
    state: Mutex<ReorderBuffer>,
}

#[derive(Default)]
struct ReorderBuffer {
    /// Next unit ordinal the WAL is waiting for.
    next: usize,
    /// Out-of-order batches, keyed by unit ordinal.
    pending: BTreeMap<usize, Vec<PendingRecord>>,
}

impl<'j> OrderedWriter<'j> {
    fn new(journal: &'j CampaignJournal, input_fp: u64) -> Self {
        OrderedWriter {
            journal,
            input_fp,
            state: Mutex::new(ReorderBuffer::default()),
        }
    }

    /// Hand over unit `unit`'s records (possibly empty — served-from-
    /// journal and truncated units still advance the cursor) and flush
    /// every batch that is now part of the contiguous completed prefix.
    fn commit(&self, unit: usize, records: Vec<PendingRecord>) {
        let mut st = self.state.lock().unwrap();
        st.pending.insert(unit, records);
        while let Some(batch) = {
            let next = st.next;
            st.pending.remove(&next)
        } {
            for r in batch {
                self.append(&r);
            }
            st.next += 1;
        }
    }

    /// Drain whatever is still buffered, in unit order. Interrupted runs
    /// leave gaps (units that never committed); everything that *did*
    /// complete still becomes durable.
    fn finish(&self) {
        let mut st = self.state.lock().unwrap();
        for (_, batch) in std::mem::take(&mut st.pending) {
            for r in batch {
                self.append(&r);
            }
        }
    }

    fn append(&self, r: &PendingRecord) {
        match *r {
            PendingRecord::Program { index, outcome } => {
                self.journal.record_program(self.input_fp, index, outcome)
            }
            PendingRecord::PerInst { site, k, outcome } => {
                self.journal
                    .record_per_inst(self.input_fp, site, k, outcome)
            }
            PendingRecord::Quarantine { site, reason } => {
                self.journal.record_quarantine(self.input_fp, site, reason)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Execution helpers (shared by both campaign shapes)
// ---------------------------------------------------------------------------

fn outcome_kind(o: Outcome) -> OutcomeKind {
    match o {
        Outcome::Benign => OutcomeKind::Benign,
        Outcome::Sdc => OutcomeKind::Sdc,
        Outcome::Crash => OutcomeKind::Crash,
        Outcome::Hang => OutcomeKind::Hang,
        Outcome::Detected => OutcomeKind::Detected,
        Outcome::EngineError => OutcomeKind::EngineError,
    }
}

fn outcome_tally(c: &OutcomeCounts) -> trace::OutcomeTally {
    trace::OutcomeTally {
        benign: c.benign,
        sdc: c.sdc,
        crash: c.crash,
        hang: c.hang,
        detected: c.detected,
        engine_error: c.engine_error,
        // the retry/quarantine side-tallies are campaign-level, not
        // per-function
        transient_recovered: 0,
        quarantined: 0,
    }
}

/// Aggregate a per-instruction campaign's outcome counts by enclosing
/// function and emit one `function_outcomes` event per touched function.
fn emit_function_outcomes(
    module: &Module,
    targets: &[(usize, GlobalInstId, u64)],
    counts: &[OutcomeCounts],
) {
    let mut per_func = vec![OutcomeCounts::default(); module.funcs.len()];
    for &(dense, gid, _) in targets {
        per_func[gid.func.index()].merge(&counts[dense]);
    }
    for (fi, agg) in per_func.iter().enumerate() {
        if agg.total() > 0 {
            trace::emit(trace::Event::FunctionOutcomes {
                func: module.funcs[fi].name.clone(),
                counts: outcome_tally(agg),
            });
        }
    }
}

/// Run one injection: resume from the nearest safe snapshot when one
/// exists (faults early in the trace may precede the first snapshot),
/// otherwise replay from scratch. `st` is per-worker scratch whose buffers
/// are reused across injections.
fn inject(
    interp: &Interp<'_>,
    st: &mut ExecScratch,
    golden: &GoldenRun,
    input: &ProgInput,
    fault: FaultSpec,
) -> ExecResult {
    let snap = match fault.target {
        FaultTarget::NthDynamic(n) => golden.checkpoints.nearest_for_dynamic(n),
        FaultTarget::NthOfInst(gid, n) => golden
            .checkpoints
            .nearest_for_inst(interp.dense_index(gid), n),
    };
    match snap {
        Some(i) => interp.resume_from(st, &golden.checkpoints, i, input, fault),
        None => interp.run_with_fault_in(st, input, fault),
    }
}

/// Salt separating the timeout knob's failure-count stream from the panic
/// knob's, so the two chaos classes fail for independent spans.
const CHAOS_TIMEOUT_SALT: u64 = 0xA24B_AED4_963E_E407;

/// Deterministic chaos plan for one injection key: `(kind, n)` means the
/// first `n` attempts at this injection fail with `kind`. `n` spans 1–4,
/// so with the default retry budget of 2 some chaos-hit injections
/// recover and some exhaust — both paths are exercised by one knob.
/// Deterministic in the key alone, so interrupted-and-resumed runs see
/// the same engine failures as uninterrupted ones.
fn chaos_plan(cfg: &CampaignConfig, key: u64) -> Option<(FailureKind, u32)> {
    if let Some(n) = cfg.chaos_panic_one_in.filter(|&n| n > 0) {
        if key.is_multiple_of(n) {
            return Some((FailureKind::Panic, 1 + (splitmix64(key) & 3) as u32));
        }
    }
    if let Some(m) = cfg.chaos_timeout_one_in.filter(|&m| m > 0) {
        if key.wrapping_add(m / 2).is_multiple_of(m) {
            let fails = 1 + (splitmix64(key ^ CHAOS_TIMEOUT_SALT) & 3) as u32;
            return Some((FailureKind::Timeout, fails));
        }
    }
    None
}

/// Flat injection index of the per-instruction campaign's (dense, k)
/// pair, the chaos key shared by journaled and plain variants.
fn per_inst_chaos_key(cfg: &CampaignConfig, dense: usize, k: usize) -> u64 {
    (dense as u64) * (cfg.per_inst_injections as u64) + k as u64
}

/// One attempt at [`inject`], hardened for the retry loop: a panic
/// anywhere inside the replay (an interpreter bug, or the chaos knob)
/// surfaces as [`FailureKind::Panic`] instead of poisoning the worker
/// pool, and a wall-clock blowout (real, or the timeout chaos knob)
/// surfaces as [`FailureKind::Timeout`]. Both are retryable — they say
/// something about the harness or the host, not the program under test.
/// The panic still prints to stderr: a degraded run is visible, not
/// silent.
#[allow(clippy::too_many_arguments)]
fn inject_attempt(
    interp: &Interp<'_>,
    st: &mut ExecScratch,
    golden: &GoldenRun,
    input: &ProgInput,
    fault: FaultSpec,
    chaos: Option<(FailureKind, u32)>,
    attempt: u32,
) -> AttemptResult<(Outcome, u64, u64)> {
    let chaos_hit = matches!(chaos, Some((_, fails)) if attempt < fails);
    if chaos_hit && matches!(chaos, Some((FailureKind::Timeout, _))) {
        // a synthetic wall-clock kill: nothing executed, nothing to classify
        return AttemptResult::Failed(FailureKind::Timeout);
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        if chaos_hit {
            panic!("chaos: injected worker panic (chaos_panic_one_in)");
        }
        inject(interp, st, golden, input, fault)
    }));
    match result {
        Ok(r) => {
            debug_assert!(r.fault_applied, "fault target within population");
            let skipped = r.resumed_at.unwrap_or(0);
            let executed = r.steps.saturating_sub(skipped);
            match classify(&golden.output, &r) {
                // a real wall-clock blowout reflects host pressure, not
                // program behaviour — hand it to the retry loop
                Outcome::EngineError => AttemptResult::Failed(FailureKind::Timeout),
                o => AttemptResult::Ok((o, executed, skipped)),
            }
        }
        Err(_) => {
            // the panic may have left the per-worker scratch mid-run;
            // drop it so the next attempt starts clean
            *st = ExecScratch::default();
            AttemptResult::Failed(FailureKind::Panic)
        }
    }
}

/// Drive one injection through the scheduler's retry loop. Exhaustion
/// collapses to a final [`Outcome::EngineError`] with zero step counts;
/// `recovered` is true when the outcome arrived only after ≥1 retry.
struct ResolvedInjection {
    outcome: Outcome,
    executed: u64,
    skipped: u64,
    recovered: bool,
    exhausted: Option<FailureKind>,
}

#[allow(clippy::too_many_arguments)]
fn resolve_injection(
    sched: &Scheduler,
    kind: CampaignKind,
    site: u64,
    interp: &Interp<'_>,
    st: &mut ExecScratch,
    golden: &GoldenRun,
    input: &ProgInput,
    fault: FaultSpec,
    chaos: Option<(FailureKind, u32)>,
) -> ResolvedInjection {
    match sched.run_task(kind, site, |attempt| {
        inject_attempt(interp, st, golden, input, fault, chaos, attempt)
    }) {
        TaskResult::Done {
            value: (outcome, executed, skipped),
            retries,
        } => ResolvedInjection {
            outcome,
            executed,
            skipped,
            recovered: retries > 0,
            exhausted: None,
        },
        TaskResult::Exhausted { reason, .. } => ResolvedInjection {
            outcome: Outcome::EngineError,
            executed: 0,
            skipped: 0,
            recovered: false,
            exhausted: Some(reason),
        },
    }
}

/// Execute program-campaign unit `i` (section-local index `j` within
/// `sec`) — the body shared by [`CampaignEngine::run_program`] and the
/// fleet's [`ProgramUnitExecutor`], so an out-of-process shard worker
/// resolves exactly the outcome the in-process parallel executor would.
///
/// The RNG stream is seeded by `(cfg.seed, section fingerprint, j)` —
/// never by the flat plan position — so an unedited section draws the
/// same fault sequence whatever its neighbours turned into, which is the
/// determinism a memoized outcome table relies on. Chaos and scheduler
/// site keys stay flat: they describe harness behaviour, not the program
/// under test.
#[allow(clippy::too_many_arguments)]
fn program_unit(
    cfg: &CampaignConfig,
    sched: &Scheduler,
    interp: &Interp<'_>,
    st: &mut ExecScratch,
    golden: &GoldenRun,
    input: &ProgInput,
    sec: &ProgramSection,
    j: usize,
    i: usize,
) -> ResolvedInjection {
    let mut rng = StdRng::seed_from_u64(
        cfg.seed ^ splitmix64(sec.fp) ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let r = rng.random_range(0..sec.pop);
    // map the section-local draw through the cumulative site counts
    let idx = sec.prefix.partition_point(|&(_, cum)| cum <= r);
    let (gid, _) = sec.prefix[idx];
    let prev = if idx == 0 { 0 } else { sec.prefix[idx - 1].1 };
    let fault = FaultSpec {
        target: FaultTarget::NthOfInst(gid, r - prev),
        bit: rng.random_range(0..64),
    };
    resolve_injection(
        sched,
        CampaignKind::Program,
        i as u64,
        interp,
        st,
        golden,
        input,
        fault,
        chaos_plan(cfg, i as u64),
    )
}

/// Golden-context table signature for a program section: the per-site
/// dynamic counts (in plan order) plus the section population pin every
/// fault target the section-local RNG stream can draw.
fn program_sig(cfg: &CampaignConfig, golden: &GoldenRun, sec: &ProgramSection) -> u64 {
    let mut counts = Vec::with_capacity(sec.prefix.len());
    let mut prev = 0u64;
    for &(_, cum) in &sec.prefix {
        counts.push(cum - prev);
        prev = cum;
    }
    table_sig(TableKind::Program, cfg, golden, &counts, sec.pop)
}

/// Golden-context table signature for a per-instruction section.
fn per_inst_sig(cfg: &CampaignConfig, golden: &GoldenRun, sec: &PerInstSection) -> u64 {
    let counts: Vec<u64> = sec.sites.iter().map(|&(_, _, c)| c).collect();
    let pop = counts.iter().sum();
    table_sig(TableKind::PerInst, cfg, golden, &counts, pop)
}

/// Seal each program section's outcomes after a completed (uninterrupted)
/// run. A group fully served from an existing table is skipped — the
/// sealed artifact may hold *more* units than this run's allocation
/// (allocation drift after an edit elsewhere), and rewriting would
/// discard them. A group containing a truncated unit seals
/// `complete: false`: a miss on every future load, so deadline-starved
/// runs never masquerade as finished ones.
fn seal_program_sections(
    memo: &TableMemo,
    cfg: &CampaignConfig,
    golden: &GoldenRun,
    sections: &[ProgramSection],
    loaded: &[Option<ProgramTable>],
    results: &[UnitResult],
) {
    for (s, sec) in sections.iter().enumerate() {
        if sec.injections == 0 {
            continue;
        }
        let range = &results[sec.unit_base..sec.unit_base + sec.injections];
        let any_fresh = range
            .iter()
            .any(|r| matches!(r, UnitResult::Done { fresh: true, .. }));
        if loaded[s].is_some() && !any_fresh {
            continue;
        }
        let mut units = Vec::with_capacity(range.len());
        let mut complete = true;
        for r in range {
            match r {
                UnitResult::Done {
                    outcome, recovered, ..
                } => units.push((outcome.to_u8(), *recovered)),
                _ => {
                    complete = false;
                    break;
                }
            }
        }
        memo.seal_program(
            sec.fp,
            program_sig(cfg, golden, sec),
            &ProgramTable { complete, units },
        );
    }
}

fn faulty_exec_config(cfg: &CampaignConfig, golden_steps: u64) -> ExecConfig {
    ExecConfig {
        profile: false,
        step_limit: golden_steps.saturating_mul(cfg.hang_multiplier).max(10_000),
        ..cfg.exec.clone()
    }
}

/// How a program-campaign work unit ended. `fresh` distinguishes an
/// interpreter execution from an outcome served by the journal or a
/// memoized table — sealing skips groups with nothing newly executed.
enum UnitResult {
    Done {
        outcome: Outcome,
        recovered: bool,
        fresh: bool,
    },
    Truncated,
    Interrupted,
}

/// How one per-instruction site (one work unit) ended: the dense index
/// and outcome tally the reducer keys on, the final site status, whether
/// the unit ran to completion (vs interrupted), the recorded outcome
/// bytes in injection order (what sealing writes), and whether any
/// injection at this site executed fresh.
struct SiteResult {
    dense: usize,
    counts: OutcomeCounts,
    status: SiteStatus,
    done: bool,
    outcomes: Vec<u8>,
    fresh: bool,
}

/// Seal each per-instruction section's outcome streams. Mirrors
/// [`seal_program_sections`]: a group fully served from an existing table
/// is left alone, and any site the run could not finish cleanly
/// (deadline-truncated, unsampled, or quarantined) marks the whole group
/// `complete: false` — a miss on every future load.
fn seal_per_inst_sections(
    memo: &TableMemo,
    cfg: &CampaignConfig,
    golden: &GoldenRun,
    sections: &[PerInstSection],
    loaded: &[Option<PerInstTable>],
    per_site: &[SiteResult],
) {
    for (s, sec) in sections.iter().enumerate() {
        let range = &per_site[sec.site_base..sec.site_base + sec.sites.len()];
        let any_fresh = range.iter().any(|r| r.fresh);
        if loaded[s].is_some() && !any_fresh {
            continue;
        }
        let complete = range
            .iter()
            .all(|r| matches!(r.status, SiteStatus::Full | SiteStatus::EarlyStopped));
        let sites: Vec<(u32, Vec<u8>)> = sec
            .sites
            .iter()
            .zip(range)
            .map(|(&(_, gid, _), r)| (gid.inst.index() as u32, r.outcomes.clone()))
            .collect();
        memo.seal_per_inst(
            sec.fp,
            per_inst_sig(cfg, golden, sec),
            &PerInstTable { complete, sites },
        );
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// The single orchestration core every campaign runs through.
///
/// Construct with [`CampaignEngine::new`], attach policy layers with
/// [`with_scheduler`](CampaignEngine::with_scheduler) /
/// [`with_journal`](CampaignEngine::with_journal), then execute a
/// campaign shape with [`run_program`](CampaignEngine::run_program) or
/// [`run_per_instruction`](CampaignEngine::run_per_instruction).
///
/// ```text
/// CampaignEngine::new(&module, &input, &golden, &cfg)
///     .with_scheduler(&sched)        // deadline + shared accounting
///     .with_journal(&journal, fp)    // crash-safe resume
///     .run_per_instruction()?
/// ```
pub struct CampaignEngine<'a> {
    module: &'a Module,
    input: &'a ProgInput,
    golden: &'a GoldenRun,
    cfg: &'a CampaignConfig,
    /// Fallback scheduler (retry knobs from `cfg.sched`, no deadline)
    /// used when the caller does not attach one.
    owned_sched: Scheduler,
    sched: Option<&'a Scheduler>,
    journal: Option<(&'a CampaignJournal, u64)>,
    tables: Option<&'a TableMemo>,
}

impl<'a> CampaignEngine<'a> {
    /// An engine over `(module, input, golden)` with no external policy
    /// layers: retries per `cfg.sched`, no deadline, no journal.
    pub fn new(
        module: &'a Module,
        input: &'a ProgInput,
        golden: &'a GoldenRun,
        cfg: &'a CampaignConfig,
    ) -> Self {
        CampaignEngine {
            module,
            input,
            golden,
            cfg,
            owned_sched: Scheduler::unbounded(cfg.sched.clone()),
            sched: None,
            journal: None,
            tables: None,
        }
    }

    /// Attach a caller-owned [`Scheduler`] — the deadline-aware form whose
    /// accounting spans several campaigns of one run.
    pub fn with_scheduler(mut self, sched: &'a Scheduler) -> Self {
        self.sched = Some(sched);
        self
    }

    /// Attach a crash-safe journal layer: outcomes recorded under
    /// `input_fp` are served without re-execution, fresh outcomes are
    /// appended (in deterministic unit order, whatever the thread count),
    /// and a pending [`interrupt`] returns [`Interrupted`] with all
    /// finished work durable.
    pub fn with_journal(mut self, journal: &'a CampaignJournal, input_fp: u64) -> Self {
        self.journal = Some((journal, input_fp));
        self
    }

    /// Attach a store-backed section-table memo: each section's executed
    /// outcomes are sealed into the artifact store, and a later campaign
    /// whose section fingerprint and golden-context signature match
    /// serves them without re-executing. The cold path is unchanged —
    /// composed reports are byte-identical to monolithic ones.
    pub fn with_tables(mut self, memo: &'a TableMemo) -> Self {
        self.tables = Some(memo);
        self
    }

    /// The memo, gated off under chaos: engine-failure chaos perturbs
    /// outcomes (`EngineError` from exhausted retries), so memoizing a
    /// chaos run would leak synthetic failures into clean re-campaigns.
    fn active_tables(&self) -> Option<&TableMemo> {
        let chaos = self.cfg.chaos_panic_one_in.filter(|&n| n > 0).is_some()
            || self.cfg.chaos_timeout_one_in.filter(|&n| n > 0).is_some();
        if chaos {
            None
        } else {
            self.tables
        }
    }

    /// The scheduler this engine executes under.
    pub fn scheduler(&self) -> &Scheduler {
        self.sched.unwrap_or(&self.owned_sched)
    }

    /// Injectable sites per function: `(dense index, gid, dynamic count)`
    /// for every injectable instruction that executed at least once.
    fn sites_by_function(&self) -> Vec<Vec<(usize, GlobalInstId, u64)>> {
        let numbering = self.module.numbering();
        let mut per_func = vec![Vec::new(); self.module.funcs.len()];
        for (gid, inst) in self.module.iter_insts() {
            if !inst.injectable() {
                continue;
            }
            let dense = numbering.index(gid);
            let count = self.golden.profile.inst_counts[dense];
            if count > 0 {
                per_func[gid.func.index()].push((dense, gid, count));
            }
        }
        per_func
    }

    /// The whole-program plan: `cfg.injections` units over the golden
    /// run's injectable population, stratified by section. Per-section
    /// allocations are largest-remainder over each section's injectable
    /// executions (remainder ties broken by function index), so they sum
    /// exactly to `cfg.injections` and track execution weight the way
    /// uniform global sampling does in expectation.
    pub fn plan_program(&self) -> CampaignPlan {
        let population = self.golden.profile.injectable_execs;
        let injections = self.cfg.injections;
        let fps = section_fingerprints(self.module);
        let per_func = self.sites_by_function();
        let mut sections: Vec<ProgramSection> = Vec::new();
        for (fi, sites) in per_func.into_iter().enumerate() {
            if sites.is_empty() {
                continue;
            }
            let mut prefix = Vec::with_capacity(sites.len());
            let mut cum = 0u64;
            for (_, gid, count) in sites {
                cum += count;
                prefix.push((gid, cum));
            }
            sections.push(ProgramSection {
                func: fi,
                fp: fps[fi],
                unit_base: 0,
                injections: 0,
                pop: cum,
                prefix,
            });
        }
        debug_assert_eq!(
            sections.iter().map(|s| s.pop).sum::<u64>(),
            population,
            "profile population equals the sum of section populations"
        );
        if population > 0 && injections > 0 {
            let mut assigned = 0usize;
            let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(sections.len());
            for (s, sec) in sections.iter_mut().enumerate() {
                let exact = injections as u128 * sec.pop as u128;
                sec.injections = (exact / population as u128) as usize;
                assigned += sec.injections;
                remainders.push((exact % population as u128, s));
            }
            remainders.sort_unstable_by_key(|&(rem, s)| (std::cmp::Reverse(rem), s));
            for &(_, s) in remainders.iter().take(injections - assigned) {
                sections[s].injections += 1;
            }
            let mut base = 0usize;
            for sec in &mut sections {
                sec.unit_base = base;
                base += sec.injections;
            }
            debug_assert_eq!(base, injections, "allocations sum to the plan size");
        }
        CampaignPlan::Program {
            injections,
            population,
            sections,
        }
    }

    /// The per-instruction plan: one unit per injectable, executed static
    /// instruction, grouped by enclosing function, highest dynamic count
    /// first within each group (deadlines truncate each section's
    /// low-benefit tail; dense index breaks ties so the order is total).
    pub fn plan_per_instruction(&self) -> CampaignPlan {
        let fps = section_fingerprints(self.module);
        let per_func = self.sites_by_function();
        let mut sections: Vec<PerInstSection> = Vec::new();
        let mut site_base = 0usize;
        for (fi, mut sites) in per_func.into_iter().enumerate() {
            if sites.is_empty() {
                continue;
            }
            sites.sort_unstable_by_key(|&(dense, _, count)| (std::cmp::Reverse(count), dense));
            let len = sites.len();
            sections.push(PerInstSection {
                func: fi,
                fp: fps[fi],
                site_base,
                sites,
            });
            site_base += len;
        }
        CampaignPlan::PerInst {
            sections,
            injections_per_site: self.cfg.per_inst_injections,
        }
    }

    /// Execute the whole-program campaign: `cfg.injections` single-bit
    /// flips, each into a uniformly random dynamic instruction execution
    /// and uniformly random bit, every outcome classified against the
    /// golden run. Errs with [`Interrupted`] only when a journal is
    /// attached and an interrupt is pending.
    pub fn run_program(&self) -> Result<ProgramCampaign, Interrupted> {
        let plan_span = trace::span("plan");
        let (injections, population, sections) = match self.plan_program() {
            CampaignPlan::Program {
                injections,
                population,
                sections,
            } => (injections, population, sections),
            CampaignPlan::PerInst { .. } => unreachable!(),
        };
        drop(plan_span);
        let cfg = self.cfg;
        let sched = self.scheduler();
        if population == 0 || injections == 0 {
            return Ok(ProgramCampaign::empty(cfg));
        }
        sched.add_planned(injections as u64);
        let interp = Interp::new(self.module, faulty_exec_config(cfg, self.golden.steps));
        // capture once so workers pay no atomic load when tracing is off
        let tracing = trace::active();
        let counters = CampaignCounters::new(CampaignKind::Program, injections as u64);
        let suffix_steps = Histogram::new();
        let journal = self.journal;
        let writer = journal.map(|(j, fp)| OrderedWriter::new(j, fp));
        let memo = self.active_tables();
        // one verified load per section, before the fan-out: workers only
        // index the decoded tables
        let loaded: Vec<Option<ProgramTable>> = sections
            .iter()
            .map(|sec| {
                memo.filter(|_| sec.injections > 0)
                    .and_then(|m| m.load_program(sec.fp, program_sig(cfg, self.golden, sec)))
            })
            .collect();
        let execute_span = trace::span("execute");
        let results = trace::sample_campaign(&counters, PROGRESS_INTERVAL, || {
            par_map_init(injections, cfg.threads, ExecScratch::default, |st, i| {
                if journal.is_some() && interrupt::requested() {
                    return UnitResult::Interrupted;
                }
                // last section whose unit range begins at or before `i`
                let s = sections.partition_point(|sec| sec.unit_base <= i) - 1;
                let sec = &sections[s];
                let j = i - sec.unit_base;
                if let Some((jr, fp)) = journal {
                    if let Some(o) = jr.program_outcome(fp, i as u64).and_then(Outcome::from_u8) {
                        sched.note_completed(1);
                        if tracing {
                            counters.record(outcome_kind(o), 0, 0);
                        }
                        if let Some(w) = &writer {
                            w.commit(i, Vec::new());
                        }
                        return UnitResult::Done {
                            outcome: o,
                            recovered: false,
                            fresh: false,
                        };
                    }
                }
                if let Some((o, rec)) = loaded[s]
                    .as_ref()
                    .and_then(|t| t.units.get(j))
                    .and_then(|&(b, rec)| Outcome::from_u8(b).map(|o| (o, rec)))
                {
                    // served from the sealed table; the WAL still gets a
                    // real record so a resumed run's journal matches a
                    // cold run's byte for byte
                    sched.note_completed(1);
                    if let Some(m) = memo {
                        m.note_served(1);
                    }
                    if tracing {
                        counters.record(outcome_kind(o), 0, 0);
                        if rec {
                            counters.record_recovered();
                        }
                    }
                    if let Some(w) = &writer {
                        w.commit(
                            i,
                            vec![PendingRecord::Program {
                                index: i as u64,
                                outcome: o.to_u8(),
                            }],
                        );
                    }
                    return UnitResult::Done {
                        outcome: o,
                        recovered: rec,
                        fresh: false,
                    };
                }
                if sched.deadline_exceeded() {
                    if let Some(w) = &writer {
                        w.commit(i, Vec::new());
                    }
                    return UnitResult::Truncated;
                }
                let r = program_unit(cfg, sched, &interp, st, self.golden, self.input, sec, j, i);
                if let Some(w) = &writer {
                    w.commit(
                        i,
                        vec![PendingRecord::Program {
                            index: i as u64,
                            outcome: r.outcome.to_u8(),
                        }],
                    );
                }
                sched.note_completed(1);
                if let Some(m) = memo {
                    m.note_executed(1);
                }
                if tracing {
                    counters.record(outcome_kind(r.outcome), r.executed, r.skipped);
                    if r.recovered {
                        counters.record_recovered();
                    }
                    suffix_steps.record(r.executed);
                }
                UnitResult::Done {
                    outcome: r.outcome,
                    recovered: r.recovered,
                    fresh: true,
                }
            })
        });
        drop(execute_span);
        if let Some(w) = &writer {
            w.finish();
        }
        if tracing {
            suffix_steps.emit("fi.program.suffix_steps");
        }
        if journal.is_some()
            && (results.iter().any(|r| matches!(r, UnitResult::Interrupted))
                || interrupt::requested())
        {
            if let Some((j, _)) = journal {
                let _ = j.sync();
            }
            return Err(Interrupted);
        }
        let _reduce_span = trace::span("reduce");
        let mut counts = OutcomeCounts::default();
        let mut truncated = 0u64;
        let mut recovered = 0u64;
        for r in &results {
            match r {
                UnitResult::Done {
                    outcome,
                    recovered: rec,
                    ..
                } => {
                    counts.record(*outcome);
                    if *rec {
                        recovered += 1;
                    }
                }
                UnitResult::Truncated => truncated += 1,
                UnitResult::Interrupted => unreachable!("handled above"),
            }
        }
        sched.note_truncated(CampaignKind::Program, truncated);
        if let Some(m) = memo {
            seal_program_sections(m, cfg, self.golden, &sections, &loaded, &results);
            let served = loaded.iter().filter(|t| t.is_some()).count() as u64;
            if served > 0 {
                trace::emit(trace::Event::SectionEvent {
                    fp: 0,
                    action: trace::SectionAction::Compose,
                    units: served,
                });
            }
        }
        if let Some((j, _)) = journal {
            let _ = j.sync();
        }
        // engine errors carry no information about the program, so the CI
        // is over the injections that produced a real outcome
        let sdc_ci = binomial_ci(counts.sdc, counts.valid_total(), cfg.sched.ci_z);
        Ok(ProgramCampaign {
            counts,
            sdc_ci,
            planned: injections as u64,
            truncated,
            recovered,
        })
    }

    /// Execute the per-instruction campaign: `cfg.per_inst_injections`
    /// faults into uniformly random dynamic executions of every site in
    /// the plan. Engine failures are retried; persistently failing sites
    /// are quarantined; converged sites stop early; sites past the
    /// deadline are truncated. Errs with [`Interrupted`] only when a
    /// journal is attached and an interrupt is pending.
    pub fn run_per_instruction(&self) -> Result<PerInstSdc, Interrupted> {
        let plan_span = trace::span("plan");
        let (sections, planned) = match self.plan_per_instruction() {
            CampaignPlan::PerInst {
                sections,
                injections_per_site,
            } => (sections, injections_per_site),
            CampaignPlan::Program { .. } => unreachable!(),
        };
        drop(plan_span);
        // flat plan-order site list, for the fan-out and the reducer
        let sites: Vec<(usize, GlobalInstId, u64)> = sections
            .iter()
            .flat_map(|sec| sec.sites.iter().copied())
            .collect();
        let cfg = self.cfg;
        let sched = self.scheduler();
        let n = self.module.numbering().len();
        let interp = Interp::new(self.module, faulty_exec_config(cfg, self.golden.steps));
        sched.add_planned((sites.len() * planned) as u64);
        let tracing = trace::active();
        let counters = CampaignCounters::new(CampaignKind::PerInst, (sites.len() * planned) as u64);
        let journal = self.journal;
        let writer = journal.map(|(j, fp)| OrderedWriter::new(j, fp));
        let memo = self.active_tables();
        let loaded: Vec<Option<PerInstTable>> = sections
            .iter()
            .map(|sec| {
                memo.and_then(|m| m.load_per_inst(sec.fp, per_inst_sig(cfg, self.golden, sec)))
            })
            .collect();
        let execute_span = trace::span("execute");
        let per_site = trace::sample_campaign(&counters, PROGRESS_INTERVAL, || {
            par_map_init(sites.len(), cfg.threads, ExecScratch::default, |st, t| {
                let (dense, gid, count) = sites[t];
                // last section whose site range begins at or before `t`
                let s = sections.partition_point(|sec| sec.site_base <= t) - 1;
                let sec = &sections[s];
                let site = dense as u64;
                let mut counts = OutcomeCounts::default();
                let mut records: Vec<PendingRecord> = Vec::new();
                let mut outcomes: Vec<u8> = Vec::new();
                let mut fresh = false;
                let commit = |records: Vec<PendingRecord>| {
                    if let Some(w) = &writer {
                        w.commit(t, records);
                    }
                };
                // a site quarantined by a previous (crashed or
                // resumed) run is skipped outright: the journal is
                // the durable quarantine list
                if let Some((j, input_fp)) = journal {
                    if let Some(b) = j.quarantined_site(input_fp, site) {
                        let reason = FailureKind::from_u8(b).unwrap_or(FailureKind::Panic);
                        sched.note_resumed_quarantine();
                        sched.note_quarantine_skipped(planned as u64);
                        if tracing {
                            counters.record_quarantined(planned as u64);
                        }
                        commit(records);
                        return SiteResult {
                            dense,
                            counts,
                            status: SiteStatus::Quarantined(reason),
                            done: true,
                            outcomes,
                            fresh,
                        };
                    }
                }
                // the sealed table's outcome stream for this site, keyed
                // by the instruction's function-local index (stable when
                // other functions are edited)
                let served: &[u8] = loaded[s]
                    .as_ref()
                    .and_then(|tab| tab.site(gid.inst.index() as u32))
                    .unwrap_or(&[]);
                let mut status = SiteStatus::Full;
                let mut consecutive = 0u32;
                for k in 0..planned {
                    if journal.is_some() && interrupt::requested() {
                        // partial work stays durable: the batch holds
                        // everything this unit finished before the
                        // interrupt
                        commit(records);
                        return SiteResult {
                            dense,
                            counts,
                            status,
                            done: false,
                            outcomes,
                            fresh,
                        };
                    }
                    if sched.deadline_exceeded() {
                        status = if k == 0 {
                            SiteStatus::Unsampled
                        } else {
                            SiteStatus::Truncated
                        };
                        sched.note_truncated(CampaignKind::PerInst, (planned - k) as u64);
                        break;
                    }
                    if let Some(o) = journal
                        .and_then(|(j, fp)| j.per_inst_outcome(fp, site, k as u64))
                        .and_then(Outcome::from_u8)
                    {
                        counts.record(o);
                        outcomes.push(o.to_u8());
                        sched.note_completed(1);
                        consecutive = if o == Outcome::EngineError {
                            consecutive + 1
                        } else {
                            0
                        };
                        if tracing {
                            counters.record(outcome_kind(o), 0, 0);
                        }
                        if let Some(hw) = sched.early_stop(counts.sdc, counts.valid_total()) {
                            if k + 1 < planned {
                                let skip = (planned - k - 1) as u64;
                                sched.note_early_stop(
                                    CampaignKind::PerInst,
                                    site,
                                    counts.total(),
                                    hw,
                                    skip,
                                );
                                status = SiteStatus::EarlyStopped;
                                break;
                            }
                        }
                        continue;
                    }
                    // serve from the sealed table exactly as the journal
                    // branch would: outcomes recorded, early stop
                    // re-derived, never re-quarantined. A recorded
                    // stream shorter than `planned` means the sealing
                    // run stopped early at this site; the same stop
                    // re-derives below before `k` ever reaches the end.
                    if let Some(o) = served.get(k).copied().and_then(Outcome::from_u8) {
                        counts.record(o);
                        outcomes.push(o.to_u8());
                        sched.note_completed(1);
                        if let Some(m) = memo {
                            m.note_served(1);
                        }
                        consecutive = if o == Outcome::EngineError {
                            consecutive + 1
                        } else {
                            0
                        };
                        if tracing {
                            counters.record(outcome_kind(o), 0, 0);
                        }
                        if journal.is_some() {
                            records.push(PendingRecord::PerInst {
                                site,
                                k: k as u64,
                                outcome: o.to_u8(),
                            });
                        }
                        if let Some(hw) = sched.early_stop(counts.sdc, counts.valid_total()) {
                            if k + 1 < planned {
                                let skip = (planned - k - 1) as u64;
                                sched.note_early_stop(
                                    CampaignKind::PerInst,
                                    site,
                                    counts.total(),
                                    hw,
                                    skip,
                                );
                                status = SiteStatus::EarlyStopped;
                                break;
                            }
                        }
                        continue;
                    }
                    let mut rng = StdRng::seed_from_u64(
                        cfg.seed
                            ^ splitmix64(sec.fp)
                            ^ (gid.inst.index() as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
                            ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let fault = FaultSpec {
                        target: FaultTarget::NthOfInst(gid, rng.random_range(0..count)),
                        bit: rng.random_range(0..64),
                    };
                    let chaos_key = per_inst_chaos_key(cfg, dense, k);
                    let r = resolve_injection(
                        sched,
                        CampaignKind::PerInst,
                        chaos_key,
                        &interp,
                        st,
                        self.golden,
                        self.input,
                        fault,
                        chaos_plan(cfg, chaos_key),
                    );
                    fresh = true;
                    if let Some(m) = memo {
                        m.note_executed(1);
                    }
                    if let Some(reason) = r.exhausted {
                        consecutive += 1;
                        if consecutive >= cfg.sched.quarantine_after.max(1)
                            && sched.try_quarantine(
                                CampaignKind::PerInst,
                                site,
                                reason,
                                consecutive,
                            )
                        {
                            // the triggering injection and everything
                            // still pending at this site are charged
                            // to quarantine, not recorded as outcomes
                            if journal.is_some() {
                                records.push(PendingRecord::Quarantine {
                                    site,
                                    reason: reason.to_u8(),
                                });
                            }
                            let skip = (planned - k) as u64;
                            sched.note_quarantine_skipped(skip);
                            if tracing {
                                counters.record_quarantined(skip);
                            }
                            status = SiteStatus::Quarantined(reason);
                            break;
                        }
                        // cap reached or below the threshold: the
                        // exhaustion degrades to a recorded EngineError
                    } else {
                        consecutive = 0;
                    }
                    if journal.is_some() {
                        records.push(PendingRecord::PerInst {
                            site,
                            k: k as u64,
                            outcome: r.outcome.to_u8(),
                        });
                    }
                    counts.record(r.outcome);
                    outcomes.push(r.outcome.to_u8());
                    sched.note_completed(1);
                    if tracing {
                        counters.record(outcome_kind(r.outcome), r.executed, r.skipped);
                        if r.recovered {
                            counters.record_recovered();
                        }
                    }
                    if let Some(hw) = sched.early_stop(counts.sdc, counts.valid_total()) {
                        if k + 1 < planned {
                            let skip = (planned - k - 1) as u64;
                            sched.note_early_stop(
                                CampaignKind::PerInst,
                                site,
                                counts.total(),
                                hw,
                                skip,
                            );
                            status = SiteStatus::EarlyStopped;
                            break;
                        }
                    }
                }
                commit(records);
                SiteResult {
                    dense,
                    counts,
                    status,
                    done: true,
                    outcomes,
                    fresh,
                }
            })
        });
        drop(execute_span);
        if let Some(w) = &writer {
            w.finish();
        }

        if journal.is_some() {
            let complete = per_site.iter().all(|r| r.done);
            if !complete || interrupt::requested() {
                if let Some((j, _)) = journal {
                    let _ = j.sync();
                }
                return Err(Interrupted);
            }
        }
        let _reduce_span = trace::span("reduce");
        if let Some(m) = memo {
            seal_per_inst_sections(m, cfg, self.golden, &sections, &loaded, &per_site);
            let served = loaded.iter().filter(|t| t.is_some()).count() as u64;
            if served > 0 {
                trace::emit(trace::Event::SectionEvent {
                    fp: 0,
                    action: trace::SectionAction::Compose,
                    units: served,
                });
            }
        }
        let mut sdc_prob = vec![0.0; n];
        let mut counts = vec![OutcomeCounts::default(); n];
        let mut ci = vec![binomial_ci(0, 0, cfg.sched.ci_z); n];
        let mut status = vec![SiteStatus::Unsampled; n];
        for r in per_site {
            if r.status.trusted() {
                sdc_prob[r.dense] = r.counts.sdc_prob();
                ci[r.dense] = sched.site_ci(r.counts.sdc, r.counts.valid_total());
            }
            counts[r.dense] = r.counts;
            status[r.dense] = r.status;
        }
        if tracing {
            emit_function_outcomes(self.module, &sites, &counts);
        }
        if let Some((j, _)) = journal {
            let _ = j.sync();
        }
        Ok(PerInstSdc {
            sdc_prob,
            counts,
            ci,
            status,
        })
    }

    /// A sequential unit-at-a-time executor over this engine's program
    /// plan, for callers that drive unit selection themselves — the fleet
    /// worker resolves exactly the units its leased shard names, in
    /// whatever order the supervisor hands them out, and each unit's
    /// outcome is identical to what [`run_program`](Self::run_program)
    /// would have produced at that plan position.
    pub fn program_executor(&self) -> ProgramUnitExecutor<'_> {
        let (injections, population, sections) = match self.plan_program() {
            CampaignPlan::Program {
                injections,
                population,
                sections,
            } => (injections, population, sections),
            CampaignPlan::PerInst { .. } => unreachable!(),
        };
        ProgramUnitExecutor {
            cfg: self.cfg,
            sched: self.scheduler(),
            golden: self.golden,
            input: self.input,
            interp: Interp::new(self.module, faulty_exec_config(self.cfg, self.golden.steps)),
            scratch: ExecScratch::default(),
            injections,
            population,
            sections,
        }
    }
}

// ---------------------------------------------------------------------------
// Pluggable shard executor
// ---------------------------------------------------------------------------

/// Resolves individual program-campaign units on demand.
///
/// This is the engine's seam for out-of-process execution: a fleet worker
/// builds one from its own [`CampaignEngine`] (same module, input, golden
/// run and config as the supervisor planned with) and resolves the unit
/// indices of whatever shard it currently leases. Determinism is carried
/// entirely by the plan position `i` — RNG seed, chaos plan and retry
/// schedule all derive from `(cfg, i)` — so at-least-once execution
/// across worker deaths still reduces to exactly the `--threads` report.
pub struct ProgramUnitExecutor<'e> {
    cfg: &'e CampaignConfig,
    sched: &'e Scheduler,
    golden: &'e GoldenRun,
    input: &'e ProgInput,
    interp: Interp<'e>,
    scratch: ExecScratch,
    injections: usize,
    population: u64,
    sections: Vec<ProgramSection>,
}

impl ProgramUnitExecutor<'_> {
    /// Units in the plan (`cfg.injections`).
    pub fn injections(&self) -> usize {
        self.injections
    }

    /// Injectable dynamic-execution population of the golden run. When
    /// zero the plan is empty and no unit may be run.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Resolve unit `i`: `(classified outcome, recovered-via-retry)`.
    ///
    /// Panics if `i` is outside the plan or the population is empty —
    /// the supervisor never leases such units.
    pub fn run_unit(&mut self, i: usize) -> (Outcome, bool) {
        assert!(
            i < self.injections && self.population > 0,
            "unit {i} outside plan ({} injections, population {})",
            self.injections,
            self.population
        );
        let s = self.sections.partition_point(|sec| sec.unit_base <= i) - 1;
        let sec = &self.sections[s];
        let r = program_unit(
            self.cfg,
            self.sched,
            &self.interp,
            &mut self.scratch,
            self.golden,
            self.input,
            sec,
            i - sec.unit_base,
            i,
        );
        (r.outcome, r.recovered)
    }
}
