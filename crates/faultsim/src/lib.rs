//! # minpsid-faultsim — fault-injection campaigns over the minpsid IR
//!
//! The LLFI role in the paper's toolchain (§III-A3): given a program and an
//! input, inject single-bit flips into the return value of a uniformly
//! random dynamic instruction and classify the outcome against a golden
//! run:
//!
//! * **Benign** — normal exit, bit-identical output (the fault was masked);
//! * **SDC** — normal exit, different output (silent data corruption);
//! * **Crash** — a trap (the hardware-exception analogue);
//! * **Hang** — step budget exceeded (10× the golden run by default);
//! * **Detected** — a SID duplication check caught the mismatch.
//!
//! Two campaign shapes, mirroring §III-A3:
//!
//! * [`program_campaign`] — N faults uniformly over all dynamic
//!   instructions (the paper's 1000-fault program-level measurement);
//! * [`per_instruction_campaign`] — N faults per *static* instruction,
//!   sampled uniformly over that instruction's dynamic executions (the
//!   paper's 100-fault per-instruction SDC-probability measurement that
//!   feeds SID's benefit, Eq. 2).
//!
//! Campaigns are deterministic given a seed and embarrassingly parallel:
//! injections fan out over `std::thread::scope` workers (see [`parallel`]).
//! Golden runs capture a checkpoint store so each injection replays only
//! the suffix after the nearest snapshot (see [`campaign`]).

pub mod campaign;
pub mod outcome;
pub mod parallel;
pub mod propagation;
pub mod stats;

pub use campaign::{
    golden_run, per_instruction_campaign, per_instruction_campaign_journaled,
    per_instruction_campaign_sched, program_campaign, program_campaign_journaled,
    program_campaign_sched, CampaignConfig, CheckpointPolicy, GoldenRun, PerInstSdc,
    ProgramCampaign,
};
pub use minpsid_journal::{interrupt, CampaignJournal, Interrupted};
pub use minpsid_sched::{Deadline, FailureKind, SchedConfig, SchedSnapshot, Scheduler, SiteStatus};
pub use outcome::{classify, Outcome, OutcomeCounts};
pub use propagation::{render_report, trace_fault, PropagationReport};
pub use stats::{binomial_ci, BinomialCi};
