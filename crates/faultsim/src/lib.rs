//! # minpsid-faultsim — fault-injection campaigns over the minpsid IR
//!
//! The LLFI role in the paper's toolchain (§III-A3): given a program and an
//! input, inject single-bit flips into the return value of a uniformly
//! random dynamic instruction and classify the outcome against a golden
//! run:
//!
//! * **Benign** — normal exit, bit-identical output (the fault was masked);
//! * **SDC** — normal exit, different output (silent data corruption);
//! * **Crash** — a trap (the hardware-exception analogue);
//! * **Hang** — step budget exceeded (10× the golden run by default);
//! * **Detected** — a SID duplication check caught the mismatch.
//!
//! Two campaign shapes, mirroring §III-A3:
//!
//! * whole-program — N faults uniformly over all dynamic instructions
//!   (the paper's 1000-fault program-level measurement);
//! * per-instruction — N faults per *static* instruction, sampled
//!   uniformly over that instruction's dynamic executions (the paper's
//!   100-fault per-instruction SDC-probability measurement that feeds
//!   SID's benefit, Eq. 2).
//!
//! Every campaign runs through one [`CampaignEngine`] (see [`engine`]): a
//! plan/execute/reduce pipeline with scheduling (retry, quarantine, early
//! stop, deadline), crash-safe WAL journaling and tracing attached as
//! composable policy layers. Campaigns are deterministic given a seed and
//! embarrassingly parallel at any composition: injections fan out over
//! `std::thread::scope` workers (see [`parallel`]) and reduce in plan
//! order, so reports are byte-identical at any thread count — journaled
//! runs included, whose WAL is serialized by a single ordered writer.
//! Golden runs capture a checkpoint store so each injection replays only
//! the suffix after the nearest snapshot (see [`campaign`]).
//!
//! [`program_campaign`] and [`per_instruction_campaign`] remain as thin
//! wrappers for default-policy campaigns; [`CampaignConfigBuilder`] (in
//! [`config`]) is the one validated front door for campaign knobs shared
//! by the CLI and the bench binaries.

pub mod campaign;
pub mod config;
pub mod engine;
pub mod outcome;
pub mod parallel;
pub mod propagation;
pub mod table;

pub use campaign::{
    golden_run, outcome_fraction, per_instruction_campaign, program_campaign, CampaignConfig,
    CheckpointPolicy, GoldenRun, PerInstSdc, ProgramCampaign,
};
pub use config::CampaignConfigBuilder;
pub use engine::{
    CampaignEngine, CampaignPlan, PerInstSection, ProgramSection, ProgramUnitExecutor,
};
pub use table::{table_sig, TableKind, TableMemo, TableStatsSnapshot, TABLE_ARTIFACT};
// Interpreter knobs that ride on CampaignConfig, re-exported so front
// ends keep a single import path.
pub use minpsid_interp::{DispatchMode, SnapshotMode};
pub use minpsid_journal::{interrupt, CampaignJournal, Interrupted};
// The Wilson-interval code lives in minpsid-sched (the scheduler's
// early-stop rule is built on it); re-exported here so campaign callers
// keep a single import path.
pub use minpsid_sched::{
    binomial_ci, BinomialCi, Deadline, FailureKind, SchedConfig, SchedSnapshot, Scheduler,
    SiteStatus,
};
pub use outcome::{classify, Outcome, OutcomeCounts};
pub use propagation::{render_report, trace_fault, PropagationReport};
