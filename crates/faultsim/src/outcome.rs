//! Fault outcome taxonomy and classification.

use minpsid_interp::{ExecResult, Output, Termination};

/// What a single injected fault did to the execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Fault masked: normal exit, output bit-identical to golden.
    Benign,
    /// Silent data corruption: normal exit, output differs.
    Sdc,
    /// Trap (out-of-bounds, division by zero, …).
    Crash,
    /// Step/output budget exceeded.
    Hang,
    /// A duplication check fired.
    Detected,
    /// The harness itself failed on this injection (worker panic or
    /// wall-clock blowout) — a bug in *us*, not an observed program
    /// outcome, so it is counted and reported but excluded from SDC and
    /// detection rates (see [`OutcomeCounts::valid_total`]).
    EngineError,
}

impl Outcome {
    /// Stable byte encoding used by the campaign journal.
    pub fn to_u8(self) -> u8 {
        match self {
            Outcome::Benign => 0,
            Outcome::Sdc => 1,
            Outcome::Crash => 2,
            Outcome::Hang => 3,
            Outcome::Detected => 4,
            Outcome::EngineError => 5,
        }
    }

    /// Inverse of [`Outcome::to_u8`]; `None` for bytes no version ever
    /// wrote (treated as a journal miss, never a crash).
    pub fn from_u8(b: u8) -> Option<Outcome> {
        Some(match b {
            0 => Outcome::Benign,
            1 => Outcome::Sdc,
            2 => Outcome::Crash,
            3 => Outcome::Hang,
            4 => Outcome::Detected,
            5 => Outcome::EngineError,
            _ => return None,
        })
    }
}

/// Classify a faulty run against the golden output.
pub fn classify(golden_output: &Output, faulty: &ExecResult) -> Outcome {
    match faulty.termination {
        Termination::Trap(_) => Outcome::Crash,
        Termination::StepLimit => Outcome::Hang,
        // The wall-clock budget is a harness safety net, not a program
        // property: a blown budget means this injection's outcome is
        // unknowable in reasonable time, which is an engine failure.
        Termination::WallClock => Outcome::EngineError,
        Termination::Detected => Outcome::Detected,
        Termination::Exit => {
            if faulty.output == *golden_output {
                Outcome::Benign
            } else {
                Outcome::Sdc
            }
        }
    }
}

/// Aggregated outcome counts of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    pub benign: u64,
    pub sdc: u64,
    pub crash: u64,
    pub hang: u64,
    pub detected: u64,
    pub engine_error: u64,
}

impl OutcomeCounts {
    pub fn record(&mut self, o: Outcome) {
        match o {
            Outcome::Benign => self.benign += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Crash => self.crash += 1,
            Outcome::Hang => self.hang += 1,
            Outcome::Detected => self.detected += 1,
            Outcome::EngineError => self.engine_error += 1,
        }
    }

    pub fn total(&self) -> u64 {
        self.valid_total() + self.engine_error
    }

    /// Injections that produced a real program outcome — the denominator
    /// for SDC/detection rates. Engine errors are excluded: they say
    /// nothing about the program under test.
    pub fn valid_total(&self) -> u64 {
        self.benign + self.sdc + self.crash + self.hang + self.detected
    }

    /// SDC probability: SDCs per manifested fault (paper §II-A).
    pub fn sdc_prob(&self) -> f64 {
        let t = self.valid_total();
        if t == 0 {
            0.0
        } else {
            self.sdc as f64 / t as f64
        }
    }

    /// Detection rate: fraction of faults caught by duplication checks.
    pub fn detection_rate(&self) -> f64 {
        let t = self.valid_total();
        if t == 0 {
            0.0
        } else {
            self.detected as f64 / t as f64
        }
    }

    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.benign += other.benign;
        self.sdc += other.sdc;
        self.crash += other.crash;
        self.hang += other.hang;
        self.detected += other.detected;
        self.engine_error += other.engine_error;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{OutputItem, Termination, TrapKind};

    fn result(term: Termination, out: Vec<OutputItem>) -> ExecResult {
        ExecResult {
            termination: term,
            output: Output { items: out },
            profile: None,
            steps: 10,
            fault_applied: true,
            ret: None,
            trace: None,
            resumed_at: None,
        }
    }

    #[test]
    fn classification_covers_all_terminations() {
        let golden = Output {
            items: vec![OutputItem::I(7)],
        };
        assert_eq!(
            classify(&golden, &result(Termination::Exit, vec![OutputItem::I(7)])),
            Outcome::Benign
        );
        assert_eq!(
            classify(&golden, &result(Termination::Exit, vec![OutputItem::I(8)])),
            Outcome::Sdc
        );
        assert_eq!(
            classify(
                &golden,
                &result(Termination::Trap(TrapKind::OutOfBounds), vec![])
            ),
            Outcome::Crash
        );
        assert_eq!(
            classify(&golden, &result(Termination::StepLimit, vec![])),
            Outcome::Hang
        );
        assert_eq!(
            classify(&golden, &result(Termination::Detected, vec![])),
            Outcome::Detected
        );
        assert_eq!(
            classify(&golden, &result(Termination::WallClock, vec![])),
            Outcome::EngineError
        );
    }

    #[test]
    fn engine_errors_count_but_do_not_dilute_rates() {
        let mut c = OutcomeCounts::default();
        c.record(Outcome::Sdc);
        c.record(Outcome::Benign);
        c.record(Outcome::EngineError);
        c.record(Outcome::EngineError);
        assert_eq!(c.total(), 4);
        assert_eq!(c.valid_total(), 2);
        assert_eq!(c.sdc_prob(), 0.5);
    }

    #[test]
    fn truncated_output_is_sdc() {
        let golden = Output {
            items: vec![OutputItem::I(1), OutputItem::I(2)],
        };
        assert_eq!(
            classify(&golden, &result(Termination::Exit, vec![OutputItem::I(1)])),
            Outcome::Sdc
        );
    }

    #[test]
    fn counts_accumulate_and_merge() {
        let mut a = OutcomeCounts::default();
        a.record(Outcome::Sdc);
        a.record(Outcome::Sdc);
        a.record(Outcome::Benign);
        a.record(Outcome::Crash);
        assert_eq!(a.total(), 4);
        assert_eq!(a.sdc_prob(), 0.5);

        let mut b = OutcomeCounts::default();
        b.record(Outcome::Detected);
        b.merge(&a);
        assert_eq!(b.total(), 5);
        assert_eq!(b.detection_rate(), 0.2);
    }

    #[test]
    fn outcome_byte_encoding_round_trips() {
        for o in [
            Outcome::Benign,
            Outcome::Sdc,
            Outcome::Crash,
            Outcome::Hang,
            Outcome::Detected,
            Outcome::EngineError,
        ] {
            assert_eq!(Outcome::from_u8(o.to_u8()), Some(o));
        }
        assert_eq!(Outcome::from_u8(6), None);
        assert_eq!(Outcome::from_u8(255), None);
    }

    #[test]
    fn empty_counts_have_zero_probabilities() {
        let c = OutcomeCounts::default();
        assert_eq!(c.sdc_prob(), 0.0);
        assert_eq!(c.detection_rate(), 0.0);
    }
}
