//! Minimal data-parallel map over crossbeam scoped threads.
//!
//! The paper parallelizes all FI runs over a 4×40-core farm (§VI-C);
//! campaigns here do the same over the local cores. `rayon` is not in this
//! project's dependency budget, so a small chunked fan-out is used — FI
//! tasks are coarse (one program execution each), so dynamic work-stealing
//! would buy nothing.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to every index in `0..n`, collecting results in order.
/// `threads == 1` degenerates to a plain loop (no spawn overhead).
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let threads = threads.min(n);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let out_ptr = SendPtr(out.as_mut_ptr());

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                // SAFETY: each index is claimed by exactly one worker via
                // the atomic counter, so writes never alias; the vector
                // outlives the scope.
                unsafe {
                    *out_ptr.get().add(i) = Some(v);
                }
            });
        }
    })
    .expect("worker thread panicked");

    out.into_iter().map(|v| v.expect("slot filled")).collect()
}

struct SendPtr<T>(*mut T);

// manual Copy/Clone: the derive would demand `T: Copy`, which the pointee
// never needs to satisfy
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `SendPtr` — edition-2021 precise capture would otherwise grab
    /// the raw-pointer field, which is not `Send`.
    fn get(&self) -> *mut T {
        self.0
    }
}
// SAFETY: the pointer is only dereferenced at disjoint indices (see above).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let v = par_map(100, 4, |i| i * i);
        assert_eq!(v, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path_matches() {
        let a = par_map(17, 1, |i| i + 1);
        let b = par_map(17, 4, |i| i + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(par_map(0, 8, |i| i).is_empty());
        assert_eq!(par_map(1, 8, |i| i), vec![0]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map(3, 64, |i| i), vec![0, 1, 2]);
    }
}
