//! Minimal data-parallel map over `std::thread::scope`.
//!
//! The paper parallelizes all FI runs over a 4×40-core farm (§VI-C);
//! campaigns here do the same over the local cores. `rayon` is not in this
//! project's dependency budget, so a small chunked fan-out is used — FI
//! tasks are coarse (one program execution each), so dynamic work-stealing
//! would buy nothing.
//!
//! [`par_map_init`] additionally gives each worker a persistent scratch
//! state, built once per worker *outside* the claim loop. Checkpointed FI
//! uses this to reuse snapshot-restore buffers across injections instead of
//! reallocating per item.
//!
//! Contract relied on by the `CampaignEngine`: results come back indexed
//! in `0..n` order no matter how workers raced, so the engine can reduce
//! outcomes (and a journal can append WAL records) in plan order and
//! produce byte-identical reports at any thread count.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to every index in `0..n`, collecting results in order.
/// `threads == 1` degenerates to a plain loop (no spawn overhead).
///
/// If `f` panics, every worker stops claiming new items, the scope joins,
/// and the panic is re-raised on the caller with the failing index reported.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_init(n, threads, || (), |(), i| f(i))
}

/// [`par_map`] with per-worker state: `init` runs once per worker thread
/// (outside the claim loop), and each claimed index gets `f(&mut state, i)`.
pub fn par_map_init<S, T, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let threads = threads.min(n);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    // First panic observed: (index, payload). Later panics are dropped.
    let failure: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    let out_ptr = SendPtr(out.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let poisoned = &poisoned;
            let failure = &failure;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                // per-worker state lives across all items this worker claims
                let mut state = init();
                loop {
                    if poisoned.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(&mut state, i))) {
                        Ok(v) => {
                            // SAFETY: each index is claimed by exactly one
                            // worker via the atomic counter, so writes never
                            // alias; the vector outlives the scope.
                            unsafe {
                                *out_ptr.get().add(i) = Some(v);
                            }
                        }
                        Err(payload) => {
                            poisoned.store(true, Ordering::Relaxed);
                            let mut slot = failure.lock().unwrap_or_else(|e| e.into_inner());
                            if slot.is_none() {
                                *slot = Some((i, payload));
                            }
                            break;
                        }
                    }
                }
            });
        }
    });

    if let Some((i, payload)) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        eprintln!("par_map: worker panicked while processing index {i}");
        resume_unwind(payload);
    }
    out.into_iter().map(|v| v.expect("slot filled")).collect()
}

struct SendPtr<T>(*mut T);

// manual Copy/Clone: the derive would demand `T: Copy`, which the pointee
// never needs to satisfy
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `SendPtr` — edition-2021 precise capture would otherwise grab
    /// the raw-pointer field, which is not `Send`.
    fn get(&self) -> *mut T {
        self.0
    }
}
// SAFETY: the pointer is only dereferenced at disjoint indices (see above).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order() {
        let v = par_map(100, 4, |i| i * i);
        assert_eq!(v, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path_matches() {
        let a = par_map(17, 1, |i| i + 1);
        let b = par_map(17, 4, |i| i + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(par_map(0, 8, |i| i).is_empty());
        assert_eq!(par_map(1, 8, |i| i), vec![0]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn init_runs_once_per_worker_not_per_item() {
        let inits = AtomicUsize::new(0);
        let v = par_map_init(
            64,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |calls, i| {
                *calls += 1;
                i
            },
        );
        assert_eq!(v, (0..64).collect::<Vec<_>>());
        let n = inits.load(Ordering::Relaxed);
        assert!(n <= 4, "init ran {n} times for 4 workers");
    }

    #[test]
    fn worker_panic_propagates_with_index_and_does_not_deadlock() {
        let result = std::panic::catch_unwind(|| {
            par_map(256, 4, |i| {
                if i == 137 {
                    panic!("injected failure at {i}");
                }
                i
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("injected failure at 137"), "got: {msg}");
    }

    #[test]
    fn single_thread_panic_also_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map(4, 1, |i| {
                assert!(i != 2, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
