//! Error-propagation analysis: run a fault side by side with the golden
//! execution and report how the corruption spreads through the dataflow.
//!
//! This is the §IV root-cause methodology made executable: the paper
//! identified incubative instructions by asking *which instructions lead
//! to SDCs under which inputs*; this module answers the finer-grained
//! question of *which values a single fault corrupts on its way to the
//! output* — the same style of analysis as the error-propagation studies
//! the paper builds on (Li et al., DSN'18).

use crate::outcome::{classify, Outcome};
use minpsid_interp::{ExecConfig, Interp, Output, ProgInput, TraceEvent, Value};
use minpsid_ir::{GlobalInstId, Module};
use std::collections::BTreeSet;

/// How one fault propagated.
#[derive(Debug, Clone)]
pub struct PropagationReport {
    /// Final outcome of the faulty run.
    pub outcome: Outcome,
    /// Position in the register-write trace where the faulty run first
    /// deviates from the golden run (`None` if the traces are identical —
    /// the fault was locally masked).
    pub first_divergence: Option<usize>,
    /// Static instructions (dense indices) that produced at least one
    /// differing value — the fault's dataflow footprint.
    pub corrupted_insts: Vec<usize>,
    /// Dynamic register writes that differ (or exist in only one trace).
    pub corrupted_writes: usize,
    /// Lengths of the two traces (they differ when control flow diverged).
    pub golden_len: usize,
    pub faulty_len: usize,
}

impl PropagationReport {
    /// Fraction of aligned write positions that differ between the runs
    /// (a faulty run can be shorter *or* longer than the golden one when
    /// control flow diverges, so the denominator is the longer trace).
    pub fn corruption_density(&self) -> f64 {
        let denom = self.golden_len.max(self.faulty_len);
        if denom == 0 {
            0.0
        } else {
            self.corrupted_writes as f64 / denom as f64
        }
    }
}

fn value_eq(a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::F(x), Value::F(y)) => x.to_bits() == y.to_bits(),
        (a, b) => a == b,
    }
}

/// Trace the propagation of `fault` through `(module, input)`.
///
/// Both runs execute with tracing enabled; the traces are compared
/// positionally up to the first divergence and as per-instruction write
/// multisets afterwards (positional alignment is meaningless once control
/// flow has diverged).
pub fn trace_fault(
    module: &Module,
    input: &ProgInput,
    fault: minpsid_interp::FaultSpec,
    golden_output: &Output,
    step_limit: u64,
) -> PropagationReport {
    let exec = ExecConfig {
        trace: true,
        step_limit,
        ..ExecConfig::default()
    };
    let interp = Interp::new(module, exec);
    let golden = interp.run(input);
    let faulty = interp.run_with_fault(input, fault);
    let outcome = classify(golden_output, &faulty);

    let gt = golden.trace.expect("tracing enabled");
    let ft = faulty.trace.expect("tracing enabled");

    let mut first_divergence = None;
    for (i, (g, f)) in gt.iter().zip(ft.iter()).enumerate() {
        if g.dense != f.dense || !value_eq(g.value, f.value) {
            first_divergence = Some(i);
            break;
        }
    }
    if first_divergence.is_none() && gt.len() != ft.len() {
        first_divergence = Some(gt.len().min(ft.len()));
    }

    let (corrupted_insts, corrupted_writes) = match first_divergence {
        None => (Vec::new(), 0),
        Some(at) => diff_tails(&gt[at..], &ft[at..]),
    };

    PropagationReport {
        outcome,
        first_divergence,
        corrupted_insts,
        corrupted_writes,
        golden_len: gt.len(),
        faulty_len: ft.len(),
    }
}

/// Compare trace tails: positionally where instruction streams still
/// align, and by presence where they do not.
fn diff_tails(golden: &[TraceEvent], faulty: &[TraceEvent]) -> (Vec<usize>, usize) {
    let mut insts = BTreeSet::new();
    let mut writes = 0usize;
    let n = golden.len().max(faulty.len());
    for i in 0..n {
        match (golden.get(i), faulty.get(i)) {
            (Some(g), Some(f)) => {
                if g.dense != f.dense || !value_eq(g.value, f.value) {
                    insts.insert(f.dense as usize);
                    writes += 1;
                }
            }
            (None, Some(f)) => {
                insts.insert(f.dense as usize);
                writes += 1;
            }
            (Some(_), None) => {
                writes += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    (insts.into_iter().collect(), writes)
}

/// Human-readable rendering of a report against the module.
pub fn render_report(module: &Module, report: &PropagationReport) -> String {
    use std::fmt::Write as _;
    let numbering = module.numbering();
    let mut out = String::new();
    let _ = writeln!(out, "outcome: {:?}", report.outcome);
    match report.first_divergence {
        None => {
            let _ = writeln!(out, "no divergence: the fault was masked before any write");
        }
        Some(at) => {
            let _ = writeln!(
                out,
                "first divergence at write {at} of {} (faulty run: {} writes)",
                report.golden_len, report.faulty_len
            );
            let _ = writeln!(
                out,
                "corrupted writes: {} ({:.2}% of the run)",
                report.corrupted_writes,
                report.corruption_density() * 100.0
            );
            let _ = writeln!(out, "instructions that produced corrupted values:");
            for &dense in report.corrupted_insts.iter().take(20) {
                let gid: GlobalInstId = numbering.id_of(dense);
                let func = module.func(gid.func);
                let _ = writeln!(
                    out,
                    "  [{dense}] {}::{}",
                    func.name,
                    minpsid_ir::printer::print_inst(func, gid.inst)
                );
            }
            if report.corrupted_insts.len() > 20 {
                let _ = writeln!(out, "  ... and {} more", report.corrupted_insts.len() - 20);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{FaultSpec, FaultTarget, Scalar};

    fn module() -> Module {
        minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                let acc = 0;
                for i = 0 to n {
                    acc = acc + i * i;
                }
                out_i(acc);
            }
            "#,
            "prop-test",
        )
        .unwrap()
    }

    fn golden_output(m: &Module, input: &ProgInput) -> Output {
        Interp::new(m, ExecConfig::default()).run(input).output
    }

    #[test]
    fn corrupting_the_accumulator_propagates_to_the_output() {
        let m = module();
        let input = ProgInput::scalars(vec![Scalar::I(20)]);
        let golden = golden_output(&m, &input);
        // hit an early dynamic instruction with a high bit
        let fault = FaultSpec {
            target: FaultTarget::NthDynamic(30),
            bit: 40,
        };
        let r = trace_fault(&m, &input, fault, &golden, 1_000_000);
        assert!(r.first_divergence.is_some(), "the flip must surface");
        assert!(r.corrupted_writes > 0);
        assert!(!r.corrupted_insts.is_empty());
        let rendered = render_report(&m, &r);
        assert!(rendered.contains("first divergence"));
    }

    #[test]
    fn fault_past_the_trace_is_fully_masked() {
        let m = module();
        let input = ProgInput::scalars(vec![Scalar::I(5)]);
        let golden = golden_output(&m, &input);
        let fault = FaultSpec {
            target: FaultTarget::NthDynamic(10_000_000),
            bit: 1,
        };
        let r = trace_fault(&m, &input, fault, &golden, 1_000_000);
        assert_eq!(r.outcome, Outcome::Benign);
        assert_eq!(r.first_divergence, None);
        assert_eq!(r.corrupted_writes, 0);
    }

    #[test]
    fn sdc_outcomes_show_nonzero_corruption_density() {
        let m = module();
        let input = ProgInput::scalars(vec![Scalar::I(30)]);
        let golden = golden_output(&m, &input);
        // scan a few faults; at least one must be an SDC with density > 0
        let mut found_sdc = false;
        for nth in 0..40 {
            let fault = FaultSpec {
                target: FaultTarget::NthDynamic(nth),
                bit: 35,
            };
            let r = trace_fault(&m, &input, fault, &golden, 10_000_000);
            if r.outcome == Outcome::Sdc {
                found_sdc = true;
                assert!(r.corruption_density() > 0.0);
            }
        }
        assert!(found_sdc, "high-bit flips on a live accumulator cause SDCs");
    }

    #[test]
    fn traces_align_when_control_flow_is_unchanged() {
        let m = module();
        let input = ProgInput::scalars(vec![Scalar::I(10)]);
        let golden = golden_output(&m, &input);
        // a low bit on the accumulator: value corruption, same paths
        let fault = FaultSpec {
            target: FaultTarget::NthDynamic(25),
            bit: 2,
        };
        let r = trace_fault(&m, &input, fault, &golden, 1_000_000);
        assert_eq!(r.golden_len, r.faulty_len, "same control flow");
    }
}
