//! Campaign statistics: binomial confidence intervals.
//!
//! The paper reports 95 % confidence intervals of 0.26 %–3.10 % on its FI
//! measurements (§III-A3). The Wilson interval implementation lives in
//! `minpsid-sched` (the scheduler's early-stop rule is built on it) and is
//! re-exported here so campaign code and its callers keep their historical
//! import path.

pub use minpsid_sched::{binomial_ci, BinomialCi};
