//! Store-backed per-section outcome tables — the memoization layer behind
//! incremental (O(diff)) fault-injection campaigns.
//!
//! A *section* is one function. The campaign engine plans both campaign
//! shapes as per-section unit groups, and when a [`TableMemo`] is attached
//! it seals each section's executed outcomes into a `table` artifact in
//! the content-addressed store. A later campaign whose section fingerprint
//! *and* golden-context signature match serves those outcomes without
//! re-executing a single injection; only edited sections (and sections
//! whose golden behaviour shifted) re-run.
//!
//! Soundness is the FastFlip composition argument (PAPERS.md,
//! arXiv 2403.13989): a sealed table is reused only when
//!
//! 1. the section's content fingerprint matches — the function's own code
//!    and every transitive callee are unchanged, and
//! 2. the table *signature* matches — same input fingerprint, same golden
//!    output and step count, same per-instruction dynamic counts within
//!    the section, same injection-relevant config knobs.
//!
//! Together these pin every seed, every fault target and the golden
//! baseline each outcome was classified against. What they do **not** pin
//! is the post-injection trajectory through *other* (edited) functions;
//! an edit that changes neither the golden output, the golden step count,
//! nor the section's dynamic counts is assumed not to re-classify faults
//! injected elsewhere. `--no-incremental` is the escape hatch, and the
//! cold path is always exact.
//!
//! Tables follow the store's verify-on-load discipline: a corrupt artifact
//! is quarantined and the section silently re-runs (recompute-on-
//! corruption, like goldens). A table sealed under an expired deadline is
//! marked incomplete in its header and is a *miss* on load — truncated
//! campaigns never masquerade as finished ones.

use crate::campaign::{CampaignConfig, GoldenRun};
use minpsid_interp::OutputItem;
use minpsid_store::{ArtifactStore, StoreError};
use minpsid_trace as trace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Store artifact kind for sealed outcome tables.
pub const TABLE_ARTIFACT: &str = "table";

/// Bump on any layout change; decoders treat other versions as misses.
const TABLE_VERSION: u32 = 1;
const TABLE_MAGIC: &[u8; 4] = b"MPTB";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv_bytes(h: &mut u64, b: &[u8]) {
    for &x in b {
        *h ^= x as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn fnv_u64(h: &mut u64, v: u64) {
    fnv_bytes(h, &v.to_le_bytes());
}

/// Which campaign shape a table memoizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    Program,
    PerInst,
}

impl TableKind {
    fn tag(self) -> u8 {
        match self {
            TableKind::Program => b'p',
            TableKind::PerInst => b'i',
        }
    }
}

/// The golden-context signature a table is valid under. Everything that
/// determines a section's injection outcomes besides its content
/// fingerprint: the golden baseline (output, steps, the section's dynamic
/// counts and injectable population) and the injection-relevant config
/// (seed, hang threshold, exec limits, retry/early-stop policy, and — for
/// per-instruction tables — the per-site sample count). Campaign *size*
/// (`cfg.injections`) is deliberately excluded: program tables are served
/// per-unit, so an allocation that grew merely executes the tail.
/// Checkpoint/snapshot knobs are excluded too — checkpointed and cold
/// injections are bit-identical by the engine's equivalence invariant.
pub fn table_sig(
    kind: TableKind,
    cfg: &CampaignConfig,
    golden: &GoldenRun,
    sec_counts: &[u64],
    pop: u64,
) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_u64(&mut h, TABLE_VERSION as u64);
    fnv_bytes(&mut h, &[kind.tag()]);
    fnv_u64(&mut h, cfg.seed);
    fnv_u64(&mut h, cfg.hang_multiplier);
    if kind == TableKind::PerInst {
        fnv_u64(&mut h, cfg.per_inst_injections as u64);
    }
    fnv_bytes(&mut h, format!("{:?}", cfg.exec).as_bytes());
    fnv_bytes(&mut h, format!("{:?}", cfg.sched).as_bytes());
    fnv_u64(&mut h, golden.steps);
    fnv_u64(&mut h, golden.output.items.len() as u64);
    for item in &golden.output.items {
        match item {
            OutputItem::I(v) => {
                fnv_bytes(&mut h, b"i");
                fnv_u64(&mut h, *v as u64);
            }
            OutputItem::F(v) => {
                fnv_bytes(&mut h, b"f");
                fnv_u64(&mut h, v.to_bits());
            }
        }
    }
    fnv_u64(&mut h, sec_counts.len() as u64);
    for &c in sec_counts {
        fnv_u64(&mut h, c);
    }
    fnv_u64(&mut h, pop);
    h
}

/// A decoded whole-program outcome table: one `(outcome, recovered)` pair
/// per executed unit of the section, in local unit order.
#[derive(Debug, Clone, Default)]
pub struct ProgramTable {
    pub complete: bool,
    pub units: Vec<(u8, bool)>,
}

/// A decoded per-instruction outcome table: for each site (keyed by the
/// instruction's *local* index within the function, stable across edits
/// elsewhere), the executed outcome byte sequence in injection order.
/// Early-stopped sites recorded fewer than `per_inst_injections` outcomes;
/// the serve loop re-derives the stop deterministically.
#[derive(Debug, Clone, Default)]
pub struct PerInstTable {
    pub complete: bool,
    pub sites: Vec<(u32, Vec<u8>)>,
}

impl PerInstTable {
    /// Outcomes recorded for one site, by local instruction index.
    pub fn site(&self, local: u32) -> Option<&[u8]> {
        self.sites
            .iter()
            .find(|(l, _)| *l == local)
            .map(|(_, o)| o.as_slice())
    }

    pub fn total_outcomes(&self) -> u64 {
        self.sites.iter().map(|(_, o)| o.len() as u64).sum()
    }
}

// --- wire format (local checked reader, same discipline as the WAL) ---

fn w_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn varint(&mut self) -> Option<u64> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Some(v);
            }
        }
        None
    }

    /// A count that promises at least `min_bytes` per element: bounds
    /// hostile lengths before any allocation.
    fn count(&mut self, min_bytes: usize) -> Option<usize> {
        let n = self.varint()?;
        if (n as usize).checked_mul(min_bytes)? > self.buf.len() - self.pos {
            return None;
        }
        Some(n as usize)
    }

    fn finish(self) -> Option<()> {
        (self.pos == self.buf.len()).then_some(())
    }
}

fn header(kind: TableKind, complete: bool, fp: u64, input_fp: u64, sig: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(TABLE_MAGIC);
    buf.extend_from_slice(&TABLE_VERSION.to_le_bytes());
    buf.push(kind.tag());
    buf.push(complete as u8);
    buf.extend_from_slice(&fp.to_le_bytes());
    buf.extend_from_slice(&input_fp.to_le_bytes());
    buf.extend_from_slice(&sig.to_le_bytes());
    buf
}

/// Decode the common header; `None` (a miss) unless magic, version, kind,
/// fingerprint, input and signature all match. Returns the completeness
/// flag and a reader positioned at the body.
fn check_header<'a>(
    bytes: &'a [u8],
    kind: TableKind,
    fp: u64,
    input_fp: u64,
    sig: u64,
) -> Option<(bool, Reader<'a>)> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != TABLE_MAGIC {
        return None;
    }
    if u32::from_le_bytes(r.take(4)?.try_into().unwrap()) != TABLE_VERSION {
        return None;
    }
    if r.u8()? != kind.tag() {
        return None;
    }
    let complete = r.u8()? != 0;
    if r.u64()? != fp || r.u64()? != input_fp || r.u64()? != sig {
        return None;
    }
    Some((complete, r))
}

fn encode_program(fp: u64, input_fp: u64, sig: u64, t: &ProgramTable) -> Vec<u8> {
    let mut buf = header(TableKind::Program, t.complete, fp, input_fp, sig);
    w_varint(&mut buf, t.units.len() as u64);
    for &(outcome, recovered) in &t.units {
        buf.push(outcome);
        buf.push(recovered as u8);
    }
    buf
}

fn decode_program(bytes: &[u8], fp: u64, input_fp: u64, sig: u64) -> Option<ProgramTable> {
    let (complete, mut r) = check_header(bytes, TableKind::Program, fp, input_fp, sig)?;
    let n = r.count(2)?;
    let mut units = Vec::with_capacity(n);
    for _ in 0..n {
        let outcome = r.u8()?;
        let recovered = r.u8()?;
        if recovered > 1 {
            return None;
        }
        units.push((outcome, recovered != 0));
    }
    r.finish()?;
    Some(ProgramTable { complete, units })
}

fn encode_per_inst(fp: u64, input_fp: u64, sig: u64, t: &PerInstTable) -> Vec<u8> {
    let mut buf = header(TableKind::PerInst, t.complete, fp, input_fp, sig);
    w_varint(&mut buf, t.sites.len() as u64);
    for (local, outcomes) in &t.sites {
        w_varint(&mut buf, *local as u64);
        w_varint(&mut buf, outcomes.len() as u64);
        buf.extend_from_slice(outcomes);
    }
    buf
}

fn decode_per_inst(bytes: &[u8], fp: u64, input_fp: u64, sig: u64) -> Option<PerInstTable> {
    let (complete, mut r) = check_header(bytes, TableKind::PerInst, fp, input_fp, sig)?;
    let n = r.count(2)?;
    let mut sites = Vec::with_capacity(n);
    for _ in 0..n {
        let local = r.varint()?;
        if local > u32::MAX as u64 {
            return None;
        }
        let k = r.count(1)?;
        let outcomes = r.take(k)?.to_vec();
        sites.push((local as u32, outcomes));
    }
    r.finish()?;
    Some(PerInstTable { complete, sites })
}

// --- the memo ---

/// Monotonic counters describing how much work the table layer saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStatsSnapshot {
    /// Sections whose sealed table was served.
    pub sections_hit: u64,
    /// Sections with no usable table (absent, stale signature, version
    /// skew, or sealed incomplete).
    pub sections_missed: u64,
    /// Sections whose table failed store verification and was quarantined
    /// (the section re-ran).
    pub sections_recomputed: u64,
    /// Injections served from tables instead of executing.
    pub injections_served: u64,
    /// Injections actually executed by the interpreter.
    pub injections_executed: u64,
    /// Tables sealed (published) this run.
    pub tables_sealed: u64,
}

impl TableStatsSnapshot {
    /// Fold another snapshot into this one (a pipeline run aggregates one
    /// snapshot per campaign).
    pub fn merge(&mut self, other: &TableStatsSnapshot) {
        self.sections_hit += other.sections_hit;
        self.sections_missed += other.sections_missed;
        self.sections_recomputed += other.sections_recomputed;
        self.injections_served += other.injections_served;
        self.injections_executed += other.injections_executed;
        self.tables_sealed += other.tables_sealed;
    }
}

#[derive(Default)]
struct TableStats {
    sections_hit: AtomicU64,
    sections_missed: AtomicU64,
    sections_recomputed: AtomicU64,
    injections_served: AtomicU64,
    injections_executed: AtomicU64,
    tables_sealed: AtomicU64,
}

/// The store-backed section-table memo a [`CampaignEngine`] attaches with
/// [`with_tables`](crate::CampaignEngine::with_tables). One memo is scoped
/// to one `(store, input)` pair; both campaign shapes share it.
pub struct TableMemo {
    store: Arc<ArtifactStore>,
    input_fp: u64,
    stats: TableStats,
}

impl TableMemo {
    pub fn new(store: Arc<ArtifactStore>, input_fp: u64) -> Self {
        TableMemo {
            store,
            input_fp,
            stats: TableStats::default(),
        }
    }

    pub fn input_fp(&self) -> u64 {
        self.input_fp
    }

    pub fn stats(&self) -> TableStatsSnapshot {
        TableStatsSnapshot {
            sections_hit: self.stats.sections_hit.load(Ordering::Relaxed),
            sections_missed: self.stats.sections_missed.load(Ordering::Relaxed),
            sections_recomputed: self.stats.sections_recomputed.load(Ordering::Relaxed),
            injections_served: self.stats.injections_served.load(Ordering::Relaxed),
            injections_executed: self.stats.injections_executed.load(Ordering::Relaxed),
            tables_sealed: self.stats.tables_sealed.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_served(&self, n: u64) {
        self.stats.injections_served.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn note_executed(&self, n: u64) {
        self.stats
            .injections_executed
            .fetch_add(n, Ordering::Relaxed);
    }

    fn ref_name(&self, kind: TableKind, fp: u64, sig: u64) -> String {
        format!(
            "{}-{fp:016x}-{:016x}-{sig:016x}",
            self.ref_prefix(kind),
            self.input_fp
        )
    }

    fn ref_prefix(&self, kind: TableKind) -> char {
        match kind {
            TableKind::Program => 'p',
            TableKind::PerInst => 'i',
        }
    }

    /// Fetch the raw table bytes, bumping stats and emitting the
    /// `section_event` for every disposition. `None` is a miss (absent,
    /// stale, incomplete, corrupt — corrupt additionally quarantined the
    /// artifact and counts as a recompute).
    fn fetch(&self, kind: TableKind, fp: u64, sig: u64) -> Option<Vec<u8>> {
        let name = self.ref_name(kind, fp, sig);
        match self.store.load_named(TABLE_ARTIFACT, &name) {
            Ok(Some((_, bytes))) => Some(bytes),
            Ok(None) => {
                self.stats.sections_missed.fetch_add(1, Ordering::Relaxed);
                trace::emit(trace::Event::SectionEvent {
                    fp,
                    action: trace::SectionAction::Miss,
                    units: 0,
                });
                None
            }
            Err(StoreError::Corrupt { .. }) => {
                self.stats
                    .sections_recomputed
                    .fetch_add(1, Ordering::Relaxed);
                trace::emit(trace::Event::SectionEvent {
                    fp,
                    action: trace::SectionAction::Recompute,
                    units: 0,
                });
                None
            }
            Err(_) => {
                self.stats.sections_missed.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn note_hit(&self, fp: u64, units: u64) {
        self.stats.sections_hit.fetch_add(1, Ordering::Relaxed);
        trace::emit(trace::Event::SectionEvent {
            fp,
            action: trace::SectionAction::Hit,
            units,
        });
    }

    fn note_stale(&self, fp: u64) {
        self.stats.sections_missed.fetch_add(1, Ordering::Relaxed);
        trace::emit(trace::Event::SectionEvent {
            fp,
            action: trace::SectionAction::Miss,
            units: 0,
        });
    }

    /// Load a sealed whole-program table for `(fp, sig)`. Incomplete
    /// tables (sealed under an expired deadline) are misses.
    pub(crate) fn load_program(&self, fp: u64, sig: u64) -> Option<ProgramTable> {
        let bytes = self.fetch(TableKind::Program, fp, sig)?;
        match decode_program(&bytes, fp, self.input_fp, sig).filter(|t| t.complete) {
            Some(t) => {
                self.note_hit(fp, t.units.len() as u64);
                Some(t)
            }
            None => {
                self.note_stale(fp);
                None
            }
        }
    }

    /// Load a sealed per-instruction table for `(fp, sig)`.
    pub(crate) fn load_per_inst(&self, fp: u64, sig: u64) -> Option<PerInstTable> {
        let bytes = self.fetch(TableKind::PerInst, fp, sig)?;
        match decode_per_inst(&bytes, fp, self.input_fp, sig).filter(|t| t.complete) {
            Some(t) => {
                self.note_hit(fp, t.total_outcomes());
                Some(t)
            }
            None => {
                self.note_stale(fp);
                None
            }
        }
    }

    /// Publish a table and point the section's ref at it. Best-effort: a
    /// failed seal degrades to a future miss, never an error.
    fn seal(&self, kind: TableKind, fp: u64, sig: u64, bytes: &[u8]) {
        let name = self.ref_name(kind, fp, sig);
        if let Ok(digest) = self.store.publish(TABLE_ARTIFACT, bytes) {
            if self.store.set_ref(TABLE_ARTIFACT, &name, &digest).is_ok() {
                self.stats.tables_sealed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn seal_program(&self, fp: u64, sig: u64, t: &ProgramTable) {
        self.seal(
            TableKind::Program,
            fp,
            sig,
            &encode_program(fp, self.input_fp, sig, t),
        );
    }

    pub(crate) fn seal_per_inst(&self, fp: u64, sig: u64, t: &PerInstTable) {
        self.seal(
            TableKind::PerInst,
            fp,
            sig,
            &encode_per_inst(fp, self.input_fp, sig, t),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memo(name: &str) -> TableMemo {
        let dir = std::env::temp_dir().join(format!("minpsid-table-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TableMemo::new(Arc::new(ArtifactStore::open(&dir).unwrap()), 77)
    }

    #[test]
    fn program_table_round_trips_through_the_store() {
        let m = memo("prog-rt");
        let t = ProgramTable {
            complete: true,
            units: vec![(0, false), (1, true), (4, false)],
        };
        assert!(m.load_program(5, 9).is_none(), "cold store misses");
        m.seal_program(5, 9, &t);
        let back = m.load_program(5, 9).unwrap();
        assert_eq!(back.units, t.units);
        assert!(back.complete);
        // wrong fingerprint or signature: miss, not a wrong-table serve
        assert!(m.load_program(6, 9).is_none());
        assert!(m.load_program(5, 10).is_none());
        let s = m.stats();
        assert_eq!(s.sections_hit, 1);
        assert_eq!(s.tables_sealed, 1);
        assert!(s.sections_missed >= 3);
    }

    #[test]
    fn incomplete_tables_are_misses() {
        // the --deadline-secs asymmetry fix: a table sealed under a
        // truncated deadline must never be served as if it were finished
        let m = memo("incomplete");
        let t = ProgramTable {
            complete: false,
            units: vec![(0, false)],
        };
        m.seal_program(1, 2, &t);
        assert!(m.load_program(1, 2).is_none());
        let pi = PerInstTable {
            complete: false,
            sites: vec![(0, vec![0, 0])],
        };
        m.seal_per_inst(3, 4, &pi);
        assert!(m.load_per_inst(3, 4).is_none());
        assert_eq!(m.stats().sections_hit, 0);
    }

    #[test]
    fn per_inst_table_round_trips_and_indexes_by_local_site() {
        let m = memo("pi-rt");
        let t = PerInstTable {
            complete: true,
            sites: vec![(2, vec![0, 1, 0]), (7, vec![3])],
        };
        m.seal_per_inst(11, 13, &t);
        let back = m.load_per_inst(11, 13).unwrap();
        assert_eq!(back.site(2), Some(&[0u8, 1, 0][..]));
        assert_eq!(back.site(7), Some(&[3u8][..]));
        assert_eq!(back.site(9), None);
        assert_eq!(back.total_outcomes(), 4);
    }

    #[test]
    fn corrupt_tables_are_quarantined_and_rerun() {
        let dir = std::env::temp_dir().join(format!("minpsid-table-chaos-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let m = TableMemo::new(store.clone(), 77);
        // Chaos flips at publish time: arm it before sealing so the
        // stored object rots in place, then load must spot the rot.
        store.set_chaos_flip(1);
        m.seal_program(
            5,
            9,
            &ProgramTable {
                complete: true,
                units: vec![(0, false)],
            },
        );
        store.set_chaos_flip(0);
        assert!(m.load_program(5, 9).is_none(), "corrupt table is a miss");
        let s = m.stats();
        assert_eq!(s.sections_recomputed, 1);
        assert_eq!(store.quarantined_count().unwrap(), 1);
    }

    #[test]
    fn malformed_table_bytes_never_panic() {
        let t = ProgramTable {
            complete: true,
            units: vec![(1, false), (2, true)],
        };
        let good = encode_program(9, 77, 13, &t);
        for cut in 0..good.len() {
            assert!(decode_program(&good[..cut], 9, 77, 13).is_none());
        }
        for pos in 0..good.len() {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            let _ = decode_program(&bad, 9, 77, 13);
        }
        let pi = PerInstTable {
            complete: true,
            sites: vec![(1, vec![0; 4])],
        };
        let good = encode_per_inst(9, 77, 13, &pi);
        for cut in 0..good.len() {
            assert!(decode_per_inst(&good[..cut], 9, 77, 13).is_none());
        }
        // hostile length never over-allocates
        let mut bad = good.clone();
        let body = header(TableKind::PerInst, true, 9, 77, 13).len();
        bad[body] = 0xff;
        bad.push(0xff);
        let _ = decode_per_inst(&bad, 9, 77, 13);
    }

    #[test]
    fn sig_moves_with_the_knobs_that_matter_and_not_others() {
        use crate::campaign::CampaignConfig;
        let golden = GoldenRun {
            output: {
                let mut o = minpsid_interp::Output::default();
                o.push_i(42);
                o
            },
            profile: {
                // shape only; the sig hashes the slice we pass explicitly
                let m = minpsid_ir::Module::new("t");
                minpsid_interp::Profile::for_module(&m)
            },
            steps: 1000,
            checkpoints: Default::default(),
        };
        let cfg = CampaignConfig::quick(1);
        let base = table_sig(TableKind::Program, &cfg, &golden, &[5, 6], 11);
        assert_eq!(
            base,
            table_sig(TableKind::Program, &cfg, &golden, &[5, 6], 11),
            "deterministic"
        );
        let mut seed2 = cfg.clone();
        seed2.seed = 2;
        assert_ne!(
            base,
            table_sig(TableKind::Program, &seed2, &golden, &[5, 6], 11)
        );
        let mut more = cfg.clone();
        more.injections += 1;
        assert_eq!(
            base,
            table_sig(TableKind::Program, &more, &golden, &[5, 6], 11),
            "campaign size must not invalidate program tables"
        );
        let mut ckpt = cfg.clone();
        ckpt.max_checkpoints = 3;
        assert_eq!(
            base,
            table_sig(TableKind::Program, &ckpt, &golden, &[5, 6], 11),
            "checkpoint policy is outcome-neutral"
        );
        assert_ne!(
            base,
            table_sig(TableKind::Program, &cfg, &golden, &[5, 7], 11)
        );
        assert_ne!(
            base,
            table_sig(TableKind::PerInst, &cfg, &golden, &[5, 6], 11)
        );
    }
}
