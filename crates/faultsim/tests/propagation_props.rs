//! Property and consistency tests for the error-propagation analysis:
//! the trace diff must agree with the campaign-level outcome
//! classification for the same fault.

use minpsid_faultsim::{classify, trace_fault, Outcome};
use minpsid_interp::{ExecConfig, FaultSpec, FaultTarget, Interp, ProgInput, Scalar};
use proptest::prelude::*;

fn module() -> minpsid_ir::Module {
    minic::compile(
        r#"
        fn main() {
            let n = arg_i(0);
            let acc = 0;
            for i = 0 to n {
                if i % 3 == 0 { acc = acc + i * 2; } else { acc = acc - 1; }
            }
            out_i(acc);
        }
        "#,
        "prop-prop",
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The propagation report's outcome equals direct classification of
    /// the same faulty run, and its divergence structure is consistent
    /// with it: SDC/Crash/Hang require a divergence; a Benign outcome
    /// with identical traces has zero corrupted writes.
    #[test]
    fn report_outcome_matches_direct_classification(
        n in 5i64..40,
        nth in 0u64..200,
        bit in 0u32..64,
    ) {
        let m = module();
        let input = ProgInput::scalars(vec![Scalar::I(n)]);
        let interp = Interp::new(&m, ExecConfig::default());
        let golden = interp.run(&input);
        prop_assume!(golden.exited());
        let fault = FaultSpec { target: FaultTarget::NthDynamic(nth), bit };

        let report = trace_fault(&m, &input, fault, &golden.output, golden.steps * 10);
        let direct = classify(&golden.output, &interp.run_with_fault(&input, fault));
        prop_assert_eq!(report.outcome, direct);

        match report.outcome {
            Outcome::Sdc | Outcome::Crash | Outcome::Hang | Outcome::Detected => {
                prop_assert!(
                    report.first_divergence.is_some(),
                    "a non-benign outcome implies a trace divergence"
                );
            }
            Outcome::Benign => {
                if report.first_divergence.is_none() {
                    prop_assert_eq!(report.corrupted_writes, 0);
                }
                // else: locally corrupted but masked before the output —
                // the canonical benign-with-footprint case
            }
            Outcome::EngineError => {
                // only reachable with a wall-clock budget or a worker
                // panic, neither of which this test configures
                prop_assert!(false, "engine error without a chaos knob");
            }
        }
        prop_assert!(report.corruption_density() <= 1.0);
    }
}

#[test]
fn masked_faults_can_still_have_a_footprint() {
    // flipping a low bit of a value that is later multiplied by zero (or
    // overwritten) corrupts intermediate writes but not the output; scan
    // for at least one such benign-with-divergence case
    let m = module();
    let input = ProgInput::scalars(vec![Scalar::I(30)]);
    let interp = Interp::new(&m, ExecConfig::default());
    let golden = interp.run(&input);
    let mut found = false;
    for nth in 0..150 {
        let fault = FaultSpec {
            target: FaultTarget::NthDynamic(nth),
            bit: 0,
        };
        let r = trace_fault(&m, &input, fault, &golden.output, golden.steps * 10);
        if r.outcome == Outcome::Benign && r.first_divergence.is_some() {
            found = true;
            assert!(r.corrupted_writes > 0);
            break;
        }
    }
    assert!(found, "some low-bit flips must be masked after propagating");
}
