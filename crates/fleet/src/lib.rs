//! minpsid-fleet: process-isolated campaign execution.
//!
//! Thread-level parallelism (`--threads`) shares one address space: a
//! single wild injection that corrupts the interpreter's host process —
//! a real possibility when simulating hardware faults — takes the whole
//! campaign (and its journal) down with it. The fleet moves that blast
//! radius across a process boundary:
//!
//! * the **supervisor** ([`run_fleet`]) re-execs the CLI as N worker
//!   processes and hands out campaign shards as heartbeat-renewed
//!   leases over length-prefixed pipes ([`proto`]);
//! * each **worker** ([`run_worker`]) executes its leased units and
//!   spools results into per-lease WAL segments ([`spool`]) that
//!   survive the worker's death;
//! * when a worker is SIGKILLed, aborts, OOMs, or hangs, its lease
//!   expires and the shard is reassigned; a shard that keeps killing
//!   workers is declared **poisoned** and routed to quarantine
//!   ([`shard`]) so one bad unit cannot sink the run.
//!
//! Execution is at-least-once, reduction exactly-once: the supervisor
//! merges segments first-record-wins in plan order, so the final
//! report and journal are byte-identical to an in-process run — even
//! under random kill chaos.

pub mod proto;
pub mod shard;
pub mod spool;
pub mod supervisor;
pub mod worker;

pub use shard::{plan_shards, OutcomeLedger, ShardFate, ShardTable};
pub use spool::{
    read_segment, read_segment_verified, segment_path, segment_ref_name, SegmentWriter,
    SpooledUnit, VerifiedSegment, SPOOL_ARTIFACT,
};
pub use supervisor::{run_fleet, FleetConfig, FleetOutcome, FleetStats};
pub use worker::{drive_worker, run_worker, store_path};
