//! The supervisor ↔ worker wire protocol.
//!
//! Workers talk to the supervisor over their own stdin/stdout pipes
//! with length-prefixed binary frames: `[len u32 LE][payload]`, where
//! `payload[0]` is a message tag. The framing is deliberately dumb —
//! no versioning handshake beyond [`ToSupervisor::Ready`], no partial
//! frames — because both ends are the same binary re-exec'd, and a
//! malformed frame means a corrupted worker that should be killed and
//! replaced, not negotiated with.
//!
//! Clean EOF on either pipe means the peer is gone: for the supervisor
//! that is the worker-death signal driving lease reassignment.

use std::io::{self, Read, Write};

/// Upper bound on a frame payload. An `ASSIGN` carries one `u64` per
/// unit, so this admits shards of ~2M units — far past any real plan —
/// while a garbage length prefix dies immediately instead of
/// allocating gigabytes.
pub const MAX_FRAME: usize = 16 << 20;

const TAG_READY: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;
const TAG_SHARD_DONE: u8 = 3;
const TAG_ASSIGN: u8 = 16;
const TAG_SHUTDOWN: u8 = 17;

/// Messages a worker sends up to the supervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToSupervisor {
    /// Sent once after startup: the worker finished its golden run and
    /// is ready for leases. `population` is its injectable-exec count,
    /// cross-checked against the supervisor's own golden run so a
    /// determinism drift is caught before any shard is reduced.
    Ready { population: u64 },
    /// Lease renewal: `done` units of `shard` are executed and spooled.
    Heartbeat { shard: u32, done: u64 },
    /// The shard's spool segment is complete and fsynced.
    ShardDone { shard: u32 },
}

/// Messages the supervisor sends down to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToWorker {
    /// Lease of one shard: execute `units` in order, spool each result
    /// into the `(shard, attempt)` segment, heartbeat as you go.
    Assign {
        shard: u32,
        attempt: u32,
        units: Vec<u64>,
    },
    /// Drain and exit cleanly.
    Shutdown,
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("fleet proto: {msg}"))
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn u32(&mut self) -> io::Result<u32> {
        let end = self.at.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| bad("truncated u32"))?;
        let v = u32::from_le_bytes(self.bytes[self.at..end].try_into().unwrap());
        self.at = end;
        Ok(v)
    }

    fn u64(&mut self) -> io::Result<u64> {
        let end = self.at.checked_add(8).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| bad("truncated u64"))?;
        let v = u64::from_le_bytes(self.bytes[self.at..end].try_into().unwrap());
        self.at = end;
        Ok(v)
    }

    fn done(&self) -> io::Result<()> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes in frame"))
        }
    }
}

impl ToSupervisor {
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(16);
        match self {
            ToSupervisor::Ready { population } => {
                b.push(TAG_READY);
                put_u64(&mut b, *population);
            }
            ToSupervisor::Heartbeat { shard, done } => {
                b.push(TAG_HEARTBEAT);
                put_u32(&mut b, *shard);
                put_u64(&mut b, *done);
            }
            ToSupervisor::ShardDone { shard } => {
                b.push(TAG_SHARD_DONE);
                put_u32(&mut b, *shard);
            }
        }
        b
    }

    pub fn decode(bytes: &[u8]) -> io::Result<ToSupervisor> {
        let (&tag, rest) = bytes.split_first().ok_or_else(|| bad("empty frame"))?;
        let mut r = Reader { bytes: rest, at: 0 };
        let msg = match tag {
            TAG_READY => ToSupervisor::Ready {
                population: r.u64()?,
            },
            TAG_HEARTBEAT => ToSupervisor::Heartbeat {
                shard: r.u32()?,
                done: r.u64()?,
            },
            TAG_SHARD_DONE => ToSupervisor::ShardDone { shard: r.u32()? },
            t => return Err(bad(&format!("unknown worker→supervisor tag {t}"))),
        };
        r.done()?;
        Ok(msg)
    }
}

impl ToWorker {
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(16);
        match self {
            ToWorker::Assign {
                shard,
                attempt,
                units,
            } => {
                b.push(TAG_ASSIGN);
                put_u32(&mut b, *shard);
                put_u32(&mut b, *attempt);
                put_u32(&mut b, units.len() as u32);
                for &u in units {
                    put_u64(&mut b, u);
                }
            }
            ToWorker::Shutdown => b.push(TAG_SHUTDOWN),
        }
        b
    }

    pub fn decode(bytes: &[u8]) -> io::Result<ToWorker> {
        let (&tag, rest) = bytes.split_first().ok_or_else(|| bad("empty frame"))?;
        let mut r = Reader { bytes: rest, at: 0 };
        let msg = match tag {
            TAG_ASSIGN => {
                let shard = r.u32()?;
                let attempt = r.u32()?;
                let n = r.u32()? as usize;
                let mut units = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    units.push(r.u64()?);
                }
                ToWorker::Assign {
                    shard,
                    attempt,
                    units,
                }
            }
            TAG_SHUTDOWN => ToWorker::Shutdown,
            t => return Err(bad(&format!("unknown supervisor→worker tag {t}"))),
        };
        r.done()?;
        Ok(msg)
    }
}

/// Write one `[len][payload]` frame and flush it (frames are the unit
/// of progress visibility; an unflushed heartbeat is a missed lease
/// renewal).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "oversized fleet frame");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. `Ok(None)` is clean EOF at a frame boundary — the
/// peer closed its end. EOF mid-frame is an error (a torn write means
/// the peer died mid-send).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(None),
            0 => return Err(bad("EOF inside frame length")),
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(bad(&format!("bad frame length {len}")));
    }
    let mut payload = vec![0u8; len];
    let mut at = 0;
    while at < len {
        match r.read(&mut payload[at..])? {
            0 => return Err(bad("EOF inside frame payload")),
            n => at += n,
        }
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip_through_frames() {
        let msgs = vec![
            ToSupervisor::Ready { population: 12345 },
            ToSupervisor::Heartbeat { shard: 7, done: 42 },
            ToSupervisor::ShardDone { shard: u32::MAX },
        ];
        let mut pipe = Vec::new();
        for m in &msgs {
            write_frame(&mut pipe, &m.encode()).unwrap();
        }
        let mut r = &pipe[..];
        for m in &msgs {
            let frame = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(&ToSupervisor::decode(&frame).unwrap(), m);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn assign_round_trips_with_units() {
        let m = ToWorker::Assign {
            shard: 3,
            attempt: 2,
            units: vec![0, 9, u64::MAX],
        };
        assert_eq!(ToWorker::decode(&m.encode()).unwrap(), m);
        let s = ToWorker::Shutdown;
        assert_eq!(ToWorker::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn torn_and_garbage_frames_are_errors() {
        // EOF inside the length prefix
        let mut r: &[u8] = &[1, 0];
        assert!(read_frame(&mut r).is_err());
        // EOF inside the payload
        let mut r: &[u8] = &[4, 0, 0, 0, 1];
        assert!(read_frame(&mut r).is_err());
        // absurd length prefix dies without allocating
        let mut r: &[u8] = &[255, 255, 255, 255, 0];
        assert!(read_frame(&mut r).is_err());
        // unknown tags and trailing bytes are decode errors
        assert!(ToSupervisor::decode(&[99]).is_err());
        assert!(ToWorker::decode(&[TAG_SHUTDOWN, 1]).is_err());
        assert!(ToSupervisor::decode(&[]).is_err());
    }
}
