//! Pure shard bookkeeping: the lease table and the outcome ledger.
//!
//! These types hold every invariant the supervisor relies on — leases
//! renew by heartbeat, a dead worker's shard requeues with a bumped
//! attempt, a shard that kills too many workers is poisoned, and a unit
//! reduces exactly once no matter how many spool segments mention it —
//! with no processes, pipes, or clocks involved, so the property tests
//! can drive them through millions of adversarial schedules.

use crate::spool::SpooledUnit;
use std::collections::{BTreeMap, VecDeque};

/// What happened to a shard when the worker holding its lease died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFate {
    /// Requeued for another worker; `attempt` is the count of leases
    /// granted so far (the next lease will be this attempt number).
    Requeued { attempts_so_far: u32 },
    /// The shard has now killed `poison_after` workers and is declared
    /// poisoned: its units route to quarantine, not to another worker.
    Poisoned,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ShardState {
    Pending,
    Leased { slot: usize, hb_ms: u64 },
    Done,
    Poisoned,
}

/// Lease table over the campaign's shards.
///
/// Time is an opaque millisecond counter supplied by the caller
/// (wall-clock in the supervisor, a scripted counter in tests).
#[derive(Debug)]
pub struct ShardTable {
    units: Vec<Vec<u64>>,
    state: Vec<ShardState>,
    /// Leases granted per shard (== next attempt number).
    attempts: Vec<u32>,
    /// Workers killed while holding this shard's lease (chaos kills
    /// excluded — those are the supervisor's fault, not the shard's).
    kills: Vec<u32>,
    queue: VecDeque<u32>,
    poison_after: u32,
}

impl ShardTable {
    /// `units` is the per-shard list of plan indices; `poison_after` is
    /// the number of (non-chaos) worker kills that poisons a shard.
    pub fn new(units: Vec<Vec<u64>>, poison_after: u32) -> ShardTable {
        assert!(poison_after > 0, "poison_after must be at least 1");
        let n = units.len();
        ShardTable {
            units,
            state: vec![ShardState::Pending; n],
            attempts: vec![0; n],
            kills: vec![0; n],
            queue: (0..n as u32).collect(),
            poison_after,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.units.len()
    }

    pub fn units(&self, shard: u32) -> &[u64] {
        &self.units[shard as usize]
    }

    /// Lease the next pending shard to `slot`, returning the shard id
    /// and this lease's attempt number.
    pub fn lease_next(&mut self, slot: usize, now_ms: u64) -> Option<(u32, u32)> {
        let shard = self.queue.pop_front()?;
        let s = shard as usize;
        debug_assert_eq!(self.state[s], ShardState::Pending);
        let attempt = self.attempts[s];
        self.attempts[s] += 1;
        self.state[s] = ShardState::Leased {
            slot,
            hb_ms: now_ms,
        };
        Some((shard, attempt))
    }

    /// Renew the lease. Ignored unless `slot` actually holds it (stale
    /// heartbeats from a replaced worker's buffered frames are no-ops).
    pub fn heartbeat(&mut self, shard: u32, slot: usize, now_ms: u64) {
        if let Some(ShardState::Leased {
            slot: holder,
            hb_ms,
        }) = self.state.get_mut(shard as usize)
        {
            if *holder == slot {
                *hb_ms = now_ms;
            }
        }
    }

    /// Mark the shard done. Returns false (and changes nothing) unless
    /// `slot` holds the lease — a completion racing its own lease
    /// expiry loses, and the shard stays with the replacement worker.
    pub fn complete(&mut self, shard: u32, slot: usize) -> bool {
        match self.state.get(shard as usize) {
            Some(ShardState::Leased { slot: holder, .. }) if *holder == slot => {
                self.state[shard as usize] = ShardState::Done;
                true
            }
            _ => false,
        }
    }

    /// The worker holding this shard died (or was killed). When
    /// `counts_toward_poison` is false — the supervisor killed it for
    /// chaos, not the shard — the kill tally is untouched so chaos can
    /// never change what the campaign reports.
    pub fn fail(&mut self, shard: u32, counts_toward_poison: bool) -> ShardFate {
        let s = shard as usize;
        assert!(
            matches!(self.state[s], ShardState::Leased { .. }),
            "fail() on a shard without a lease"
        );
        if counts_toward_poison {
            self.kills[s] += 1;
            if self.kills[s] >= self.poison_after {
                self.state[s] = ShardState::Poisoned;
                return ShardFate::Poisoned;
            }
        }
        self.state[s] = ShardState::Pending;
        self.queue.push_back(shard);
        ShardFate::Requeued {
            attempts_so_far: self.attempts[s],
        }
    }

    /// The shard currently leased by `slot`, with its attempt number.
    pub fn leased_by(&self, slot: usize) -> Option<(u32, u32)> {
        self.state.iter().enumerate().find_map(|(i, st)| match st {
            ShardState::Leased { slot: holder, .. } if *holder == slot => {
                Some((i as u32, self.attempts[i] - 1))
            }
            _ => None,
        })
    }

    /// Shards whose lease has gone `lease_ms` without a heartbeat,
    /// with the slot that holds each.
    pub fn expired(&self, now_ms: u64, lease_ms: u64) -> Vec<(u32, usize)> {
        self.state
            .iter()
            .enumerate()
            .filter_map(|(i, st)| match st {
                ShardState::Leased { slot, hb_ms } if now_ms.saturating_sub(*hb_ms) > lease_ms => {
                    Some((i as u32, *slot))
                }
                _ => None,
            })
            .collect()
    }

    /// True once every shard is done or poisoned.
    pub fn all_settled(&self) -> bool {
        self.state
            .iter()
            .all(|s| matches!(s, ShardState::Done | ShardState::Poisoned))
    }

    pub fn is_poisoned(&self, shard: u32) -> bool {
        matches!(self.state[shard as usize], ShardState::Poisoned)
    }

    /// Plan indices of every poisoned shard, ascending.
    pub fn poisoned_units(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .state
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, ShardState::Poisoned))
            .flat_map(|(i, _)| self.units[i].iter().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// Shards that are neither done nor poisoned, with how many lease
    /// attempts each has been granted — i.e. which spool segments may
    /// hold salvageable partial results after an interrupt.
    pub fn salvageable(&self) -> Vec<(u32, u32)> {
        self.state
            .iter()
            .enumerate()
            .filter_map(|(i, st)| match st {
                ShardState::Pending | ShardState::Leased { .. } if self.attempts[i] > 0 => {
                    Some((i as u32, self.attempts[i]))
                }
                _ => None,
            })
            .collect()
    }
}

/// First-record-wins fold of spooled units: at-least-once execution,
/// exactly-once reduction.
///
/// Execution is deterministic per plan index, so duplicate records from
/// overlapping attempts carry identical outcomes and first-wins is a
/// pure dedup; keeping the discrepancy counter anyway turns "should be
/// impossible" into something a test can assert on.
#[derive(Debug, Default)]
pub struct OutcomeLedger {
    map: BTreeMap<u64, (u8, bool)>,
    duplicates: u64,
    conflicts: u64,
}

impl OutcomeLedger {
    pub fn new() -> OutcomeLedger {
        OutcomeLedger::default()
    }

    /// Fold a segment's records in; returns how many were new.
    pub fn absorb(&mut self, units: &[SpooledUnit]) -> usize {
        let mut fresh = 0;
        for u in units {
            match self.map.get(&u.index) {
                None => {
                    self.map.insert(u.index, (u.outcome, u.recovered));
                    fresh += 1;
                }
                Some(&(o, r)) => {
                    self.duplicates += 1;
                    if (o, r) != (u.outcome, u.recovered) {
                        self.conflicts += 1;
                    }
                }
            }
        }
        fresh
    }

    pub fn get(&self, index: u64) -> Option<(u8, bool)> {
        self.map.get(&index).copied()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Duplicate records absorbed (same index seen again).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Duplicates that *disagreed* with the first record — always zero
    /// when per-unit execution is deterministic.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

/// Chunk `0..total` plan indices into at most `shards` near-equal
/// contiguous shards (fewer when `total` is small).
pub fn plan_shards(units: &[u64], shards: usize) -> Vec<Vec<u64>> {
    let shards = shards.max(1).min(units.len().max(1));
    if units.is_empty() {
        return Vec::new();
    }
    let base = units.len() / shards;
    let extra = units.len() % shards;
    let mut out = Vec::with_capacity(shards);
    let mut at = 0;
    for i in 0..shards {
        let take = base + usize::from(i < extra);
        out.push(units[at..at + take].to_vec());
        at += take;
    }
    debug_assert_eq!(at, units.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(index: u64, outcome: u8) -> SpooledUnit {
        SpooledUnit {
            index,
            outcome,
            recovered: false,
        }
    }

    #[test]
    fn plan_shards_covers_everything_contiguously() {
        let units: Vec<u64> = (0..13).collect();
        let shards = plan_shards(&units, 4);
        assert_eq!(shards.len(), 4);
        let flat: Vec<u64> = shards.iter().flatten().copied().collect();
        assert_eq!(flat, units);
        assert!(shards.iter().all(|s| s.len() == 3 || s.len() == 4));
        // more shards than units degrades to one unit each
        assert_eq!(plan_shards(&units[..2], 8).len(), 2);
        assert!(plan_shards(&[], 4).is_empty());
    }

    #[test]
    fn lease_expires_reassigns_and_heartbeat_renews() {
        let mut t = ShardTable::new(vec![vec![0, 1], vec![2, 3]], 3);
        let (s0, a0) = t.lease_next(0, 1000).unwrap();
        assert_eq!((s0, a0), (0, 0));
        assert!(t.expired(1500, 1000).is_empty());
        t.heartbeat(s0, 0, 2000);
        assert!(t.expired(2900, 1000).is_empty(), "renewed lease holds");
        assert_eq!(t.expired(3100, 1000), vec![(0, 0)]);
        // a heartbeat from the wrong slot does not renew
        t.heartbeat(s0, 5, 9000);
        assert_eq!(t.expired(3100, 1000), vec![(0, 0)]);
        // expiry → fail → requeued with a bumped attempt
        assert_eq!(t.fail(s0, true), ShardFate::Requeued { attempts_so_far: 1 });
        let (s, a) = t.lease_next(1, 4000).unwrap();
        assert_eq!(s, 1, "queue order: shard 1 was already queued");
        assert_eq!(a, 0);
        let (s, a) = t.lease_next(2, 4000).unwrap();
        assert_eq!((s, a), (0, 1), "requeued shard comes back with attempt 1");
    }

    #[test]
    fn third_kill_poisons_but_chaos_kills_never_count() {
        let mut t = ShardTable::new(vec![vec![7, 8, 9]], 3);
        // two chaos kills and two real kills, interleaved: tally is 2
        for (i, counts) in [false, true, false, true].into_iter().enumerate() {
            let (s, a) = t.lease_next(0, 0).unwrap();
            assert_eq!((s, a), (0, i as u32));
            assert_eq!(
                t.fail(s, counts),
                ShardFate::Requeued {
                    attempts_so_far: i as u32 + 1
                }
            );
        }
        assert!(!t.is_poisoned(0), "chaos kills must not poison");
        // the third real kill tips it over
        let (s, _) = t.lease_next(0, 0).unwrap();
        assert_eq!(t.fail(s, true), ShardFate::Poisoned);
        assert!(t.is_poisoned(0));
        assert!(t.all_settled());
        assert_eq!(t.poisoned_units(), vec![7, 8, 9]);
        assert!(t.lease_next(0, 0).is_none());
    }

    #[test]
    fn completion_races_lose_to_reassignment() {
        let mut t = ShardTable::new(vec![vec![0]], 3);
        let (s, _) = t.lease_next(0, 0).unwrap();
        t.fail(s, true); // expiry killed slot 0
        let (s2, _) = t.lease_next(1, 0).unwrap();
        assert_eq!(s2, s);
        assert!(!t.complete(s, 0), "stale completion from slot 0 ignored");
        assert!(t.complete(s, 1));
        assert!(t.all_settled());
    }

    #[test]
    fn ledger_reduces_each_unit_exactly_once() {
        let mut l = OutcomeLedger::new();
        assert_eq!(l.absorb(&[unit(0, 1), unit(1, 2)]), 2);
        // overlapping attempt re-reports unit 1 identically: deduped
        assert_eq!(l.absorb(&[unit(1, 2), unit(2, 0)]), 1);
        assert_eq!(l.len(), 3);
        assert_eq!(l.duplicates(), 1);
        assert_eq!(l.conflicts(), 0);
        assert_eq!(l.get(1), Some((2, false)));
        // a disagreeing duplicate is counted but first still wins
        l.absorb(&[unit(1, 5)]);
        assert_eq!(l.conflicts(), 1);
        assert_eq!(l.get(1), Some((2, false)));
    }
}
