//! Per-worker WAL spool segments.
//!
//! Each lease attempt writes its results into its own checksummed WAL
//! segment, `shard{S}-a{A}.wal`, using the journal crate's frame format
//! with spool-only [`Record::ShardUnit`] records. Keying segments by
//! `(shard, attempt)` means a killed worker's half-written segment can
//! never be confused with its replacement's: the supervisor reads the
//! segment named by the attempt it actually leased.
//!
//! Torn tails are expected here — workers die mid-append by design
//! (SIGKILL chaos) — and the journal's recovery scan simply drops them;
//! every intact record before the tear is still salvageable.
//!
//! A completed segment is additionally *sealed* into the fleet's
//! content-addressed store ([`SegmentWriter::seal`]): the synced bytes
//! are published as a `spool` artifact and a ref named by the lease
//! records its digest. The supervisor's
//! [`read_segment_verified`] then loads through the store, so a
//! segment that rots between the worker's fsync and the merge is
//! detected, quarantined, and the shard recomputed — never folded
//! into the ledger corrupt. The raw `.wal` file stays beside the
//! store for interrupt salvage of unsealed (mid-lease) segments.

use minpsid_journal::record::Record;
use minpsid_journal::wal::{open_wal, read_wal, scan_bytes, WalWriter};
use minpsid_store::{ArtifactStore, StoreError};
use std::io;
use std::path::{Path, PathBuf};

/// Store artifact class for sealed spool segments.
pub const SPOOL_ARTIFACT: &str = "spool";

/// Store ref name of one `(shard, attempt)` lease's sealed segment.
pub fn segment_ref_name(shard: u32, attempt: u32) -> String {
    format!("shard{shard:05}-a{attempt:03}")
}

/// One executed unit as spooled by a worker: plan index, outcome byte
/// (`Outcome::to_u8`), and whether the scheduler recovered it via retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpooledUnit {
    pub index: u64,
    pub outcome: u8,
    pub recovered: bool,
}

/// Path of the segment for one `(shard, attempt)` lease.
pub fn segment_path(dir: &Path, shard: u32, attempt: u32) -> PathBuf {
    dir.join(format!("shard{shard:05}-a{attempt:03}.wal"))
}

/// Append-side of one spool segment (worker side).
///
/// Records are batched in memory and written [`BATCH`](Self::BATCH) at
/// a time: segments are salvage material, not the source of truth, so a
/// worker killed mid-batch merely re-executes those units elsewhere —
/// and fast units stop paying a write syscall each.
pub struct SegmentWriter {
    wal: WalWriter,
    pending: Vec<Record>,
    path: PathBuf,
    shard: u32,
    attempt: u32,
}

impl SegmentWriter {
    /// Create a fresh segment for this lease. Any stale file at the
    /// same path (only possible if a previous worker got the identical
    /// `(shard, attempt)` lease, which the supervisor never grants
    /// twice) is removed rather than appended to.
    pub fn create(dir: &Path, shard: u32, attempt: u32) -> io::Result<SegmentWriter> {
        std::fs::create_dir_all(dir)?;
        let path = segment_path(dir, shard, attempt);
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let (mut wal, _) = open_wal(&path)?;
        // The segment's durability point is the single fsync before
        // SHARD_DONE; a worker killed mid-shard re-executes anyway, so
        // periodic fsync would buy nothing and cost per-unit latency.
        wal.set_fsync_every(0);
        Ok(SegmentWriter {
            wal,
            pending: Vec::with_capacity(Self::BATCH),
            path,
            shard,
            attempt,
        })
    }

    /// Records buffered before one batched write hits the file.
    pub const BATCH: usize = 128;

    pub fn record(&mut self, unit: SpooledUnit) -> io::Result<()> {
        self.pending.push(Record::ShardUnit {
            index: unit.index,
            outcome: unit.outcome,
            recovered: unit.recovered,
        });
        if self.pending.len() >= Self::BATCH {
            self.flush()?;
        }
        Ok(())
    }

    /// Write every buffered record to the file (no fsync).
    pub fn flush(&mut self) -> io::Result<()> {
        self.wal.append_batch(&self.pending)?;
        self.pending.clear();
        Ok(())
    }

    /// Flush and fsync the segment; called before `SHARD_DONE` goes up
    /// the pipe so the supervisor never reads a segment that claims
    /// completion but lost records to a buffer or the page cache.
    pub fn sync(&mut self) -> io::Result<()> {
        self.flush()?;
        self.wal.sync()
    }

    /// Sync the segment and publish its bytes into the store under a
    /// ref named by this lease. After this, the supervisor's
    /// [`read_segment_verified`] merges through the store — a segment
    /// that rots on disk afterwards is caught by digest verification
    /// instead of poisoning the campaign ledger.
    pub fn seal(&mut self, store: &ArtifactStore) -> io::Result<()> {
        self.sync()?;
        let bytes = std::fs::read(&self.path)?;
        let digest = store.publish(SPOOL_ARTIFACT, &bytes)?;
        store.set_ref(
            SPOOL_ARTIFACT,
            &segment_ref_name(self.shard, self.attempt),
            &digest,
        )
    }
}

/// Read every intact `ShardUnit` in a segment (supervisor side).
///
/// A missing segment reads as empty — a worker killed before its first
/// append never created the file. Non-`ShardUnit` records are ignored.
pub fn read_segment(dir: &Path, shard: u32, attempt: u32) -> io::Result<Vec<SpooledUnit>> {
    let rec = read_wal(&segment_path(dir, shard, attempt))?;
    Ok(rec
        .records
        .into_iter()
        .filter_map(|r| match r {
            Record::ShardUnit {
                index,
                outcome,
                recovered,
            } => Some(SpooledUnit {
                index,
                outcome,
                recovered,
            }),
            _ => None,
        })
        .collect())
}

/// Result of a store-verified segment read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifiedSegment {
    /// The segment's intact units (sealed bytes verified against their
    /// digest, or — for unsealed segments — the raw file's intact
    /// prefix).
    Units(Vec<SpooledUnit>),
    /// The sealed bytes failed digest verification; the store has
    /// quarantined the object and the shard must be re-executed.
    Corrupt,
}

/// Read a segment through the store, verifying sealed bytes against
/// their published digest (supervisor side).
///
/// A segment with no ref was never sealed — the worker died before
/// `SHARD_DONE`, or predates the store — and falls back to the raw
/// torn-tail-tolerant [`read_segment`]. A sealed segment whose bytes
/// fail verification returns [`VerifiedSegment::Corrupt`]; the store
/// has already quarantined the object, so the shard's next attempt
/// republishes fresh bytes.
pub fn read_segment_verified(
    store: &ArtifactStore,
    dir: &Path,
    shard: u32,
    attempt: u32,
) -> io::Result<VerifiedSegment> {
    match store.load_named(SPOOL_ARTIFACT, &segment_ref_name(shard, attempt)) {
        Ok(Some((_, bytes))) => {
            let units = scan_bytes(&bytes)
                .records
                .into_iter()
                .filter_map(|r| match r {
                    Record::ShardUnit {
                        index,
                        outcome,
                        recovered,
                    } => Some(SpooledUnit {
                        index,
                        outcome,
                        recovered,
                    }),
                    _ => None,
                })
                .collect();
            Ok(VerifiedSegment::Units(units))
        }
        Ok(None) => Ok(VerifiedSegment::Units(read_segment(dir, shard, attempt)?)),
        Err(StoreError::Corrupt { .. }) => Ok(VerifiedSegment::Corrupt),
        // Ref exists but the object is gone (gc'ed or previously
        // quarantined): treat like unsealed and salvage the raw file.
        Err(StoreError::Missing(_)) => {
            Ok(VerifiedSegment::Units(read_segment(dir, shard, attempt)?))
        }
        Err(StoreError::Io(e)) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("minpsid-fleet-spool-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn segment_round_trips_units() {
        let d = tmpdir("rt");
        let units = [
            SpooledUnit {
                index: 0,
                outcome: 2,
                recovered: false,
            },
            SpooledUnit {
                index: 7,
                outcome: 0,
                recovered: true,
            },
        ];
        let mut w = SegmentWriter::create(&d, 3, 1).unwrap();
        for u in units {
            w.record(u).unwrap();
        }
        w.sync().unwrap();
        assert_eq!(read_segment(&d, 3, 1).unwrap(), units.to_vec());
        // a different attempt of the same shard is a different segment
        assert!(read_segment(&d, 3, 2).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn sealed_segment_reads_through_store_and_corruption_is_detected() {
        let d = tmpdir("seal");
        let store = ArtifactStore::open(&d.join("store")).unwrap();
        let units = [
            SpooledUnit {
                index: 4,
                outcome: 1,
                recovered: false,
            },
            SpooledUnit {
                index: 9,
                outcome: 3,
                recovered: true,
            },
        ];
        let mut w = SegmentWriter::create(&d, 2, 0).unwrap();
        for u in units {
            w.record(u).unwrap();
        }
        w.seal(&store).unwrap();
        assert_eq!(
            read_segment_verified(&store, &d, 2, 0).unwrap(),
            VerifiedSegment::Units(units.to_vec())
        );
        // unsealed (no ref) segments fall back to the raw file
        let mut w2 = SegmentWriter::create(&d, 2, 1).unwrap();
        w2.record(units[0]).unwrap();
        w2.sync().unwrap();
        assert_eq!(
            read_segment_verified(&store, &d, 2, 1).unwrap(),
            VerifiedSegment::Units(vec![units[0]]),
        );
        // rot the sealed object: detected, quarantined, reported Corrupt
        let refp = d
            .join("store/refs")
            .join(SPOOL_ARTIFACT)
            .join(format!("{}.ref", segment_ref_name(2, 0)));
        let hex = std::fs::read_to_string(&refp).unwrap().trim().to_string();
        let obj = d
            .join("store/objects")
            .join(&hex[..2])
            .join(format!("{hex}.obj"));
        let mut bytes = std::fs::read(&obj).unwrap();
        bytes[0] ^= 0x40;
        std::fs::write(&obj, &bytes).unwrap();
        assert_eq!(
            read_segment_verified(&store, &d, 2, 0).unwrap(),
            VerifiedSegment::Corrupt
        );
        assert!(store.quarantined_count().unwrap() >= 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_tail_is_dropped_and_recreate_truncates_stale_data() {
        let d = tmpdir("torn");
        let mut w = SegmentWriter::create(&d, 0, 0).unwrap();
        w.record(SpooledUnit {
            index: 1,
            outcome: 1,
            recovered: false,
        })
        .unwrap();
        w.sync().unwrap();
        drop(w);
        // simulate a SIGKILL mid-append: garbage tail past the frame
        let p = segment_path(&d, 0, 0);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.extend_from_slice(&[9, 9, 9]);
        std::fs::write(&p, &bytes).unwrap();
        let got = read_segment(&d, 0, 0).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].index, 1);
        // a new lease at the same key starts clean
        let w2 = SegmentWriter::create(&d, 0, 0).unwrap();
        drop(w2);
        assert!(read_segment(&d, 0, 0).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&d);
    }
}
