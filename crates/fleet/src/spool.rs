//! Per-worker WAL spool segments.
//!
//! Each lease attempt writes its results into its own checksummed WAL
//! segment, `shard{S}-a{A}.wal`, using the journal crate's frame format
//! with spool-only [`Record::ShardUnit`] records. Keying segments by
//! `(shard, attempt)` means a killed worker's half-written segment can
//! never be confused with its replacement's: the supervisor reads the
//! segment named by the attempt it actually leased.
//!
//! Torn tails are expected here — workers die mid-append by design
//! (SIGKILL chaos) — and the journal's recovery scan simply drops them;
//! every intact record before the tear is still salvageable.

use minpsid_journal::record::Record;
use minpsid_journal::wal::{open_wal, read_wal, WalWriter};
use std::io;
use std::path::{Path, PathBuf};

/// One executed unit as spooled by a worker: plan index, outcome byte
/// (`Outcome::to_u8`), and whether the scheduler recovered it via retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpooledUnit {
    pub index: u64,
    pub outcome: u8,
    pub recovered: bool,
}

/// Path of the segment for one `(shard, attempt)` lease.
pub fn segment_path(dir: &Path, shard: u32, attempt: u32) -> PathBuf {
    dir.join(format!("shard{shard:05}-a{attempt:03}.wal"))
}

/// Append-side of one spool segment (worker side).
///
/// Records are batched in memory and written [`BATCH`](Self::BATCH) at
/// a time: segments are salvage material, not the source of truth, so a
/// worker killed mid-batch merely re-executes those units elsewhere —
/// and fast units stop paying a write syscall each.
pub struct SegmentWriter {
    wal: WalWriter,
    pending: Vec<Record>,
}

impl SegmentWriter {
    /// Create a fresh segment for this lease. Any stale file at the
    /// same path (only possible if a previous worker got the identical
    /// `(shard, attempt)` lease, which the supervisor never grants
    /// twice) is removed rather than appended to.
    pub fn create(dir: &Path, shard: u32, attempt: u32) -> io::Result<SegmentWriter> {
        std::fs::create_dir_all(dir)?;
        let path = segment_path(dir, shard, attempt);
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let (mut wal, _) = open_wal(&path)?;
        // The segment's durability point is the single fsync before
        // SHARD_DONE; a worker killed mid-shard re-executes anyway, so
        // periodic fsync would buy nothing and cost per-unit latency.
        wal.set_fsync_every(0);
        Ok(SegmentWriter {
            wal,
            pending: Vec::with_capacity(Self::BATCH),
        })
    }

    /// Records buffered before one batched write hits the file.
    pub const BATCH: usize = 128;

    pub fn record(&mut self, unit: SpooledUnit) -> io::Result<()> {
        self.pending.push(Record::ShardUnit {
            index: unit.index,
            outcome: unit.outcome,
            recovered: unit.recovered,
        });
        if self.pending.len() >= Self::BATCH {
            self.flush()?;
        }
        Ok(())
    }

    /// Write every buffered record to the file (no fsync).
    pub fn flush(&mut self) -> io::Result<()> {
        self.wal.append_batch(&self.pending)?;
        self.pending.clear();
        Ok(())
    }

    /// Flush and fsync the segment; called before `SHARD_DONE` goes up
    /// the pipe so the supervisor never reads a segment that claims
    /// completion but lost records to a buffer or the page cache.
    pub fn sync(&mut self) -> io::Result<()> {
        self.flush()?;
        self.wal.sync()
    }
}

/// Read every intact `ShardUnit` in a segment (supervisor side).
///
/// A missing segment reads as empty — a worker killed before its first
/// append never created the file. Non-`ShardUnit` records are ignored.
pub fn read_segment(dir: &Path, shard: u32, attempt: u32) -> io::Result<Vec<SpooledUnit>> {
    let rec = read_wal(&segment_path(dir, shard, attempt))?;
    Ok(rec
        .records
        .into_iter()
        .filter_map(|r| match r {
            Record::ShardUnit {
                index,
                outcome,
                recovered,
            } => Some(SpooledUnit {
                index,
                outcome,
                recovered,
            }),
            _ => None,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("minpsid-fleet-spool-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn segment_round_trips_units() {
        let d = tmpdir("rt");
        let units = [
            SpooledUnit {
                index: 0,
                outcome: 2,
                recovered: false,
            },
            SpooledUnit {
                index: 7,
                outcome: 0,
                recovered: true,
            },
        ];
        let mut w = SegmentWriter::create(&d, 3, 1).unwrap();
        for u in units {
            w.record(u).unwrap();
        }
        w.sync().unwrap();
        assert_eq!(read_segment(&d, 3, 1).unwrap(), units.to_vec());
        // a different attempt of the same shard is a different segment
        assert!(read_segment(&d, 3, 2).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_tail_is_dropped_and_recreate_truncates_stale_data() {
        let d = tmpdir("torn");
        let mut w = SegmentWriter::create(&d, 0, 0).unwrap();
        w.record(SpooledUnit {
            index: 1,
            outcome: 1,
            recovered: false,
        })
        .unwrap();
        w.sync().unwrap();
        drop(w);
        // simulate a SIGKILL mid-append: garbage tail past the frame
        let p = segment_path(&d, 0, 0);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.extend_from_slice(&[9, 9, 9]);
        std::fs::write(&p, &bytes).unwrap();
        let got = read_segment(&d, 0, 0).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].index, 1);
        // a new lease at the same key starts clean
        let w2 = SegmentWriter::create(&d, 0, 0).unwrap();
        drop(w2);
        assert!(read_segment(&d, 0, 0).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&d);
    }
}
