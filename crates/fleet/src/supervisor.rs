//! The fleet supervisor: process-level fault isolation for campaigns.
//!
//! The supervisor re-execs the CLI as N worker *processes* and hands
//! out campaign shards as heartbeat-renewed leases. The failure model
//! is total: a worker may be SIGKILLed, abort on a poisoned unit,
//! OOM, or hang forever. Recovery is uniform — the lease expires (or
//! the pipe EOFs), the worker is killed and respawned with capped
//! backoff, and the shard is requeued for another worker. A shard
//! that kills [`FleetConfig::poison_after`] workers is declared
//! poisoned and its units routed to quarantine by the caller instead
//! of sinking the whole campaign.
//!
//! Execution is at-least-once (a killed worker's shard is re-run from
//! the top), reduction is exactly-once (the [`OutcomeLedger`] folds
//! spool segments first-record-wins in plan order). Because per-unit
//! execution is deterministic, re-runs spool identical outcomes and
//! the merged campaign is byte-identical to an in-process `--threads`
//! run — including under random kill chaos.

use crate::proto::{read_frame, write_frame, ToSupervisor, ToWorker};
use crate::shard::{plan_shards, OutcomeLedger, ShardFate, ShardTable};
use crate::spool::{read_segment, read_segment_verified, VerifiedSegment};
use crate::worker::store_path;
use minpsid_journal::interrupt;
use minpsid_store::ArtifactStore;
use minpsid_trace::{emit, Event};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Knobs for one fleet run. All of these live outside the campaign
/// fingerprint: how work is distributed across processes must never
/// change what the campaign computes.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker process count.
    pub workers: usize,
    /// Target shards per worker; more shards = finer reassignment
    /// granularity, more per-shard overhead.
    pub shards_per_worker: usize,
    /// Lease timeout: a shard whose worker goes this long without a
    /// heartbeat is presumed wedged; the worker is killed and the
    /// shard reassigned. Heartbeats are per-unit, so this must exceed
    /// the slowest single injection by a wide margin.
    pub lease_ms: u64,
    /// Consecutive (non-chaos) worker kills that poison a shard.
    pub poison_after: u32,
    /// Worker respawn backoff: base and cap of the exponential.
    pub backoff_base_ms: u64,
    pub backoff_cap_ms: u64,
    /// Chaos: SIGKILL a busy worker every this-many milliseconds.
    /// Chaos kills never count toward poisoning — the fault is
    /// injected by the supervisor, not caused by the shard.
    pub chaos_kill_worker_ms: Option<u64>,
}

impl FleetConfig {
    pub fn new(workers: usize) -> FleetConfig {
        FleetConfig {
            workers: workers.max(1),
            shards_per_worker: 4,
            lease_ms: 10_000,
            poison_after: 3,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            chaos_kill_worker_ms: None,
        }
    }
}

/// End-of-run fleet accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    pub spawns: u64,
    pub deaths: u64,
    pub chaos_kills: u64,
    pub lease_expiries: u64,
    pub reassigned: u64,
    pub poisoned_shards: u64,
    /// Sealed spool segments that failed digest verification at merge
    /// time; each was quarantined and its shard re-executed.
    pub corrupt_segments: u64,
}

/// What the fleet computed: the merged per-unit ledger, the plan
/// indices of poisoned shards, and whether the run was interrupted
/// before every shard settled.
#[derive(Debug)]
pub struct FleetOutcome {
    pub ledger: OutcomeLedger,
    pub poisoned: BTreeSet<u64>,
    pub interrupted: bool,
    pub stats: FleetStats,
}

/// Give up on a worker slot that keeps dying before it ever reports
/// READY: that is a broken binary or environment, not shard poison,
/// and retrying forever would hang the campaign.
const MAX_PRE_READY_DEATHS: u32 = 5;

fn backoff_ms(base: u64, cap: u64, deaths: u64) -> u64 {
    let shift = deaths.min(16) as u32;
    base.checked_shl(shift)
        .unwrap_or(u64::MAX)
        .min(cap.max(base))
}

#[derive(Debug, PartialEq, Eq)]
enum SlotState {
    /// Spawned, waiting for READY.
    Starting,
    /// Ready, no lease.
    Idle,
    /// Holds a lease (which one, the table knows).
    Busy,
    /// Killed or died; respawn no earlier than the given instant.
    Dead { respawn_at: Instant },
}

struct Slot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    state: SlotState,
    /// Bumped on every spawn; messages tagged with an older generation
    /// are from a replaced process and are dropped.
    gen: u64,
    /// Completed lifetimes (deaths) of this slot so far.
    restarts: u64,
    /// Deaths since the last READY; drives the respawn backoff so a
    /// crash-looping worker slows down but a healthy one killed by
    /// chaos (or a poisoned shard) respawns promptly.
    consec_deaths: u64,
    /// The next death of this slot was supervisor-inflicted chaos.
    chaos_kill: bool,
    /// Kill already sent; ignore the slot until its EOF arrives.
    doomed: bool,
    /// Deaths since the last READY (spawn-health guard).
    pre_ready_deaths: u32,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            child: None,
            stdin: None,
            state: SlotState::Dead {
                respawn_at: Instant::now(),
            },
            gen: 0,
            restarts: 0,
            consec_deaths: 0,
            chaos_kill: false,
            doomed: false,
            pre_ready_deaths: 0,
        }
    }
}

enum ReaderMsg {
    Msg(ToSupervisor),
    /// EOF or a malformed frame: the worker is gone (or as good as).
    Gone,
}

/// Run a campaign across a fleet of supervised worker processes.
///
/// * `units` — plan indices to execute, ascending (the full plan, or
///   the unserved remainder on resume).
/// * `expected_population` — the supervisor's own golden-run
///   injectable-exec count; each worker's READY must match or the run
///   aborts (determinism drift would corrupt the merge).
/// * `spool_dir` — directory for per-lease WAL spool segments.
/// * `spawn` — builds and spawns the worker process for a slot; must
///   pipe stdin and stdout (stderr is the worker's to inherit).
///
/// Returns when every shard is done or poisoned, when an interrupt is
/// requested (partial segments salvaged into the ledger), or with an
/// error if workers can't be kept alive at all.
pub fn run_fleet<F>(
    cfg: &FleetConfig,
    units: &[u64],
    expected_population: u64,
    spool_dir: &Path,
    mut spawn: F,
) -> io::Result<FleetOutcome>
where
    F: FnMut(usize) -> io::Result<Child>,
{
    let mut stats = FleetStats::default();
    let mut ledger = OutcomeLedger::new();
    let mut table = ShardTable::new(
        plan_shards(units, cfg.workers * cfg.shards_per_worker.max(1)),
        cfg.poison_after,
    );
    if table.shard_count() == 0 {
        emit(Event::FleetSummary {
            workers: cfg.workers as u64,
            spawns: 0,
            deaths: 0,
            reassigned: 0,
            poisoned_shards: 0,
        });
        return Ok(FleetOutcome {
            ledger,
            poisoned: BTreeSet::new(),
            interrupted: false,
            stats,
        });
    }
    std::fs::create_dir_all(spool_dir)?;
    let spool: PathBuf = spool_dir.to_path_buf();
    // Workers open the same store by the shared path convention and
    // seal their segments into it; the merge below reads through it so
    // segment bytes are digest-verified between fsync and fold.
    let store = ArtifactStore::open(&store_path(spool_dir))?;

    let (tx, rx) = mpsc::channel::<(usize, u64, ReaderMsg)>();
    let start = Instant::now();
    let now_ms = |start: Instant| start.elapsed().as_millis() as u64;

    let mut slots: Vec<Slot> = (0..cfg.workers).map(|_| Slot::new()).collect();
    let mut interrupted = false;
    let mut last_chaos = Instant::now();
    let mut chaos_cursor = 0usize;

    // Spawn one slot; on failure leave it dead with backoff.
    let spawn_slot = |k: usize,
                      slot: &mut Slot,
                      spawn: &mut F,
                      tx: &mpsc::Sender<(usize, u64, ReaderMsg)>,
                      stats: &mut FleetStats|
     -> io::Result<()> {
        let mut child = spawn(k)?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| io::Error::other("worker stdin must be piped"))?;
        let mut stdout = child
            .stdout
            .take()
            .ok_or_else(|| io::Error::other("worker stdout must be piped"))?;
        slot.gen += 1;
        let (gen, tx2) = (slot.gen, tx.clone());
        std::thread::Builder::new()
            .name(format!("minpsid-fleet-r{k}"))
            .spawn(move || loop {
                let msg = match read_frame(&mut stdout) {
                    Ok(Some(frame)) => match ToSupervisor::decode(&frame) {
                        Ok(m) => ReaderMsg::Msg(m),
                        Err(_) => ReaderMsg::Gone,
                    },
                    Ok(None) | Err(_) => ReaderMsg::Gone,
                };
                let gone = matches!(msg, ReaderMsg::Gone);
                if tx2.send((k, gen, msg)).is_err() || gone {
                    break;
                }
            })?;
        slot.child = Some(child);
        slot.stdin = Some(stdin);
        slot.state = SlotState::Starting;
        slot.doomed = false;
        slot.chaos_kill = false;
        stats.spawns += 1;
        emit(Event::FleetWorker {
            worker: k as u64,
            event: "spawned".to_string(),
            restarts: slot.restarts,
        });
        Ok(())
    };

    for (k, slot) in slots.iter_mut().enumerate() {
        if let Err(e) = spawn_slot(k, slot, &mut spawn, &tx, &mut stats) {
            // First-round spawn failure is fatal: nothing ever ran.
            return Err(io::Error::other(format!("spawning worker {k}: {e}")));
        }
    }

    // Assign the next pending shard to an idle slot.
    fn try_assign(k: usize, slot: &mut Slot, table: &mut ShardTable, start: Instant) {
        if slot.state != SlotState::Idle {
            return;
        }
        let now = start.elapsed().as_millis() as u64;
        let Some((shard, attempt)) = table.lease_next(k, now) else {
            return;
        };
        let msg = ToWorker::Assign {
            shard,
            attempt,
            units: table.units(shard).to_vec(),
        };
        let sent = slot
            .stdin
            .as_mut()
            .map(|w| write_frame(w, &msg.encode()).is_ok())
            .unwrap_or(false);
        if sent {
            slot.state = SlotState::Busy;
            emit(Event::FleetShard {
                shard: shard as u64,
                worker: k as u64,
                attempt: attempt as u64,
                event: "leased".to_string(),
            });
        } else {
            // Pipe already broken: hand the lease straight back (no
            // kill tally — the worker never saw the shard) and let the
            // EOF path recycle the process.
            let _ = table.fail(shard, false);
        }
    }

    loop {
        if interrupt::requested() {
            interrupted = true;
            break;
        }
        if table.all_settled() {
            break;
        }

        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok((k, gen, _)) if gen != slots[k].gen => {} // replaced process
            Ok((k, _, ReaderMsg::Msg(msg))) => match msg {
                ToSupervisor::Ready { population } => {
                    if population != expected_population {
                        return Err(io::Error::other(format!(
                            "worker {k} population {population} != supervisor {expected_population}: \
                             golden runs diverged, refusing to merge"
                        )));
                    }
                    let slot = &mut slots[k];
                    if slot.state == SlotState::Starting {
                        slot.state = SlotState::Idle;
                        slot.pre_ready_deaths = 0;
                        slot.consec_deaths = 0;
                        emit(Event::FleetWorker {
                            worker: k as u64,
                            event: "ready".to_string(),
                            restarts: slot.restarts,
                        });
                        try_assign(k, slot, &mut table, start);
                    }
                }
                ToSupervisor::Heartbeat { shard, .. } => {
                    table.heartbeat(shard, k, now_ms(start));
                }
                ToSupervisor::ShardDone { shard } => {
                    let held = table.leased_by(k);
                    if held.map(|(s, _)| s) != Some(shard) {
                        continue; // stale completion from a lost lease
                    }
                    let attempt = held.unwrap().1;
                    let seg = match read_segment_verified(&store, &spool, shard, attempt) {
                        Ok(VerifiedSegment::Units(units)) => units,
                        Ok(VerifiedSegment::Corrupt) => {
                            // The sealed segment rotted between the
                            // worker's fsync and this merge. The store
                            // has quarantined the object; requeue the
                            // shard (no poison tally — the shard's
                            // units did nothing wrong) and re-execute.
                            stats.corrupt_segments += 1;
                            emit(Event::FleetShard {
                                shard: shard as u64,
                                worker: k as u64,
                                attempt: attempt as u64,
                                event: "corrupt".to_string(),
                            });
                            let _ = table.fail(shard, false);
                            let slot = &mut slots[k];
                            slot.state = SlotState::Idle;
                            try_assign(k, slot, &mut table, start);
                            continue;
                        }
                        Err(_) => Vec::new(),
                    };
                    let want = table.units(shard);
                    let have: std::collections::HashSet<u64> =
                        seg.iter().map(|r| r.index).collect();
                    let complete = want.iter().all(|u| have.contains(u));
                    if complete {
                        ledger.absorb(&seg);
                        table.complete(shard, k);
                        emit(Event::FleetShard {
                            shard: shard as u64,
                            worker: k as u64,
                            attempt: attempt as u64,
                            event: "done".to_string(),
                        });
                        let slot = &mut slots[k];
                        slot.state = SlotState::Idle;
                        try_assign(k, slot, &mut table, start);
                    } else {
                        // Claimed done but the fsynced segment is
                        // short: corrupted worker. Kill it; the EOF
                        // path requeues the shard (and this counts
                        // toward poison).
                        let slot = &mut slots[k];
                        slot.doomed = true;
                        if let Some(c) = slot.child.as_mut() {
                            let _ = c.kill();
                        }
                        emit(Event::FleetWorker {
                            worker: k as u64,
                            event: "killed".to_string(),
                            restarts: slot.restarts,
                        });
                    }
                }
            },
            Ok((k, _, ReaderMsg::Gone)) => {
                let was_killed_by_us = slots[k].doomed;
                let was_chaos = slots[k].chaos_kill;
                if let Some(mut c) = slots[k].child.take() {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                slots[k].stdin = None;
                stats.deaths += 1;
                if !was_killed_by_us {
                    emit(Event::FleetWorker {
                        worker: k as u64,
                        event: "died".to_string(),
                        restarts: slots[k].restarts,
                    });
                }
                if slots[k].state == SlotState::Starting {
                    slots[k].pre_ready_deaths += 1;
                    if slots[k].pre_ready_deaths >= MAX_PRE_READY_DEATHS {
                        return Err(io::Error::other(format!(
                            "worker {k} died {MAX_PRE_READY_DEATHS} times before READY; \
                             giving up on the fleet"
                        )));
                    }
                }
                if let Some((shard, attempt)) = table.leased_by(k) {
                    match table.fail(shard, !was_chaos) {
                        ShardFate::Requeued { .. } => {
                            stats.reassigned += 1;
                            emit(Event::FleetShard {
                                shard: shard as u64,
                                worker: k as u64,
                                attempt: attempt as u64,
                                event: "reassigned".to_string(),
                            });
                        }
                        ShardFate::Poisoned => {
                            stats.poisoned_shards += 1;
                            emit(Event::FleetShard {
                                shard: shard as u64,
                                worker: k as u64,
                                attempt: attempt as u64,
                                event: "poisoned".to_string(),
                            });
                        }
                    }
                }
                slots[k].restarts += 1;
                slots[k].consec_deaths += 1;
                slots[k].chaos_kill = false;
                slots[k].doomed = false;
                let wait = backoff_ms(
                    cfg.backoff_base_ms,
                    cfg.backoff_cap_ms,
                    slots[k].consec_deaths.saturating_sub(1),
                );
                slots[k].state = SlotState::Dead {
                    respawn_at: Instant::now() + Duration::from_millis(wait),
                };
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("supervisor holds a sender"),
        }

        // Lease expiry: wedged workers get killed; the EOF path does
        // the accounting (a hang is the shard's fault — it counts).
        let now = now_ms(start);
        for (shard, k) in table.expired(now, cfg.lease_ms) {
            if slots[k].doomed {
                continue;
            }
            slots[k].doomed = true;
            stats.lease_expiries += 1;
            if let Some(c) = slots[k].child.as_mut() {
                let _ = c.kill();
            }
            emit(Event::FleetWorker {
                worker: k as u64,
                event: "killed".to_string(),
                restarts: slots[k].restarts,
            });
            // Stop re-reporting this lease while the EOF is in flight.
            table.heartbeat(shard, k, now);
        }

        // Kill chaos: SIGKILL the next busy worker on the interval.
        if let Some(every) = cfg.chaos_kill_worker_ms {
            if last_chaos.elapsed().as_millis() as u64 >= every {
                for off in 0..slots.len() {
                    let k = (chaos_cursor + off) % slots.len();
                    if slots[k].state == SlotState::Busy && !slots[k].doomed {
                        slots[k].doomed = true;
                        slots[k].chaos_kill = true;
                        stats.chaos_kills += 1;
                        if let Some(c) = slots[k].child.as_mut() {
                            let _ = c.kill();
                        }
                        emit(Event::FleetWorker {
                            worker: k as u64,
                            event: "killed".to_string(),
                            restarts: slots[k].restarts,
                        });
                        chaos_cursor = k + 1;
                        last_chaos = Instant::now();
                        break;
                    }
                }
            }
        }

        // A death may have requeued a shard while other workers sat
        // idle with an empty queue: sweep idle slots every tick.
        for (k, slot) in slots.iter_mut().enumerate() {
            try_assign(k, slot, &mut table, start);
        }

        // Respawn dead slots whose backoff elapsed (while work remains).
        if !table.all_settled() {
            for (k, slot) in slots.iter_mut().enumerate() {
                let due = match slot.state {
                    SlotState::Dead { respawn_at } => respawn_at <= Instant::now(),
                    _ => false,
                };
                if due {
                    if let Err(e) = spawn_slot(k, slot, &mut spawn, &tx, &mut stats) {
                        slot.pre_ready_deaths += 1;
                        if slot.pre_ready_deaths >= MAX_PRE_READY_DEATHS {
                            return Err(io::Error::other(format!(
                                "worker {k} failed to spawn repeatedly: {e}"
                            )));
                        }
                        slot.restarts += 1;
                        slot.consec_deaths += 1;
                        let wait =
                            backoff_ms(cfg.backoff_base_ms, cfg.backoff_cap_ms, slot.consec_deaths);
                        slot.state = SlotState::Dead {
                            respawn_at: Instant::now() + Duration::from_millis(wait),
                        };
                    }
                }
            }
        }
    }

    // Graceful shutdown: ask, wait briefly, then kill.
    for slot in slots.iter_mut() {
        if let Some(mut w) = slot.stdin.take() {
            let _ = write_frame(&mut w, &ToWorker::Shutdown.encode());
        }
    }
    let deadline = Instant::now() + Duration::from_secs(2);
    for (k, slot) in slots.iter_mut().enumerate() {
        if let Some(mut c) = slot.child.take() {
            loop {
                match c.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10))
                    }
                    _ => {
                        let _ = c.kill();
                        let _ = c.wait();
                        break;
                    }
                }
            }
            emit(Event::FleetWorker {
                worker: k as u64,
                event: "stopped".to_string(),
                restarts: slot.restarts,
            });
        }
    }

    if interrupted {
        // Salvage every intact record of unsettled shards' attempts:
        // deterministic outcomes make partial segments safe to keep,
        // and a resume re-runs only what is still missing.
        for (shard, attempts) in table.salvageable() {
            for attempt in 0..attempts {
                if let Ok(seg) = read_segment(&spool, shard, attempt) {
                    ledger.absorb(&seg);
                }
            }
        }
    }

    emit(Event::FleetSummary {
        workers: cfg.workers as u64,
        spawns: stats.spawns,
        deaths: stats.deaths,
        reassigned: stats.reassigned,
        poisoned_shards: stats.poisoned_shards,
    });

    Ok(FleetOutcome {
        ledger,
        poisoned: table.poisoned_units().into_iter().collect(),
        interrupted,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        assert_eq!(backoff_ms(50, 2_000, 0), 50);
        assert_eq!(backoff_ms(50, 2_000, 1), 100);
        assert_eq!(backoff_ms(50, 2_000, 3), 400);
        assert_eq!(backoff_ms(50, 2_000, 10), 2_000);
        assert_eq!(
            backoff_ms(50, 2_000, 63),
            2_000,
            "shift clamps, no overflow"
        );
        assert_eq!(backoff_ms(0, 0, 5), 0);
    }
}
