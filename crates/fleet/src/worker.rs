//! The worker side of the fleet protocol.
//!
//! A worker is the same CLI binary re-exec'd with a hidden subcommand.
//! It performs its own golden run (reported in READY for a determinism
//! cross-check), then loops: receive a shard lease on stdin, execute
//! its units in order through the injected executor, spool each result
//! into the lease's WAL segment, heartbeat after every unit, fsync,
//! report `SHARD_DONE`. It exits cleanly on `SHUTDOWN` or on stdin
//! EOF (the supervisor is gone; there is nobody left to report to).
//!
//! The executor callback gets `(unit, attempt)` so the caller can wire
//! chaos — abort on first attempt only (transient fault), abort on
//! every attempt (poison shard), or hang (lease-expiry fault) —
//! without this crate knowing anything about fault simulation.

use crate::proto::{read_frame, write_frame, ToSupervisor, ToWorker};
use crate::spool::{SegmentWriter, SpooledUnit};
use minpsid_store::ArtifactStore;
use std::io::{self, Read, Write};
use std::path::Path;
use std::time::{Duration, Instant};

/// The fleet's artifact store lives at a fixed path inside the spool
/// directory so supervisor and workers agree on it without widening
/// the protocol: both sides derive it from the spool dir they already
/// share.
pub fn store_path(spool_dir: &Path) -> std::path::PathBuf {
    spool_dir.join("store")
}

/// Lease-renewal cadence. Fast units would otherwise each pay a pipe
/// write and flush, which dominates their cost; one heartbeat per
/// interval renews the lease just as well. Must stay well below any
/// usable `--fleet-lease-ms` (minimum practical lease: a few hundred
/// ms).
pub const HEARTBEAT_EVERY: Duration = Duration::from_millis(100);

/// Drive the worker protocol over arbitrary pipes (tests use in-memory
/// buffers; [`run_worker`] wires stdin/stdout). `hb_every` throttles
/// lease-renewal heartbeats: at most one per interval (tests pass
/// [`Duration::ZERO`] to heartbeat on every unit).
pub fn drive_worker<R, W, X>(
    input: &mut R,
    output: &mut W,
    spool_dir: &Path,
    store: Option<&ArtifactStore>,
    population: u64,
    hb_every: Duration,
    mut exec: X,
) -> io::Result<()>
where
    R: Read,
    W: Write,
    X: FnMut(u64, u32) -> (u8, bool),
{
    write_frame(output, &ToSupervisor::Ready { population }.encode())?;
    loop {
        let Some(frame) = read_frame(input)? else {
            return Ok(()); // supervisor hung up
        };
        match ToWorker::decode(&frame)? {
            ToWorker::Shutdown => return Ok(()),
            ToWorker::Assign {
                shard,
                attempt,
                units,
            } => {
                let mut seg = SegmentWriter::create(spool_dir, shard, attempt)?;
                let mut last_hb = Instant::now();
                for (i, &index) in units.iter().enumerate() {
                    let (outcome, recovered) = exec(index, attempt);
                    seg.record(SpooledUnit {
                        index,
                        outcome,
                        recovered,
                    })?;
                    if last_hb.elapsed() >= hb_every {
                        let done = (i + 1) as u64;
                        write_frame(output, &ToSupervisor::Heartbeat { shard, done }.encode())?;
                        last_hb = Instant::now();
                    }
                }
                // fsync before claiming completion: SHARD_DONE promises
                // the supervisor a fully readable segment. With a store,
                // also seal it so the merge verifies the bytes by digest.
                match store {
                    Some(s) => seg.seal(s)?,
                    None => seg.sync()?,
                }
                write_frame(output, &ToSupervisor::ShardDone { shard }.encode())?;
            }
        }
    }
}

/// [`drive_worker`] over the process's real stdin/stdout.
pub fn run_worker<X>(spool_dir: &Path, population: u64, exec: X) -> io::Result<()>
where
    X: FnMut(u64, u32) -> (u8, bool),
{
    let stdin = io::stdin();
    let stdout = io::stdout();
    let store = ArtifactStore::open(&store_path(spool_dir))?;
    drive_worker(
        &mut stdin.lock(),
        &mut stdout.lock(),
        spool_dir,
        Some(&store),
        population,
        HEARTBEAT_EVERY,
        exec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spool::read_segment;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("minpsid-fleet-worker-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn worker_executes_lease_spools_and_reports() {
        let d = tmpdir("lease");
        let mut input = Vec::new();
        write_frame(
            &mut input,
            &ToWorker::Assign {
                shard: 2,
                attempt: 1,
                units: vec![4, 6, 9],
            }
            .encode(),
        )
        .unwrap();
        write_frame(&mut input, &ToWorker::Shutdown.encode()).unwrap();

        let mut output = Vec::new();
        drive_worker(
            &mut &input[..],
            &mut output,
            &d,
            None,
            77,
            Duration::ZERO,
            |unit, attempt| {
                assert_eq!(attempt, 1);
                ((unit % 5) as u8, unit == 6)
            },
        )
        .unwrap();

        // protocol transcript: READY, 3 heartbeats, SHARD_DONE
        let mut r = &output[..];
        let mut msgs = Vec::new();
        while let Some(f) = read_frame(&mut r).unwrap() {
            msgs.push(ToSupervisor::decode(&f).unwrap());
        }
        assert_eq!(msgs[0], ToSupervisor::Ready { population: 77 });
        assert_eq!(msgs[1], ToSupervisor::Heartbeat { shard: 2, done: 1 });
        assert_eq!(msgs[3], ToSupervisor::Heartbeat { shard: 2, done: 3 });
        assert_eq!(msgs[4], ToSupervisor::ShardDone { shard: 2 });
        assert_eq!(msgs.len(), 5);

        // and the spool segment holds exactly the executed units
        let seg = read_segment(&d, 2, 1).unwrap();
        assert_eq!(
            seg,
            vec![
                SpooledUnit {
                    index: 4,
                    outcome: 4,
                    recovered: false
                },
                SpooledUnit {
                    index: 6,
                    outcome: 1,
                    recovered: true
                },
                SpooledUnit {
                    index: 9,
                    outcome: 4,
                    recovered: false
                },
            ]
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn worker_with_store_seals_segment_for_verified_merge() {
        let d = tmpdir("seal");
        let store = ArtifactStore::open(&store_path(&d)).unwrap();
        let mut input = Vec::new();
        write_frame(
            &mut input,
            &ToWorker::Assign {
                shard: 0,
                attempt: 0,
                units: vec![1, 2],
            }
            .encode(),
        )
        .unwrap();
        write_frame(&mut input, &ToWorker::Shutdown.encode()).unwrap();
        let mut output = Vec::new();
        drive_worker(
            &mut &input[..],
            &mut output,
            &d,
            Some(&store),
            2,
            Duration::ZERO,
            |unit, _| (unit as u8, false),
        )
        .unwrap();
        // the sealed segment is readable through the store, verified
        assert_eq!(
            crate::spool::read_segment_verified(&store, &d, 0, 0).unwrap(),
            crate::spool::VerifiedSegment::Units(vec![
                SpooledUnit {
                    index: 1,
                    outcome: 1,
                    recovered: false
                },
                SpooledUnit {
                    index: 2,
                    outcome: 2,
                    recovered: false
                },
            ])
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn worker_exits_cleanly_on_eof() {
        let d = tmpdir("eof");
        let input: Vec<u8> = Vec::new();
        let mut output = Vec::new();
        drive_worker(
            &mut &input[..],
            &mut output,
            &d,
            None,
            0,
            Duration::ZERO,
            |_, _| (0, false),
        )
        .unwrap();
        let mut r = &output[..];
        let f = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(
            ToSupervisor::decode(&f).unwrap(),
            ToSupervisor::Ready { population: 0 }
        );
        assert!(read_frame(&mut r).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&d);
    }
}
