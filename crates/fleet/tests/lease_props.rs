//! Property tests for the fleet's exactly-once-reduction invariant:
//! no adversarial schedule of leases, kills, chaos kills, stale
//! completions, and duplicate segment deliveries can make a unit
//! reduce twice, resurrect a poisoned unit, or let a stale worker
//! complete a shard it no longer holds.

use minpsid_fleet::shard::{plan_shards, OutcomeLedger, ShardFate, ShardTable};
use minpsid_fleet::spool::SpooledUnit;
use proptest::prelude::*;
use proptest::proptest;
use std::collections::BTreeSet;

const SLOTS: usize = 4;

/// Deterministic per-unit outcome, mirroring the engine's seed-only
/// dependence on the plan index.
fn outcome_of(index: u64) -> (u8, bool) {
    (((index * 7 + 3) % 6) as u8, index.is_multiple_of(5))
}

fn full_segment(units: &[u64]) -> Vec<SpooledUnit> {
    units
        .iter()
        .map(|&index| {
            let (outcome, recovered) = outcome_of(index);
            SpooledUnit {
                index,
                outcome,
                recovered,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn adversarial_schedules_never_double_reduce(
        n_units in 1usize..64,
        n_shards in 1usize..9,
        poison_after in 1u32..4,
        script in proptest::collection::vec(0u64..u64::MAX, 1..250),
    ) {
        let units: Vec<u64> = (0..n_units as u64).collect();
        let mut table = ShardTable::new(plan_shards(&units, n_shards), poison_after);
        let mut ledger = OutcomeLedger::new();
        // every segment the supervisor ever absorbed, available for
        // adversarial redelivery (salvage paths may re-read them)
        let mut delivered: Vec<Vec<SpooledUnit>> = Vec::new();
        let mut completed_units: BTreeSet<u64> = BTreeSet::new();
        let mut now = 0u64;

        for op in script {
            now += 1;
            let slot = (op >> 8) as usize % SLOTS;
            match op % 5 {
                // try to lease the next pending shard to `slot` (only
                // if it holds nothing — one lease per worker)
                0 => {
                    if table.leased_by(slot).is_none() {
                        let _ = table.lease_next(slot, now);
                    }
                }
                // worker finishes its shard: full segment, absorb iff
                // the completion is accepted (the supervisor rule)
                1 => {
                    if let Some((shard, _attempt)) = table.leased_by(slot) {
                        let seg = full_segment(table.units(shard));
                        if table.complete(shard, slot) {
                            let fresh = ledger.absorb(&seg);
                            prop_assert_eq!(
                                fresh,
                                seg.len(),
                                "an accepted completion must be the first reduction \
                                 of every one of its units"
                            );
                            for u in &seg {
                                completed_units.insert(u.index);
                            }
                            delivered.push(seg);
                        }
                    }
                }
                // worker dies for real (counts toward poison)
                2 => {
                    if let Some((shard, _)) = table.leased_by(slot) {
                        let _ = table.fail(shard, true);
                    }
                }
                // chaos kill (never counts toward poison)
                3 => {
                    if let Some((shard, _)) = table.leased_by(slot) {
                        prop_assert!(matches!(
                            table.fail(shard, false),
                            ShardFate::Requeued { .. }
                        ), "a chaos kill can never poison");
                    }
                }
                // adversary redelivers an old segment (duplicate
                // SHARD_DONE race, salvage re-read, …)
                _ => {
                    if !delivered.is_empty() {
                        let seg = delivered[op as usize % delivered.len()].clone();
                        let fresh = ledger.absorb(&seg);
                        prop_assert_eq!(fresh, 0, "redelivery must never reduce again");
                    }
                }
            }
        }

        // deterministic execution ⇒ duplicates always agreed
        prop_assert_eq!(ledger.conflicts(), 0);
        // exactly-once: the ledger holds precisely the completed units
        prop_assert_eq!(ledger.len(), completed_units.len());
        for &u in &completed_units {
            prop_assert_eq!(ledger.get(u), Some(outcome_of(u)));
        }
        // poisoned shards and reduced units are disjoint worlds
        for u in table.poisoned_units() {
            prop_assert!(
                ledger.get(u).is_none(),
                "unit {} both poisoned and reduced", u
            );
        }
    }

    #[test]
    fn poisoning_is_reached_only_by_real_kills(
        poison_after in 1u32..5,
        kills in proptest::collection::vec(proptest::prelude::any::<bool>(), 1..40),
    ) {
        let mut table = ShardTable::new(vec![vec![0, 1]], poison_after);
        let mut real = 0u32;
        for (i, counts) in kills.iter().enumerate() {
            if table.is_poisoned(0) {
                break;
            }
            let leased = table.lease_next(i % SLOTS, i as u64);
            prop_assert!(leased.is_some());
            let fate = table.fail(0, *counts);
            if *counts {
                real += 1;
            }
            if real >= poison_after {
                prop_assert_eq!(fate, ShardFate::Poisoned);
            } else {
                let requeued = matches!(fate, ShardFate::Requeued { .. });
                prop_assert!(requeued, "expected a requeue below the poison threshold");
            }
        }
        prop_assert_eq!(table.is_poisoned(0), real >= poison_after);
    }
}
