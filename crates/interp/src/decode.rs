//! Pre-decoded dispatch: the campaign hot path.
//!
//! The legacy interpreter loop ([`Interp::run`]'s `run_inner`) re-derives
//! everything per step from the IR: frame → function → block → inst-id →
//! inst → dense index is a chain of six dependent loads before the opcode
//! match even starts. Fault-injection campaigns execute that loop billions
//! of times on replayed suffixes, so [`Interp::new`] lowers the module once
//! into a flat [`DecodedModule`]: one contiguous `Vec<DInst>` per function,
//! indexed by a single program counter, with
//!
//! * operands pre-resolved to dense register indices or immediate values
//!   ([`Opd`]) — no `Operand::Value(id)` indirection at run time;
//! * per-op static metadata (destination register, dense module-wide
//!   index, injectability) baked into the [`DInst`] — no side-table loads;
//! * binary/compare ops specialized by the *static* types of their
//!   operands (`BinII`, `CmpFF`, …), falling back to the generic pair
//!   match when types are mixed or unknown. Specialized ops still verify
//!   the runtime variant, so semantics — including every trap — are
//!   bit-identical to the legacy tree walk;
//! * the two hottest adjacent pairs fused into superinstructions:
//!   cmp+cond-branch ([`DOp::CmpBr`]) and load+binop ([`DOp::LoadBin`]).
//!
//! ## Superinstruction layout and snapshot resume
//!
//! Fusion must not disturb the pc ↔ (block, pos) mapping, because legacy
//! snapshots store frame positions in (block, pos) form and a resumed run
//! may land *between* the two halves of a pair. So a fused pair emits the
//! superinstruction at the first instruction's pc **and** a standalone
//! copy of the second instruction at the second pc; block lengths are
//! unchanged and `pc = block_entry[block] + pos` stays plain arithmetic.
//! The fused op advances the pc by 2; only a snapshot resume ever enters
//! the standalone copy. Jump targets are always block starts, so no branch
//! can land inside a pair.
//!
//! Fused ops replicate the legacy per-instruction sequence for *each*
//! half: step increment, step-limit check, deadline poll, operand traps,
//! injection counting, fault application, register write — in that order —
//! so step counts, injection indices and trap points are bit-identical.
//!
//! ## The scratch arena
//!
//! [`ExecScratch`] owns everything a decoded run mutates: the canonical
//! [`MachineState`] (linear memories, output, counters) plus flat decoded
//! frames — one shared register arena and one shared argument arena for
//! the whole call stack, grown on call and truncated on return. Resetting
//! it between injections is `clear()`s and a `clone_from`, never a fresh
//! allocation, which is what makes per-worker scratch pay off in
//! campaigns (see `CampaignEngine`).
//!
//! [`Interp::run`]: crate::Interp::run
//! [`Interp::new`]: crate::Interp::new

use crate::exec::{
    bit_equal, cmp_ord, ExecResult, Interp, MachineState, Termination, TrapKind, STACK_TAG,
};
use crate::fault::{flip_bit, FaultSpec, FaultTarget};
use crate::value::{Scalar, Stream, Value};
use minpsid_ir::{BinOp, CmpOp, Function, InstKind, Module, Operand, Ty, UnOp};

/// A pre-resolved operand: an index into the frame's register arena.
/// Indices below the function's instruction count name registers (the
/// producing instruction's index); the slots after them hold the
/// function's interned constants, materialized at frame entry. Operand
/// fetch is therefore a single indexed load — no immediate-vs-register
/// branch in the hot loop.
pub(crate) type Opd = u32;

/// Which specialized comparison a fused [`DOp::CmpBr`] performs.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CmpKind {
    II,
    FF,
    BB,
    Any,
}

/// A decoded operation. Control operands (`Br`/`CondBr`/`CmpBr` targets)
/// are pre-resolved to pcs; `Call` callees to function indices.
#[derive(Debug, Clone)]
pub(crate) enum DOp {
    Param {
        n: u32,
    },
    BinII {
        op: BinOp,
        a: Opd,
        b: Opd,
    },
    BinFF {
        op: BinOp,
        a: Opd,
        b: Opd,
    },
    BinAny {
        op: BinOp,
        a: Opd,
        b: Opd,
    },
    Un {
        op: UnOp,
        a: Opd,
    },
    CmpII {
        op: CmpOp,
        a: Opd,
        b: Opd,
    },
    CmpFF {
        op: CmpOp,
        a: Opd,
        b: Opd,
    },
    CmpBB {
        op: CmpOp,
        a: Opd,
        b: Opd,
    },
    CmpAny {
        op: CmpOp,
        a: Opd,
        b: Opd,
    },
    Select {
        c: Opd,
        t: Opd,
        e: Opd,
    },
    Cast {
        to: Ty,
        a: Opd,
    },
    Alloc {
        n: Opd,
    },
    Salloc {
        n: Opd,
    },
    Load {
        ty: Ty,
        ptr: Opd,
        idx: Opd,
    },
    Store {
        ptr: Opd,
        idx: Opd,
        v: Opd,
    },
    Call {
        callee: u32,
        args: Box<[Opd]>,
    },
    NArgs,
    ArgI {
        n: Opd,
    },
    ArgF {
        n: Opd,
    },
    DataLen {
        stream: u32,
    },
    DataI {
        stream: u32,
        idx: Opd,
    },
    DataF {
        stream: u32,
        idx: Opd,
    },
    OutI {
        v: Opd,
    },
    OutF {
        v: Opd,
    },
    Check {
        a: Opd,
        b: Opd,
    },
    Br {
        target: u32,
    },
    CondBr {
        c: Opd,
        t: u32,
        e: u32,
    },
    Ret {
        v: Option<Opd>,
    },
    /// Fused compare + conditional branch. Metadata in the carrying
    /// [`DInst`] belongs to the compare; the branch half is control-only.
    CmpBr {
        kind: CmpKind,
        op: CmpOp,
        a: Opd,
        b: Opd,
        t: u32,
        e: u32,
    },
    /// Fused binary op + unconditional branch: the ubiquitous loop latch
    /// `i = i + 1; br head`. Metadata in the carrying [`DInst`] belongs
    /// to the bin; the branch half is control-only (no result, not
    /// injectable).
    BinBr {
        op: BinOp,
        a: Opd,
        b: Opd,
        target: u32,
    },
    /// Fused pair of adjacent binary ops (a multiply feeding an
    /// accumulate, or two independent updates). The second half's
    /// operands are fetched *after* the first half's (possibly faulted)
    /// result is written, so a dependent pair reads exactly what legacy
    /// sequential execution reads.
    BinBin {
        op1: BinOp,
        a1: Opd,
        b1: Opd,
        op2: BinOp,
        a2: Opd,
        b2: Opd,
        bin_dst: u32,
        bin_dense: u32,
        bin_inj: bool,
    },
    /// Fused pair of adjacent loads (`a[i]` and `b[i]` feeding one
    /// expression). The second load's address operands are fetched after
    /// the first's result is written, so indirect chains
    /// (`x[idx[k]]`) fuse correctly.
    LoadLoad {
        ty1: Ty,
        ptr1: Opd,
        idx1: Opd,
        ty2: Ty,
        ptr2: Opd,
        idx2: Opd,
        ld_dst: u32,
        ld_dense: u32,
        ld_inj: bool,
    },
    /// Fused run of four loads: reduction bodies interleave slot reads
    /// and element reads (`s, i, a[i], i`) into long load runs. Each
    /// half's address operands are fetched after the previous halves'
    /// results are written, so loads may feed later addresses.
    Load4 {
        ops: [(Ty, Opd, Opd); 4],
        dsts: [u32; 3],
        denses: [u32; 3],
        injs: [bool; 3],
    },
    /// Fused load + cast + binary op + unary op: the twiddle-factor
    /// prologue of every fft butterfly iteration (`cos(w * float(j))`,
    /// `sin(w * float(j))`) and any other libm-feeding index chain.
    /// Carries only the load's operands; the cast, bin and un execute
    /// from their standalone slots at `pc+1..pc+3` (a bounded tag check
    /// each instead of a full dispatch round).
    LoadCastBinUn {
        ty: Ty,
        ptr: Opd,
        idx: Opd,
    },
    /// Fused slot-load + compare + conditional branch: every loop head
    /// (`while i_slot < n`) is this exact triple. Load metadata on the
    /// carrying [`DInst`]; compare metadata carried here; the branch half
    /// is control-only.
    LoadCmpBr {
        ty: Ty,
        ptr: Opd,
        idx: Opd,
        kind: CmpKind,
        op: CmpOp,
        a: Opd,
        b: Opd,
        t: u32,
        e: u32,
        cmp_dst: u32,
        cmp_dense: u32,
        cmp_inj: bool,
    },
    /// Fused binary op + store + unconditional branch: the canonical
    /// block tail `acc_slot = acc + t; br next`. Bin metadata on the
    /// carrying [`DInst`]; store and branch halves produce nothing.
    BinStoreBr {
        op: BinOp,
        a: Opd,
        b: Opd,
        ptr: Opd,
        idx: Opd,
        v: Opd,
        target: u32,
    },
    /// Fused load + load + binary op: the dominant three-instruction
    /// window of compiled loop bodies (`a[i]`, `b[i]`, combine). Carries
    /// the two loads' operands exactly as [`DOp::LoadLoad`]; the bin
    /// executes from its typed standalone slot at `pc + 2` (a bounded
    /// tag check instead of a full dispatch round).
    LoadLoadBin {
        ty1: Ty,
        ptr1: Opd,
        idx1: Opd,
        ty2: Ty,
        ptr2: Opd,
        idx2: Opd,
        ld_dst: u32,
        ld_dense: u32,
        ld_inj: bool,
    },
    /// Fused binary op + load + load (index arithmetic feeding two
    /// reads). Carries the bin and first load as [`DOp::BinLoad`]; the
    /// second load executes from its standalone slot at `pc + 2`.
    BinLoadLoad {
        op: BinOp,
        a: Opd,
        b: Opd,
        ty2: Ty,
        ptr2: Opd,
        idx2: Opd,
        ld_dst: u32,
        ld_dense: u32,
        ld_inj: bool,
    },
    /// Fused load + binary op + binary op (a load feeding a multiply
    /// feeding an accumulate). Carries the load and first bin as
    /// [`DOp::LoadBin`] plus the second bin's operands inline.
    LoadBinBin {
        ty: Ty,
        op: BinOp,
        ptr: Opd,
        idx: Opd,
        other: Opd,
        load_lhs: bool,
        bin_dst: u32,
        bin_dense: u32,
        bin_inj: bool,
        op2: BinOp,
        a2: Opd,
        b2: Opd,
        bin2_dst: u32,
        bin2_dense: u32,
        bin2_inj: bool,
    },
    /// Fused load + binary op + store + unconditional branch: the loop
    /// latch (`i = i + 1; br head`) of every compiled loop. All four
    /// halves carry their operands inline — no chained-slot fetches —
    /// because this is the single hottest superinstruction in compiled
    /// loops and each chained slot would touch another code cache line.
    LoadBinStoreBr {
        ty: Ty,
        ptr: Opd,
        idx: Opd,
        op: BinOp,
        a: Opd,
        b: Opd,
        bin_dst: u32,
        bin_dense: u32,
        bin_inj: bool,
        st_ptr: Opd,
        st_idx: Opd,
        st_v: Opd,
        target: u32,
    },
    /// Fused load + load + bin + store + unconditional branch: a block
    /// tail storing a two-operand combine (`s = s + x; br next` where
    /// both operands live in slots). Carries [`DOp::LoadLoadBin`]'s
    /// fields plus the branch target; the bin and store execute from
    /// their standalone slots at `pc+3`/`pc+4`.
    LoadLoadBinStoreBr {
        ty1: Ty,
        ptr1: Opd,
        idx1: Opd,
        ty2: Ty,
        ptr2: Opd,
        idx2: Opd,
        ld_dst: u32,
        ld_dense: u32,
        ld_inj: bool,
        target: u32,
    },
    /// Fused load + load + bin + bin + store: a full compiled statement
    /// (`w[k] = a + b` with a computed element index). Carries
    /// [`DOp::LoadLoadBin`]'s fields; the second bin and the store
    /// execute from their standalone slots at `pc+3`/`pc+4`.
    LoadLoadBinBinStore {
        ty1: Ty,
        ptr1: Opd,
        idx1: Opd,
        ty2: Ty,
        ptr2: Opd,
        idx2: Opd,
        ld_dst: u32,
        ld_dense: u32,
        ld_inj: bool,
    },
    /// Fused load + load + bin + bin + load: index arithmetic feeding an
    /// element read (`x[i + half]`). Same carrier fields as
    /// [`DOp::LoadLoadBin`]; chained slots at `pc+3`/`pc+4`.
    LoadLoadBinBinLoad {
        ty1: Ty,
        ptr1: Opd,
        idx1: Opd,
        ty2: Ty,
        ptr2: Opd,
        idx2: Opd,
        ld_dst: u32,
        ld_dense: u32,
        ld_inj: bool,
    },
    /// Fused load + load + bin + bin + bin: a three-op arithmetic chain
    /// over two slot reads. Same carrier fields as [`DOp::LoadLoadBin`];
    /// chained slots at `pc+3`/`pc+4`.
    LoadLoadBinBinBin {
        ty1: Ty,
        ptr1: Opd,
        idx1: Opd,
        ty2: Ty,
        ptr2: Opd,
        idx2: Opd,
        ld_dst: u32,
        ld_dense: u32,
        ld_inj: bool,
    },
    /// Fused binary op + store (`acc = acc + t` and every latch's
    /// `i = i + 1` compile to bin-then-store-to-slot). The store's value
    /// operand is fetched after the bin's (possibly faulted) result is
    /// written. The store half produces nothing and is not injectable.
    BinStore {
        op: BinOp,
        a: Opd,
        b: Opd,
        ptr: Opd,
        idx: Opd,
        v: Opd,
    },
    /// Fused store + unconditional branch (block tails like
    /// `i_slot = t; br head`). Control-only second half.
    StoreBr {
        ptr: Opd,
        idx: Opd,
        v: Opd,
        target: u32,
    },
    /// Fused store + load (slot write followed by the next statement's
    /// slot read). The load's metadata is carried here; the carrying
    /// [`DInst`]'s dst is `u32::MAX` (stores produce nothing).
    StoreLoad {
        ptr1: Opd,
        idx1: Opd,
        v: Opd,
        ty2: Ty,
        ptr2: Opd,
        idx2: Opd,
        ld_dst: u32,
        ld_dense: u32,
        ld_inj: bool,
    },
    /// Fused binary op + load: index arithmetic feeding the next slot
    /// read (`t = base + j; ... half_slot`). The load's address operands
    /// are fetched after the bin's result is written.
    BinLoad {
        op: BinOp,
        a: Opd,
        b: Opd,
        ty2: Ty,
        ptr2: Opd,
        idx2: Opd,
        ld_dst: u32,
        ld_dense: u32,
        ld_inj: bool,
    },
    /// Fused load + store: the element-copy / swap idiom
    /// (`re[i] = re[j]`, `let tr = re[i]`). The store's operands are
    /// fetched after the load's (possibly faulted) result is written.
    LoadStore {
        ty: Ty,
        ptr1: Opd,
        idx1: Opd,
        ptr2: Opd,
        idx2: Opd,
        v: Opd,
    },
    /// Fused load + binary op. Metadata in the carrying [`DInst`] belongs
    /// to the load; the bin half's is carried here.
    LoadBin {
        ty: Ty,
        op: BinOp,
        ptr: Opd,
        idx: Opd,
        /// The bin operand that is not the load result. When both bin
        /// operands are the load result this is `R(load_dst)`, read back
        /// after the (possibly faulted) load value is written.
        other: Opd,
        /// True when the load result is the bin's *lhs*.
        load_lhs: bool,
        bin_dst: u32,
        bin_dense: u32,
        bin_inj: bool,
    },
}

/// Display names for every [`DOp`] kind, indexed by [`DOp::index`].
/// Declaration order of the enum; fused superinstructions start at
/// [`opprof::FIRST_FUSED`](crate::opprof::FIRST_FUSED).
pub(crate) const OP_NAMES: [&str; 50] = [
    "Param",
    "BinII",
    "BinFF",
    "BinAny",
    "Un",
    "CmpII",
    "CmpFF",
    "CmpBB",
    "CmpAny",
    "Select",
    "Cast",
    "Alloc",
    "Salloc",
    "Load",
    "Store",
    "Call",
    "NArgs",
    "ArgI",
    "ArgF",
    "DataLen",
    "DataI",
    "DataF",
    "OutI",
    "OutF",
    "Check",
    "Br",
    "CondBr",
    "Ret",
    "CmpBr",
    "BinBr",
    "BinBin",
    "LoadLoad",
    "Load4",
    "LoadCastBinUn",
    "LoadCmpBr",
    "BinStoreBr",
    "LoadLoadBin",
    "BinLoadLoad",
    "LoadBinBin",
    "LoadBinStoreBr",
    "LoadLoadBinStoreBr",
    "LoadLoadBinBinStore",
    "LoadLoadBinBinLoad",
    "LoadLoadBinBinBin",
    "BinStore",
    "StoreBr",
    "StoreLoad",
    "BinLoad",
    "LoadStore",
    "LoadBin",
];

impl DOp {
    /// Stable profiling index of this op kind: its position in
    /// [`OP_NAMES`] (enum declaration order).
    #[inline]
    pub(crate) fn index(&self) -> usize {
        match self {
            DOp::Param { .. } => 0,
            DOp::BinII { .. } => 1,
            DOp::BinFF { .. } => 2,
            DOp::BinAny { .. } => 3,
            DOp::Un { .. } => 4,
            DOp::CmpII { .. } => 5,
            DOp::CmpFF { .. } => 6,
            DOp::CmpBB { .. } => 7,
            DOp::CmpAny { .. } => 8,
            DOp::Select { .. } => 9,
            DOp::Cast { .. } => 10,
            DOp::Alloc { .. } => 11,
            DOp::Salloc { .. } => 12,
            DOp::Load { .. } => 13,
            DOp::Store { .. } => 14,
            DOp::Call { .. } => 15,
            DOp::NArgs => 16,
            DOp::ArgI { .. } => 17,
            DOp::ArgF { .. } => 18,
            DOp::DataLen { .. } => 19,
            DOp::DataI { .. } => 20,
            DOp::DataF { .. } => 21,
            DOp::OutI { .. } => 22,
            DOp::OutF { .. } => 23,
            DOp::Check { .. } => 24,
            DOp::Br { .. } => 25,
            DOp::CondBr { .. } => 26,
            DOp::Ret { .. } => 27,
            DOp::CmpBr { .. } => 28,
            DOp::BinBr { .. } => 29,
            DOp::BinBin { .. } => 30,
            DOp::LoadLoad { .. } => 31,
            DOp::Load4 { .. } => 32,
            DOp::LoadCastBinUn { .. } => 33,
            DOp::LoadCmpBr { .. } => 34,
            DOp::BinStoreBr { .. } => 35,
            DOp::LoadLoadBin { .. } => 36,
            DOp::BinLoadLoad { .. } => 37,
            DOp::LoadBinBin { .. } => 38,
            DOp::LoadBinStoreBr { .. } => 39,
            DOp::LoadLoadBinStoreBr { .. } => 40,
            DOp::LoadLoadBinBinStore { .. } => 41,
            DOp::LoadLoadBinBinLoad { .. } => 42,
            DOp::LoadLoadBinBinBin { .. } => 43,
            DOp::BinStore { .. } => 44,
            DOp::StoreBr { .. } => 45,
            DOp::StoreLoad { .. } => 46,
            DOp::BinLoad { .. } => 47,
            DOp::LoadStore { .. } => 48,
            DOp::LoadBin { .. } => 49,
        }
    }
}

/// One decoded instruction slot: the op plus the static per-instruction
/// metadata the legacy loop looked up per step.
#[derive(Debug, Clone)]
pub(crate) struct DInst {
    pub(crate) op: DOp,
    /// Destination register; `u32::MAX` for void ops (never written).
    pub(crate) dst: u32,
    /// Dense module-wide index (fault targeting, injection counting).
    pub(crate) dense: u32,
    pub(crate) inj: bool,
}

/// One decoded function: flat code, block-entry pcs, register count.
#[derive(Debug)]
pub(crate) struct DFunc {
    pub(crate) code: Vec<DInst>,
    /// `pc_of(block, pos) = block_entry[block] + pos`: every instruction
    /// keeps its own slot (fusion emits a standalone second-half copy),
    /// so the mapping from legacy frame positions is plain arithmetic.
    pub(crate) block_entry: Vec<u32>,
    /// Frame arena size: instruction count plus `consts.len()`. The
    /// first `num_regs - consts.len()` slots are registers, the tail
    /// holds the materialized constant pool.
    pub(crate) num_regs: u32,
    /// Interned constants, copied into the arena tail at frame entry.
    pub(crate) consts: Vec<Value>,
}

/// The whole module, lowered once at [`Interp::new`].
///
/// [`Interp::new`]: crate::Interp::new
#[derive(Debug)]
pub(crate) struct DecodedModule {
    pub(crate) funcs: Vec<DFunc>,
    pub(crate) entry: u32,
}

/// One decoded frame: bases into the shared [`ExecScratch`] arenas
/// instead of per-frame `Vec`s.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DFrame {
    pub(crate) func: u32,
    pub(crate) pc: u32,
    pub(crate) reg_base: usize,
    pub(crate) arg_base: usize,
    pub(crate) arg_len: usize,
    /// Stack-memory watermark to restore on return.
    pub(crate) sp_base: usize,
}

/// Reusable per-worker machine arena for decoded runs: the canonical
/// [`MachineState`] plus the flat frame/register/argument arenas. All
/// buffers survive across injections; resetting is `clear` + `clone_from`.
#[derive(Debug, Default)]
pub struct ExecScratch {
    pub(crate) st: MachineState,
    pub(crate) dframes: Vec<DFrame>,
    pub(crate) regs: Vec<Value>,
    pub(crate) args: Vec<Value>,
}

impl ExecScratch {
    /// Reset to the program entry point without touching capacity.
    pub(crate) fn start_decoded(&mut self, dm: &DecodedModule) {
        self.st.reset();
        self.dframes.clear();
        self.regs.clear();
        self.args.clear();
        let entry = &dm.funcs[dm.entry as usize];
        self.regs
            .resize(entry.num_regs as usize - entry.consts.len(), Value::Undef);
        self.regs.extend_from_slice(&entry.consts);
        self.dframes.push(DFrame {
            func: dm.entry,
            pc: entry.block_entry[0],
            reg_base: 0,
            arg_base: 0,
            arg_len: 0,
            sp_base: 0,
        });
    }

    /// Convert the restored legacy frames in `self.st` into decoded
    /// frames (a snapshot-resume entry point). The legacy frames stay in
    /// `st` untouched; the decoded run never reads them.
    pub(crate) fn enter_decoded(&mut self, dm: &DecodedModule) {
        self.dframes.clear();
        self.regs.clear();
        self.args.clear();
        for f in &self.st.frames {
            let df = &dm.funcs[f.func.index()];
            debug_assert_eq!(f.regs.len() + df.consts.len(), df.num_regs as usize);
            let pc = df.block_entry[f.block.index()] + f.pos as u32;
            let reg_base = self.regs.len();
            let arg_base = self.args.len();
            // legacy frames carry register slots only; re-materialize
            // the const tail the decoded arena layout expects
            self.regs.extend_from_slice(&f.regs);
            self.regs.extend_from_slice(&df.consts);
            self.args.extend_from_slice(&f.args);
            self.dframes.push(DFrame {
                func: f.func.0,
                pc,
                reg_base,
                arg_base,
                arg_len: f.args.len(),
                sp_base: f.sp_base,
            });
        }
    }
}

/// Static type of an operand: the defining instruction's declared type,
/// or the immediate's. `None` for untyped definitions (unverified
/// modules); decode then falls back to the generic op.
fn sty(f: &Function, o: &Operand) -> Option<Ty> {
    match o {
        Operand::Value(id) => f.insts[id.index()].ty,
        Operand::ConstI(_) => Some(Ty::I64),
        Operand::ConstF(_) => Some(Ty::F64),
        Operand::ConstB(_) => Some(Ty::Bool),
    }
}

/// Per-function operand-interning context. Registers resolve to their
/// instruction id; constants are deduplicated by tagged bit pattern
/// (`0.0` and `-0.0` stay distinct) into slots after the registers.
struct OpdCx {
    /// Instruction count of the function = index of the first const slot.
    ni: u32,
    pool: std::cell::RefCell<ConstPool>,
}

#[derive(Default)]
struct ConstPool {
    vals: Vec<Value>,
    ix: std::collections::HashMap<(u8, u64), u32>,
}

impl OpdCx {
    fn new(f: &Function) -> Self {
        OpdCx {
            ni: f.insts.len() as u32,
            pool: Default::default(),
        }
    }

    fn opd(&self, o: &Operand) -> Opd {
        match o {
            Operand::Value(id) => id.0,
            Operand::ConstI(c) => self.slot(0, *c as u64, Value::I(*c)),
            Operand::ConstF(c) => self.slot(1, c.to_bits(), Value::F(*c)),
            Operand::ConstB(c) => self.slot(2, *c as u64, Value::B(*c)),
        }
    }

    fn slot(&self, tag: u8, bits: u64, v: Value) -> u32 {
        let mut p = self.pool.borrow_mut();
        if let Some(&i) = p.ix.get(&(tag, bits)) {
            return self.ni + i;
        }
        let i = p.vals.len() as u32;
        p.vals.push(v);
        p.ix.insert((tag, bits), i);
        self.ni + i
    }
}

pub(crate) fn decode_module(m: &Module) -> DecodedModule {
    let mut funcs = Vec::with_capacity(m.funcs.len());
    let mut dense_base = 0u32;
    for f in &m.funcs {
        funcs.push(decode_func(f, dense_base));
        dense_base += f.insts.len() as u32;
    }
    // static fusion coverage for the sampling profiler: carrying
    // superinstruction slots vs all decoded slots
    let (mut fused, mut total) = (0u64, 0u64);
    for f in &funcs {
        total += f.code.len() as u64;
        fused += f
            .code
            .iter()
            .filter(|di| di.op.index() >= crate::opprof::FIRST_FUSED)
            .count() as u64;
    }
    crate::opprof::record_decode_stats(fused, total);
    DecodedModule {
        funcs,
        entry: m.entry.0,
    }
}

fn decode_func(f: &Function, dense_base: u32) -> DFunc {
    let cx = OpdCx::new(f);
    let mut block_entry = Vec::with_capacity(f.blocks.len());
    let mut pc = 0u32;
    for b in &f.blocks {
        block_entry.push(pc);
        pc += b.insts.len() as u32;
    }
    let mut code = Vec::with_capacity(pc as usize);
    for b in &f.blocks {
        let mut k = 0;
        while k < b.insts.len() {
            if k + 4 < b.insts.len() {
                if let Some(fused) = try_fuse5(
                    f,
                    &cx,
                    &block_entry,
                    [
                        b.insts[k],
                        b.insts[k + 1],
                        b.insts[k + 2],
                        b.insts[k + 3],
                        b.insts[k + 4],
                    ],
                    dense_base,
                ) {
                    code.push(fused);
                    for j in 1..5 {
                        code.push(decode_inst(
                            f,
                            &cx,
                            &block_entry,
                            b.insts[k + j],
                            dense_base,
                        ));
                    }
                    k += 5;
                    continue;
                }
            }
            if k + 3 < b.insts.len() {
                if let Some(fused) = try_fuse4(
                    f,
                    &cx,
                    &block_entry,
                    [b.insts[k], b.insts[k + 1], b.insts[k + 2], b.insts[k + 3]],
                    dense_base,
                ) {
                    code.push(fused);
                    for j in 1..4 {
                        code.push(decode_inst(
                            f,
                            &cx,
                            &block_entry,
                            b.insts[k + j],
                            dense_base,
                        ));
                    }
                    k += 4;
                    continue;
                }
            }
            if k + 2 < b.insts.len() {
                if let Some(fused) = try_fuse3(
                    f,
                    &cx,
                    &block_entry,
                    b.insts[k],
                    b.insts[k + 1],
                    b.insts[k + 2],
                    dense_base,
                ) {
                    code.push(fused);
                    code.push(decode_inst(
                        f,
                        &cx,
                        &block_entry,
                        b.insts[k + 1],
                        dense_base,
                    ));
                    code.push(decode_inst(
                        f,
                        &cx,
                        &block_entry,
                        b.insts[k + 2],
                        dense_base,
                    ));
                    k += 3;
                    continue;
                }
            }
            if k + 1 < b.insts.len() {
                if let Some(fused) =
                    try_fuse(f, &cx, &block_entry, b.insts[k], b.insts[k + 1], dense_base)
                {
                    code.push(fused);
                    code.push(decode_inst(
                        f,
                        &cx,
                        &block_entry,
                        b.insts[k + 1],
                        dense_base,
                    ));
                    k += 2;
                    continue;
                }
            }
            code.push(decode_inst(f, &cx, &block_entry, b.insts[k], dense_base));
            k += 1;
        }
    }
    let consts = cx.pool.into_inner().vals;
    DFunc {
        code,
        block_entry,
        num_regs: f.insts.len() as u32 + consts.len() as u32,
        consts,
    }
}

/// Five-instruction fusion, tried first: compiled whole-statement
/// windows anchored on a load+load+bin head. Layout rule as everywhere —
/// the superinstruction sits at the first pc and standalone copies fill
/// the next four slots; the chained tail ops execute from those slots.
fn try_fuse5(
    f: &Function,
    cx: &OpdCx,
    block_entry: &[u32],
    ids: [minpsid_ir::InstId; 5],
    dense_base: u32,
) -> Option<DInst> {
    let opd = |o: &Operand| cx.opd(o);
    let (
        InstKind::Load {
            ptr: p1,
            idx: x1,
            ty: t1,
        },
        InstKind::Load {
            ptr: p2,
            idx: x2,
            ty: t2,
        },
        InstKind::Bin { .. },
    ) = (
        &f.insts[ids[0].index()].kind,
        &f.insts[ids[1].index()].kind,
        &f.insts[ids[2].index()].kind,
    )
    else {
        return None;
    };
    let ld_dst = ids[1].0;
    let ld_dense = dense_base + ids[1].0;
    let ld_inj = f.insts[ids[1].index()].injectable();
    let op = match (&f.insts[ids[3].index()].kind, &f.insts[ids[4].index()].kind) {
        (InstKind::Store { .. }, InstKind::Br { target }) => DOp::LoadLoadBinStoreBr {
            ty1: *t1,
            ptr1: opd(p1),
            idx1: opd(x1),
            ty2: *t2,
            ptr2: opd(p2),
            idx2: opd(x2),
            ld_dst,
            ld_dense,
            ld_inj,
            target: block_entry[target.index()],
        },
        (InstKind::Bin { .. }, InstKind::Store { .. }) => DOp::LoadLoadBinBinStore {
            ty1: *t1,
            ptr1: opd(p1),
            idx1: opd(x1),
            ty2: *t2,
            ptr2: opd(p2),
            idx2: opd(x2),
            ld_dst,
            ld_dense,
            ld_inj,
        },
        (InstKind::Bin { .. }, InstKind::Load { .. }) => DOp::LoadLoadBinBinLoad {
            ty1: *t1,
            ptr1: opd(p1),
            idx1: opd(x1),
            ty2: *t2,
            ptr2: opd(p2),
            idx2: opd(x2),
            ld_dst,
            ld_dense,
            ld_inj,
        },
        (InstKind::Bin { .. }, InstKind::Bin { .. }) => DOp::LoadLoadBinBinBin {
            ty1: *t1,
            ptr1: opd(p1),
            idx1: opd(x1),
            ty2: *t2,
            ptr2: opd(p2),
            idx2: opd(x2),
            ld_dst,
            ld_dense,
            ld_inj,
        },
        _ => return None,
    };
    Some(DInst {
        op,
        dst: ids[0].0,
        dense: dense_base + ids[0].0,
        inj: f.insts[ids[0].index()].injectable(),
    })
}

/// Four-instruction fusion, tried after quints: a straight run of four
/// loads, the load+cast+bin+un twiddle chain, or the loop latch. Layout
/// rule as for pairs/triples — the superinstruction sits at the first pc
/// and standalone copies fill the next three slots.
fn try_fuse4(
    f: &Function,
    cx: &OpdCx,
    block_entry: &[u32],
    ids: [minpsid_ir::InstId; 4],
    dense_base: u32,
) -> Option<DInst> {
    let opd = |o: &Operand| cx.opd(o);
    // load + cast + bin + un (the bin may combine the cast result with
    // anything; no dependence restrictions are needed — each half
    // fetches its operands after the previous halves' writes)
    if let (
        InstKind::Load { ptr, idx, ty },
        InstKind::Cast { .. },
        InstKind::Bin { .. },
        InstKind::Un { .. },
    ) = (
        &f.insts[ids[0].index()].kind,
        &f.insts[ids[1].index()].kind,
        &f.insts[ids[2].index()].kind,
        &f.insts[ids[3].index()].kind,
    ) {
        return Some(DInst {
            op: DOp::LoadCastBinUn {
                ty: *ty,
                ptr: opd(ptr),
                idx: opd(idx),
            },
            dst: ids[0].0,
            dense: dense_base + ids[0].0,
            inj: f.insts[ids[0].index()].injectable(),
        });
    }
    // load + bin + store + br: the loop latch (`i = i + 1; br head`)
    if let (
        InstKind::Load { ptr, idx, ty },
        InstKind::Bin { op, lhs, rhs },
        InstKind::Store {
            ptr: sp,
            idx: si,
            value: sv,
        },
        InstKind::Br { target },
    ) = (
        &f.insts[ids[0].index()].kind,
        &f.insts[ids[1].index()].kind,
        &f.insts[ids[2].index()].kind,
        &f.insts[ids[3].index()].kind,
    ) {
        return Some(DInst {
            op: DOp::LoadBinStoreBr {
                ty: *ty,
                ptr: opd(ptr),
                idx: opd(idx),
                op: *op,
                a: opd(lhs),
                b: opd(rhs),
                bin_dst: ids[1].0,
                bin_dense: dense_base + ids[1].0,
                bin_inj: f.insts[ids[1].index()].injectable(),
                st_ptr: opd(sp),
                st_idx: opd(si),
                st_v: opd(sv),
                target: block_entry[target.index()],
            },
            dst: ids[0].0,
            dense: dense_base + ids[0].0,
            inj: f.insts[ids[0].index()].injectable(),
        });
    }
    let mut ops = [(Ty::I64, 0 as Opd, 0 as Opd); 4];
    for (slot, id) in ops.iter_mut().zip(ids) {
        match &f.insts[id.index()].kind {
            InstKind::Load { ptr, idx, ty } => *slot = (*ty, opd(ptr), opd(idx)),
            _ => return None,
        }
    }
    let meta = |i: usize| {
        let id = ids[i];
        (id.0, dense_base + id.0, f.insts[id.index()].injectable())
    };
    let (d1, n1, j1) = meta(1);
    let (d2, n2, j2) = meta(2);
    let (d3, n3, j3) = meta(3);
    Some(DInst {
        op: DOp::Load4 {
            ops,
            dsts: [d1, d2, d3],
            denses: [n1, n2, n3],
            injs: [j1, j2, j3],
        },
        dst: ids[0].0,
        dense: dense_base + ids[0].0,
        inj: f.insts[ids[0].index()].injectable(),
    })
}

/// Three-instruction fusion, tried before pair fusion. Same layout rule:
/// the superinstruction sits at the first pc, standalone copies of the
/// second and third occupy their own pcs (snapshot resume can land on
/// either), and block lengths never change.
fn try_fuse3(
    f: &Function,
    cx: &OpdCx,
    block_entry: &[u32],
    i1: minpsid_ir::InstId,
    i2: minpsid_ir::InstId,
    i3: minpsid_ir::InstId,
    dense_base: u32,
) -> Option<DInst> {
    let opd = |o: &Operand| cx.opd(o);
    let first = &f.insts[i1.index()];
    let second = &f.insts[i2.index()];
    let third = &f.insts[i3.index()];
    match (&first.kind, &second.kind, &third.kind) {
        (
            InstKind::Load { ptr, idx, ty },
            InstKind::Cmp { op, lhs, rhs },
            InstKind::CondBr {
                cond: Operand::Value(id),
                then_b,
                else_b,
            },
        ) if *id == i2 => {
            let kind = match (sty(f, lhs), sty(f, rhs)) {
                (Some(Ty::I64), Some(Ty::I64)) => CmpKind::II,
                (Some(Ty::F64), Some(Ty::F64)) => CmpKind::FF,
                (Some(Ty::Bool), Some(Ty::Bool)) => CmpKind::BB,
                _ => CmpKind::Any,
            };
            Some(DInst {
                op: DOp::LoadCmpBr {
                    ty: *ty,
                    ptr: opd(ptr),
                    idx: opd(idx),
                    kind,
                    op: *op,
                    a: opd(lhs),
                    b: opd(rhs),
                    t: block_entry[then_b.index()],
                    e: block_entry[else_b.index()],
                    cmp_dst: i2.0,
                    cmp_dense: dense_base + i2.0,
                    cmp_inj: second.injectable(),
                },
                dst: i1.0,
                dense: dense_base + i1.0,
                inj: first.injectable(),
            })
        }
        (
            InstKind::Bin { op, lhs, rhs },
            InstKind::Store { ptr, idx, value },
            InstKind::Br { target },
        ) => Some(DInst {
            op: DOp::BinStoreBr {
                op: *op,
                a: opd(lhs),
                b: opd(rhs),
                ptr: opd(ptr),
                idx: opd(idx),
                v: opd(value),
                target: block_entry[target.index()],
            },
            dst: i1.0,
            dense: dense_base + i1.0,
            inj: first.injectable(),
        }),
        (
            InstKind::Load {
                ptr: p1,
                idx: x1,
                ty: t1,
            },
            InstKind::Load {
                ptr: p2,
                idx: x2,
                ty: t2,
            },
            InstKind::Bin { .. },
        ) => Some(DInst {
            op: DOp::LoadLoadBin {
                ty1: *t1,
                ptr1: opd(p1),
                idx1: opd(x1),
                ty2: *t2,
                ptr2: opd(p2),
                idx2: opd(x2),
                ld_dst: i2.0,
                ld_dense: dense_base + i2.0,
                ld_inj: second.injectable(),
            },
            dst: i1.0,
            dense: dense_base + i1.0,
            inj: first.injectable(),
        }),
        (
            InstKind::Bin { op, lhs, rhs },
            InstKind::Load {
                ptr: p2,
                idx: x2,
                ty: t2,
            },
            InstKind::Load { .. },
        ) => Some(DInst {
            op: DOp::BinLoadLoad {
                op: *op,
                a: opd(lhs),
                b: opd(rhs),
                ty2: *t2,
                ptr2: opd(p2),
                idx2: opd(x2),
                ld_dst: i2.0,
                ld_dense: dense_base + i2.0,
                ld_inj: second.injectable(),
            },
            dst: i1.0,
            dense: dense_base + i1.0,
            inj: first.injectable(),
        }),
        (
            InstKind::Load { ptr, idx, ty },
            InstKind::Bin { op, lhs, rhs },
            InstKind::Bin {
                op: op2,
                lhs: l2,
                rhs: r2,
            },
        ) if matches!(lhs, Operand::Value(id) if *id == i1)
            || matches!(rhs, Operand::Value(id) if *id == i1) =>
        {
            let load_lhs = matches!(lhs, Operand::Value(id) if *id == i1);
            let other = if load_lhs { opd(rhs) } else { opd(lhs) };
            Some(DInst {
                op: DOp::LoadBinBin {
                    ty: *ty,
                    op: *op,
                    ptr: opd(ptr),
                    idx: opd(idx),
                    other,
                    load_lhs,
                    bin_dst: i2.0,
                    bin_dense: dense_base + i2.0,
                    bin_inj: second.injectable(),
                    op2: *op2,
                    a2: opd(l2),
                    b2: opd(r2),
                    bin2_dst: i3.0,
                    bin2_dense: dense_base + i3.0,
                    bin2_inj: third.injectable(),
                },
                dst: i1.0,
                dense: dense_base + i1.0,
                inj: first.injectable(),
            })
        }
        _ => None,
    }
}

fn try_fuse(
    f: &Function,
    cx: &OpdCx,
    block_entry: &[u32],
    i1: minpsid_ir::InstId,
    i2: minpsid_ir::InstId,
    dense_base: u32,
) -> Option<DInst> {
    let opd = |o: &Operand| cx.opd(o);
    let first = &f.insts[i1.index()];
    let second = &f.insts[i2.index()];
    match (&first.kind, &second.kind) {
        (
            InstKind::Cmp { op, lhs, rhs },
            InstKind::CondBr {
                cond: Operand::Value(id),
                then_b,
                else_b,
            },
        ) if *id == i1 => {
            let kind = match (sty(f, lhs), sty(f, rhs)) {
                (Some(Ty::I64), Some(Ty::I64)) => CmpKind::II,
                (Some(Ty::F64), Some(Ty::F64)) => CmpKind::FF,
                (Some(Ty::Bool), Some(Ty::Bool)) => CmpKind::BB,
                _ => CmpKind::Any,
            };
            Some(DInst {
                op: DOp::CmpBr {
                    kind,
                    op: *op,
                    a: opd(lhs),
                    b: opd(rhs),
                    t: block_entry[then_b.index()],
                    e: block_entry[else_b.index()],
                },
                dst: i1.0,
                dense: dense_base + i1.0,
                inj: first.injectable(),
            })
        }
        (
            InstKind::Load {
                ptr: p1,
                idx: x1,
                ty: t1,
            },
            InstKind::Load {
                ptr: p2,
                idx: x2,
                ty: t2,
            },
        ) => Some(DInst {
            op: DOp::LoadLoad {
                ty1: *t1,
                ptr1: opd(p1),
                idx1: opd(x1),
                ty2: *t2,
                ptr2: opd(p2),
                idx2: opd(x2),
                ld_dst: i2.0,
                ld_dense: dense_base + i2.0,
                ld_inj: second.injectable(),
            },
            dst: i1.0,
            dense: dense_base + i1.0,
            inj: first.injectable(),
        }),
        (InstKind::Load { ptr, idx, ty }, InstKind::Bin { op, lhs, rhs })
            if matches!(lhs, Operand::Value(id) if *id == i1)
                || matches!(rhs, Operand::Value(id) if *id == i1) =>
        {
            let load_lhs = matches!(lhs, Operand::Value(id) if *id == i1);
            let other = if load_lhs { opd(rhs) } else { opd(lhs) };
            Some(DInst {
                op: DOp::LoadBin {
                    ty: *ty,
                    op: *op,
                    ptr: opd(ptr),
                    idx: opd(idx),
                    other,
                    load_lhs,
                    bin_dst: i2.0,
                    bin_dense: dense_base + i2.0,
                    bin_inj: second.injectable(),
                },
                dst: i1.0,
                dense: dense_base + i1.0,
                inj: first.injectable(),
            })
        }
        (
            InstKind::Bin {
                op: o1,
                lhs: l1,
                rhs: r1,
            },
            InstKind::Bin {
                op: o2,
                lhs: l2,
                rhs: r2,
            },
        ) => Some(DInst {
            op: DOp::BinBin {
                op1: *o1,
                a1: opd(l1),
                b1: opd(r1),
                op2: *o2,
                a2: opd(l2),
                b2: opd(r2),
                bin_dst: i2.0,
                bin_dense: dense_base + i2.0,
                bin_inj: second.injectable(),
            },
            dst: i1.0,
            dense: dense_base + i1.0,
            inj: first.injectable(),
        }),
        (InstKind::Bin { op, lhs, rhs }, InstKind::Br { target }) => Some(DInst {
            op: DOp::BinBr {
                op: *op,
                a: opd(lhs),
                b: opd(rhs),
                target: block_entry[target.index()],
            },
            dst: i1.0,
            dense: dense_base + i1.0,
            inj: first.injectable(),
        }),
        (InstKind::Bin { op, lhs, rhs }, InstKind::Store { ptr, idx, value }) => Some(DInst {
            op: DOp::BinStore {
                op: *op,
                a: opd(lhs),
                b: opd(rhs),
                ptr: opd(ptr),
                idx: opd(idx),
                v: opd(value),
            },
            dst: i1.0,
            dense: dense_base + i1.0,
            inj: first.injectable(),
        }),
        (InstKind::Store { ptr, idx, value }, InstKind::Br { target }) => Some(DInst {
            op: DOp::StoreBr {
                ptr: opd(ptr),
                idx: opd(idx),
                v: opd(value),
                target: block_entry[target.index()],
            },
            dst: u32::MAX,
            dense: dense_base + i1.0,
            inj: false,
        }),
        (
            InstKind::Bin { op, lhs, rhs },
            InstKind::Load {
                ptr: p2,
                idx: x2,
                ty: t2,
            },
        ) => Some(DInst {
            op: DOp::BinLoad {
                op: *op,
                a: opd(lhs),
                b: opd(rhs),
                ty2: *t2,
                ptr2: opd(p2),
                idx2: opd(x2),
                ld_dst: i2.0,
                ld_dense: dense_base + i2.0,
                ld_inj: second.injectable(),
            },
            dst: i1.0,
            dense: dense_base + i1.0,
            inj: first.injectable(),
        }),
        (
            InstKind::Load {
                ptr: p1,
                idx: x1,
                ty: t1,
            },
            InstKind::Store { ptr, idx, value },
        ) => Some(DInst {
            op: DOp::LoadStore {
                ty: *t1,
                ptr1: opd(p1),
                idx1: opd(x1),
                ptr2: opd(ptr),
                idx2: opd(idx),
                v: opd(value),
            },
            dst: i1.0,
            dense: dense_base + i1.0,
            inj: first.injectable(),
        }),
        (
            InstKind::Store {
                ptr: p1,
                idx: x1,
                value,
            },
            InstKind::Load {
                ptr: p2,
                idx: x2,
                ty: t2,
            },
        ) => Some(DInst {
            op: DOp::StoreLoad {
                ptr1: opd(p1),
                idx1: opd(x1),
                v: opd(value),
                ty2: *t2,
                ptr2: opd(p2),
                idx2: opd(x2),
                ld_dst: i2.0,
                ld_dense: dense_base + i2.0,
                ld_inj: second.injectable(),
            },
            dst: u32::MAX,
            dense: dense_base + i1.0,
            inj: false,
        }),
        _ => None,
    }
}

fn decode_inst(
    f: &Function,
    cx: &OpdCx,
    block_entry: &[u32],
    iid: minpsid_ir::InstId,
    dense_base: u32,
) -> DInst {
    let opd = |o: &Operand| cx.opd(o);
    let inst = &f.insts[iid.index()];
    let op = match &inst.kind {
        InstKind::Param { n } => DOp::Param { n: *n },
        InstKind::Bin { op, lhs, rhs } => {
            let (a, b) = (opd(lhs), opd(rhs));
            match (sty(f, lhs), sty(f, rhs)) {
                (Some(Ty::I64), Some(Ty::I64)) => DOp::BinII { op: *op, a, b },
                (Some(Ty::F64), Some(Ty::F64)) => DOp::BinFF { op: *op, a, b },
                _ => DOp::BinAny { op: *op, a, b },
            }
        }
        InstKind::Un { op, arg } => DOp::Un {
            op: *op,
            a: opd(arg),
        },
        InstKind::Cmp { op, lhs, rhs } => {
            let (a, b) = (opd(lhs), opd(rhs));
            match (sty(f, lhs), sty(f, rhs)) {
                (Some(Ty::I64), Some(Ty::I64)) => DOp::CmpII { op: *op, a, b },
                (Some(Ty::F64), Some(Ty::F64)) => DOp::CmpFF { op: *op, a, b },
                (Some(Ty::Bool), Some(Ty::Bool)) => DOp::CmpBB { op: *op, a, b },
                _ => DOp::CmpAny { op: *op, a, b },
            }
        }
        InstKind::Select {
            cond,
            then_v,
            else_v,
        } => DOp::Select {
            c: opd(cond),
            t: opd(then_v),
            e: opd(else_v),
        },
        InstKind::Cast { to, arg } => DOp::Cast {
            to: *to,
            a: opd(arg),
        },
        InstKind::Alloc { count } => DOp::Alloc { n: opd(count) },
        InstKind::Salloc { count } => DOp::Salloc { n: opd(count) },
        InstKind::Load { ptr, idx, ty } => DOp::Load {
            ty: *ty,
            ptr: opd(ptr),
            idx: opd(idx),
        },
        InstKind::Store { ptr, idx, value } => DOp::Store {
            ptr: opd(ptr),
            idx: opd(idx),
            v: opd(value),
        },
        InstKind::Call { func, args } => DOp::Call {
            callee: func.0,
            args: args.iter().map(opd).collect(),
        },
        InstKind::NArgs => DOp::NArgs,
        InstKind::ArgI { n } => DOp::ArgI { n: opd(n) },
        InstKind::ArgF { n } => DOp::ArgF { n: opd(n) },
        InstKind::DataLen { stream } => DOp::DataLen { stream: *stream },
        InstKind::DataI { stream, idx } => DOp::DataI {
            stream: *stream,
            idx: opd(idx),
        },
        InstKind::DataF { stream, idx } => DOp::DataF {
            stream: *stream,
            idx: opd(idx),
        },
        InstKind::OutI { v } => DOp::OutI { v: opd(v) },
        InstKind::OutF { v } => DOp::OutF { v: opd(v) },
        InstKind::Check { a, b } => DOp::Check {
            a: opd(a),
            b: opd(b),
        },
        InstKind::Br { target } => DOp::Br {
            target: block_entry[target.index()],
        },
        InstKind::CondBr {
            cond,
            then_b,
            else_b,
        } => DOp::CondBr {
            c: opd(cond),
            t: block_entry[then_b.index()],
            e: block_entry[else_b.index()],
        },
        InstKind::Ret { v } => DOp::Ret {
            v: v.as_ref().map(opd),
        },
    };
    // Calls keep their dst: the return value is written through the call
    // op's slot when the callee returns (see the `Ret` arm).
    let has_result = !matches!(
        inst.kind,
        InstKind::Store { .. }
            | InstKind::Check { .. }
            | InstKind::Br { .. }
            | InstKind::CondBr { .. }
            | InstKind::Ret { .. }
    );
    DInst {
        op,
        dst: if has_result { iid.0 } else { u32::MAX },
        dense: dense_base + iid.0,
        inj: inst.injectable(),
    }
}

/// The decoded hot loop. Semantics (including step accounting, trap
/// points, injection ordering and fault application) are bit-identical to
/// the legacy `run_inner`; the profile, trace and checkpoint observers are
/// deliberately absent — runs needing them route to the legacy loop.
///
/// The loop is monomorphized twice via `exec_loop::<ARMED>`: the *armed*
/// variant carries the injection counters and the fault-fire check, the
/// *clean* variant strips every per-step fault cost. A faulty run executes
/// armed only up to the flip, then finishes clean; a golden run is clean
/// from the first step. Nothing observes the injection counters after the
/// fault has fired (checkpointing runs use the legacy loop), so dropping
/// them mid-run is invisible.
pub(crate) fn run_decoded(
    interp: &Interp<'_>,
    scratch: &mut ExecScratch,
    input: &crate::value::ProgInput,
    fault: Option<FaultSpec>,
) -> ExecResult {
    let resumed_at = (scratch.st.steps > 0).then_some(scratch.st.steps);
    if fault.is_some() && !scratch.st.fault_applied {
        if let Some(r) = exec_loop::<true>(interp, scratch, input, fault, resumed_at) {
            return r;
        }
    }
    exec_loop::<false>(interp, scratch, input, fault, resumed_at)
        .expect("the clean loop always runs to a termination")
}

/// One monomorphized interpreter loop; see [`run_decoded`]. Returns
/// `Some(result)` on termination. The armed variant (`ARMED = true`)
/// additionally returns `None` at the first instruction boundary after
/// the fault fires, with the current frame's pc synced back into the
/// scratch so the clean variant can pick up mid-run.
fn exec_loop<const ARMED: bool>(
    interp: &Interp<'_>,
    scratch: &mut ExecScratch,
    input: &crate::value::ProgInput,
    fault: Option<FaultSpec>,
    resumed_at: Option<u64>,
) -> Option<ExecResult> {
    let dm = interp.decoded();
    let step_limit = interp.config().step_limit;
    let mem_limit = interp.config().mem_limit;
    let call_depth_limit = interp.config().call_depth_limit;
    let output_limit = interp.config().output_limit;
    let deadline = (interp.config().wall_clock_ms > 0).then(|| {
        std::time::Instant::now() + std::time::Duration::from_millis(interp.config().wall_clock_ms)
    });

    let ExecScratch {
        st,
        dframes,
        regs,
        args,
    } = scratch;
    let MachineState {
        frames: _,
        mem,
        stack_mem,
        output,
        steps,
        inj_ctr,
        per_inst_ctr,
        fault_applied,
    } = st;

    let (target_dense, target_nth, whole_nth) = match fault {
        Some(FaultSpec {
            target: FaultTarget::NthOfInst(gid, n),
            ..
        }) => (Some(interp.dense_index(gid) as u32), n, u64::MAX),
        Some(FaultSpec {
            target: FaultTarget::NthDynamic(n),
            ..
        }) => (None, 0, n),
        None => (None, 0, u64::MAX),
    };
    let fault_bit = fault.map(|f| f.bit).unwrap_or(0);

    // current-frame fields cached in locals; re-synced on call/return
    let top = *dframes.last().expect("scratch holds at least one frame");
    let mut pc = top.pc as usize;
    let mut reg_base = top.reg_base;
    let mut arg_base = top.arg_base;
    let mut arg_len = top.arg_len;
    let mut code: &[DInst] = &dm.funcs[top.func as usize].code;

    // the step counter lives in a register-resident local for the whole
    // loop; every exit path writes it back through `finish!` (or the
    // armed handoff) so the MachineState stays canonical
    let mut steps_l = *steps;
    // one threshold folds the per-step limit check and the periodic
    // deadline poll into a single compare: `next_pause` is the next step
    // count at which *something* must happen — the step limit expiring
    // (at exactly step_limit + 1, as legacy) or a wall-clock poll (at
    // the next multiple of 8192, as legacy). With no deadline set — every
    // campaign run — the poll term is u64::MAX and the compare is the
    // only per-step accounting cost.
    let next_pause_after = |steps: u64| -> u64 {
        let poll = if deadline.is_some() {
            ((steps >> 13) + 1) << 13
        } else {
            u64::MAX
        };
        poll.min(step_limit.saturating_add(1))
    };
    // sampling profiler boundary, folded into the same compare: with the
    // profiler off (every campaign run unless `--profile-interp`),
    // `next_sample` is u64::MAX and the hot path is untouched. Sampling
    // on global step phase (next multiple of the interval) keeps short
    // replayed suffixes sampled at the same rate as long runs.
    let sample_every = crate::opprof::sample_every();
    let mut next_sample = match steps_l.checked_div(sample_every) {
        None => u64::MAX,
        Some(intervals) => (intervals + 1) * sample_every,
    };
    let mut next_pause = next_pause_after(steps_l).min(next_sample);
    macro_rules! finish {
        ($term:expr, $ret:expr) => {{
            *steps = steps_l;
            return Some(ExecResult {
                termination: $term,
                output: std::mem::take(output),
                profile: None,
                steps: steps_l,
                fault_applied: *fault_applied,
                ret: $ret,
                trace: None,
                resumed_at,
            });
        }};
    }
    macro_rules! trap {
        ($kind:expr) => {
            finish!(Termination::Trap($kind), None)
        };
    }
    // legacy per-step prologue: increment, limit check, coarse deadline
    // poll, profiler sample — all behind the one folded compare. `$di` is
    // the carrying instruction, so fused halves attribute their sample to
    // the superinstruction.
    macro_rules! tick {
        ($di:expr) => {
            steps_l += 1;
            if steps_l >= next_pause {
                // cold: the limit expired, a deadline poll is due, or a
                // profiler sample is due
                if steps_l > step_limit {
                    finish!(Termination::StepLimit, None);
                }
                if let Some(d) = deadline {
                    if std::time::Instant::now() >= d {
                        finish!(Termination::WallClock, None);
                    }
                }
                if steps_l >= next_sample {
                    crate::opprof::record($di.op.index());
                    next_sample = ((steps_l / sample_every) + 1) * sample_every;
                }
                next_pause = next_pause_after(steps_l).min(next_sample);
            }
        };
    }
    // operand fetch; trap order (UndefRead before type checks) matches legacy
    macro_rules! raw {
        ($o:expr) => {{
            let r = *$o as usize;
            debug_assert!(reg_base + r < regs.len());
            // SAFETY: decode resolves register operands to instruction
            // ids of the current function and constants to the interned
            // slots after them (all < num_regs on verified IR), and the
            // arena holds exactly reg_base + num_regs slots for the
            // active frame (resized on call, truncated on return).
            let v = unsafe { *regs.get_unchecked(reg_base + r) };
            if matches!(v, Value::Undef) {
                trap!(TrapKind::UndefRead);
            }
            v
        }};
    }
    // typed operand fetches: one match instead of raw!-then-as_x. On
    // verified IR a non-Undef register always holds its declared variant
    // (bit flips preserve the variant, const slots are pre-materialized),
    // so the only reachable trap here is UndefRead — checked per operand
    // in the same order as legacy.
    macro_rules! int {
        ($o:expr) => {{
            let r = *$o as usize;
            debug_assert!(reg_base + r < regs.len());
            // SAFETY: see `raw!`.
            match unsafe { *regs.get_unchecked(reg_base + r) } {
                Value::I(x) => x,
                Value::Undef => trap!(TrapKind::UndefRead),
                _ => trap!(TrapKind::TypeConfusion),
            }
        }};
    }
    macro_rules! flt {
        ($o:expr) => {{
            let r = *$o as usize;
            debug_assert!(reg_base + r < regs.len());
            // SAFETY: see `raw!`.
            match unsafe { *regs.get_unchecked(reg_base + r) } {
                Value::F(x) => x,
                Value::Undef => trap!(TrapKind::UndefRead),
                _ => trap!(TrapKind::TypeConfusion),
            }
        }};
    }
    macro_rules! boolean {
        ($o:expr) => {{
            let r = *$o as usize;
            debug_assert!(reg_base + r < regs.len());
            // SAFETY: see `raw!`.
            match unsafe { *regs.get_unchecked(reg_base + r) } {
                Value::B(x) => x,
                Value::Undef => trap!(TrapKind::UndefRead),
                _ => trap!(TrapKind::TypeConfusion),
            }
        }};
    }
    macro_rules! pointer {
        ($o:expr) => {{
            let r = *$o as usize;
            debug_assert!(reg_base + r < regs.len());
            // SAFETY: see `raw!`.
            match unsafe { *regs.get_unchecked(reg_base + r) } {
                Value::P(x) => x,
                Value::Undef => trap!(TrapKind::UndefRead),
                _ => trap!(TrapKind::TypeConfusion),
            }
        }};
    }
    // fault application + injection counting + register write for one
    // produced value; evaluates to the (possibly flipped) value. The
    // clean variant compiles down to the bare register write.
    macro_rules! produce {
        ($dense:expr, $inj:expr, $dst:expr, $v:expr) => {{
            let mut v = $v;
            if ARMED && $inj {
                let fire = match target_dense {
                    Some(td) => {
                        if td == $dense {
                            let hit = *per_inst_ctr == target_nth;
                            *per_inst_ctr += 1;
                            hit
                        } else {
                            false
                        }
                    }
                    None => *inj_ctr == whole_nth,
                };
                if fire && !*fault_applied {
                    *fault_applied = true;
                    v = flip_bit(v, fault_bit);
                }
                *inj_ctr += 1;
            }
            debug_assert!(reg_base + ($dst as usize) < regs.len());
            // SAFETY: dst is this instruction's id (< num_regs); see the
            // operand-read invariant in `raw!`.
            unsafe {
                *regs.get_unchecked_mut(reg_base + $dst as usize) = v;
            }
            v
        }};
    }
    macro_rules! bin_ii {
        ($op:expr, $x:expr, $y:expr) => {{
            let (x, y) = ($x, $y);
            match $op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => match x.checked_div(y) {
                    Some(v) => v,
                    None => trap!(TrapKind::DivByZero),
                },
                BinOp::Rem => match x.checked_rem(y) {
                    Some(v) => v,
                    None => trap!(TrapKind::DivByZero),
                },
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => x.wrapping_shl(y as u32 & 63),
                BinOp::Shr => x.wrapping_shr(y as u32 & 63),
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
            }
        }};
    }
    macro_rules! bin_ff {
        ($op:expr, $x:expr, $y:expr) => {{
            let (x, y) = ($x, $y);
            match $op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Rem => x % y,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                _ => trap!(TrapKind::TypeConfusion),
            }
        }};
    }
    // generic pair dispatch, identical to the legacy Bin arm
    macro_rules! bin_any {
        ($op:expr, $a:expr, $b:expr) => {
            match ($a, $b) {
                (Value::I(x), Value::I(y)) => Value::I(bin_ii!($op, x, y)),
                (Value::F(x), Value::F(y)) => Value::F(bin_ff!($op, x, y)),
                _ => trap!(TrapKind::TypeConfusion),
            }
        };
    }
    macro_rules! cmp_ff {
        ($op:expr, $x:expr, $y:expr) => {{
            let (x, y) = ($x, $y);
            match $op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }};
    }
    macro_rules! cmp_any {
        ($op:expr, $a:expr, $b:expr) => {
            match ($a, $b) {
                (Value::I(x), Value::I(y)) => cmp_ord($op, x.cmp(&y)),
                (Value::B(x), Value::B(y)) => cmp_ord($op, x.cmp(&y)),
                (Value::F(x), Value::F(y)) => cmp_ff!($op, x, y),
                _ => trap!(TrapKind::TypeConfusion),
            }
        };
    }
    macro_rules! load_word {
        ($ptr:expr, $idx:expr) => {{
            let p = pointer!($ptr);
            let i = int!($idx);
            let (space, base): (&[u64], u64) = if p & STACK_TAG != 0 {
                (&*stack_mem, p & !STACK_TAG)
            } else {
                (&*mem, p)
            };
            // u64 + signed offset; None (negative or overflow) is
            // exactly the legacy i128 out-of-range condition
            let addr = match base.checked_add_signed(i) {
                Some(a) if a < space.len() as u64 => a,
                _ => trap!(TrapKind::OutOfBounds),
            };
            space[addr as usize]
        }};
    }
    // one store, shared by the Store arm and the store-carrying fused
    // ops; operand fetch and trap order match the legacy Store arm
    macro_rules! store_word {
        ($ptr:expr, $idx:expr, $v:expr) => {{
            let p = pointer!($ptr);
            let i = int!($idx);
            let val = raw!($v);
            let (space, base): (&mut Vec<u64>, u64) = if p & STACK_TAG != 0 {
                (&mut *stack_mem, p & !STACK_TAG)
            } else {
                (&mut *mem, p)
            };
            let addr = match base.checked_add_signed(i) {
                Some(a) if a < space.len() as u64 => a,
                _ => trap!(TrapKind::OutOfBounds),
            };
            space[addr as usize] = match val {
                Value::I(x) => x as u64,
                Value::F(x) => x.to_bits(),
                _ => trap!(TrapKind::TypeConfusion),
            };
        }};
    }
    macro_rules! stream_idx {
        ($o:expr) => {{
            let i = int!($o);
            match usize::try_from(i) {
                Ok(ix) => ix,
                Err(_) => trap!(TrapKind::BadIndex),
            }
        }};
    }

    loop {
        // armed phase only: hand off to the clean loop at the first
        // instruction boundary after the fault has fired
        if ARMED && *fault_applied {
            dframes.last_mut().expect("frame stack is non-empty").pc = pc as u32;
            *steps = steps_l;
            return None;
        }
        // `code` is reassigned on call/return while `di` may still be
        // live, so index through a per-iteration copy of the reference
        let cur_code = code;
        debug_assert!(pc < cur_code.len());
        // SAFETY: pc is always a block entry or the sequential successor
        // of a non-terminator; verified IR ends every (non-empty) block
        // with a terminator, so both stay inside `code`.
        let di = unsafe { cur_code.get_unchecked(pc) };
        tick!(di);
        match &di.op {
            DOp::Param { n } => {
                let v = if (*n as usize) < arg_len {
                    args[arg_base + *n as usize]
                } else {
                    Value::Undef
                };
                produce!(di.dense, di.inj, di.dst, v);
                pc += 1;
            }
            DOp::BinII { op, a, b } => {
                let r = bin_ii!(op, int!(a), int!(b));
                produce!(di.dense, di.inj, di.dst, Value::I(r));
                pc += 1;
            }
            DOp::BinFF { op, a, b } => {
                let r = bin_ff!(op, flt!(a), flt!(b));
                produce!(di.dense, di.inj, di.dst, Value::F(r));
                pc += 1;
            }
            DOp::BinAny { op, a, b } => {
                let x = raw!(a);
                let y = raw!(b);
                let r = bin_any!(op, x, y);
                produce!(di.dense, di.inj, di.dst, r);
                pc += 1;
            }
            DOp::Un { op, a } => {
                let v = raw!(a);
                let r = match (op, v) {
                    (UnOp::Neg, Value::I(x)) => Value::I(x.wrapping_neg()),
                    (UnOp::Neg, Value::F(x)) => Value::F(-x),
                    (UnOp::Not, Value::B(x)) => Value::B(!x),
                    (UnOp::Not, Value::I(x)) => Value::I(!x),
                    (UnOp::Abs, Value::I(x)) => Value::I(x.wrapping_abs()),
                    (UnOp::Abs, Value::F(x)) => Value::F(x.abs()),
                    (UnOp::Sqrt, Value::F(x)) => Value::F(x.sqrt()),
                    (UnOp::Sin, Value::F(x)) => Value::F(x.sin()),
                    (UnOp::Cos, Value::F(x)) => Value::F(x.cos()),
                    (UnOp::Exp, Value::F(x)) => Value::F(x.exp()),
                    (UnOp::Log, Value::F(x)) => Value::F(x.ln()),
                    (UnOp::Floor, Value::F(x)) => Value::F(x.floor()),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                pc += 1;
            }
            DOp::CmpII { op, a, b } => {
                let (x, y) = (int!(a), int!(b));
                let r = cmp_ord(*op, x.cmp(&y));
                produce!(di.dense, di.inj, di.dst, Value::B(r));
                pc += 1;
            }
            DOp::CmpFF { op, a, b } => {
                let r = cmp_ff!(op, flt!(a), flt!(b));
                produce!(di.dense, di.inj, di.dst, Value::B(r));
                pc += 1;
            }
            DOp::CmpBB { op, a, b } => {
                let (x, y) = (boolean!(a), boolean!(b));
                let r = cmp_ord(*op, x.cmp(&y));
                produce!(di.dense, di.inj, di.dst, Value::B(r));
                pc += 1;
            }
            DOp::CmpAny { op, a, b } => {
                let x = raw!(a);
                let y = raw!(b);
                let r = cmp_any!(*op, x, y);
                produce!(di.dense, di.inj, di.dst, Value::B(r));
                pc += 1;
            }
            DOp::Select { c, t, e } => {
                let cv = boolean!(c);
                let r = if cv { raw!(t) } else { raw!(e) };
                produce!(di.dense, di.inj, di.dst, r);
                pc += 1;
            }
            DOp::Cast { to, a } => {
                let v = raw!(a);
                let r = match (v, to) {
                    (Value::I(x), Ty::F64) => Value::F(x as f64),
                    (Value::F(x), Ty::I64) => Value::I(x as i64), // saturating
                    (Value::B(x), Ty::I64) => Value::I(x as i64),
                    (Value::I(x), Ty::I64) => Value::I(x),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                pc += 1;
            }
            DOp::Alloc { n } => {
                let n = int!(n);
                if n < 0 {
                    trap!(TrapKind::NegativeAlloc);
                }
                let n = n as u64;
                let base = mem.len() as u64;
                if base + n > mem_limit {
                    trap!(TrapKind::MemLimit);
                }
                mem.resize((base + n) as usize, 0);
                produce!(di.dense, di.inj, di.dst, Value::P(base));
                pc += 1;
            }
            DOp::Salloc { n } => {
                let n = int!(n);
                if n < 0 {
                    trap!(TrapKind::NegativeAlloc);
                }
                let n = n as u64;
                let base = stack_mem.len() as u64;
                if base + n > mem_limit {
                    trap!(TrapKind::MemLimit);
                }
                stack_mem.resize((base + n) as usize, 0);
                produce!(di.dense, di.inj, di.dst, Value::P(STACK_TAG | base));
                pc += 1;
            }
            DOp::Load { ty, ptr, idx } => {
                let bits = load_word!(ptr, idx);
                let r = match ty {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                pc += 1;
            }
            DOp::Store { ptr, idx, v } => {
                store_word!(ptr, idx, v);
                pc += 1;
            }
            DOp::Call {
                callee,
                args: cargs,
            } => {
                if dframes.len() as u32 >= call_depth_limit {
                    trap!(TrapKind::CallDepth);
                }
                // argument fetch uses the caller's registers; push onto
                // the shared arg arena before switching frames
                let new_arg_base = args.len();
                for a in cargs.iter() {
                    let v = raw!(a);
                    args.push(v);
                }
                dframes.last_mut().unwrap().pc = pc as u32; // stay at the call
                let callee = *callee as usize;
                let cf = &dm.funcs[callee];
                let new_reg_base = regs.len();
                regs.resize(
                    new_reg_base + cf.num_regs as usize - cf.consts.len(),
                    Value::Undef,
                );
                regs.extend_from_slice(&cf.consts);
                dframes.push(DFrame {
                    func: callee as u32,
                    pc: cf.block_entry[0],
                    reg_base: new_reg_base,
                    arg_base: new_arg_base,
                    arg_len: cargs.len(),
                    sp_base: stack_mem.len(),
                });
                code = &dm.funcs[callee].code;
                pc = cf.block_entry[0] as usize;
                reg_base = new_reg_base;
                arg_base = new_arg_base;
                arg_len = cargs.len();
            }
            DOp::NArgs => {
                produce!(di.dense, di.inj, di.dst, Value::I(input.args.len() as i64));
                pc += 1;
            }
            DOp::ArgI { n } => {
                let ix = stream_idx!(n);
                match input.args.get(ix) {
                    Some(Scalar::I(v)) => {
                        produce!(di.dense, di.inj, di.dst, Value::I(*v));
                    }
                    Some(Scalar::F(_)) => trap!(TrapKind::ArgTypeMismatch),
                    None => trap!(TrapKind::ArgOutOfRange),
                }
                pc += 1;
            }
            DOp::ArgF { n } => {
                let ix = stream_idx!(n);
                match input.args.get(ix) {
                    Some(Scalar::F(v)) => {
                        produce!(di.dense, di.inj, di.dst, Value::F(*v));
                    }
                    Some(Scalar::I(_)) => trap!(TrapKind::ArgTypeMismatch),
                    None => trap!(TrapKind::ArgOutOfRange),
                }
                pc += 1;
            }
            DOp::DataLen { stream } => {
                let len = input
                    .streams
                    .get(*stream as usize)
                    .map(|s| s.len() as i64)
                    .unwrap_or(0);
                produce!(di.dense, di.inj, di.dst, Value::I(len));
                pc += 1;
            }
            DOp::DataI { stream, idx } => {
                let ix = stream_idx!(idx);
                match input.streams.get(*stream as usize) {
                    Some(Stream::I(v)) => match v.get(ix) {
                        Some(x) => {
                            produce!(di.dense, di.inj, di.dst, Value::I(*x));
                        }
                        None => trap!(TrapKind::StreamOutOfBounds),
                    },
                    Some(Stream::F(_)) => trap!(TrapKind::StreamTypeMismatch),
                    None => trap!(TrapKind::StreamOutOfBounds),
                }
                pc += 1;
            }
            DOp::DataF { stream, idx } => {
                let ix = stream_idx!(idx);
                match input.streams.get(*stream as usize) {
                    Some(Stream::F(v)) => match v.get(ix) {
                        Some(x) => {
                            produce!(di.dense, di.inj, di.dst, Value::F(*x));
                        }
                        None => trap!(TrapKind::StreamOutOfBounds),
                    },
                    Some(Stream::I(_)) => trap!(TrapKind::StreamTypeMismatch),
                    None => trap!(TrapKind::StreamOutOfBounds),
                }
                pc += 1;
            }
            DOp::OutI { v } => {
                let x = int!(v);
                output.push_i(x);
                if output.len() > output_limit {
                    finish!(Termination::StepLimit, None);
                }
                pc += 1;
            }
            DOp::OutF { v } => {
                let x = flt!(v);
                output.push_f(x);
                if output.len() > output_limit {
                    finish!(Termination::StepLimit, None);
                }
                pc += 1;
            }
            DOp::Check { a, b } => {
                let x = raw!(a);
                let y = raw!(b);
                if !bit_equal(x, y) {
                    finish!(Termination::Detected, None);
                }
                pc += 1;
            }
            DOp::Br { target } => {
                pc = *target as usize;
            }
            DOp::CondBr { c, t, e } => {
                let cv = boolean!(c);
                pc = if cv { *t } else { *e } as usize;
            }
            DOp::Ret { v } => {
                let rv = match v {
                    Some(v) => Some(raw!(v)),
                    None => None,
                };
                let finished = dframes.pop().unwrap();
                stack_mem.truncate(finished.sp_base);
                regs.truncate(finished.reg_base);
                args.truncate(finished.arg_base);
                match dframes.last() {
                    None => {
                        finish!(Termination::Exit, rv);
                    }
                    Some(&caller) => {
                        code = &dm.funcs[caller.func as usize].code;
                        pc = caller.pc as usize;
                        reg_base = caller.reg_base;
                        arg_base = caller.arg_base;
                        arg_len = caller.arg_len;
                        // the caller's pc still points at the call (calls
                        // are never fused): its return value materializes
                        // here, so this is its fault-injection point
                        let call = &code[pc];
                        if let Some(v) = rv {
                            produce!(call.dense, call.inj, call.dst, v);
                        }
                        pc += 1;
                    }
                }
            }
            DOp::CmpBr {
                kind,
                op,
                a,
                b,
                t,
                e,
            } => {
                // compare half (metadata on the carrying DInst)
                let r = match kind {
                    CmpKind::II => {
                        let (x, y) = (int!(a), int!(b));
                        cmp_ord(*op, x.cmp(&y))
                    }
                    CmpKind::FF => cmp_ff!(*op, flt!(a), flt!(b)),
                    CmpKind::BB => {
                        let (x, y) = (boolean!(a), boolean!(b));
                        cmp_ord(*op, x.cmp(&y))
                    }
                    CmpKind::Any => {
                        let x = raw!(a);
                        let y = raw!(b);
                        cmp_any!(*op, x, y)
                    }
                };
                let v = produce!(di.dense, di.inj, di.dst, Value::B(r));
                // branch half: a flip on a Bool stays a Bool, so the
                // branch reads the post-fault value exactly as legacy does
                let cv = match v {
                    Value::B(c) => c,
                    _ => unreachable!("bit flip preserves the Bool variant"),
                };
                tick!(di);
                pc = if cv { *t } else { *e } as usize;
            }
            DOp::Load4 {
                ops,
                dsts,
                denses,
                injs,
            } => {
                // first load (metadata on the carrying DInst); later
                // halves fetch addresses after earlier writes land
                let (ty, ptr, idx) = &ops[0];
                let bits = load_word!(ptr, idx);
                let r = match ty {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                for h in 0..3 {
                    tick!(di);
                    let (ty, ptr, idx) = &ops[h + 1];
                    let bits = load_word!(ptr, idx);
                    let r = match ty {
                        Ty::I64 => Value::I(bits as i64),
                        Ty::F64 => Value::F(f64::from_bits(bits)),
                        _ => trap!(TrapKind::TypeConfusion),
                    };
                    produce!(denses[h], injs[h], dsts[h], r);
                }
                pc += 4;
            }
            DOp::LoadCastBinUn { ty, ptr, idx } => {
                // load half (metadata on the carrying DInst)
                let bits = load_word!(ptr, idx);
                let r = match ty {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                // the cast, bin and un execute from their standalone
                // slots — a bounded tag check each, not a dispatch
                // round; every half fetches after the previous write
                tick!(di);
                // SAFETY: decode fused a 4-window of one block, so the
                // three standalone copies follow the carrying slot
                let d2 = unsafe { cur_code.get_unchecked(pc + 1) };
                match &d2.op {
                    DOp::Cast { to, a } => {
                        let v = raw!(a);
                        let r = match (v, to) {
                            (Value::I(x), Ty::F64) => Value::F(x as f64),
                            (Value::F(x), Ty::I64) => Value::I(x as i64), // saturating
                            (Value::B(x), Ty::I64) => Value::I(x as i64),
                            (Value::I(x), Ty::I64) => Value::I(x),
                            _ => trap!(TrapKind::TypeConfusion),
                        };
                        produce!(d2.dense, d2.inj, d2.dst, r);
                    }
                    _ => unreachable!("LoadCastBinUn chains a cast slot"),
                }
                tick!(di);
                // SAFETY: as above
                let d3 = unsafe { cur_code.get_unchecked(pc + 2) };
                match &d3.op {
                    DOp::BinII { op, a, b } => {
                        let r = bin_ii!(op, int!(a), int!(b));
                        produce!(d3.dense, d3.inj, d3.dst, Value::I(r));
                    }
                    DOp::BinFF { op, a, b } => {
                        let r = bin_ff!(op, flt!(a), flt!(b));
                        produce!(d3.dense, d3.inj, d3.dst, Value::F(r));
                    }
                    DOp::BinAny { op, a, b } => {
                        let x = raw!(a);
                        let y = raw!(b);
                        let r = bin_any!(op, x, y);
                        produce!(d3.dense, d3.inj, d3.dst, r);
                    }
                    _ => unreachable!("LoadCastBinUn chains a bin slot"),
                }
                tick!(di);
                // SAFETY: as above
                let d4 = unsafe { cur_code.get_unchecked(pc + 3) };
                match &d4.op {
                    DOp::Un { op, a } => {
                        let v = raw!(a);
                        let r = match (op, v) {
                            (UnOp::Neg, Value::I(x)) => Value::I(x.wrapping_neg()),
                            (UnOp::Neg, Value::F(x)) => Value::F(-x),
                            (UnOp::Not, Value::B(x)) => Value::B(!x),
                            (UnOp::Not, Value::I(x)) => Value::I(!x),
                            (UnOp::Abs, Value::I(x)) => Value::I(x.wrapping_abs()),
                            (UnOp::Abs, Value::F(x)) => Value::F(x.abs()),
                            (UnOp::Sqrt, Value::F(x)) => Value::F(x.sqrt()),
                            (UnOp::Sin, Value::F(x)) => Value::F(x.sin()),
                            (UnOp::Cos, Value::F(x)) => Value::F(x.cos()),
                            (UnOp::Exp, Value::F(x)) => Value::F(x.exp()),
                            (UnOp::Log, Value::F(x)) => Value::F(x.ln()),
                            (UnOp::Floor, Value::F(x)) => Value::F(x.floor()),
                            _ => trap!(TrapKind::TypeConfusion),
                        };
                        produce!(d4.dense, d4.inj, d4.dst, r);
                    }
                    _ => unreachable!("LoadCastBinUn chains a un slot"),
                }
                pc += 4;
            }
            DOp::LoadCmpBr {
                ty,
                ptr,
                idx,
                kind,
                op,
                a,
                b,
                t,
                e,
                cmp_dst,
                cmp_dense,
                cmp_inj,
            } => {
                // load half (metadata on the carrying DInst)
                let bits = load_word!(ptr, idx);
                let r = match ty {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                // compare half: operands fetched after the load write,
                // so a compare of the loaded slot reads the post-fault
                // value exactly as legacy does
                tick!(di);
                let r = match kind {
                    CmpKind::II => {
                        let (x, y) = (int!(a), int!(b));
                        cmp_ord(*op, x.cmp(&y))
                    }
                    CmpKind::FF => cmp_ff!(*op, flt!(a), flt!(b)),
                    CmpKind::BB => {
                        let (x, y) = (boolean!(a), boolean!(b));
                        cmp_ord(*op, x.cmp(&y))
                    }
                    CmpKind::Any => {
                        let x = raw!(a);
                        let y = raw!(b);
                        cmp_any!(*op, x, y)
                    }
                };
                let v = produce!(*cmp_dense, *cmp_inj, *cmp_dst, Value::B(r));
                // branch half: a flip on a Bool stays a Bool
                let cv = match v {
                    Value::B(c) => c,
                    _ => unreachable!("bit flip preserves the Bool variant"),
                };
                tick!(di);
                pc = if cv { *t } else { *e } as usize;
            }
            DOp::BinLoad {
                op,
                a,
                b,
                ty2,
                ptr2,
                idx2,
                ld_dst,
                ld_dense,
                ld_inj,
            } => {
                // bin half (metadata on the carrying DInst)
                let x = raw!(a);
                let y = raw!(b);
                let r = bin_any!(op, x, y);
                produce!(di.dense, di.inj, di.dst, r);
                // load half: address fetched after the bin write
                tick!(di);
                let bits = load_word!(ptr2, idx2);
                let r = match ty2 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(*ld_dense, *ld_inj, *ld_dst, r);
                pc += 2;
            }
            DOp::LoadStore {
                ty,
                ptr1,
                idx1,
                ptr2,
                idx2,
                v,
            } => {
                // load half (metadata on the carrying DInst)
                let bits = load_word!(ptr1, idx1);
                let r = match ty {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                // store half: value fetched after the load write, so a
                // store of the loaded value reads the post-fault value
                tick!(di);
                store_word!(ptr2, idx2, v);
                pc += 2;
            }
            DOp::BinStore {
                op,
                a,
                b,
                ptr,
                idx,
                v,
            } => {
                // bin half (metadata on the carrying DInst)
                let x = raw!(a);
                let y = raw!(b);
                let r = bin_any!(op, x, y);
                produce!(di.dense, di.inj, di.dst, r);
                // store half: value fetched after the bin write, so a
                // store of the bin result reads the post-fault value
                tick!(di);
                store_word!(ptr, idx, v);
                pc += 2;
            }
            DOp::StoreBr {
                ptr,
                idx,
                v,
                target,
            } => {
                // store half (carrying DInst; produces nothing)
                store_word!(ptr, idx, v);
                // branch half: control-only
                tick!(di);
                pc = *target as usize;
            }
            DOp::StoreLoad {
                ptr1,
                idx1,
                v,
                ty2,
                ptr2,
                idx2,
                ld_dst,
                ld_dense,
                ld_inj,
            } => {
                // store half (carrying DInst; produces nothing)
                store_word!(ptr1, idx1, v);
                // load half: address fetched after the store, so a
                // read-back of the stored slot sees the new value
                tick!(di);
                let bits = load_word!(ptr2, idx2);
                let r = match ty2 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(*ld_dense, *ld_inj, *ld_dst, r);
                pc += 2;
            }
            DOp::BinBr { op, a, b, target } => {
                // bin half (metadata on the carrying DInst)
                let x = raw!(a);
                let y = raw!(b);
                let r = bin_any!(op, x, y);
                produce!(di.dense, di.inj, di.dst, r);
                // branch half: control-only
                tick!(di);
                pc = *target as usize;
            }
            DOp::BinBin {
                op1,
                a1,
                b1,
                op2,
                a2,
                b2,
                bin_dst,
                bin_dense,
                bin_inj,
            } => {
                // first half (metadata on the carrying DInst)
                let x = raw!(a1);
                let y = raw!(b1);
                let r = bin_any!(op1, x, y);
                produce!(di.dense, di.inj, di.dst, r);
                // second half fetches after the first write, so a
                // dependent pair reads the post-fault value as legacy does
                tick!(di);
                let x = raw!(a2);
                let y = raw!(b2);
                let r = bin_any!(op2, x, y);
                produce!(*bin_dense, *bin_inj, *bin_dst, r);
                pc += 2;
            }
            DOp::LoadLoad {
                ty1,
                ptr1,
                idx1,
                ty2,
                ptr2,
                idx2,
                ld_dst,
                ld_dense,
                ld_inj,
            } => {
                // first load (metadata on the carrying DInst)
                let bits = load_word!(ptr1, idx1);
                let r = match ty1 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                // second load: address operands fetched after the first
                // write, so indirect chains read the post-fault value
                tick!(di);
                let bits = load_word!(ptr2, idx2);
                let r = match ty2 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(*ld_dense, *ld_inj, *ld_dst, r);
                pc += 2;
            }
            DOp::LoadBin {
                ty,
                op,
                ptr,
                idx,
                other,
                load_lhs,
                bin_dst,
                bin_dense,
                bin_inj,
            } => {
                // load half (metadata on the carrying DInst)
                let bits = load_word!(ptr, idx);
                let lv = match ty {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                let lv = produce!(di.dense, di.inj, di.dst, lv);
                // bin half: reads the post-fault load value; operand fetch
                // order (lhs before rhs) matches legacy
                tick!(di);
                let (x, y) = if *load_lhs {
                    (lv, raw!(other))
                } else {
                    (raw!(other), lv)
                };
                let r = bin_any!(op, x, y);
                produce!(*bin_dense, *bin_inj, *bin_dst, r);
                pc += 2;
            }
            DOp::BinStoreBr {
                op,
                a,
                b,
                ptr,
                idx,
                v,
                target,
            } => {
                // bin half (metadata on the carrying DInst)
                let x = raw!(a);
                let y = raw!(b);
                let r = bin_any!(op, x, y);
                produce!(di.dense, di.inj, di.dst, r);
                // store half: value fetched after the bin write
                tick!(di);
                store_word!(ptr, idx, v);
                // branch half: control-only
                tick!(di);
                pc = *target as usize;
            }
            DOp::LoadLoadBin {
                ty1,
                ptr1,
                idx1,
                ty2,
                ptr2,
                idx2,
                ld_dst,
                ld_dense,
                ld_inj,
            } => {
                // first load (metadata on the carrying DInst)
                let bits = load_word!(ptr1, idx1);
                let r = match ty1 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                // second load: address operands fetched after the first
                // write, so indirect chains read the post-fault value
                tick!(di);
                let bits = load_word!(ptr2, idx2);
                let r = match ty2 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(*ld_dense, *ld_inj, *ld_dst, r);
                // bin third: executes from its standalone slot — a
                // bounded tag check, not a full dispatch round; operand
                // fetch happens after both load writes
                tick!(di);
                // SAFETY: decode fused a 3-window of one block, so the
                // standalone bin copy sits two slots after the carrier
                let d3 = unsafe { cur_code.get_unchecked(pc + 2) };
                match &d3.op {
                    DOp::BinII { op, a, b } => {
                        let r = bin_ii!(op, int!(a), int!(b));
                        produce!(d3.dense, d3.inj, d3.dst, Value::I(r));
                    }
                    DOp::BinFF { op, a, b } => {
                        let r = bin_ff!(op, flt!(a), flt!(b));
                        produce!(d3.dense, d3.inj, d3.dst, Value::F(r));
                    }
                    DOp::BinAny { op, a, b } => {
                        let x = raw!(a);
                        let y = raw!(b);
                        let r = bin_any!(op, x, y);
                        produce!(d3.dense, d3.inj, d3.dst, r);
                    }
                    _ => unreachable!("LoadLoadBin chains a bin slot"),
                }
                pc += 3;
            }
            DOp::BinLoadLoad {
                op,
                a,
                b,
                ty2,
                ptr2,
                idx2,
                ld_dst,
                ld_dense,
                ld_inj,
            } => {
                // bin half (metadata on the carrying DInst)
                let x = raw!(a);
                let y = raw!(b);
                let r = bin_any!(op, x, y);
                produce!(di.dense, di.inj, di.dst, r);
                // first load: address fetched after the bin write
                tick!(di);
                let bits = load_word!(ptr2, idx2);
                let r = match ty2 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(*ld_dense, *ld_inj, *ld_dst, r);
                // second load executes from its standalone slot
                tick!(di);
                // SAFETY: decode fused a 3-window of one block, so the
                // standalone load copy sits two slots after the carrier
                let d3 = unsafe { cur_code.get_unchecked(pc + 2) };
                match &d3.op {
                    DOp::Load { ty, ptr, idx } => {
                        let bits = load_word!(ptr, idx);
                        let r = match ty {
                            Ty::I64 => Value::I(bits as i64),
                            Ty::F64 => Value::F(f64::from_bits(bits)),
                            _ => trap!(TrapKind::TypeConfusion),
                        };
                        produce!(d3.dense, d3.inj, d3.dst, r);
                    }
                    _ => unreachable!("BinLoadLoad chains a load slot"),
                }
                pc += 3;
            }
            DOp::LoadBinBin {
                ty,
                op,
                ptr,
                idx,
                other,
                load_lhs,
                bin_dst,
                bin_dense,
                bin_inj,
                op2,
                a2,
                b2,
                bin2_dst,
                bin2_dense,
                bin2_inj,
            } => {
                // load half (metadata on the carrying DInst)
                let bits = load_word!(ptr, idx);
                let lv = match ty {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                let lv = produce!(di.dense, di.inj, di.dst, lv);
                // first bin: reads the post-fault load value; operand
                // fetch order (lhs before rhs) matches legacy
                tick!(di);
                let (x, y) = if *load_lhs {
                    (lv, raw!(other))
                } else {
                    (raw!(other), lv)
                };
                let r = bin_any!(op, x, y);
                produce!(*bin_dense, *bin_inj, *bin_dst, r);
                // second bin: operands fetched after the first's write
                tick!(di);
                let x = raw!(a2);
                let y = raw!(b2);
                let r = bin_any!(op2, x, y);
                produce!(*bin2_dense, *bin2_inj, *bin2_dst, r);
                pc += 3;
            }
            DOp::LoadBinStoreBr {
                ty,
                ptr,
                idx,
                op,
                a,
                b,
                bin_dst,
                bin_dense,
                bin_inj,
                st_ptr,
                st_idx,
                st_v,
                target,
            } => {
                // load half (metadata on the carrying DInst)
                let bits = load_word!(ptr, idx);
                let r = match ty {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                // bin half: operands fetched after the load's write
                tick!(di);
                let x = raw!(a);
                let y = raw!(b);
                let r = bin_any!(op, x, y);
                produce!(*bin_dense, *bin_inj, *bin_dst, r);
                // store half: value fetched after the bin's write
                tick!(di);
                store_word!(st_ptr, st_idx, st_v);
                // branch half: control-only
                tick!(di);
                pc = *target as usize;
            }
            DOp::LoadLoadBinStoreBr {
                ty1,
                ptr1,
                idx1,
                ty2,
                ptr2,
                idx2,
                ld_dst,
                ld_dense,
                ld_inj,
                target,
            } => {
                // first load (metadata on the carrying DInst)
                let bits = load_word!(ptr1, idx1);
                let r = match ty1 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                // second load: address operands fetched after the first
                // write, so indirect chains read the post-fault value
                tick!(di);
                let bits = load_word!(ptr2, idx2);
                let r = match ty2 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(*ld_dense, *ld_inj, *ld_dst, r);
                // bin and store execute from their standalone slots
                tick!(di);
                // SAFETY: decode fused a 5-window of one block, so the
                // four standalone copies follow the carrying slot
                let d3 = unsafe { cur_code.get_unchecked(pc + 2) };
                match &d3.op {
                    DOp::BinII { op, a, b }
                    | DOp::BinFF { op, a, b }
                    | DOp::BinAny { op, a, b } => {
                        let x = raw!(a);
                        let y = raw!(b);
                        let r = bin_any!(op, x, y);
                        produce!(d3.dense, d3.inj, d3.dst, r);
                    }
                    _ => unreachable!("LoadLoadBinStoreBr chains a bin slot"),
                }
                tick!(di);
                // SAFETY: as above
                let d4 = unsafe { cur_code.get_unchecked(pc + 3) };
                match &d4.op {
                    DOp::Store { ptr, idx, v } => store_word!(ptr, idx, v),
                    _ => unreachable!("LoadLoadBinStoreBr chains a store slot"),
                }
                // branch half: control-only
                tick!(di);
                pc = *target as usize;
            }
            DOp::LoadLoadBinBinStore {
                ty1,
                ptr1,
                idx1,
                ty2,
                ptr2,
                idx2,
                ld_dst,
                ld_dense,
                ld_inj,
            } => {
                // first load (metadata on the carrying DInst)
                let bits = load_word!(ptr1, idx1);
                let r = match ty1 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                // second load
                tick!(di);
                let bits = load_word!(ptr2, idx2);
                let r = match ty2 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(*ld_dense, *ld_inj, *ld_dst, r);
                // two bins and the store execute from standalone slots
                tick!(di);
                // SAFETY: decode fused a 5-window of one block, so the
                // four standalone copies follow the carrying slot
                let d3 = unsafe { cur_code.get_unchecked(pc + 2) };
                match &d3.op {
                    DOp::BinII { op, a, b }
                    | DOp::BinFF { op, a, b }
                    | DOp::BinAny { op, a, b } => {
                        let x = raw!(a);
                        let y = raw!(b);
                        let r = bin_any!(op, x, y);
                        produce!(d3.dense, d3.inj, d3.dst, r);
                    }
                    _ => unreachable!("LoadLoadBinBinStore chains a bin slot"),
                }
                tick!(di);
                // SAFETY: as above
                let d4 = unsafe { cur_code.get_unchecked(pc + 3) };
                match &d4.op {
                    DOp::BinII { op, a, b }
                    | DOp::BinFF { op, a, b }
                    | DOp::BinAny { op, a, b } => {
                        let x = raw!(a);
                        let y = raw!(b);
                        let r = bin_any!(op, x, y);
                        produce!(d4.dense, d4.inj, d4.dst, r);
                    }
                    _ => unreachable!("LoadLoadBinBinStore chains a bin slot"),
                }
                tick!(di);
                // SAFETY: as above
                let d5 = unsafe { cur_code.get_unchecked(pc + 4) };
                match &d5.op {
                    DOp::Store { ptr, idx, v } => store_word!(ptr, idx, v),
                    _ => unreachable!("LoadLoadBinBinStore chains a store slot"),
                }
                pc += 5;
            }
            DOp::LoadLoadBinBinLoad {
                ty1,
                ptr1,
                idx1,
                ty2,
                ptr2,
                idx2,
                ld_dst,
                ld_dense,
                ld_inj,
            } => {
                // first load (metadata on the carrying DInst)
                let bits = load_word!(ptr1, idx1);
                let r = match ty1 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                // second load
                tick!(di);
                let bits = load_word!(ptr2, idx2);
                let r = match ty2 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(*ld_dense, *ld_inj, *ld_dst, r);
                // the bins and the trailing element load execute from
                // standalone slots
                tick!(di);
                // SAFETY: decode fused a 5-window of one block, so the
                // four standalone copies follow the carrying slot
                let d3 = unsafe { cur_code.get_unchecked(pc + 2) };
                match &d3.op {
                    DOp::BinII { op, a, b }
                    | DOp::BinFF { op, a, b }
                    | DOp::BinAny { op, a, b } => {
                        let x = raw!(a);
                        let y = raw!(b);
                        let r = bin_any!(op, x, y);
                        produce!(d3.dense, d3.inj, d3.dst, r);
                    }
                    _ => unreachable!("LoadLoadBinBinLoad chains a bin slot"),
                }
                tick!(di);
                // SAFETY: as above
                let d4 = unsafe { cur_code.get_unchecked(pc + 3) };
                match &d4.op {
                    DOp::BinII { op, a, b }
                    | DOp::BinFF { op, a, b }
                    | DOp::BinAny { op, a, b } => {
                        let x = raw!(a);
                        let y = raw!(b);
                        let r = bin_any!(op, x, y);
                        produce!(d4.dense, d4.inj, d4.dst, r);
                    }
                    _ => unreachable!("LoadLoadBinBinLoad chains a bin slot"),
                }
                tick!(di);
                // SAFETY: as above
                let d5 = unsafe { cur_code.get_unchecked(pc + 4) };
                match &d5.op {
                    DOp::Load { ty, ptr, idx } => {
                        let bits = load_word!(ptr, idx);
                        let r = match ty {
                            Ty::I64 => Value::I(bits as i64),
                            Ty::F64 => Value::F(f64::from_bits(bits)),
                            _ => trap!(TrapKind::TypeConfusion),
                        };
                        produce!(d5.dense, d5.inj, d5.dst, r);
                    }
                    _ => unreachable!("LoadLoadBinBinLoad chains a load slot"),
                }
                pc += 5;
            }
            DOp::LoadLoadBinBinBin {
                ty1,
                ptr1,
                idx1,
                ty2,
                ptr2,
                idx2,
                ld_dst,
                ld_dense,
                ld_inj,
            } => {
                // first load (metadata on the carrying DInst)
                let bits = load_word!(ptr1, idx1);
                let r = match ty1 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(di.dense, di.inj, di.dst, r);
                // second load
                tick!(di);
                let bits = load_word!(ptr2, idx2);
                let r = match ty2 {
                    Ty::I64 => Value::I(bits as i64),
                    Ty::F64 => Value::F(f64::from_bits(bits)),
                    _ => trap!(TrapKind::TypeConfusion),
                };
                produce!(*ld_dense, *ld_inj, *ld_dst, r);
                // the three-op arithmetic chain executes from standalone
                // slots, each fetching after the previous write
                tick!(di);
                // SAFETY: decode fused a 5-window of one block, so the
                // four standalone copies follow the carrying slot
                let d3 = unsafe { cur_code.get_unchecked(pc + 2) };
                match &d3.op {
                    DOp::BinII { op, a, b }
                    | DOp::BinFF { op, a, b }
                    | DOp::BinAny { op, a, b } => {
                        let x = raw!(a);
                        let y = raw!(b);
                        let r = bin_any!(op, x, y);
                        produce!(d3.dense, d3.inj, d3.dst, r);
                    }
                    _ => unreachable!("LoadLoadBinBinBin chains a bin slot"),
                }
                tick!(di);
                // SAFETY: as above
                let d4 = unsafe { cur_code.get_unchecked(pc + 3) };
                match &d4.op {
                    DOp::BinII { op, a, b }
                    | DOp::BinFF { op, a, b }
                    | DOp::BinAny { op, a, b } => {
                        let x = raw!(a);
                        let y = raw!(b);
                        let r = bin_any!(op, x, y);
                        produce!(d4.dense, d4.inj, d4.dst, r);
                    }
                    _ => unreachable!("LoadLoadBinBinBin chains a bin slot"),
                }
                tick!(di);
                // SAFETY: as above
                let d5 = unsafe { cur_code.get_unchecked(pc + 4) };
                match &d5.op {
                    DOp::BinII { op, a, b }
                    | DOp::BinFF { op, a, b }
                    | DOp::BinAny { op, a, b } => {
                        let x = raw!(a);
                        let y = raw!(b);
                        let r = bin_any!(op, x, y);
                        produce!(d5.dense, d5.inj, d5.dst, r);
                    }
                    _ => unreachable!("LoadLoadBinBinBin chains a bin slot"),
                }
                pc += 5;
            }
        }
    }
}
