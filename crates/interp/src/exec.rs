//! The execution engine.
//!
//! A straightforward explicit-stack interpreter over the IR. The inner loop
//! avoids allocation: register files are reused per frame, per-instruction
//! static data (cycle cost, injectability, dense numbering) is precomputed
//! in [`Interp::new`], and profiling is branch-guarded so fault-injection
//! runs (which dominate total experiment time and need no profile) stay on
//! the fast path.
//!
//! All mutable machine state lives in [`MachineState`], which makes two
//! things cheap: snapshotting it mid-run into a [`Snapshot`] (see
//! [`Interp::run_with_checkpoints`]) and resuming a faulty run from a
//! snapshot instead of from scratch (see [`Interp::resume`]). Because the
//! machine is fully deterministic, a resumed run is bit-identical to a
//! from-scratch run with the same fault.

use crate::decode::{self, DecodedModule, ExecScratch};
use crate::fault::{flip_bit, FaultSpec, FaultTarget};
use crate::profile::Profile;
use crate::snapshot::{CheckpointCollector, CheckpointConfig, CheckpointStore, Snapshot};
use crate::value::{Output, ProgInput, Scalar, Stream, Value};
use minpsid_ir::{BinOp, BlockId, CmpOp, CostModel, FuncId, InstKind, Module, Ty, UnOp};

/// Limits and switches for one execution.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Maximum dynamic instructions; exceeding it terminates with
    /// [`Termination::StepLimit`] (classified as a hang by the campaign
    /// layer, which sets this to a multiple of the golden run's steps).
    pub step_limit: u64,
    /// Maximum linear-memory cells (8 bytes each).
    pub mem_limit: u64,
    /// Maximum call depth.
    pub call_depth_limit: u32,
    /// Maximum output items (a fault can turn a bounded loop into an
    /// output flood; the limit keeps campaigns memory-safe).
    pub output_limit: usize,
    /// Collect a [`Profile`].
    pub profile: bool,
    /// Record every register write as a [`TraceEvent`] (used by the
    /// error-propagation analysis; costs memory proportional to steps).
    pub trace: bool,
    /// Per-execution wall-clock budget in milliseconds; 0 disables it.
    /// Exceeding it terminates with [`Termination::WallClock`] — a last
    /// line of defence behind the deterministic step limit, for faults
    /// that make individual steps pathologically slow rather than many.
    /// Off by default: timing-dependent outcomes are not reproducible, so
    /// campaigns that must replay bit-identically leave this at 0.
    pub wall_clock_ms: u64,
    pub cost_model: CostModel,
    /// Which interpreter loop to use; see [`DispatchMode`]. Both loops are
    /// bit-identical, so this is a performance knob, not a semantic one.
    pub dispatch: DispatchMode,
}

/// Which interpreter loop executes a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// The pre-decoded index-dispatch loop (see [`crate::decode`]) — the
    /// campaign hot path. Runs that need a profile, a trace, or checkpoint
    /// capture fall back to the legacy loop automatically: those
    /// observers only exist there, and the golden run they belong to is a
    /// once-per-campaign cost.
    #[default]
    Decoded,
    /// The original per-step IR tree walk.
    Legacy,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            step_limit: 200_000_000,
            mem_limit: 1 << 24,
            call_depth_limit: 512,
            output_limit: 1 << 20,
            profile: false,
            trace: false,
            wall_clock_ms: 0,
            cost_model: CostModel::default(),
            dispatch: DispatchMode::default(),
        }
    }
}

/// One register write: which static instruction (dense index) produced
/// which value. The sequence of trace events is the program's dataflow
/// history; diffing a faulty run's trace against the golden one shows how
/// an error propagates (the paper's §IV root-cause methodology).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Dense module-wide index of the producing instruction.
    pub dense: u32,
    pub value: Value,
}

/// Why an execution trapped (→ "crash" in the paper's outcome taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    OutOfBounds,
    DivByZero,
    NegativeAlloc,
    MemLimit,
    CallDepth,
    UndefRead,
    ArgOutOfRange,
    ArgTypeMismatch,
    StreamOutOfBounds,
    StreamTypeMismatch,
    TypeConfusion,
    /// An arg/stream index outside the `usize` range (e.g. negative).
    /// Distinct from the out-of-range kinds so that a corrupted index is
    /// never silently aliased to a plain miss.
    BadIndex,
}

/// How an execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Normal exit from the entry function.
    Exit,
    /// Hardware-exception-like failure.
    Trap(TrapKind),
    /// A duplication check caught a mismatch (SID detection event).
    Detected,
    /// Step or output budget exhausted (hang).
    StepLimit,
    /// Wall-clock budget exhausted (hang; see [`ExecConfig::wall_clock_ms`]).
    WallClock,
}

/// The result of one execution.
#[derive(Debug, Clone)]
pub struct ExecResult {
    pub termination: Termination,
    pub output: Output,
    pub profile: Option<Profile>,
    /// Dynamic instructions executed.
    pub steps: u64,
    /// Whether the configured fault actually triggered (a fault aimed past
    /// the end of the dynamic trace never fires).
    pub fault_applied: bool,
    /// Entry function's return value on normal exit.
    pub ret: Option<Value>,
    /// Register-write trace (only with [`ExecConfig::trace`]).
    pub trace: Option<Vec<TraceEvent>>,
    /// Step counter at the snapshot this run resumed from (`None` for
    /// from-scratch runs). The per-restore telemetry surface: callers
    /// derive steps-skipped (`resumed_at`) vs steps-executed
    /// (`steps - resumed_at`) per injection from it.
    pub resumed_at: Option<u64>,
}

impl ExecResult {
    /// Convenience for tests and examples.
    pub fn exited(&self) -> bool {
        self.termination == Termination::Exit
    }
}

/// Tag bit distinguishing stack (`salloc`) pointers from heap (`alloc`)
/// pointers. A bit flip on the tag moves the pointer into the other space,
/// which — like any pointer corruption — yields a wrong-address access or
/// an out-of-bounds trap.
pub const STACK_TAG: u64 = 1 << 62;

#[derive(Debug, Clone)]
pub(crate) struct Frame {
    pub(crate) func: FuncId,
    pub(crate) block: BlockId,
    /// Index into the current block's instruction list.
    pub(crate) pos: usize,
    pub(crate) regs: Vec<Value>,
    pub(crate) args: Vec<Value>,
    /// Stack-memory watermark to restore on return (frees `salloc`s).
    pub(crate) sp_base: usize,
}

/// Everything the interpreter carries from one instruction to the next:
/// the frame stack, both linear memories, the output stream, and the step
/// and injection counters. Snapshots clone this wholesale; resumed runs
/// start from a restored copy. The profile and trace are deliberately
/// *not* part of it — they are observers, not machine state, and resumed
/// runs re-collect them for the suffix only.
///
/// Campaigns keep one `MachineState` per worker thread as reusable scratch
/// (see [`Interp::resume_with`]): restoring into an existing state reuses
/// its memory buffers instead of reallocating per injection.
#[derive(Debug, Default)]
pub struct MachineState {
    pub(crate) frames: Vec<Frame>,
    pub(crate) mem: Vec<u64>,
    pub(crate) stack_mem: Vec<u64>,
    pub(crate) output: Output,
    pub(crate) steps: u64,
    /// Global count of injectable value productions so far (the
    /// `NthDynamic` population index).
    pub(crate) inj_ctr: u64,
    /// Count of injectable value productions by the armed `NthOfInst`
    /// target instruction. Meaningless without an armed fault; restored
    /// from a snapshot's dense count vector on resume.
    pub(crate) per_inst_ctr: u64,
    pub(crate) fault_applied: bool,
}

impl Clone for MachineState {
    fn clone(&self) -> Self {
        MachineState {
            frames: self.frames.clone(),
            mem: self.mem.clone(),
            stack_mem: self.stack_mem.clone(),
            output: self.output.clone(),
            steps: self.steps,
            inj_ctr: self.inj_ctr,
            per_inst_ctr: self.per_inst_ctr,
            fault_applied: self.fault_applied,
        }
    }

    /// Buffer-reusing restore: `Vec::clone_from` keeps existing
    /// allocations, which is what makes per-worker scratch states pay off
    /// in campaigns.
    fn clone_from(&mut self, src: &Self) {
        self.frames.clone_from(&src.frames);
        self.mem.clone_from(&src.mem);
        self.stack_mem.clone_from(&src.stack_mem);
        self.output.items.clone_from(&src.output.items);
        self.steps = src.steps;
        self.inj_ctr = src.inj_ctr;
        self.per_inst_ctr = src.per_inst_ctr;
        self.fault_applied = src.fault_applied;
    }
}

impl MachineState {
    /// Clear to the pre-run state (no frames) without touching capacity.
    pub(crate) fn reset(&mut self) {
        self.frames.clear();
        self.mem.clear();
        self.stack_mem.clear();
        self.output.items.clear();
        self.steps = 0;
        self.inj_ctr = 0;
        self.per_inst_ctr = 0;
        self.fault_applied = false;
    }

    /// Reset to the program entry point: one frame at the entry function's
    /// first block, empty memories and output, zeroed counters.
    pub(crate) fn start(&mut self, m: &Module) {
        let entry_fn = m.func(m.entry);
        self.reset();
        self.frames.push(Frame {
            func: m.entry,
            block: BlockId(0),
            pos: 0,
            regs: vec![Value::Undef; entry_fn.insts.len()],
            args: vec![],
            sp_base: 0,
        });
    }

    /// Rough heap footprint in bytes, for checkpoint memory budgeting.
    pub(crate) fn approx_bytes(&self) -> usize {
        let frames: usize = self
            .frames
            .iter()
            .map(|f| (f.regs.len() + f.args.len()) * std::mem::size_of::<Value>() + 64)
            .sum();
        frames
            + (self.mem.len() + self.stack_mem.len()) * 8
            + self.output.items.len() * std::mem::size_of::<crate::value::OutputItem>()
            + 64
    }
}

/// An interpreter bound to one module. Cheap to construct; immutable and
/// shareable across threads (campaigns clone nothing but the config).
pub struct Interp<'m> {
    module: &'m Module,
    config: ExecConfig,
    /// Dense numbering base per function.
    base: Vec<usize>,
    /// Per static instruction (dense): cycle cost.
    cost: Vec<u64>,
    /// Per static instruction (dense): injectable flag.
    injectable: Vec<bool>,
    /// The module lowered for pre-decoded dispatch (see [`crate::decode`]).
    decoded: DecodedModule,
}

impl<'m> Interp<'m> {
    pub fn new(module: &'m Module, config: ExecConfig) -> Self {
        let mut base = Vec::with_capacity(module.funcs.len());
        let mut acc = 0usize;
        let mut cost = Vec::with_capacity(module.num_insts());
        let mut injectable = Vec::with_capacity(module.num_insts());
        for f in &module.funcs {
            base.push(acc);
            acc += f.insts.len();
            for inst in &f.insts {
                cost.push(config.cost_model.cycles(&inst.kind, inst.ty));
                injectable.push(inst.injectable());
            }
        }
        let decoded = decode::decode_module(module);
        Interp {
            module,
            config,
            base,
            cost,
            injectable,
            decoded,
        }
    }

    pub(crate) fn decoded(&self) -> &DecodedModule {
        &self.decoded
    }

    /// Runs that need the profile, trace or checkpoint observers use the
    /// legacy loop regardless of the configured [`DispatchMode`].
    fn use_legacy(&self) -> bool {
        self.config.profile || self.config.trace || self.config.dispatch == DispatchMode::Legacy
    }

    pub fn module(&self) -> &'m Module {
        self.module
    }

    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Dense module-wide index of a static instruction.
    pub fn dense_index(&self, gid: minpsid_ir::GlobalInstId) -> usize {
        self.base[gid.func.index()] + gid.inst.index()
    }

    /// Execute without faults.
    pub fn run(&self, input: &ProgInput) -> ExecResult {
        if self.use_legacy() {
            let mut st = MachineState::default();
            st.start(self.module);
            self.run_inner(&mut st, input, None, None)
        } else {
            let mut scratch = ExecScratch::default();
            scratch.start_decoded(&self.decoded);
            decode::run_decoded(self, &mut scratch, input, None)
        }
    }

    /// Execute with a single fault armed.
    pub fn run_with_fault(&self, input: &ProgInput, fault: FaultSpec) -> ExecResult {
        let mut scratch = ExecScratch::default();
        self.run_with_fault_in(&mut scratch, input, fault)
    }

    /// [`Interp::run_with_fault`] into caller-provided scratch, reusing
    /// every buffer (frames, register/argument arenas, memories, output).
    /// Campaign workers hold one [`ExecScratch`] each, making injection
    /// runs allocation-free after warmup.
    pub fn run_with_fault_in(
        &self,
        scratch: &mut ExecScratch,
        input: &ProgInput,
        fault: FaultSpec,
    ) -> ExecResult {
        if self.use_legacy() {
            scratch.st.start(self.module);
            self.run_inner(&mut scratch.st, input, Some(fault), None)
        } else {
            scratch.start_decoded(&self.decoded);
            decode::run_decoded(self, scratch, input, Some(fault))
        }
    }

    /// Execute without faults, capturing a [`Snapshot`] every `interval`
    /// dynamic instructions (with the default memory budget). The result
    /// is bit-identical to [`Interp::run`].
    pub fn run_with_checkpoints(
        &self,
        input: &ProgInput,
        interval: u64,
    ) -> (ExecResult, Vec<Snapshot>) {
        self.run_with_checkpoint_config(
            input,
            CheckpointConfig {
                interval,
                ..CheckpointConfig::default()
            },
        )
    }

    /// [`Interp::run_with_checkpoints`] with an explicit memory budget.
    pub fn run_with_checkpoint_config(
        &self,
        input: &ProgInput,
        cfg: CheckpointConfig,
    ) -> (ExecResult, Vec<Snapshot>) {
        let mut st = MachineState::default();
        st.start(self.module);
        let mut coll = CheckpointCollector::new(cfg, self.module.num_insts());
        let r = self.run_inner(&mut st, input, None, Some(&mut coll));
        (r, coll.into_snapshots())
    }

    /// [`Interp::run_with_checkpoint_config`] returning the
    /// [`CheckpointStore`] directly: delta-encoded checkpoints stay
    /// encoded instead of being materialized. This is what campaigns use.
    pub fn run_with_checkpoint_store(
        &self,
        input: &ProgInput,
        cfg: CheckpointConfig,
    ) -> (ExecResult, CheckpointStore) {
        let mut st = MachineState::default();
        st.start(self.module);
        let mut coll = CheckpointCollector::new(cfg, self.module.num_insts());
        let r = self.run_inner(&mut st, input, None, Some(&mut coll));
        (r, coll.into_store())
    }

    /// Resume from a snapshot with a fault armed, executing only the
    /// suffix. Bit-identical to [`Interp::run_with_fault`] with the same
    /// input and fault, provided the snapshot came from a golden
    /// (fault-free) run of the same module and input and the fault's
    /// target has not yet executed at the snapshot (use
    /// [`CheckpointStore::nearest_for_dynamic`] /
    /// [`CheckpointStore::nearest_for_inst`] to pick one).
    ///
    /// The `profile` and `trace` of the result, when enabled, cover the
    /// suffix only.
    ///
    /// [`CheckpointStore::nearest_for_dynamic`]: crate::CheckpointStore::nearest_for_dynamic
    /// [`CheckpointStore::nearest_for_inst`]: crate::CheckpointStore::nearest_for_inst
    pub fn resume(&self, snap: &Snapshot, input: &ProgInput, fault: FaultSpec) -> ExecResult {
        let mut st = MachineState::default();
        self.resume_with(&mut st, snap, input, fault)
    }

    /// [`Interp::resume`] into caller-provided scratch state, reusing its
    /// buffers. Campaign workers hold one `MachineState` each and restore
    /// into it per injection.
    pub fn resume_with(
        &self,
        st: &mut MachineState,
        snap: &Snapshot,
        input: &ProgInput,
        fault: FaultSpec,
    ) -> ExecResult {
        st.clone_from(&snap.state);
        // `NthOfInst` counts executions of one static instruction; the
        // golden run that captured the snapshot had no armed target, so
        // restore the counter from the snapshot's dense count vector.
        if let FaultTarget::NthOfInst(gid, _) = fault.target {
            st.per_inst_ctr = snap.inj_count_of(self.dense_index(gid));
        } else {
            st.per_inst_ctr = 0;
        }
        st.fault_applied = false;
        if self.use_legacy() {
            self.run_inner(st, input, Some(fault), None)
        } else {
            // compat path: borrow the caller's state into a temporary
            // scratch (swap is pointer-sized), run decoded, swap back
            let mut scratch = ExecScratch::default();
            std::mem::swap(&mut scratch.st, st);
            scratch.enter_decoded(&self.decoded);
            let r = decode::run_decoded(self, &mut scratch, input, Some(fault));
            std::mem::swap(&mut scratch.st, st);
            r
        }
    }

    /// Resume from checkpoint `idx` of a [`CheckpointStore`] into
    /// caller-provided scratch. This is the campaign hot path: the store
    /// materializes the checkpoint directly into the scratch state
    /// (applying delta chains in place when the store is delta-encoded)
    /// and the decoded loop runs the suffix without allocating.
    pub fn resume_from(
        &self,
        scratch: &mut ExecScratch,
        store: &CheckpointStore,
        idx: usize,
        input: &ProgInput,
        fault: FaultSpec,
    ) -> ExecResult {
        store.restore_into(idx, &mut scratch.st);
        if let FaultTarget::NthOfInst(gid, _) = fault.target {
            scratch.st.per_inst_ctr = store.inj_count_at(idx, self.dense_index(gid));
        } else {
            scratch.st.per_inst_ctr = 0;
        }
        scratch.st.fault_applied = false;
        if self.use_legacy() {
            self.run_inner(&mut scratch.st, input, Some(fault), None)
        } else {
            scratch.enter_decoded(&self.decoded);
            decode::run_decoded(self, scratch, input, Some(fault))
        }
    }

    fn run_inner(
        &self,
        st: &mut MachineState,
        input: &ProgInput,
        fault: Option<FaultSpec>,
        mut ckpt: Option<&mut CheckpointCollector>,
    ) -> ExecResult {
        let m = self.module;
        let mut profile = self.config.profile.then(|| Profile::for_module(m));
        let mut trace: Option<Vec<TraceEvent>> = self.config.trace.then(Vec::new);
        let deadline = (self.config.wall_clock_ms > 0).then(|| {
            std::time::Instant::now() + std::time::Duration::from_millis(self.config.wall_clock_ms)
        });
        // A resumed run enters with the snapshot's step counter already set.
        let resumed_at = (st.steps > 0).then_some(st.steps);

        // fault target precomputation
        let (target_dense, target_nth, whole_nth) = match fault {
            Some(FaultSpec {
                target: FaultTarget::NthOfInst(gid, n),
                ..
            }) => (Some(self.dense_index(gid)), n, u64::MAX),
            Some(FaultSpec {
                target: FaultTarget::NthDynamic(n),
                ..
            }) => (None, 0, n),
            None => (None, 0, u64::MAX),
        };
        let fault_armed = fault.is_some();
        let fault_bit = fault.map(|f| f.bit).unwrap_or(0);

        // A fresh run enters the entry block; a resumed run (steps > 0)
        // re-enters mid-block, and its suffix profile counts no extra
        // block entry.
        if st.steps == 0 {
            if let Some(p) = profile.as_mut() {
                p.block_counts[m.entry.index()][0] += 1;
            }
        }

        'outer: loop {
            // Hot loop: one instruction per iteration of this inner loop.
            loop {
                // Checkpoint capture sits between instructions, before any
                // borrow of the frame stack: everything the next
                // instruction will observe is in `st`.
                if let Some(c) = ckpt.as_deref_mut() {
                    if c.due(st.steps) {
                        c.capture(st);
                    }
                }

                // Disjoint field borrows: the frame stack, memories, and
                // counters are all mutated in one iteration.
                let MachineState {
                    frames: stack,
                    mem,
                    stack_mem,
                    output,
                    steps,
                    inj_ctr,
                    per_inst_ctr,
                    fault_applied,
                } = &mut *st;

                macro_rules! finish {
                    ($term:expr, $ret:expr) => {
                        return ExecResult {
                            termination: $term,
                            output: std::mem::take(output),
                            profile: profile.map(|mut p: Profile| {
                                p.total_insts = *steps;
                                p.injectable_execs = *inj_ctr;
                                p.total_cycles = p.inst_cycles.iter().sum();
                                p
                            }),
                            steps: *steps,
                            fault_applied: *fault_applied,
                            ret: $ret,
                            trace,
                            resumed_at,
                        }
                    };
                }
                macro_rules! trap {
                    ($kind:expr) => {
                        finish!(Termination::Trap($kind), None)
                    };
                }

                let depth = stack.len() as u32;
                let frame = stack.last_mut().unwrap();
                let func = &m.funcs[frame.func.index()];
                let block = &func.blocks[frame.block.index()];
                debug_assert!(frame.pos < block.insts.len(), "fell off block end");
                let iid = block.insts[frame.pos];
                let inst = &func.insts[iid.index()];
                let dense = self.base[frame.func.index()] + iid.index();

                *steps += 1;
                if *steps > self.config.step_limit {
                    finish!(Termination::StepLimit, None);
                }
                // Clock checks are ~100x an interpreted step, so poll the
                // deadline coarsely; 8192 steps is far under a millisecond.
                if *steps & 8191 == 0 {
                    if let Some(d) = deadline {
                        if std::time::Instant::now() >= d {
                            finish!(Termination::WallClock, None);
                        }
                    }
                }
                if let Some(p) = profile.as_mut() {
                    p.inst_counts[dense] += 1;
                    p.inst_cycles[dense] += self.cost[dense];
                    // Per-section dynamic range: steps are 1-based here
                    // (incremented above), so 0 doubles as "never ran".
                    let fidx = frame.func.index();
                    if p.sec_first_step[fidx] == 0 {
                        p.sec_first_step[fidx] = *steps;
                    }
                    p.sec_last_step[fidx] = *steps;
                }

                // operand fetch
                macro_rules! val {
                    ($o:expr) => {{
                        let v = match $o {
                            minpsid_ir::Operand::Value(id) => frame.regs[id.index()],
                            minpsid_ir::Operand::ConstI(c) => Value::I(*c),
                            minpsid_ir::Operand::ConstF(c) => Value::F(*c),
                            minpsid_ir::Operand::ConstB(c) => Value::B(*c),
                        };
                        if matches!(v, Value::Undef) {
                            trap!(TrapKind::UndefRead);
                        }
                        v
                    }};
                }
                macro_rules! int {
                    ($o:expr) => {
                        match val!($o) {
                            Value::I(v) => v,
                            _ => trap!(TrapKind::TypeConfusion),
                        }
                    };
                }
                macro_rules! flt {
                    ($o:expr) => {
                        match val!($o) {
                            Value::F(v) => v,
                            _ => trap!(TrapKind::TypeConfusion),
                        }
                    };
                }
                macro_rules! boolean {
                    ($o:expr) => {
                        match val!($o) {
                            Value::B(v) => v,
                            _ => trap!(TrapKind::TypeConfusion),
                        }
                    };
                }
                macro_rules! ptr {
                    ($o:expr) => {
                        match val!($o) {
                            Value::P(v) => v,
                            _ => trap!(TrapKind::TypeConfusion),
                        }
                    };
                }

                // compute the result value (None for void / control)
                let mut result: Option<Value> = None;
                let mut control: Option<Control> = None;

                match &inst.kind {
                    InstKind::Param { n } => {
                        let v = frame.args.get(*n as usize).copied().unwrap_or(Value::Undef);
                        result = Some(v);
                    }
                    InstKind::Bin { op, lhs, rhs } => {
                        let a = val!(lhs);
                        let b = val!(rhs);
                        match (a, b) {
                            (Value::I(x), Value::I(y)) => {
                                let r = match op {
                                    BinOp::Add => x.wrapping_add(y),
                                    BinOp::Sub => x.wrapping_sub(y),
                                    BinOp::Mul => x.wrapping_mul(y),
                                    BinOp::Div => match x.checked_div(y) {
                                        Some(v) => v,
                                        None => trap!(TrapKind::DivByZero),
                                    },
                                    BinOp::Rem => match x.checked_rem(y) {
                                        Some(v) => v,
                                        None => trap!(TrapKind::DivByZero),
                                    },
                                    BinOp::And => x & y,
                                    BinOp::Or => x | y,
                                    BinOp::Xor => x ^ y,
                                    BinOp::Shl => x.wrapping_shl(y as u32 & 63),
                                    BinOp::Shr => x.wrapping_shr(y as u32 & 63),
                                    BinOp::Min => x.min(y),
                                    BinOp::Max => x.max(y),
                                };
                                result = Some(Value::I(r));
                            }
                            (Value::F(x), Value::F(y)) => {
                                let r = match op {
                                    BinOp::Add => x + y,
                                    BinOp::Sub => x - y,
                                    BinOp::Mul => x * y,
                                    BinOp::Div => x / y,
                                    BinOp::Rem => x % y,
                                    BinOp::Min => x.min(y),
                                    BinOp::Max => x.max(y),
                                    _ => trap!(TrapKind::TypeConfusion),
                                };
                                result = Some(Value::F(r));
                            }
                            _ => trap!(TrapKind::TypeConfusion),
                        }
                    }
                    InstKind::Un { op, arg } => {
                        let v = val!(arg);
                        let r = match (op, v) {
                            (UnOp::Neg, Value::I(x)) => Value::I(x.wrapping_neg()),
                            (UnOp::Neg, Value::F(x)) => Value::F(-x),
                            (UnOp::Not, Value::B(x)) => Value::B(!x),
                            (UnOp::Not, Value::I(x)) => Value::I(!x),
                            (UnOp::Abs, Value::I(x)) => Value::I(x.wrapping_abs()),
                            (UnOp::Abs, Value::F(x)) => Value::F(x.abs()),
                            (UnOp::Sqrt, Value::F(x)) => Value::F(x.sqrt()),
                            (UnOp::Sin, Value::F(x)) => Value::F(x.sin()),
                            (UnOp::Cos, Value::F(x)) => Value::F(x.cos()),
                            (UnOp::Exp, Value::F(x)) => Value::F(x.exp()),
                            (UnOp::Log, Value::F(x)) => Value::F(x.ln()),
                            (UnOp::Floor, Value::F(x)) => Value::F(x.floor()),
                            _ => trap!(TrapKind::TypeConfusion),
                        };
                        result = Some(r);
                    }
                    InstKind::Cmp { op, lhs, rhs } => {
                        let a = val!(lhs);
                        let b = val!(rhs);
                        let r = match (a, b) {
                            (Value::I(x), Value::I(y)) => cmp_ord(*op, x.cmp(&y)),
                            (Value::B(x), Value::B(y)) => cmp_ord(*op, x.cmp(&y)),
                            (Value::F(x), Value::F(y)) => match op {
                                CmpOp::Eq => x == y,
                                CmpOp::Ne => x != y,
                                CmpOp::Lt => x < y,
                                CmpOp::Le => x <= y,
                                CmpOp::Gt => x > y,
                                CmpOp::Ge => x >= y,
                            },
                            _ => trap!(TrapKind::TypeConfusion),
                        };
                        result = Some(Value::B(r));
                    }
                    InstKind::Select {
                        cond,
                        then_v,
                        else_v,
                    } => {
                        let c = boolean!(cond);
                        result = Some(if c { val!(then_v) } else { val!(else_v) });
                    }
                    InstKind::Cast { to, arg } => {
                        let v = val!(arg);
                        let r = match (v, to) {
                            (Value::I(x), Ty::F64) => Value::F(x as f64),
                            (Value::F(x), Ty::I64) => Value::I(x as i64), // saturating
                            (Value::B(x), Ty::I64) => Value::I(x as i64),
                            (Value::I(x), Ty::I64) => Value::I(x),
                            _ => trap!(TrapKind::TypeConfusion),
                        };
                        result = Some(r);
                    }
                    InstKind::Alloc { count } => {
                        let n = int!(count);
                        if n < 0 {
                            trap!(TrapKind::NegativeAlloc);
                        }
                        let n = n as u64;
                        let base = mem.len() as u64;
                        if base + n > self.config.mem_limit {
                            trap!(TrapKind::MemLimit);
                        }
                        mem.resize((base + n) as usize, 0);
                        result = Some(Value::P(base));
                    }
                    InstKind::Salloc { count } => {
                        let n = int!(count);
                        if n < 0 {
                            trap!(TrapKind::NegativeAlloc);
                        }
                        let n = n as u64;
                        let base = stack_mem.len() as u64;
                        if base + n > self.config.mem_limit {
                            trap!(TrapKind::MemLimit);
                        }
                        stack_mem.resize((base + n) as usize, 0);
                        result = Some(Value::P(STACK_TAG | base));
                    }
                    InstKind::Load { ptr, idx, ty } => {
                        let p = ptr!(ptr);
                        let i = int!(idx);
                        let (space, base): (&[u64], u64) = if p & STACK_TAG != 0 {
                            (&*stack_mem, p & !STACK_TAG)
                        } else {
                            (&*mem, p)
                        };
                        let addr = base as i128 + i as i128;
                        if addr < 0 || addr >= space.len() as i128 {
                            trap!(TrapKind::OutOfBounds);
                        }
                        let bits = space[addr as usize];
                        result = Some(match ty {
                            Ty::I64 => Value::I(bits as i64),
                            Ty::F64 => Value::F(f64::from_bits(bits)),
                            _ => trap!(TrapKind::TypeConfusion),
                        });
                    }
                    InstKind::Store { ptr, idx, value } => {
                        let p = ptr!(ptr);
                        let i = int!(idx);
                        let v = val!(value);
                        let (space, base): (&mut Vec<u64>, u64) = if p & STACK_TAG != 0 {
                            (&mut *stack_mem, p & !STACK_TAG)
                        } else {
                            (&mut *mem, p)
                        };
                        let addr = base as i128 + i as i128;
                        if addr < 0 || addr >= space.len() as i128 {
                            trap!(TrapKind::OutOfBounds);
                        }
                        space[addr as usize] = match v {
                            Value::I(x) => x as u64,
                            Value::F(x) => x.to_bits(),
                            _ => trap!(TrapKind::TypeConfusion),
                        };
                    }
                    InstKind::Call { func: callee, args } => {
                        if depth >= self.config.call_depth_limit {
                            trap!(TrapKind::CallDepth);
                        }
                        let mut argv = Vec::with_capacity(args.len());
                        for a in args {
                            argv.push(val!(a));
                        }
                        control = Some(Control::Call(*callee, argv));
                    }
                    InstKind::NArgs => {
                        result = Some(Value::I(input.args.len() as i64));
                    }
                    InstKind::ArgI { n } => {
                        let i = int!(n);
                        // a negative (or otherwise unrepresentable) index
                        // traps distinctly instead of aliasing to a miss
                        let Ok(ix) = usize::try_from(i) else {
                            trap!(TrapKind::BadIndex)
                        };
                        match input.args.get(ix) {
                            Some(Scalar::I(v)) => result = Some(Value::I(*v)),
                            Some(Scalar::F(_)) => trap!(TrapKind::ArgTypeMismatch),
                            None => trap!(TrapKind::ArgOutOfRange),
                        }
                    }
                    InstKind::ArgF { n } => {
                        let i = int!(n);
                        let Ok(ix) = usize::try_from(i) else {
                            trap!(TrapKind::BadIndex)
                        };
                        match input.args.get(ix) {
                            Some(Scalar::F(v)) => result = Some(Value::F(*v)),
                            Some(Scalar::I(_)) => trap!(TrapKind::ArgTypeMismatch),
                            None => trap!(TrapKind::ArgOutOfRange),
                        }
                    }
                    InstKind::DataLen { stream } => {
                        let len = input
                            .streams
                            .get(*stream as usize)
                            .map(|s| s.len() as i64)
                            .unwrap_or(0);
                        result = Some(Value::I(len));
                    }
                    InstKind::DataI { stream, idx } => {
                        let i = int!(idx);
                        let Ok(ix) = usize::try_from(i) else {
                            trap!(TrapKind::BadIndex)
                        };
                        match input.streams.get(*stream as usize) {
                            Some(Stream::I(v)) => match v.get(ix) {
                                Some(x) => result = Some(Value::I(*x)),
                                None => trap!(TrapKind::StreamOutOfBounds),
                            },
                            Some(Stream::F(_)) => trap!(TrapKind::StreamTypeMismatch),
                            None => trap!(TrapKind::StreamOutOfBounds),
                        }
                    }
                    InstKind::DataF { stream, idx } => {
                        let i = int!(idx);
                        let Ok(ix) = usize::try_from(i) else {
                            trap!(TrapKind::BadIndex)
                        };
                        match input.streams.get(*stream as usize) {
                            Some(Stream::F(v)) => match v.get(ix) {
                                Some(x) => result = Some(Value::F(*x)),
                                None => trap!(TrapKind::StreamOutOfBounds),
                            },
                            Some(Stream::I(_)) => trap!(TrapKind::StreamTypeMismatch),
                            None => trap!(TrapKind::StreamOutOfBounds),
                        }
                    }
                    InstKind::OutI { v } => {
                        let x = int!(v);
                        output.push_i(x);
                        if output.len() > self.config.output_limit {
                            finish!(Termination::StepLimit, None);
                        }
                    }
                    InstKind::OutF { v } => {
                        let x = flt!(v);
                        output.push_f(x);
                        if output.len() > self.config.output_limit {
                            finish!(Termination::StepLimit, None);
                        }
                    }
                    InstKind::Check { a, b } => {
                        let x = val!(a);
                        let y = val!(b);
                        if !bit_equal(x, y) {
                            finish!(Termination::Detected, None);
                        }
                    }
                    InstKind::Br { target } => {
                        control = Some(Control::Jump(*target));
                    }
                    InstKind::CondBr {
                        cond,
                        then_b,
                        else_b,
                    } => {
                        let c = boolean!(cond);
                        control = Some(Control::Jump(if c { *then_b } else { *else_b }));
                    }
                    InstKind::Ret { v } => {
                        let rv = match v {
                            Some(v) => Some(val!(v)),
                            None => None,
                        };
                        control = Some(Control::Return(rv));
                    }
                }

                // fault application: flip a bit of the freshly produced
                // value when this dynamic execution is the armed target.
                // Calls produce their value at return time and are handled
                // in the Return branch below; everything else produces it
                // here. Checkpoint collection mirrors the counters here so
                // snapshots can restore them exactly.
                if self.injectable[dense] {
                    if let Some(v) = result {
                        if fault_armed {
                            let fire = match target_dense {
                                Some(td) => {
                                    if td == dense {
                                        let hit = *per_inst_ctr == target_nth;
                                        *per_inst_ctr += 1;
                                        hit
                                    } else {
                                        false
                                    }
                                }
                                None => *inj_ctr == whole_nth,
                            };
                            if fire && !*fault_applied {
                                *fault_applied = true;
                                result = Some(flip_bit(v, fault_bit));
                            }
                        }
                        *inj_ctr += 1;
                        if let Some(c) = ckpt.as_deref_mut() {
                            c.inj_counts[dense] += 1;
                        }
                    }
                }

                if let Some(v) = result {
                    frame.regs[iid.index()] = v;
                    if let Some(t) = trace.as_mut() {
                        t.push(TraceEvent {
                            dense: dense as u32,
                            value: v,
                        });
                    }
                }

                match control {
                    None => {
                        frame.pos += 1;
                    }
                    Some(Control::Jump(target)) => {
                        if let Some(p) = profile.as_mut() {
                            p.block_counts[frame.func.index()][target.index()] += 1;
                            *p.edge_counts[frame.func.index()]
                                .entry((frame.block, target))
                                .or_insert(0) += 1;
                        }
                        frame.block = target;
                        frame.pos = 0;
                    }
                    Some(Control::Call(callee, argv)) => {
                        let cf = &m.funcs[callee.index()];
                        let new_frame = Frame {
                            func: callee,
                            block: BlockId(0),
                            pos: 0,
                            regs: vec![Value::Undef; cf.insts.len()],
                            args: argv,
                            sp_base: stack_mem.len(),
                        };
                        if let Some(p) = profile.as_mut() {
                            p.block_counts[callee.index()][0] += 1;
                        }
                        stack.push(new_frame);
                    }
                    Some(Control::Return(rv)) => {
                        let finished = stack.pop().unwrap();
                        stack_mem.truncate(finished.sp_base);
                        match stack.last_mut() {
                            None => {
                                finish!(Termination::Exit, rv);
                            }
                            Some(caller) => {
                                // write the return value into the call's
                                // register and advance past the call; the
                                // call's return value materializes *here*,
                                // so this is its fault-injection point
                                let cfunc = &m.funcs[caller.func.index()];
                                let cblock = &cfunc.blocks[caller.block.index()];
                                let call_iid = cblock.insts[caller.pos];
                                let call_dense = self.base[caller.func.index()] + call_iid.index();
                                if let Some(mut v) = rv {
                                    if self.injectable[call_dense] {
                                        if fault_armed {
                                            let fire = match target_dense {
                                                Some(td) => {
                                                    if td == call_dense {
                                                        let hit = *per_inst_ctr == target_nth;
                                                        *per_inst_ctr += 1;
                                                        hit
                                                    } else {
                                                        false
                                                    }
                                                }
                                                None => *inj_ctr == whole_nth,
                                            };
                                            if fire && !*fault_applied {
                                                *fault_applied = true;
                                                v = flip_bit(v, fault_bit);
                                            }
                                        }
                                        *inj_ctr += 1;
                                        if let Some(c) = ckpt.as_deref_mut() {
                                            c.inj_counts[call_dense] += 1;
                                        }
                                    }
                                    caller.regs[call_iid.index()] = v;
                                    if let Some(t) = trace.as_mut() {
                                        t.push(TraceEvent {
                                            dense: call_dense as u32,
                                            value: v,
                                        });
                                    }
                                }
                                caller.pos += 1;
                            }
                        }
                        continue 'outer;
                    }
                }
            }
        }
    }
}

enum Control {
    Jump(BlockId),
    Call(FuncId, Vec<Value>),
    Return(Option<Value>),
}

pub(crate) fn cmp_ord(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

/// Bit-exact equality used by duplication checks (NaN payloads compare by
/// bits, exactly as a hardware comparator over registers would).
pub(crate) fn bit_equal(a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::I(x), Value::I(y)) => x == y,
        (Value::F(x), Value::F(y)) => x.to_bits() == y.to_bits(),
        (Value::B(x), Value::B(y)) => x == y,
        (Value::P(x), Value::P(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::CheckpointStore;
    use minpsid_ir::{verify::assert_verified, GlobalInstId, InstId, ModuleBuilder};

    fn run_module(m: &Module, input: &ProgInput) -> ExecResult {
        assert_verified(m);
        let cfg = ExecConfig {
            profile: true,
            ..ExecConfig::default()
        };
        Interp::new(m, cfg).run(input)
    }

    /// sum of 0..n via a loop with a memory accumulator
    fn sum_module() -> Module {
        let mut mb = ModuleBuilder::new("sum");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let head = fb.new_block("head");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        let n = fb.arg_i(0i64);
        let slot = fb.alloc(2i64); // [i, acc]
        fb.store(slot, 0i64, 0i64);
        fb.store(slot, 1i64, 0i64);
        fb.br(head);
        fb.switch_to(head);
        let i = fb.load(Ty::I64, slot, 0i64);
        let c = fb.cmp(CmpOp::Lt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let acc = fb.load(Ty::I64, slot, 1i64);
        let acc2 = fb.add(Ty::I64, acc, i);
        fb.store(slot, 1i64, acc2);
        let i2 = fb.add(Ty::I64, i, 1i64);
        fb.store(slot, 0i64, i2);
        fb.br(head);
        fb.switch_to(exit);
        let fin = fb.load(Ty::I64, slot, 1i64);
        fb.out_i(fin);
        fb.ret_void();
        mb.define(fb);
        mb.finish()
    }

    /// fib(n) recursive — exercises the call-return injection point
    fn fib_module() -> Module {
        let mut mb = ModuleBuilder::new("fib");
        let main = mb.declare("main", vec![], None);
        let fib = mb.declare("fib", vec![Ty::I64], Some(Ty::I64));
        let mut fb = mb.body(fib);
        let rec = fb.new_block("rec");
        let basecase = fb.new_block("base");
        let n = fb.param(0);
        let c = fb.cmp(CmpOp::Lt, n, 2i64);
        fb.cond_br(c, basecase, rec);
        fb.switch_to(basecase);
        fb.ret(n);
        fb.switch_to(rec);
        let n1 = fb.sub(Ty::I64, n, 1i64);
        let n2 = fb.sub(Ty::I64, n, 2i64);
        let a = fb.call(fib, Some(Ty::I64), vec![n1.into()]);
        let b = fb.call(fib, Some(Ty::I64), vec![n2.into()]);
        let s = fb.add(Ty::I64, a, b);
        fb.ret(s);
        mb.define(fb);
        let mut fb = mb.body(main);
        let x = fb.arg_i(0i64);
        let v = fb.call(fib, Some(Ty::I64), vec![x.into()]);
        fb.out_i(v);
        fb.ret_void();
        mb.define(fb);
        mb.finish()
    }

    #[test]
    fn loop_sum_produces_expected_output() {
        let m = sum_module();
        let r = run_module(&m, &ProgInput::scalars(vec![Scalar::I(10)]));
        assert!(r.exited());
        assert_eq!(r.output.items, vec![crate::value::OutputItem::I(45)]);
    }

    #[test]
    fn profile_counts_loop_iterations() {
        let m = sum_module();
        let r = run_module(&m, &ProgInput::scalars(vec![Scalar::I(10)]));
        let p = r.profile.unwrap();
        // body block (id 2) entered exactly 10 times
        assert_eq!(p.block_counts[0][2], 10);
        // head entered 11 times (10 iterations + final test)
        assert_eq!(p.block_counts[0][1], 11);
        // edge body->head has weight 10
        assert_eq!(p.edge_count(FuncId(0), BlockId(2), BlockId(1)), 10);
        assert!(p.total_cycles > 0);
        assert_eq!(p.total_insts, r.steps);
    }

    #[test]
    fn recursion_works_and_depth_is_limited() {
        let m = fib_module();
        let r = run_module(&m, &ProgInput::scalars(vec![Scalar::I(12)]));
        assert!(r.exited());
        assert_eq!(r.output.items, vec![crate::value::OutputItem::I(144)]);
    }

    #[test]
    fn div_by_zero_traps() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let a = fb.arg_i(0i64);
        let d = fb.div(Ty::I64, 10i64, a);
        fb.out_i(d);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let r = run_module(&m, &ProgInput::scalars(vec![Scalar::I(0)]));
        assert_eq!(r.termination, Termination::Trap(TrapKind::DivByZero));
    }

    #[test]
    fn out_of_bounds_load_traps() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let p = fb.alloc(4i64);
        let v = fb.load(Ty::I64, p, 100i64);
        fb.out_i(v);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let r = run_module(&m, &ProgInput::default());
        assert_eq!(r.termination, Termination::Trap(TrapKind::OutOfBounds));
    }

    #[test]
    fn step_limit_catches_infinite_loop() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let l = fb.new_block("l");
        fb.br(l);
        fb.switch_to(l);
        fb.br(l);
        mb.define(fb);
        let m = mb.finish();
        let cfg = ExecConfig {
            step_limit: 1000,
            ..ExecConfig::default()
        };
        let r = Interp::new(&m, cfg).run(&ProgInput::default());
        assert_eq!(r.termination, Termination::StepLimit);
        assert!(r.steps <= 1001);
    }

    #[test]
    fn check_detects_mismatch() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let a = fb.add(Ty::I64, 1i64, 2i64);
        let b = fb.add(Ty::I64, 1i64, 2i64);
        // manually insert a check; without a fault both sides agree
        fb.check(a, b);
        fb.out_i(a);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let r = run_module(&m, &ProgInput::default());
        assert!(r.exited(), "no fault -> check passes");

        // fault on the first add: check must fire
        let cfg = ExecConfig::default();
        let fault = FaultSpec {
            target: FaultTarget::NthOfInst(
                GlobalInstId {
                    func: FuncId(0),
                    inst: InstId(0),
                },
                0,
            ),
            bit: 5,
        };
        let r = Interp::new(&m, cfg).run_with_fault(&ProgInput::default(), fault);
        assert!(r.fault_applied);
        assert_eq!(r.termination, Termination::Detected);
    }

    #[test]
    fn whole_program_fault_changes_output() {
        let m = sum_module();
        let interp = Interp::new(&m, ExecConfig::default());
        let input = ProgInput::scalars(vec![Scalar::I(10)]);
        let golden = interp.run(&input);
        // hit the accumulator add (flip a low bit of some execution)
        let fault = FaultSpec {
            target: FaultTarget::NthDynamic(20),
            bit: 3,
        };
        let faulty = interp.run_with_fault(&input, fault);
        assert!(faulty.fault_applied);
        // outcome is input- and site-dependent; it must be *some* deviation
        // or a masked (equal-output) run, never a panic
        if faulty.termination == Termination::Exit {
            // either masked or SDC — both are legitimate
            let _ = faulty.output == golden.output;
        }
    }

    #[test]
    fn fault_past_end_of_trace_never_fires() {
        let m = sum_module();
        let interp = Interp::new(&m, ExecConfig::default());
        let input = ProgInput::scalars(vec![Scalar::I(3)]);
        let fault = FaultSpec {
            target: FaultTarget::NthDynamic(1_000_000),
            bit: 0,
        };
        let r = interp.run_with_fault(&input, fault);
        assert!(!r.fault_applied);
        assert!(r.exited());
    }

    #[test]
    fn call_return_values_are_injectable() {
        // main calls sq(x) and prints it: a fault aimed at the call
        // instruction must flip the *returned* value
        let mut mb = ModuleBuilder::new("call-fi");
        let main = mb.declare("main", vec![], None);
        let sq = mb.declare("sq", vec![Ty::I64], Some(Ty::I64));
        let mut fb = mb.body(sq);
        let p = fb.param(0);
        let r = fb.mul(Ty::I64, p, p);
        fb.ret(r);
        mb.define(fb);
        let mut fb = mb.body(main);
        let v = fb.call(sq, Some(Ty::I64), vec![6i64.into()]);
        fb.out_i(v);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();

        // locate the call instruction (function 0, the first instruction)
        let call_gid = GlobalInstId {
            func: FuncId(0),
            inst: InstId(0),
        };
        assert!(m.inst(call_gid).injectable());
        let interp = Interp::new(&m, ExecConfig::default());
        let fault = FaultSpec {
            target: FaultTarget::NthOfInst(call_gid, 0),
            bit: 0,
        };
        let r = interp.run_with_fault(&ProgInput::default(), fault);
        assert!(r.fault_applied, "call-return fault must fire");
        assert_eq!(
            r.output.items,
            vec![crate::value::OutputItem::I(37)],
            "36 with bit 0 flipped"
        );
    }

    #[test]
    fn injectable_exec_count_matches_between_golden_and_armed_runs() {
        // profile a run with calls; then aim a fault at the *last*
        // injectable execution — it must fire (the populations agree)
        let mut mb = ModuleBuilder::new("count-check");
        let main = mb.declare("main", vec![], None);
        let inc = mb.declare("inc", vec![Ty::I64], Some(Ty::I64));
        let mut fb = mb.body(inc);
        let p = fb.param(0);
        let r = fb.add(Ty::I64, p, 1i64);
        fb.ret(r);
        mb.define(fb);
        let mut fb = mb.body(main);
        let a = fb.call(inc, Some(Ty::I64), vec![1i64.into()]);
        let b = fb.call(inc, Some(Ty::I64), vec![a.into()]);
        fb.out_i(b);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();

        let cfg = ExecConfig {
            profile: true,
            ..ExecConfig::default()
        };
        let interp = Interp::new(&m, cfg);
        let golden = interp.run(&ProgInput::default());
        let pop = golden.profile.unwrap().injectable_execs;
        assert!(pop >= 4, "two adds + two call returns");
        let fault = FaultSpec {
            target: FaultTarget::NthDynamic(pop - 1),
            bit: 1,
        };
        let r = interp.run_with_fault(&ProgInput::default(), fault);
        assert!(
            r.fault_applied,
            "last injectable execution must be reachable"
        );
        let fault = FaultSpec {
            target: FaultTarget::NthDynamic(pop),
            bit: 1,
        };
        let r = interp.run_with_fault(&ProgInput::default(), fault);
        assert!(!r.fault_applied, "population is exactly `injectable_execs`");
    }

    #[test]
    fn fault_determinism() {
        let m = sum_module();
        let interp = Interp::new(&m, ExecConfig::default());
        let input = ProgInput::scalars(vec![Scalar::I(25)]);
        let fault = FaultSpec {
            target: FaultTarget::NthDynamic(33),
            bit: 62,
        };
        let a = interp.run_with_fault(&input, fault);
        let b = interp.run_with_fault(&input, fault);
        assert_eq!(a.termination, b.termination);
        assert_eq!(a.output, b.output);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn salloc_locals_are_per_frame_and_freed() {
        // fact(n) with the accumulator held in a salloc slot per frame
        let mut mb = ModuleBuilder::new("fact");
        let main = mb.declare("main", vec![], None);
        let fact = mb.declare("fact", vec![Ty::I64], Some(Ty::I64));
        let mut fb = mb.body(fact);
        let rec = fb.new_block("rec");
        let basecase = fb.new_block("base");
        let n = fb.param(0);
        let slot = fb.salloc(1i64);
        fb.store(slot, 0i64, n);
        let c = fb.cmp(CmpOp::Le, n, 1i64);
        fb.cond_br(c, basecase, rec);
        fb.switch_to(basecase);
        fb.ret(1i64);
        fb.switch_to(rec);
        let n1 = fb.sub(Ty::I64, n, 1i64);
        let sub = fb.call(fact, Some(Ty::I64), vec![n1.into()]);
        // reload our own n from the slot: must be unclobbered by the call
        let mine = fb.load(Ty::I64, slot, 0i64);
        let r = fb.mul(Ty::I64, sub, mine);
        fb.ret(r);
        mb.define(fb);
        let mut fb = mb.body(main);
        let x = fb.arg_i(0i64);
        let v = fb.call(fact, Some(Ty::I64), vec![x.into()]);
        fb.out_i(v);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let r = run_module(&m, &ProgInput::scalars(vec![Scalar::I(6)]));
        assert!(r.exited());
        assert_eq!(r.output.items, vec![crate::value::OutputItem::I(720)]);
    }

    #[test]
    fn dangling_salloc_pointer_traps_after_return() {
        // helper returns a pointer to its own stack slot; main dereferences
        // it after the frame died -> out of bounds
        let mut mb = ModuleBuilder::new("dangle");
        let main = mb.declare("main", vec![], None);
        let h = mb.declare("h", vec![], Some(Ty::Ptr));
        let mut fb = mb.body(h);
        let slot = fb.salloc(1i64);
        fb.store(slot, 0i64, 42i64);
        fb.ret(slot);
        mb.define(fb);
        let mut fb = mb.body(main);
        let p = fb.call(h, Some(Ty::Ptr), vec![]);
        let v = fb.load(Ty::I64, p, 0i64);
        fb.out_i(v);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let r = run_module(&m, &ProgInput::default());
        assert_eq!(r.termination, Termination::Trap(TrapKind::OutOfBounds));
    }

    #[test]
    fn float_pipeline_and_casts() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let x = fb.arg_f(0i64);
        let s = fb.un(UnOp::Sqrt, Ty::F64, x);
        let i = fb.cast(Ty::I64, s);
        fb.out_i(i);
        fb.out_f(s);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let r = run_module(&m, &ProgInput::scalars(vec![Scalar::F(16.0)]));
        assert!(r.exited());
        assert_eq!(
            r.output.items,
            vec![
                crate::value::OutputItem::I(4),
                crate::value::OutputItem::F(4.0)
            ]
        );
    }

    #[test]
    fn data_streams_are_readable_and_bounds_checked() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let n = fb.data_len(0);
        let v = fb.data_f(0, 1i64);
        fb.out_i(n);
        fb.out_f(v);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let input = ProgInput::new(vec![], vec![Stream::F(vec![1.0, 2.5])]);
        let r = run_module(&m, &input);
        assert!(r.exited());
        assert_eq!(
            r.output.items,
            vec![
                crate::value::OutputItem::I(2),
                crate::value::OutputItem::F(2.5)
            ]
        );

        // out-of-range read traps
        let input = ProgInput::new(vec![], vec![Stream::F(vec![1.0])]);
        let r = run_module(&m, &input);
        assert_eq!(
            r.termination,
            Termination::Trap(TrapKind::StreamOutOfBounds)
        );
    }

    // ---- checkpointing ----

    #[test]
    fn checkpointed_run_matches_plain_run() {
        for (m, input) in [
            (sum_module(), ProgInput::scalars(vec![Scalar::I(40)])),
            (fib_module(), ProgInput::scalars(vec![Scalar::I(12)])),
        ] {
            let interp = Interp::new(&m, ExecConfig::default());
            let plain = interp.run(&input);
            let (ckpt, snaps) = interp.run_with_checkpoints(&input, 7);
            assert_eq!(plain.termination, ckpt.termination);
            assert_eq!(plain.output, ckpt.output);
            assert_eq!(plain.steps, ckpt.steps);
            assert!(!snaps.is_empty(), "run is long enough to snapshot");
            assert!(
                snaps.windows(2).all(|w| w[0].steps() < w[1].steps()),
                "snapshots are strictly ordered by step"
            );
        }
    }

    #[test]
    fn resume_is_bit_identical_for_dynamic_faults() {
        let m = fib_module();
        let interp = Interp::new(&m, ExecConfig::default());
        let input = ProgInput::scalars(vec![Scalar::I(11)]);
        let (golden, snaps) = interp.run_with_checkpoints(&input, 13);
        let store = CheckpointStore::new(snaps);
        let pop = golden.steps; // upper bound on injectable execs
        let stride = (pop as usize / 40).max(1);
        for nth in (0..pop).step_by(stride) {
            for bit in [0u32, 62] {
                let fault = FaultSpec {
                    target: FaultTarget::NthDynamic(nth),
                    bit,
                };
                let cold = interp.run_with_fault(&input, fault);
                assert_eq!(cold.resumed_at, None, "cold runs report no restore");
                if let Some(i) = store.nearest_for_dynamic(nth) {
                    let snap = store.materialize(i);
                    let warm = interp.resume(&snap, &input, fault);
                    assert_eq!(cold.termination, warm.termination, "nth={nth} bit={bit}");
                    assert_eq!(cold.output, warm.output, "nth={nth} bit={bit}");
                    assert_eq!(cold.steps, warm.steps, "nth={nth} bit={bit}");
                    assert_eq!(cold.fault_applied, warm.fault_applied);
                    assert_eq!(cold.ret, warm.ret);
                    // the per-restore telemetry surface: skipped prefix =
                    // the snapshot's step counter
                    assert_eq!(
                        warm.resumed_at,
                        Some(store.steps_at(i)),
                        "nth={nth} bit={bit}"
                    );
                }
            }
        }
    }

    #[test]
    fn resume_is_bit_identical_for_per_inst_faults() {
        // per-instruction targeting across call boundaries: the fib calls'
        // return values count at the call's dense index. A flipped argument
        // can blow fib up exponentially, so cap the hang budget (the cap
        // applies identically to cold and resumed runs).
        let m = fib_module();
        let interp = Interp::new(
            &m,
            ExecConfig {
                step_limit: 200_000,
                ..ExecConfig::default()
            },
        );
        let input = ProgInput::scalars(vec![Scalar::I(10)]);
        let (_, snaps) = interp.run_with_checkpoints(&input, 9);
        let store = CheckpointStore::new(snaps);
        for f in 0..m.funcs.len() {
            for i in 0..m.funcs[f].insts.len() {
                let gid = GlobalInstId {
                    func: FuncId(f as u32),
                    inst: InstId(i as u32),
                };
                if !m.inst(gid).injectable() {
                    continue;
                }
                let dense = interp.dense_index(gid);
                for nth in [0u64, 3, 11] {
                    let fault = FaultSpec {
                        target: FaultTarget::NthOfInst(gid, nth),
                        bit: 7,
                    };
                    let cold = interp.run_with_fault(&input, fault);
                    if let Some(i) = store.nearest_for_inst(dense, nth) {
                        let snap = store.materialize(i);
                        let warm = interp.resume(&snap, &input, fault);
                        assert_eq!(cold.termination, warm.termination, "gid={gid:?} nth={nth}");
                        assert_eq!(cold.output, warm.output, "gid={gid:?} nth={nth}");
                        assert_eq!(cold.steps, warm.steps, "gid={gid:?} nth={nth}");
                        assert_eq!(cold.fault_applied, warm.fault_applied);
                    }
                }
            }
        }
    }

    #[test]
    fn resume_with_reuses_scratch_state() {
        let m = sum_module();
        let interp = Interp::new(&m, ExecConfig::default());
        let input = ProgInput::scalars(vec![Scalar::I(30)]);
        let (_, snaps) = interp.run_with_checkpoints(&input, 11);
        let store = CheckpointStore::new(snaps);
        let mut scratch = ExecScratch::default();
        // back-to-back resumes into the same scratch must stay independent
        for nth in [5u64, 50, 20] {
            let fault = FaultSpec {
                target: FaultTarget::NthDynamic(nth),
                bit: 4,
            };
            let cold = interp.run_with_fault(&input, fault);
            if let Some(i) = store.nearest_for_dynamic(nth) {
                let warm = interp.resume_from(&mut scratch, &store, i, &input, fault);
                assert_eq!(cold.termination, warm.termination);
                assert_eq!(cold.output, warm.output);
                assert_eq!(cold.steps, warm.steps);
            }
        }
    }

    #[test]
    fn nearest_snapshot_selection_is_safe() {
        let m = fib_module();
        let interp = Interp::new(&m, ExecConfig::default());
        let input = ProgInput::scalars(vec![Scalar::I(10)]);
        let (_, snaps) = interp.run_with_checkpoints(&input, 10);
        let store = CheckpointStore::new(snaps);
        // a snapshot chosen for nth must not have passed the event yet
        for nth in 0..60u64 {
            if let Some(i) = store.nearest_for_dynamic(nth) {
                assert!(store.inj_ctr_at(i) <= nth);
            }
        }
        // events before the first snapshot's counter have no safe snapshot
        let first = store.inj_ctr_at(0);
        if first > 0 {
            assert!(store.nearest_for_dynamic(first - 1).is_none() || first == 0);
        }
    }
}
