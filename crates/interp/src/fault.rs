//! The fault specification applied by the interpreter.
//!
//! A [`FaultSpec`] pins down *one* transient hardware fault: which dynamic
//! instruction execution is hit and which bit of its return value flips.
//! The spec is constructed by `minpsid-faultsim` (which owns the sampling
//! policy) and consumed here (which owns the semantics).

use crate::value::Value;
use minpsid_ir::GlobalInstId;

/// Which dynamic instruction execution the fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The `n`-th (0-based) dynamic execution of *any* injectable
    /// instruction in the run — LLFI's whole-program random injection.
    NthDynamic(u64),
    /// The `n`-th (0-based) dynamic execution of one specific static
    /// instruction — used for per-instruction SDC-probability measurement.
    NthOfInst(GlobalInstId, u64),
}

/// A single-bit-flip fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    pub target: FaultTarget,
    /// Bit position to flip. For `Bool` results any value flips the bit;
    /// for 64-bit results it is taken modulo 64.
    pub bit: u32,
}

/// Flip `bit` in a runtime value, reinterpreting floats and pointers as
/// their 64-bit patterns (exactly what a flip in a physical register does).
/// Inlined into both dispatch loops' fault-fire paths: it sits on the
/// per-step injection-counter check, the hottest branch in a campaign.
#[inline]
pub fn flip_bit(v: Value, bit: u32) -> Value {
    match v {
        Value::I(x) => Value::I(x ^ (1i64 << (bit % 64))),
        Value::F(x) => Value::F(f64::from_bits(x.to_bits() ^ (1u64 << (bit % 64)))),
        Value::B(b) => Value::B(!b),
        Value::P(p) => Value::P(p ^ (1u64 << (bit % 64))),
        Value::Undef => Value::Undef,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_flip_is_involutive() {
        let v = Value::I(0x1234_5678_9abc_def0);
        for bit in [0, 17, 63] {
            assert_eq!(flip_bit(flip_bit(v, bit), bit), v);
        }
    }

    #[test]
    fn float_flip_targets_ieee_bits() {
        // flipping bit 63 of a double flips its sign
        let v = flip_bit(Value::F(1.5), 63);
        assert_eq!(v, Value::F(-1.5));
        // flipping a high exponent bit makes the value huge
        let v = flip_bit(Value::F(1.0), 62);
        let x = v.as_f().unwrap();
        assert!(x > 1e300 || x.is_infinite());
    }

    #[test]
    fn bool_flip_inverts() {
        assert_eq!(flip_bit(Value::B(true), 0), Value::B(false));
        assert_eq!(flip_bit(Value::B(false), 12), Value::B(true));
    }

    #[test]
    fn pointer_flip_changes_offset() {
        let v = flip_bit(Value::P(8), 1);
        assert_eq!(v, Value::P(10));
    }

    #[test]
    fn bit_is_taken_mod_64() {
        assert_eq!(flip_bit(Value::I(0), 64), Value::I(1));
    }
}
