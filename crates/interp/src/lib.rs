//! # minpsid-interp — deterministic interpreter for the minpsid IR
//!
//! This crate plays the role that native execution plus LLFI's runtime
//! instrumentation play in the paper:
//!
//! * it executes a verified [`minpsid_ir::Module`] against a
//!   [`ProgInput`] (scalar arguments + bulk data streams), producing the
//!   program *output stream* whose bit-exact comparison against a golden
//!   run defines an SDC;
//! * it can apply a [`FaultSpec`] — a single-bit flip in the return value
//!   of one chosen dynamic instruction — exactly once per run, which is the
//!   paper's fault model (§II-A, §III-A3);
//! * it classifies abnormal termination (traps → crash, step budget →
//!   hang, duplication-check mismatch → detected);
//! * it optionally collects a [`Profile`]: per-instruction dynamic counts
//!   and cycles (SID's cost input, Eq. 1), per-block entry counts (the
//!   *indexed weighted-CFG list* of Fig. 5), and per-edge execution counts.
//!
//! Determinism is total: same module + same input + same fault spec ⇒ same
//! result, which is what lets fault-injection campaigns run embarrassingly
//! parallel with no coordination. Determinism is also what makes
//! checkpointed fault injection sound: a golden run can capture
//! [`Snapshot`]s of complete machine state, and a faulty run resumed from
//! the nearest snapshot before its injection point is bit-identical to a
//! from-scratch run (see [`snapshot`]).

pub mod decode;
pub mod exec;
pub mod fault;
pub mod opprof;
pub mod profile;
pub mod snapshot;
pub mod value;
pub mod wire;

pub use decode::ExecScratch;
pub use exec::{
    DispatchMode, ExecConfig, ExecResult, Interp, MachineState, Termination, TraceEvent, TrapKind,
};
pub use fault::{flip_bit, FaultSpec, FaultTarget};
pub use opprof::InterpProfileReport;
pub use profile::Profile;
pub use snapshot::{auto_interval, CheckpointConfig, CheckpointStore, Snapshot, SnapshotMode};
pub use value::{Output, OutputItem, ProgInput, Scalar, Stream, Value};
