//! Sampling profiler for the decoded dispatch loop.
//!
//! ROADMAP item 3 ("make FI throughput hardware-bound") needs per-opcode
//! cost attribution before anything can be optimized further: after the
//! pre-decode PR we know an injection costs ~46–275 µs but not *where*
//! the cycles go. This module answers that with statistical sampling:
//! every `sample_every` interpreter steps, the op at the current pc gets
//! one sample. Samples attribute to the *carrying* op, so a fused
//! superinstruction accumulates samples for all of its halves — exactly
//! the per-superinstruction attribution needed to judge fusion choices.
//!
//! ## Why process-global state
//!
//! The profiler is deliberately *not* part of [`ExecConfig`]: config
//! fields feed the journal fingerprint (a resumed campaign must match its
//! WAL header) and `use_legacy()` routing, so a profiling knob there
//! would either change replay identity or silently fall back to the
//! legacy loop — the opposite of what we want to measure. Instead the
//! decoded loop reads one atomic at entry; enabling the profiler changes
//! *nothing* about execution semantics (sampling shares the existing
//! folded `next_pause` compare, so the disabled cost is zero and the
//! enabled cost is one extra min() whenever the cold pause path runs).
//!
//! Determinism invariant: sampling only ever *reads* interpreter state.
//! Reports and WAL bytes are identical with the profiler on or off
//! (enforced by `tests/engine_equivalence.rs`).
//!
//! [`ExecConfig`]: crate::ExecConfig

use crate::decode::OP_NAMES;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of decoded op kinds ([`DOp`] variants).
///
/// [`DOp`]: crate::decode::DOp
pub const NUM_OPS: usize = OP_NAMES.len();

/// Index of the first fused superinstruction in [`OP_NAMES`] order;
/// indices below this are straight-line single ops.
pub const FIRST_FUSED: usize = 28;

/// Default sampling interval (steps between samples). Each sample costs
/// one hot-loop exit through the cold pause path, so on a ~3 ns/step
/// interpreter the interval sets the overhead directly: 8192 matches the
/// deadline-poll granularity and measures under the 2% budget on the
/// committed baseline (a 1024-step interval benched at ~3.5% on hpccg),
/// while still collecting ~10⁴ samples/s — ample for per-op attribution
/// over a campaign's thousands of runs.
pub const DEFAULT_SAMPLE_EVERY: u64 = 8192;

static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(0);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static SAMPLES: [AtomicU64; NUM_OPS] = [ZERO; NUM_OPS];

static FUSED_SITES: AtomicU64 = AtomicU64::new(0);
static TOTAL_SITES: AtomicU64 = AtomicU64::new(0);
static ENCODE_NS: AtomicU64 = AtomicU64::new(0);
static ENCODE_OPS: AtomicU64 = AtomicU64::new(0);
static RESTORE_NS: AtomicU64 = AtomicU64::new(0);
static RESTORE_OPS: AtomicU64 = AtomicU64::new(0);

/// Turn sampling on with the given interval (0 falls back to the
/// default). Affects every decoded run in the process from the next
/// loop entry on.
pub fn enable(sample_every: u64) {
    let every = if sample_every == 0 {
        DEFAULT_SAMPLE_EVERY
    } else {
        sample_every
    };
    SAMPLE_EVERY.store(every, Ordering::Relaxed);
}

/// Turn sampling off (accumulated samples are kept until [`reset`]).
pub fn disable() {
    SAMPLE_EVERY.store(0, Ordering::Relaxed);
}

pub fn enabled() -> bool {
    SAMPLE_EVERY.load(Ordering::Relaxed) != 0
}

/// Current interval; 0 means off. Read once per `exec_loop` entry.
pub(crate) fn sample_every() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Record one sample for op index `op`. Called from the cold pause path
/// only — frequency is 1/sample_every, so a relaxed shared add is fine.
#[inline]
pub(crate) fn record(op: usize) {
    SAMPLES[op].fetch_add(1, Ordering::Relaxed);
}

/// Record static fusion stats from one module decode (idempotent store:
/// re-decoding the same module overwrites with identical values; the
/// last decoded module wins if several differ).
pub(crate) fn record_decode_stats(fused_sites: u64, total_sites: u64) {
    FUSED_SITES.store(fused_sites, Ordering::Relaxed);
    TOTAL_SITES.store(total_sites, Ordering::Relaxed);
}

/// Account one checkpoint encode (capture) of `ns` nanoseconds.
pub(crate) fn add_encode(ns: u64) {
    ENCODE_NS.fetch_add(ns, Ordering::Relaxed);
    ENCODE_OPS.fetch_add(1, Ordering::Relaxed);
}

/// Account one checkpoint restore of `ns` nanoseconds.
pub(crate) fn add_restore(ns: u64) {
    RESTORE_NS.fetch_add(ns, Ordering::Relaxed);
    RESTORE_OPS.fetch_add(1, Ordering::Relaxed);
}

/// Zero all accumulated samples and accounting (the interval setting is
/// untouched). Tests and back-to-back campaigns use this.
pub fn reset() {
    for s in &SAMPLES {
        s.store(0, Ordering::Relaxed);
    }
    FUSED_SITES.store(0, Ordering::Relaxed);
    TOTAL_SITES.store(0, Ordering::Relaxed);
    ENCODE_NS.store(0, Ordering::Relaxed);
    ENCODE_OPS.store(0, Ordering::Relaxed);
    RESTORE_NS.store(0, Ordering::Relaxed);
    RESTORE_OPS.store(0, Ordering::Relaxed);
}

/// One consistent-enough view of the accumulated profile (reads are
/// relaxed; call after the runs of interest have finished).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InterpProfileReport {
    /// Interval the samples were taken at (0 if profiling never ran).
    pub sample_every: u64,
    pub total_samples: u64,
    /// Samples attributed to fused superinstructions.
    pub fused_samples: u64,
    /// Static fused carrier slots in the last decoded module.
    pub fused_sites: u64,
    /// Total decoded slots in the last decoded module.
    pub total_sites: u64,
    pub encode_ns: u64,
    pub encode_ops: u64,
    pub restore_ns: u64,
    pub restore_ops: u64,
    /// `(op name, samples)`, nonzero entries only, descending by count
    /// (ties broken by name for stable output).
    pub samples: Vec<(String, u64)>,
}

impl InterpProfileReport {
    /// Fraction of dynamic samples landing in fused superinstructions.
    pub fn fused_sample_rate(&self) -> f64 {
        if self.total_samples == 0 {
            0.0
        } else {
            self.fused_samples as f64 / self.total_samples as f64
        }
    }

    /// Flamegraph-compatible folded-stacks rendering: one
    /// `minpsid;interp;<op> <count>` line per sampled op, in the same
    /// descending order as [`InterpProfileReport::samples`].
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (name, n) in &self.samples {
            out.push_str("minpsid;interp;");
            out.push_str(name);
            out.push(' ');
            out.push_str(&n.to_string());
            out.push('\n');
        }
        out
    }
}

/// Snapshot the accumulated profile.
pub fn snapshot() -> InterpProfileReport {
    let mut samples = Vec::new();
    let mut total = 0u64;
    let mut fused = 0u64;
    for (i, s) in SAMPLES.iter().enumerate() {
        let n = s.load(Ordering::Relaxed);
        if n > 0 {
            total += n;
            if i >= FIRST_FUSED {
                fused += n;
            }
            samples.push((OP_NAMES[i].to_string(), n));
        }
    }
    samples.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    InterpProfileReport {
        sample_every: SAMPLE_EVERY.load(Ordering::Relaxed),
        total_samples: total,
        fused_samples: fused,
        fused_sites: FUSED_SITES.load(Ordering::Relaxed),
        total_sites: TOTAL_SITES.load(Ordering::Relaxed),
        encode_ns: ENCODE_NS.load(Ordering::Relaxed),
        encode_ops: ENCODE_OPS.load(Ordering::Relaxed),
        restore_ns: RESTORE_NS.load(Ordering::Relaxed),
        restore_ops: RESTORE_OPS.load(Ordering::Relaxed),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Profiler state is process-global; exercise it in one test to avoid
    // cross-test interference under the parallel test runner.
    #[test]
    fn sampling_accumulates_and_folds() {
        reset();
        assert!(!enabled());
        enable(0);
        assert_eq!(sample_every(), DEFAULT_SAMPLE_EVERY);
        enable(256);
        assert_eq!(sample_every(), 256);

        record(1); // BinII
        record(1);
        record(FIRST_FUSED); // first fused superinstruction
        record_decode_stats(10, 40);
        add_encode(1_000);
        add_restore(500);
        add_restore(700);

        let snap = snapshot();
        assert_eq!(snap.total_samples, 3);
        assert_eq!(snap.fused_samples, 1);
        assert!((snap.fused_sample_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(snap.fused_sites, 10);
        assert_eq!(snap.total_sites, 40);
        assert_eq!(snap.encode_ops, 1);
        assert_eq!(snap.encode_ns, 1_000);
        assert_eq!(snap.restore_ops, 2);
        assert_eq!(snap.restore_ns, 1_200);
        assert_eq!(snap.samples[0], ("BinII".to_string(), 2));
        assert_eq!(snap.samples[1].1, 1);
        let folded = snap.folded();
        assert!(folded.starts_with("minpsid;interp;BinII 2\n"));
        assert_eq!(folded.lines().count(), 2);

        disable();
        assert!(!enabled());
        reset();
        assert_eq!(snapshot().total_samples, 0);
    }
}
