//! Dynamic execution profiles.
//!
//! A [`Profile`] captures the three signals the pipeline needs:
//!
//! 1. **Per-instruction dynamic counts and cycles** — SID's knapsack cost
//!    (Eq. 1) and the denominator of per-instruction FI sampling.
//! 2. **Per-block entry counts** — the *indexed weighted-CFG list* of
//!    paper Fig. 5, which the GA fitness function (Eq. 3) compares across
//!    inputs.
//! 3. **Per-edge execution counts** — the weighted CFG proper.

use minpsid_ir::{BlockId, FuncId, GlobalInstId, Module};
use std::collections::HashMap;

/// Dynamic profile of one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Dynamic execution count per static instruction, dense in module
    /// numbering order.
    pub inst_counts: Vec<u64>,
    /// Total cycles attributed to each static instruction.
    pub inst_cycles: Vec<u64>,
    /// Entry count per basic block: `block_counts[func][block]`.
    pub block_counts: Vec<Vec<u64>>,
    /// Execution count per CFG edge, keyed `(from, to)`, per function.
    pub edge_counts: Vec<HashMap<(BlockId, BlockId), u64>>,
    /// Sum of `inst_cycles`.
    pub total_cycles: u64,
    /// Total dynamic instructions executed.
    pub total_insts: u64,
    /// Total dynamic executions of injectable instructions (the population
    /// whole-program random injection samples from).
    pub injectable_execs: u64,
    /// First dynamic step (1-based; 0 = function never executed) at which
    /// each function ran an instruction. Together with
    /// [`Profile::sec_last_step`] this is the per-section dynamic-instruction
    /// range the compositional FI planner uses.
    pub sec_first_step: Vec<u64>,
    /// Last dynamic step (1-based; 0 = never executed) per function.
    pub sec_last_step: Vec<u64>,
}

impl Profile {
    /// Empty profile shaped for `module`.
    pub fn for_module(module: &Module) -> Self {
        let n = module.num_insts();
        Profile {
            inst_counts: vec![0; n],
            inst_cycles: vec![0; n],
            block_counts: module
                .funcs
                .iter()
                .map(|f| vec![0; f.blocks.len()])
                .collect(),
            edge_counts: module.funcs.iter().map(|_| HashMap::new()).collect(),
            total_cycles: 0,
            total_insts: 0,
            injectable_execs: 0,
            sec_first_step: vec![0; module.funcs.len()],
            sec_last_step: vec![0; module.funcs.len()],
        }
    }

    /// Dynamic step range `[first, last]` of a function, if it ever ran.
    pub fn section_range(&self, func: FuncId) -> Option<(u64, u64)> {
        let first = self.sec_first_step[func.index()];
        (first != 0).then(|| (first, self.sec_last_step[func.index()]))
    }

    /// The indexed weighted-CFG list of the *whole program*: the per-block
    /// entry counts of every function, concatenated in function order.
    /// This is the vector `L = {i_1, …, i_N}` of paper Eq. 3.
    pub fn indexed_cfg_list(&self) -> Vec<u64> {
        self.block_counts.iter().flatten().copied().collect()
    }

    /// Dynamic count of one static instruction.
    pub fn count_of(&self, module: &Module, id: GlobalInstId) -> u64 {
        self.inst_counts[module.numbering().index(id)]
    }

    /// Edge weight lookup.
    pub fn edge_count(&self, func: FuncId, from: BlockId, to: BlockId) -> u64 {
        self.edge_counts[func.index()]
            .get(&(from, to))
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_ir::{ModuleBuilder, Ty};

    #[test]
    fn indexed_cfg_list_concatenates_functions() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let helper = mb.declare("h", vec![], Some(Ty::I64));
        let mut fb = mb.body(helper);
        fb.ret(1i64);
        mb.define(fb);
        let mut fb = mb.body(main);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();

        let mut p = Profile::for_module(&m);
        p.block_counts[0][0] = 7;
        p.block_counts[1][0] = 3;
        assert_eq!(p.indexed_cfg_list(), vec![7, 3]);
    }

    #[test]
    fn empty_profile_is_zeroed() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let p = Profile::for_module(&m);
        assert_eq!(p.total_cycles, 0);
        assert_eq!(p.inst_counts, vec![0]);
        assert_eq!(p.edge_count(FuncId(0), BlockId(0), BlockId(0)), 0);
    }
}
