//! Golden-run checkpoints: snapshots of complete interpreter state that
//! faulty runs can resume from.
//!
//! The interpreter is fully deterministic, and the fault model flips one
//! bit at one dynamic injection point — so a faulty run is bit-identical
//! to the golden run up to that point. A campaign therefore only needs to
//! re-execute the *suffix* after the nearest snapshot at or before the
//! injection site (FastFlip's incremental-FI observation). A [`Snapshot`]
//! captures everything the machine carries forward:
//!
//! * the frame stack (function, block, position, registers, arguments,
//!   stack-memory watermark),
//! * heap and stack linear memory,
//! * the output stream emitted so far,
//! * the step counter,
//! * the injection counters: the global injectable-execution counter and a
//!   dense per-static-instruction vector of injectable-execution counts.
//!
//! The per-instruction counts matter because injection points are *value
//! productions*, not instruction fetches: a `call`'s value materializes at
//! return time, attributed to the call's dense index. Restoring
//! `per_inst_ctr` from the dense count vector keeps `NthOfInst` targeting
//! bit-identical even when a snapshot lands mid-call.
//!
//! ## Delta encoding
//!
//! Consecutive snapshots of an HPC kernel are nearly identical: a few
//! registers, the handful of memory words the loop body touched, and the
//! counters. [`SnapshotMode::Delta`] exploits this — a stored checkpoint
//! is either a full *keyframe* or a diff against the previously stored
//! entry: dirty memory runs (gap-coalesced, diffed against the
//! zero-extended predecessor so freshly grown regions cost only their
//! non-zero words), per-frame changed registers when the call-stack shape
//! matches, the appended output tail, and a varint stream of changed
//! per-instruction injection counts (absolute values, so lookups walk
//! backward and stop at the first stream mentioning the instruction). A
//! keyframe every [`CheckpointConfig::keyframe_every`] entries bounds
//! restore cost; restoring applies at most `keyframe_every - 1` deltas in
//! place. The ~5-10x size reduction buys proportionally higher checkpoint
//! density inside the same memory budget.
//!
//! What a snapshot does **not** contain: the [`Profile`](crate::Profile)
//! and the trace (resumed runs re-profile only the suffix — campaigns run
//! faulty executions unprofiled), and the program input (resume takes the
//! same `&ProgInput`; the machine reads it lazily).

use crate::exec::{Frame, MachineState};
use crate::value::{Output, OutputItem, Value};
use minpsid_ir::BlockId;

/// A point-in-time copy of complete interpreter state, captured between
/// two instructions. Resuming from it is bit-identical to executing from
/// scratch up to the same step.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) state: MachineState,
    /// Per-static-instruction (dense module-wide index) count of injectable
    /// value productions performed so far.
    pub(crate) inj_counts: Vec<u64>,
}

impl Snapshot {
    /// Dynamic instructions completed at capture time.
    pub fn steps(&self) -> u64 {
        self.state.steps
    }

    /// Global injectable-execution counter at capture time (the
    /// `NthDynamic` fault population index).
    pub fn inj_ctr(&self) -> u64 {
        self.state.inj_ctr
    }

    /// Injectable value productions of the static instruction `dense` at
    /// capture time (the `NthOfInst` population index).
    pub fn inj_count_of(&self, dense: usize) -> u64 {
        self.inj_counts[dense]
    }

    /// Output items emitted up to the capture point.
    pub fn output(&self) -> &Output {
        &self.state.output
    }

    /// Rough heap footprint, for memory budgeting.
    pub fn approx_bytes(&self) -> usize {
        self.state.approx_bytes() + self.inj_counts.len() * 8 + 64
    }
}

/// How checkpoints are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotMode {
    /// Every checkpoint is a complete [`Snapshot`].
    #[default]
    Full,
    /// Checkpoints are diffs against the previous one, with a full
    /// keyframe every [`CheckpointConfig::keyframe_every`] entries.
    Delta,
}

/// Knobs for checkpoint capture during a golden run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Steps between snapshots (≥ 1).
    pub interval: u64,
    /// Total snapshot memory budget in bytes. When a capture exceeds it,
    /// every other snapshot is dropped and the interval doubles, keeping
    /// spacing even while halving the footprint.
    pub mem_budget_bytes: usize,
    /// Full snapshots or delta chains; see [`SnapshotMode`].
    pub mode: SnapshotMode,
    /// Delta mode: a full keyframe every this many stored entries (so a
    /// restore applies at most `keyframe_every - 1` diffs). Ignored in
    /// full mode.
    pub keyframe_every: u32,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            interval: 4096,
            mem_budget_bytes: 256 << 20,
            mode: SnapshotMode::Full,
            keyframe_every: 16,
        }
    }
}

/// Bit-exact value equality for delta encoding: NaN payloads compare by
/// bits and `Undef == Undef` (unlike the Check-semantics
/// [`bit_equal`](crate::exec::bit_equal), which must treat any Undef as a
/// mismatch).
fn value_bits_eq(a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::I(x), Value::I(y)) => x == y,
        (Value::F(x), Value::F(y)) => x.to_bits() == y.to_bits(),
        (Value::B(x), Value::B(y)) => x == y,
        (Value::P(x), Value::P(y)) => x == y,
        (Value::Undef, Value::Undef) => true,
        _ => false,
    }
}

/// Two dirty runs closer than this many unchanged words are merged: run
/// headers cost ~16 bytes, so short gaps are cheaper stored verbatim.
const RUN_GAP: usize = 8;

/// Dirty runs of `cur` against `prev`, with `prev` zero-extended (a grown
/// region only costs its non-zero words, matching `Vec::resize(_, 0)` on
/// apply).
fn diff_words(prev: &[u64], cur: &[u64]) -> Vec<(usize, Vec<u64>)> {
    let mut runs: Vec<(usize, Vec<u64>)> = Vec::new();
    for (i, &c) in cur.iter().enumerate() {
        if c == prev.get(i).copied().unwrap_or(0) {
            continue;
        }
        match runs.last_mut() {
            Some((start, words)) if *start + words.len() + RUN_GAP >= i => {
                let from = *start + words.len();
                words.extend_from_slice(&cur[from..=i]);
            }
            _ => runs.push((i, vec![c])),
        }
    }
    runs
}

fn apply_words(dst: &mut Vec<u64>, new_len: usize, runs: &[(usize, Vec<u64>)]) {
    dst.resize(new_len, 0);
    for (start, words) in runs {
        dst[*start..*start + words.len()].copy_from_slice(words);
    }
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = buf[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Changed per-instruction injection counts as a varint byte stream of
/// (dense-index gap, absolute new count) pairs. Absolute counts let
/// [`CheckpointStore::inj_count_at`] stop at the first delta mentioning
/// the instruction when walking backward.
fn encode_inj(prev: &[u64], cur: &[u64]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut last = 0usize;
    for (i, (&p, &c)) in prev.iter().zip(cur).enumerate() {
        if p != c {
            push_varint(&mut buf, (i - last) as u64);
            push_varint(&mut buf, c);
            last = i + 1;
        }
    }
    buf
}

fn apply_inj(dst: &mut [u64], buf: &[u8]) {
    let mut pos = 0usize;
    let mut i = 0usize;
    while pos < buf.len() {
        i += read_varint(buf, &mut pos) as usize;
        dst[i] = read_varint(buf, &mut pos);
        i += 1;
    }
}

/// The count for `dense` in one delta's stream, if the stream mentions it.
fn delta_inj_lookup(buf: &[u8], dense: usize) -> Option<u64> {
    let mut pos = 0usize;
    let mut i = 0usize;
    while pos < buf.len() {
        i += read_varint(buf, &mut pos) as usize;
        let c = read_varint(buf, &mut pos);
        match i.cmp(&dense) {
            std::cmp::Ordering::Equal => return Some(c),
            std::cmp::Ordering::Greater => return None,
            std::cmp::Ordering::Less => i += 1,
        }
    }
    None
}

/// Per-frame diff used when the call-stack shape is unchanged.
#[derive(Debug, Clone)]
pub(crate) struct FrameDiff {
    pub(crate) block: BlockId,
    pub(crate) pos: usize,
    /// (register index, new value) for registers whose bits changed.
    pub(crate) regs: Vec<(u32, Value)>,
}

#[derive(Debug, Clone)]
pub(crate) enum FramesDelta {
    /// Same depth, functions, watermarks and arguments: store per-frame
    /// position + changed registers only.
    Sparse(Vec<FrameDiff>),
    /// The call stack changed shape; store it whole.
    Full(Vec<Frame>),
}

/// A checkpoint stored as a diff against the previously stored entry.
#[derive(Debug, Clone)]
pub(crate) struct SnapDelta {
    pub(crate) frames: FramesDelta,
    pub(crate) mem: Vec<(usize, Vec<u64>)>,
    pub(crate) mem_len: usize,
    pub(crate) stack: Vec<(usize, Vec<u64>)>,
    pub(crate) stack_len: usize,
    /// Output is append-only, so the delta is just the new tail.
    pub(crate) out_tail: Vec<OutputItem>,
    /// See [`encode_inj`].
    pub(crate) inj: Vec<u8>,
}

impl SnapDelta {
    fn approx_bytes(&self) -> usize {
        let frames = match &self.frames {
            FramesDelta::Full(fs) => fs
                .iter()
                .map(|f| (f.regs.len() + f.args.len()) * std::mem::size_of::<Value>() + 64)
                .sum::<usize>(),
            FramesDelta::Sparse(ds) => ds
                .iter()
                .map(|d| d.regs.len() * (std::mem::size_of::<Value>() + 4) + 24)
                .sum::<usize>(),
        };
        let words: usize = self
            .mem
            .iter()
            .chain(&self.stack)
            .map(|(_, w)| w.len() * 8 + 16)
            .sum();
        frames
            + words
            + self.out_tail.len() * std::mem::size_of::<OutputItem>()
            + self.inj.len()
            + 48
    }
}

fn frames_delta(prev: &[Frame], cur: &[Frame]) -> FramesDelta {
    let same_shape = prev.len() == cur.len()
        && prev.iter().zip(cur).all(|(p, c)| {
            p.func == c.func
                && p.sp_base == c.sp_base
                && p.regs.len() == c.regs.len()
                && p.args.len() == c.args.len()
                // same-depth frames can still be *different invocations*
                // (call returned, new call entered between captures), so
                // arguments must match bit-exactly for a sparse diff
                && p.args
                    .iter()
                    .zip(&c.args)
                    .all(|(a, b)| value_bits_eq(*a, *b))
        });
    if !same_shape {
        return FramesDelta::Full(cur.to_vec());
    }
    FramesDelta::Sparse(
        prev.iter()
            .zip(cur)
            .map(|(p, c)| FrameDiff {
                block: c.block,
                pos: c.pos,
                regs: c
                    .regs
                    .iter()
                    .enumerate()
                    .filter(|&(i, &v)| !value_bits_eq(p.regs[i], v))
                    .map(|(i, &v)| (i as u32, v))
                    .collect(),
            })
            .collect(),
    )
}

fn apply_frames(dst: &mut Vec<Frame>, d: &FramesDelta) {
    match d {
        FramesDelta::Full(frames) => dst.clone_from(frames),
        FramesDelta::Sparse(diffs) => {
            debug_assert_eq!(dst.len(), diffs.len());
            for (f, diff) in dst.iter_mut().zip(diffs) {
                f.block = diff.block;
                f.pos = diff.pos;
                for &(i, v) in &diff.regs {
                    f.regs[i as usize] = v;
                }
            }
        }
    }
}

fn encode_delta(prev: &Snapshot, st: &MachineState, inj_counts: &[u64]) -> SnapDelta {
    debug_assert!(prev.state.output.items.len() <= st.output.items.len());
    SnapDelta {
        frames: frames_delta(&prev.state.frames, &st.frames),
        mem: diff_words(&prev.state.mem, &st.mem),
        mem_len: st.mem.len(),
        stack: diff_words(&prev.state.stack_mem, &st.stack_mem),
        stack_len: st.stack_mem.len(),
        out_tail: st.output.items[prev.state.output.items.len()..].to_vec(),
        inj: encode_inj(&prev.inj_counts, inj_counts),
    }
}

fn apply_delta_state(st: &mut MachineState, d: &SnapDelta, steps: u64, inj_ctr: u64) {
    apply_frames(&mut st.frames, &d.frames);
    apply_words(&mut st.mem, d.mem_len, &d.mem);
    apply_words(&mut st.stack_mem, d.stack_len, &d.stack);
    st.output.items.extend_from_slice(&d.out_tail);
    st.steps = steps;
    st.inj_ctr = inj_ctr;
    st.per_inst_ctr = 0;
    st.fault_applied = false;
}

#[derive(Debug, Clone)]
pub(crate) enum SnapBody {
    Key(Snapshot),
    Delta(SnapDelta),
}

/// One stored checkpoint: metadata needed for nearest-snapshot selection
/// inline, body either a keyframe or a delta.
#[derive(Debug, Clone)]
pub(crate) struct StoredSnap {
    pub(crate) steps: u64,
    pub(crate) inj_ctr: u64,
    /// Index of the governing keyframe entry (`== own index` for keys).
    pub(crate) key: u32,
    pub(crate) bytes: usize,
    pub(crate) body: SnapBody,
}

/// Accumulates checkpoints during a golden run. Lives in the interpreter
/// loop; also maintains the live dense injection-count vector that each
/// snapshot clones.
pub(crate) struct CheckpointCollector {
    interval: u64,
    next_at: u64,
    mem_budget_bytes: usize,
    mode: SnapshotMode,
    keyframe_every: u32,
    bytes: usize,
    pub(crate) inj_counts: Vec<u64>,
    entries: Vec<StoredSnap>,
    /// Delta mode: a materialized copy of the last stored entry — exactly
    /// the base the next delta diffs against. Invariant: equals the state
    /// encoded by `entries.last()`, which `thin` preserves by re-pushing
    /// kept entries through the same path.
    shadow: Option<Snapshot>,
}

impl CheckpointCollector {
    pub(crate) fn new(cfg: CheckpointConfig, num_insts: usize) -> Self {
        let interval = cfg.interval.max(1);
        CheckpointCollector {
            interval,
            next_at: interval,
            mem_budget_bytes: cfg.mem_budget_bytes,
            mode: cfg.mode,
            keyframe_every: cfg.keyframe_every.max(1),
            bytes: 0,
            inj_counts: vec![0; num_insts],
            entries: Vec::new(),
            shadow: None,
        }
    }

    /// True when the machine has completed enough steps for the next
    /// capture. Checked between instructions.
    #[inline]
    pub(crate) fn due(&self, steps: u64) -> bool {
        steps >= self.next_at
    }

    pub(crate) fn capture(&mut self, st: &MachineState) {
        // profiler-only clock reads: zero syscalls when disabled
        let t0 = crate::opprof::enabled().then(std::time::Instant::now);
        let inj = std::mem::take(&mut self.inj_counts);
        self.push_entry(st, &inj);
        self.inj_counts = inj;
        self.next_at = st.steps + self.interval;
        while self.bytes > self.mem_budget_bytes && self.entries.len() > 1 {
            self.thin();
        }
        if let Some(t0) = t0 {
            crate::opprof::add_encode(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Append one checkpoint of machine state `st` with injection counts
    /// `inj`, choosing keyframe vs delta by the configured policy. Shared
    /// by live capture and by `thin`'s re-encode.
    fn push_entry(&mut self, st: &MachineState, inj: &[u64]) {
        let idx = self.entries.len();
        let make_key = match self.mode {
            SnapshotMode::Full => true,
            SnapshotMode::Delta => match self.entries.last() {
                None => true,
                Some(last) => idx as u32 - last.key >= self.keyframe_every,
            },
        };
        let entry = if make_key {
            let snap = Snapshot {
                state: st.clone(),
                inj_counts: inj.to_vec(),
            };
            StoredSnap {
                steps: st.steps,
                inj_ctr: st.inj_ctr,
                key: idx as u32,
                bytes: snap.approx_bytes(),
                body: SnapBody::Key(snap),
            }
        } else {
            let shadow = self.shadow.as_ref().expect("delta entries follow a key");
            let d = encode_delta(shadow, st, inj);
            StoredSnap {
                steps: st.steps,
                inj_ctr: st.inj_ctr,
                key: self.entries.last().unwrap().key,
                bytes: d.approx_bytes(),
                body: SnapBody::Delta(d),
            }
        };
        self.bytes += entry.bytes;
        self.entries.push(entry);
        if self.mode == SnapshotMode::Delta {
            match &mut self.shadow {
                Some(sh) => {
                    sh.state.clone_from(st);
                    sh.inj_counts.clear();
                    sh.inj_counts.extend_from_slice(inj);
                }
                None => {
                    self.shadow = Some(Snapshot {
                        state: st.clone(),
                        inj_counts: inj.to_vec(),
                    })
                }
            }
        }
    }

    /// Drop every other checkpoint (keeping the later of each pair, so the
    /// worst-case replay suffix stays ≤ the new interval) and double the
    /// interval. In delta mode the survivors are re-encoded by walking a
    /// single materialization cursor over the old chain and re-pushing
    /// each kept state, so keys/deltas stay consistent.
    fn thin(&mut self) {
        match self.mode {
            SnapshotMode::Full => {
                let mut keep = false;
                self.entries.retain(|_| {
                    keep = !keep;
                    !keep
                });
                for (i, e) in self.entries.iter_mut().enumerate() {
                    e.key = i as u32;
                }
                self.bytes = self.entries.iter().map(|e| e.bytes).sum();
            }
            SnapshotMode::Delta => {
                let old = std::mem::take(&mut self.entries);
                self.bytes = 0;
                self.shadow = None;
                let mut cur = MachineState::default();
                let mut inj = vec![0u64; self.inj_counts.len()];
                for (i, e) in old.iter().enumerate() {
                    match &e.body {
                        SnapBody::Key(s) => {
                            cur.clone_from(&s.state);
                            inj.copy_from_slice(&s.inj_counts);
                        }
                        SnapBody::Delta(d) => {
                            apply_delta_state(&mut cur, d, e.steps, e.inj_ctr);
                            apply_inj(&mut inj, &d.inj);
                        }
                    }
                    if i % 2 == 1 {
                        self.push_entry(&cur, &inj);
                    }
                }
            }
        }
        self.interval = self.interval.saturating_mul(2);
        self.next_at = self.entries.last().map(|s| s.steps).unwrap_or(0) + self.interval;
    }

    pub(crate) fn into_store(self) -> CheckpointStore {
        CheckpointStore {
            num_insts: self.inj_counts.len(),
            entries: self.entries,
        }
    }

    /// Materialize every stored checkpoint (compat surface for callers
    /// that want plain [`Snapshot`]s; full-mode entries just move out).
    pub(crate) fn into_snapshots(self) -> Vec<Snapshot> {
        if self
            .entries
            .iter()
            .all(|e| matches!(e.body, SnapBody::Key(_)))
        {
            return self
                .entries
                .into_iter()
                .map(|e| match e.body {
                    SnapBody::Key(s) => s,
                    SnapBody::Delta(_) => unreachable!(),
                })
                .collect();
        }
        let store = self.into_store();
        (0..store.len()).map(|i| store.materialize(i)).collect()
    }
}

/// An ordered set of checkpoints from one golden run, with the lookups FI
/// campaigns need: the latest checkpoint whose injection counter has not
/// yet passed a given fault index. Checkpoints are addressed by index;
/// [`CheckpointStore::restore_into`] reconstructs one directly into a
/// scratch [`MachineState`] (applying delta chains in place), and
/// [`CheckpointStore::materialize`] clones one out as a [`Snapshot`].
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    pub(crate) entries: Vec<StoredSnap>,
    pub(crate) num_insts: usize,
}

impl CheckpointStore {
    /// Build from materialized snapshots (already in capture order); each
    /// becomes its own keyframe.
    pub fn new(snaps: Vec<Snapshot>) -> Self {
        debug_assert!(snaps.windows(2).all(|w| w[0].steps() < w[1].steps()));
        let num_insts = snaps.first().map(|s| s.inj_counts.len()).unwrap_or(0);
        let entries = snaps
            .into_iter()
            .enumerate()
            .map(|(i, s)| StoredSnap {
                steps: s.steps(),
                inj_ctr: s.inj_ctr(),
                key: i as u32,
                bytes: s.approx_bytes(),
                body: SnapBody::Key(s),
            })
            .collect();
        CheckpointStore { entries, num_insts }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn total_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Step counter of checkpoint `idx`.
    pub fn steps_at(&self, idx: usize) -> u64 {
        self.entries[idx].steps
    }

    /// Global injection counter of checkpoint `idx`.
    pub fn inj_ctr_at(&self, idx: usize) -> u64 {
        self.entries[idx].inj_ctr
    }

    /// Injection count of static instruction `dense` at checkpoint `idx`.
    /// Walks backward from `idx`: deltas store absolute counts, so the
    /// first stream mentioning `dense` answers; otherwise the keyframe
    /// does.
    pub fn inj_count_at(&self, idx: usize, dense: usize) -> u64 {
        let mut j = idx;
        loop {
            match &self.entries[j].body {
                SnapBody::Key(s) => return s.inj_counts[dense],
                SnapBody::Delta(d) => {
                    if let Some(c) = delta_inj_lookup(&d.inj, dense) {
                        return c;
                    }
                    j -= 1;
                }
            }
        }
    }

    /// Reconstruct checkpoint `idx`'s machine state into `st`, reusing its
    /// buffers: `clone_from` the governing keyframe, then apply the (at
    /// most `keyframe_every - 1`) deltas in place.
    pub fn restore_into(&self, idx: usize, st: &mut MachineState) {
        // profiler-only clock reads: zero syscalls when disabled
        let t0 = crate::opprof::enabled().then(std::time::Instant::now);
        let key = self.entries[idx].key as usize;
        for j in key..=idx {
            let e = &self.entries[j];
            match &e.body {
                SnapBody::Key(s) => st.clone_from(&s.state),
                SnapBody::Delta(d) => apply_delta_state(st, d, e.steps, e.inj_ctr),
            }
        }
        if let Some(t0) = t0 {
            crate::opprof::add_restore(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Clone checkpoint `idx` out as a standalone [`Snapshot`].
    pub fn materialize(&self, idx: usize) -> Snapshot {
        let mut st = MachineState::default();
        self.restore_into(idx, &mut st);
        let key = self.entries[idx].key as usize;
        let mut inj_counts = vec![0u64; self.num_insts];
        for j in key..=idx {
            match &self.entries[j].body {
                SnapBody::Key(s) => inj_counts.copy_from_slice(&s.inj_counts),
                SnapBody::Delta(d) => apply_inj(&mut inj_counts, &d.inj),
            }
        }
        Snapshot {
            state: st,
            inj_counts,
        }
    }

    /// Latest checkpoint safe for a `NthDynamic(nth)` fault: the last one
    /// whose global injection counter is still ≤ `nth` (the target event
    /// has not yet happened at capture time).
    pub fn nearest_for_dynamic(&self, nth: u64) -> Option<usize> {
        let k = self.entries.partition_point(|s| s.inj_ctr <= nth);
        k.checked_sub(1)
    }

    /// Latest checkpoint safe for a `NthOfInst(dense, nth)` fault: the
    /// last one where the target instruction's injection count is still
    /// ≤ `nth`.
    pub fn nearest_for_inst(&self, dense: usize, nth: u64) -> Option<usize> {
        binary_search_by_count(self, dense, nth).checked_sub(1)
    }
}

/// `partition_point` over `inj_count_at(i, dense) <= nth` (counts are
/// monotone nondecreasing in the checkpoint index).
fn binary_search_by_count(store: &CheckpointStore, dense: usize, nth: u64) -> usize {
    let mut lo = 0usize;
    let mut hi = store.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if store.inj_count_at(mid, dense) <= nth {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Auto-tuned capture interval for a golden run of `golden_steps` dynamic
/// instructions: ~sqrt(steps) (balancing snapshot count against mean replay
/// suffix), floored so at most `max_snapshots` are captured.
pub fn auto_interval(golden_steps: u64, max_snapshots: u64) -> u64 {
    let sqrt = (golden_steps as f64).sqrt().ceil() as u64;
    let floor = golden_steps / max_snapshots.max(1) + 1;
    sqrt.max(floor).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_interval_is_sqrt_like_and_capped() {
        assert_eq!(auto_interval(0, 512), 1);
        assert_eq!(auto_interval(100, 512), 10);
        let i = auto_interval(1_000_000, 512);
        // sqrt(1e6) = 1000 snapshots would exceed the 512 cap -> floor wins
        assert!(i >= 1_000_000 / 512);
        assert!(1_000_000 / i <= 512);
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let vals = [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX];
        for &v in &vals {
            push_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn word_diffs_round_trip_including_growth_and_shrink() {
        let cases: [(&[u64], &[u64]); 5] = [
            (&[1, 2, 3], &[1, 9, 3]),
            (&[1, 2, 3], &[1, 2, 3, 0, 0, 7]), // growth: zeros are free
            (&[1, 2, 3, 4, 5], &[1, 2]),       // shrink
            (&[], &[5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9]), // two runs
            (&[0; 64], &[0; 64]),              // no change
        ];
        for (prev, cur) in cases {
            let runs = diff_words(prev, cur);
            let mut dst = prev.to_vec();
            apply_words(&mut dst, cur.len(), &runs);
            assert_eq!(dst, cur);
        }
    }

    #[test]
    fn inj_streams_round_trip_and_support_lookup() {
        let prev = vec![0u64, 5, 9, 0, 2, 2];
        let cur = vec![0u64, 6, 9, 0, 4, 2];
        let buf = encode_inj(&prev, &cur);
        let mut dst = prev.clone();
        apply_inj(&mut dst, &buf);
        assert_eq!(dst, cur);
        assert_eq!(delta_inj_lookup(&buf, 1), Some(6));
        assert_eq!(delta_inj_lookup(&buf, 4), Some(4));
        assert_eq!(delta_inj_lookup(&buf, 2), None, "unchanged: not in stream");
        assert_eq!(delta_inj_lookup(&buf, 5), None);
    }
}
