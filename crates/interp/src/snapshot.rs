//! Golden-run checkpoints: snapshots of complete interpreter state that
//! faulty runs can resume from.
//!
//! The interpreter is fully deterministic, and the fault model flips one
//! bit at one dynamic injection point — so a faulty run is bit-identical
//! to the golden run up to that point. A campaign therefore only needs to
//! re-execute the *suffix* after the nearest snapshot at or before the
//! injection site (FastFlip's incremental-FI observation). A [`Snapshot`]
//! captures everything the machine carries forward:
//!
//! * the frame stack (function, block, position, registers, arguments,
//!   stack-memory watermark),
//! * heap and stack linear memory,
//! * the output stream emitted so far,
//! * the step counter,
//! * the injection counters: the global injectable-execution counter and a
//!   dense per-static-instruction vector of injectable-execution counts.
//!
//! The per-instruction counts matter because injection points are *value
//! productions*, not instruction fetches: a `call`'s value materializes at
//! return time, attributed to the call's dense index. Restoring
//! `per_inst_ctr` from the dense count vector keeps `NthOfInst` targeting
//! bit-identical even when a snapshot lands mid-call.
//!
//! What a snapshot does **not** contain: the [`Profile`](crate::Profile)
//! and the trace (resumed runs re-profile only the suffix — campaigns run
//! faulty executions unprofiled), and the program input (resume takes the
//! same `&ProgInput`; the machine reads it lazily).

use crate::exec::MachineState;
use crate::value::Output;

/// A point-in-time copy of complete interpreter state, captured between
/// two instructions. Resuming from it is bit-identical to executing from
/// scratch up to the same step.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) state: MachineState,
    /// Per-static-instruction (dense module-wide index) count of injectable
    /// value productions performed so far.
    pub(crate) inj_counts: Vec<u64>,
}

impl Snapshot {
    /// Dynamic instructions completed at capture time.
    pub fn steps(&self) -> u64 {
        self.state.steps
    }

    /// Global injectable-execution counter at capture time (the
    /// `NthDynamic` fault population index).
    pub fn inj_ctr(&self) -> u64 {
        self.state.inj_ctr
    }

    /// Injectable value productions of the static instruction `dense` at
    /// capture time (the `NthOfInst` population index).
    pub fn inj_count_of(&self, dense: usize) -> u64 {
        self.inj_counts[dense]
    }

    /// Output items emitted up to the capture point.
    pub fn output(&self) -> &Output {
        &self.state.output
    }

    /// Rough heap footprint, for memory budgeting.
    pub fn approx_bytes(&self) -> usize {
        self.state.approx_bytes() + self.inj_counts.len() * 8 + 64
    }
}

/// Knobs for checkpoint capture during a golden run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Steps between snapshots (≥ 1).
    pub interval: u64,
    /// Total snapshot memory budget in bytes. When a capture exceeds it,
    /// every other snapshot is dropped and the interval doubles, keeping
    /// spacing even while halving the footprint.
    pub mem_budget_bytes: usize,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            interval: 4096,
            mem_budget_bytes: 256 << 20,
        }
    }
}

/// Accumulates snapshots during a checkpointed run. Lives in the
/// interpreter loop; also maintains the live dense injection-count vector
/// that each snapshot clones.
pub(crate) struct CheckpointCollector {
    interval: u64,
    next_at: u64,
    mem_budget_bytes: usize,
    bytes: usize,
    pub(crate) inj_counts: Vec<u64>,
    snaps: Vec<Snapshot>,
}

impl CheckpointCollector {
    pub(crate) fn new(cfg: CheckpointConfig, num_insts: usize) -> Self {
        let interval = cfg.interval.max(1);
        CheckpointCollector {
            interval,
            next_at: interval,
            mem_budget_bytes: cfg.mem_budget_bytes,
            bytes: 0,
            inj_counts: vec![0; num_insts],
            snaps: Vec::new(),
        }
    }

    /// True when the machine has completed enough steps for the next
    /// capture. Checked between instructions.
    #[inline]
    pub(crate) fn due(&self, steps: u64) -> bool {
        steps >= self.next_at
    }

    pub(crate) fn capture(&mut self, st: &MachineState) {
        let snap = Snapshot {
            state: st.clone(),
            inj_counts: self.inj_counts.clone(),
        };
        self.bytes += snap.approx_bytes();
        self.snaps.push(snap);
        self.next_at = st.steps + self.interval;
        while self.bytes > self.mem_budget_bytes && self.snaps.len() > 1 {
            self.thin();
        }
    }

    /// Drop every other snapshot (keeping the later of each pair, so the
    /// worst-case replay suffix stays ≤ the new interval) and double the
    /// interval.
    fn thin(&mut self) {
        let mut keep = false;
        self.snaps.retain(|_| {
            keep = !keep;
            !keep
        });
        self.interval = self.interval.saturating_mul(2);
        self.bytes = self.snaps.iter().map(Snapshot::approx_bytes).sum();
        self.next_at = self.snaps.last().map(|s| s.steps()).unwrap_or(0) + self.interval;
    }

    pub(crate) fn into_snapshots(self) -> Vec<Snapshot> {
        self.snaps
    }
}

/// An ordered set of snapshots from one golden run, with the lookups FI
/// campaigns need: the latest snapshot whose injection counter has not yet
/// passed a given fault index.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    snaps: Vec<Snapshot>,
}

impl CheckpointStore {
    /// Build from the snapshots of [`Interp::run_with_checkpoints`]
    /// (already in capture order).
    ///
    /// [`Interp::run_with_checkpoints`]: crate::Interp::run_with_checkpoints
    pub fn new(snaps: Vec<Snapshot>) -> Self {
        debug_assert!(snaps.windows(2).all(|w| w[0].steps() < w[1].steps()));
        CheckpointStore { snaps }
    }

    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snaps
    }

    pub fn total_bytes(&self) -> usize {
        self.snaps.iter().map(Snapshot::approx_bytes).sum()
    }

    /// Latest snapshot safe for a `NthDynamic(nth)` fault: the last one
    /// whose global injection counter is still ≤ `nth` (the target event
    /// has not yet happened at capture time).
    pub fn nearest_for_dynamic(&self, nth: u64) -> Option<&Snapshot> {
        let k = self.snaps.partition_point(|s| s.inj_ctr() <= nth);
        k.checked_sub(1).map(|i| &self.snaps[i])
    }

    /// Latest snapshot safe for a `NthOfInst(dense, nth)` fault: the last
    /// one where the target instruction's injection count is still ≤ `nth`.
    pub fn nearest_for_inst(&self, dense: usize, nth: u64) -> Option<&Snapshot> {
        let k = self.snaps.partition_point(|s| s.inj_count_of(dense) <= nth);
        k.checked_sub(1).map(|i| &self.snaps[i])
    }
}

/// Auto-tuned capture interval for a golden run of `golden_steps` dynamic
/// instructions: ~sqrt(steps) (balancing snapshot count against mean replay
/// suffix), floored so at most `max_snapshots` are captured.
pub fn auto_interval(golden_steps: u64, max_snapshots: u64) -> u64 {
    let sqrt = (golden_steps as f64).sqrt().ceil() as u64;
    let floor = golden_steps / max_snapshots.max(1) + 1;
    sqrt.max(floor).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_interval_is_sqrt_like_and_capped() {
        assert_eq!(auto_interval(0, 512), 1);
        assert_eq!(auto_interval(100, 512), 10);
        let i = auto_interval(1_000_000, 512);
        // sqrt(1e6) = 1000 snapshots would exceed the 512 cap -> floor wins
        assert!(i >= 1_000_000 / 512);
        assert!(1_000_000 / i <= 512);
    }
}
