//! Runtime values, program inputs, and the output stream.

use std::fmt;

/// A runtime value held in a virtual register.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    I(i64),
    F(f64),
    B(bool),
    /// Pointer: an offset into the execution's linear memory.
    P(u64),
    /// Never produced by verified modules; reading it is a trap.
    Undef,
}

impl Value {
    pub fn as_i(self) -> Option<i64> {
        match self {
            Value::I(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f(self) -> Option<f64> {
        match self {
            Value::F(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_b(self) -> Option<bool> {
        match self {
            Value::B(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_p(self) -> Option<u64> {
        match self {
            Value::P(v) => Some(v),
            _ => None,
        }
    }
}

/// A scalar command-line-style argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    I(i64),
    F(f64),
}

impl Scalar {
    pub fn as_i(self) -> Option<i64> {
        match self {
            Scalar::I(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f(self) -> Option<f64> {
        match self {
            Scalar::F(v) => Some(v),
            _ => None,
        }
    }
}

/// A bulk input stream (an input file in the paper's setting): a typed,
/// read-only array the program accesses with `data_i` / `data_f`.
#[derive(Debug, Clone, PartialEq)]
pub enum Stream {
    I(Vec<i64>),
    F(Vec<f64>),
}

impl Stream {
    pub fn len(&self) -> usize {
        match self {
            Stream::I(v) => v.len(),
            Stream::F(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A concrete program input: the unit the GA search engine mutates and the
/// FI campaigns run against.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgInput {
    pub args: Vec<Scalar>,
    pub streams: Vec<Stream>,
}

impl ProgInput {
    pub fn new(args: Vec<Scalar>, streams: Vec<Stream>) -> Self {
        ProgInput { args, streams }
    }

    /// Input with scalar arguments only.
    pub fn scalars(args: Vec<Scalar>) -> Self {
        ProgInput {
            args,
            streams: vec![],
        }
    }
}

/// One item the program emitted.
#[derive(Debug, Clone, Copy)]
pub enum OutputItem {
    I(i64),
    F(f64),
}

impl PartialEq for OutputItem {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (OutputItem::I(a), OutputItem::I(b)) => a == b,
            // bit-exact comparison, NaN-stable: LLFI diffs output files
            // byte-wise, so two NaNs with equal payloads compare equal
            (OutputItem::F(a), OutputItem::F(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for OutputItem {}

impl fmt::Display for OutputItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutputItem::I(v) => write!(f, "{v}"),
            OutputItem::F(v) => write!(f, "{v:?}"),
        }
    }
}

/// The full output stream of an execution. Equality is the paper's SDC
/// criterion: a fault whose run terminates normally but produces an output
/// unequal to the golden output is a silent data corruption.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Output {
    pub items: Vec<OutputItem>,
}

impl Output {
    pub fn push_i(&mut self, v: i64) {
        self.items.push(OutputItem::I(v));
    }

    pub fn push_f(&mut self, v: f64) {
        self.items.push(OutputItem::F(v));
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_equality_is_bit_exact() {
        let mut a = Output::default();
        let mut b = Output::default();
        a.push_f(0.1 + 0.2);
        b.push_f(0.3);
        assert_ne!(a, b, "0.1+0.2 != 0.3 bitwise");

        let mut c = Output::default();
        let mut d = Output::default();
        c.push_f(f64::NAN);
        d.push_f(f64::NAN);
        assert_eq!(c, d, "identical NaN payloads compare equal");
    }

    #[test]
    fn output_type_confusion_is_inequality() {
        let mut a = Output::default();
        let mut b = Output::default();
        a.push_i(1);
        b.push_f(1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn negative_zero_differs_from_positive_zero() {
        let mut a = Output::default();
        let mut b = Output::default();
        a.push_f(0.0);
        b.push_f(-0.0);
        assert_ne!(a, b, "byte-wise file diff distinguishes -0.0");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::I(3).as_i(), Some(3));
        assert_eq!(Value::I(3).as_f(), None);
        assert_eq!(Value::F(2.5).as_f(), Some(2.5));
        assert_eq!(Value::B(true).as_b(), Some(true));
        assert_eq!(Value::P(9).as_p(), Some(9));
    }

    #[test]
    fn stream_len() {
        assert_eq!(Stream::I(vec![1, 2, 3]).len(), 3);
        assert!(Stream::F(vec![]).is_empty());
    }
}
