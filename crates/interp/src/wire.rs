//! Wire codec for persistable golden-run artifacts.
//!
//! Two artifact classes cross the process boundary into the
//! content-addressed store: the golden *meta* (output stream, profile,
//! step count) and the golden *checkpoint store* (keyframes + delta
//! chains). Both get a compact little-endian binary encoding here —
//! deterministic (equal values encode to equal bytes, so the store
//! dedups them by content) and **checked** on the way back in: the
//! reader never panics on malformed bytes, never allocates more than
//! the input could possibly describe, and returns a typed
//! [`WireError`] instead. Digest verification in the store catches
//! bit rot before decode; the checked reader is the second wall, so a
//! store bug or a foreign file can at worst produce an error, not UB
//! or an abort.
//!
//! Integers are varint-encoded (LEB128, ≤ 10 bytes) except raw memory
//! words, which stay fixed 8-byte LE — HPC heaps are dense with
//! high-entropy floats where varints only add bytes. Hash-map ordered
//! collections (CFG edge counts) are sorted by key before encoding so
//! the byte image is a pure function of the value.

use crate::exec::{Frame, MachineState};
use crate::profile::Profile;
use crate::snapshot::{
    CheckpointStore, FrameDiff, FramesDelta, SnapBody, SnapDelta, Snapshot, StoredSnap,
};
use crate::value::{Output, OutputItem, Value};
use minpsid_ir::{BlockId, FuncId};
use std::collections::HashMap;
use std::fmt;

/// Format version; bump on any layout change (decoders reject other
/// versions rather than guessing). v2 added the per-section dynamic step
/// ranges (`sec_first_step`/`sec_last_step`) to encoded profiles.
pub const WIRE_VERSION: u32 = 2;

const GOLDEN_MAGIC: &[u8; 4] = b"MPSG";
const CKPT_MAGIC: &[u8; 4] = b"MPSC";

/// Why a byte image failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value it promised.
    Truncated,
    /// Structurally impossible content (bad magic/version/tag, a length
    /// larger than the remaining input, a varint past 64 bits, ...).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire image truncated"),
            WireError::Invalid(what) => write!(f, "wire image invalid: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// --- writer helpers ---

fn w_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn w_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn w_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

// --- checked reader ---

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(WireError::Invalid("varint exceeds 64 bits"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::Invalid("varint exceeds 64 bits"));
            }
        }
    }

    /// A count of items each at least `min_bytes` long. Bounds every
    /// allocation by what the remaining input could actually hold, so a
    /// malformed length can't balloon memory before `Truncated` fires.
    fn count(&mut self, min_bytes: usize) -> Result<usize, WireError> {
        let n = self.varint()? as usize;
        if n.saturating_mul(min_bytes.max(1)) > self.remaining() {
            return Err(WireError::Invalid("count exceeds remaining input"));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Invalid("trailing bytes"));
        }
        Ok(())
    }
}

// --- values / output ---

fn w_value(buf: &mut Vec<u8>, v: Value) {
    match v {
        Value::I(x) => {
            buf.push(0);
            w_u64(buf, x as u64);
        }
        Value::F(x) => {
            buf.push(1);
            w_u64(buf, x.to_bits());
        }
        Value::B(x) => {
            buf.push(2);
            buf.push(u8::from(x));
        }
        Value::P(x) => {
            buf.push(3);
            w_u64(buf, x);
        }
        Value::Undef => buf.push(4),
    }
}

fn r_value(r: &mut Reader) -> Result<Value, WireError> {
    Ok(match r.u8()? {
        0 => Value::I(r.u64()? as i64),
        1 => Value::F(f64::from_bits(r.u64()?)),
        2 => Value::B(match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::Invalid("bool byte")),
        }),
        3 => Value::P(r.u64()?),
        4 => Value::Undef,
        _ => return Err(WireError::Invalid("value tag")),
    })
}

fn w_values(buf: &mut Vec<u8>, vs: &[Value]) {
    w_varint(buf, vs.len() as u64);
    for &v in vs {
        w_value(buf, v);
    }
}

fn r_values(r: &mut Reader) -> Result<Vec<Value>, WireError> {
    let n = r.count(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r_value(r)?);
    }
    Ok(out)
}

fn w_output_items(buf: &mut Vec<u8>, items: &[OutputItem]) {
    w_varint(buf, items.len() as u64);
    for item in items {
        match *item {
            OutputItem::I(v) => {
                buf.push(0);
                w_u64(buf, v as u64);
            }
            OutputItem::F(v) => {
                buf.push(1);
                w_u64(buf, v.to_bits());
            }
        }
    }
}

fn r_output_items(r: &mut Reader) -> Result<Vec<OutputItem>, WireError> {
    let n = r.count(9)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match r.u8()? {
            0 => OutputItem::I(r.u64()? as i64),
            1 => OutputItem::F(f64::from_bits(r.u64()?)),
            _ => return Err(WireError::Invalid("output item tag")),
        });
    }
    Ok(out)
}

// --- raw word memories & varint vectors ---

fn w_words(buf: &mut Vec<u8>, words: &[u64]) {
    w_varint(buf, words.len() as u64);
    for &w in words {
        w_u64(buf, w);
    }
}

fn r_words(r: &mut Reader) -> Result<Vec<u64>, WireError> {
    let n = r.count(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

fn w_varints(buf: &mut Vec<u8>, vals: &[u64]) {
    w_varint(buf, vals.len() as u64);
    for &v in vals {
        w_varint(buf, v);
    }
}

fn r_varints(r: &mut Reader) -> Result<Vec<u64>, WireError> {
    let n = r.count(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.varint()?);
    }
    Ok(out)
}

// --- frames & machine state ---

fn w_frame(buf: &mut Vec<u8>, f: &Frame) {
    w_u32(buf, f.func.0);
    w_u32(buf, f.block.0);
    w_varint(buf, f.pos as u64);
    w_values(buf, &f.regs);
    w_values(buf, &f.args);
    w_varint(buf, f.sp_base as u64);
}

fn r_frame(r: &mut Reader) -> Result<Frame, WireError> {
    Ok(Frame {
        func: FuncId(r.u32()?),
        block: BlockId(r.u32()?),
        pos: r.varint()? as usize,
        regs: r_values(r)?,
        args: r_values(r)?,
        sp_base: r.varint()? as usize,
    })
}

fn w_frames(buf: &mut Vec<u8>, frames: &[Frame]) {
    w_varint(buf, frames.len() as u64);
    for f in frames {
        w_frame(buf, f);
    }
}

fn r_frames(r: &mut Reader) -> Result<Vec<Frame>, WireError> {
    let n = r.count(12)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r_frame(r)?);
    }
    Ok(out)
}

fn w_state(buf: &mut Vec<u8>, st: &MachineState) {
    w_frames(buf, &st.frames);
    w_words(buf, &st.mem);
    w_words(buf, &st.stack_mem);
    w_output_items(buf, &st.output.items);
    w_varint(buf, st.steps);
    w_varint(buf, st.inj_ctr);
    w_varint(buf, st.per_inst_ctr);
    buf.push(u8::from(st.fault_applied));
}

fn r_state(r: &mut Reader) -> Result<MachineState, WireError> {
    Ok(MachineState {
        frames: r_frames(r)?,
        mem: r_words(r)?,
        stack_mem: r_words(r)?,
        output: Output {
            items: r_output_items(r)?,
        },
        steps: r.varint()?,
        inj_ctr: r.varint()?,
        per_inst_ctr: r.varint()?,
        fault_applied: match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::Invalid("fault_applied byte")),
        },
    })
}

fn w_snapshot(buf: &mut Vec<u8>, s: &Snapshot) {
    w_state(buf, &s.state);
    w_varints(buf, &s.inj_counts);
}

fn r_snapshot(r: &mut Reader) -> Result<Snapshot, WireError> {
    Ok(Snapshot {
        state: r_state(r)?,
        inj_counts: r_varints(r)?,
    })
}

// --- delta bodies ---

fn w_runs(buf: &mut Vec<u8>, runs: &[(usize, Vec<u64>)]) {
    w_varint(buf, runs.len() as u64);
    for (start, words) in runs {
        w_varint(buf, *start as u64);
        w_words(buf, words);
    }
}

fn r_runs(r: &mut Reader) -> Result<Vec<(usize, Vec<u64>)>, WireError> {
    let n = r.count(2)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let start = r.varint()? as usize;
        out.push((start, r_words(r)?));
    }
    Ok(out)
}

fn w_delta(buf: &mut Vec<u8>, d: &SnapDelta) {
    match &d.frames {
        FramesDelta::Sparse(diffs) => {
            buf.push(0);
            w_varint(buf, diffs.len() as u64);
            for diff in diffs {
                w_u32(buf, diff.block.0);
                w_varint(buf, diff.pos as u64);
                w_varint(buf, diff.regs.len() as u64);
                for &(i, v) in &diff.regs {
                    w_u32(buf, i);
                    w_value(buf, v);
                }
            }
        }
        FramesDelta::Full(frames) => {
            buf.push(1);
            w_frames(buf, frames);
        }
    }
    w_runs(buf, &d.mem);
    w_varint(buf, d.mem_len as u64);
    w_runs(buf, &d.stack);
    w_varint(buf, d.stack_len as u64);
    w_output_items(buf, &d.out_tail);
    w_varint(buf, d.inj.len() as u64);
    buf.extend_from_slice(&d.inj);
}

fn r_delta(r: &mut Reader) -> Result<SnapDelta, WireError> {
    let frames = match r.u8()? {
        0 => {
            let n = r.count(6)?;
            let mut diffs = Vec::with_capacity(n);
            for _ in 0..n {
                let block = BlockId(r.u32()?);
                let pos = r.varint()? as usize;
                let k = r.count(5)?;
                let mut regs = Vec::with_capacity(k);
                for _ in 0..k {
                    let i = r.u32()?;
                    regs.push((i, r_value(r)?));
                }
                diffs.push(FrameDiff { block, pos, regs });
            }
            FramesDelta::Sparse(diffs)
        }
        1 => FramesDelta::Full(r_frames(r)?),
        _ => return Err(WireError::Invalid("frames-delta tag")),
    };
    Ok(SnapDelta {
        frames,
        mem: r_runs(r)?,
        mem_len: r.varint()? as usize,
        stack: r_runs(r)?,
        stack_len: r.varint()? as usize,
        out_tail: r_output_items(r)?,
        inj: {
            let n = r.count(1)?;
            r.take(n)?.to_vec()
        },
    })
}

// --- checkpoint store ---

/// Encode a [`CheckpointStore`] as a self-describing byte image
/// (`MPSC` + version + entries). Deterministic: equal stores encode to
/// equal bytes.
pub fn encode_checkpoints(store: &CheckpointStore) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + store.total_bytes() / 4);
    buf.extend_from_slice(CKPT_MAGIC);
    w_u32(&mut buf, WIRE_VERSION);
    w_varint(&mut buf, store.num_insts as u64);
    w_varint(&mut buf, store.entries.len() as u64);
    for e in &store.entries {
        w_varint(&mut buf, e.steps);
        w_varint(&mut buf, e.inj_ctr);
        w_u32(&mut buf, e.key);
        w_varint(&mut buf, e.bytes as u64);
        match &e.body {
            SnapBody::Key(s) => {
                buf.push(0);
                w_snapshot(&mut buf, s);
            }
            SnapBody::Delta(d) => {
                buf.push(1);
                w_delta(&mut buf, d);
            }
        }
    }
    buf
}

/// Decode a [`CheckpointStore`] image, validating structure end to end:
/// every delta chain starts at an in-range keyframe and every keyframe
/// carries the advertised `num_insts` counts, so downstream
/// `restore_into`/`inj_count_at` cannot index out of bounds.
pub fn decode_checkpoints(bytes: &[u8]) -> Result<CheckpointStore, WireError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != CKPT_MAGIC {
        return Err(WireError::Invalid("checkpoint magic"));
    }
    if r.u32()? != WIRE_VERSION {
        return Err(WireError::Invalid("wire version"));
    }
    let num_insts = r.varint()? as usize;
    let n = r.count(14)?;
    let mut entries: Vec<StoredSnap> = Vec::with_capacity(n);
    for i in 0..n {
        let steps = r.varint()?;
        let inj_ctr = r.varint()?;
        let key = r.u32()?;
        let bytes = r.varint()? as usize;
        let body = match r.u8()? {
            0 => SnapBody::Key(r_snapshot(&mut r)?),
            1 => SnapBody::Delta(r_delta(&mut r)?),
            _ => return Err(WireError::Invalid("snapshot body tag")),
        };
        match &body {
            SnapBody::Key(s) => {
                if key as usize != i {
                    return Err(WireError::Invalid("keyframe not its own key"));
                }
                if s.inj_counts.len() != num_insts {
                    return Err(WireError::Invalid("keyframe inj_counts length"));
                }
            }
            SnapBody::Delta(_) => {
                if key as usize >= i || !matches!(entries[key as usize].body, SnapBody::Key(_)) {
                    return Err(WireError::Invalid("delta key out of range"));
                }
            }
        }
        entries.push(StoredSnap {
            steps,
            inj_ctr,
            key,
            bytes,
            body,
        });
    }
    r.finish()?;
    Ok(CheckpointStore { entries, num_insts })
}

// --- profile ---

fn w_profile(buf: &mut Vec<u8>, p: &Profile) {
    w_varints(buf, &p.inst_counts);
    w_varints(buf, &p.inst_cycles);
    w_varint(buf, p.block_counts.len() as u64);
    for counts in &p.block_counts {
        w_varints(buf, counts);
    }
    w_varint(buf, p.edge_counts.len() as u64);
    for edges in &p.edge_counts {
        let mut sorted: Vec<_> = edges.iter().collect();
        sorted.sort_unstable_by_key(|(k, _)| **k);
        w_varint(buf, sorted.len() as u64);
        for (&(from, to), &count) in sorted {
            w_u32(buf, from.0);
            w_u32(buf, to.0);
            w_varint(buf, count);
        }
    }
    w_varint(buf, p.total_cycles);
    w_varint(buf, p.total_insts);
    w_varint(buf, p.injectable_execs);
    w_varints(buf, &p.sec_first_step);
    w_varints(buf, &p.sec_last_step);
}

fn r_profile(r: &mut Reader) -> Result<Profile, WireError> {
    let inst_counts = r_varints(r)?;
    let inst_cycles = r_varints(r)?;
    let nb = r.count(1)?;
    let mut block_counts = Vec::with_capacity(nb);
    for _ in 0..nb {
        block_counts.push(r_varints(r)?);
    }
    let ne = r.count(1)?;
    let mut edge_counts = Vec::with_capacity(ne);
    for _ in 0..ne {
        let k = r.count(9)?;
        let mut edges = HashMap::with_capacity(k);
        for _ in 0..k {
            let from = BlockId(r.u32()?);
            let to = BlockId(r.u32()?);
            edges.insert((from, to), r.varint()?);
        }
        edge_counts.push(edges);
    }
    let total_cycles = r.varint()?;
    let total_insts = r.varint()?;
    let injectable_execs = r.varint()?;
    let sec_first_step = r_varints(r)?;
    let sec_last_step = r_varints(r)?;
    if sec_first_step.len() != sec_last_step.len() {
        return Err(WireError::Invalid("section range length mismatch"));
    }
    Ok(Profile {
        inst_counts,
        inst_cycles,
        block_counts,
        edge_counts,
        total_cycles,
        total_insts,
        injectable_execs,
        sec_first_step,
        sec_last_step,
    })
}

// --- golden meta ---

/// Encode a golden run's verdict surface — output stream, profile, step
/// count — as one `MPSG` image (the store's `golden` artifact class).
pub fn encode_golden(output: &Output, profile: &Profile, steps: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256 + output.items.len() * 9);
    buf.extend_from_slice(GOLDEN_MAGIC);
    w_u32(&mut buf, WIRE_VERSION);
    w_output_items(&mut buf, &output.items);
    w_profile(&mut buf, profile);
    w_varint(&mut buf, steps);
    buf
}

/// Decode an `MPSG` golden-meta image back into (output, profile,
/// steps).
pub fn decode_golden(bytes: &[u8]) -> Result<(Output, Profile, u64), WireError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != GOLDEN_MAGIC {
        return Err(WireError::Invalid("golden magic"));
    }
    if r.u32()? != WIRE_VERSION {
        return Err(WireError::Invalid("wire version"));
    }
    let output = Output {
        items: r_output_items(&mut r)?,
    };
    let profile = r_profile(&mut r)?;
    let steps = r.varint()?;
    r.finish()?;
    Ok((output, profile, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{CheckpointCollector, CheckpointConfig, SnapshotMode};

    fn sample_state(seed: u64) -> MachineState {
        MachineState {
            frames: vec![
                Frame {
                    func: FuncId(0),
                    block: BlockId(1),
                    pos: 3,
                    regs: vec![
                        Value::I(seed as i64),
                        Value::F(f64::from_bits(0x7ff8_0000_dead_beef)), // NaN payload
                        Value::B(true),
                        Value::Undef,
                    ],
                    args: vec![Value::P(16)],
                    sp_base: 0,
                },
                Frame {
                    func: FuncId(2),
                    block: BlockId(0),
                    pos: 0,
                    regs: vec![Value::I(-1)],
                    args: vec![],
                    sp_base: 8,
                },
            ],
            mem: (0..64).map(|i| i * seed).collect(),
            stack_mem: vec![seed; 16],
            output: Output {
                items: vec![OutputItem::I(7), OutputItem::F(0.1 + seed as f64)],
            },
            steps: 1000 + seed,
            inj_ctr: 500 + seed,
            per_inst_ctr: 0,
            fault_applied: false,
        }
    }

    fn states_bit_equal(a: &MachineState, b: &MachineState) {
        assert_eq!(a.frames.len(), b.frames.len());
        for (fa, fb) in a.frames.iter().zip(&b.frames) {
            assert_eq!(fa.func, fb.func);
            assert_eq!(fa.block, fb.block);
            assert_eq!(fa.pos, fb.pos);
            assert_eq!(fa.sp_base, fb.sp_base);
            let bits = |v: &Value| format!("{v:?}");
            assert_eq!(
                fa.regs.iter().map(bits).collect::<Vec<_>>(),
                fb.regs.iter().map(bits).collect::<Vec<_>>()
            );
            assert_eq!(
                fa.args.iter().map(bits).collect::<Vec<_>>(),
                fb.args.iter().map(bits).collect::<Vec<_>>()
            );
        }
        assert_eq!(a.mem, b.mem);
        assert_eq!(a.stack_mem, b.stack_mem);
        assert_eq!(a.output, b.output);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.inj_ctr, b.inj_ctr);
    }

    #[test]
    fn golden_meta_round_trips_and_is_deterministic() {
        let output = Output {
            items: vec![
                OutputItem::I(i64::MIN),
                OutputItem::F(f64::NAN),
                OutputItem::F(-0.0),
            ],
        };
        let mut profile = Profile {
            inst_counts: vec![0, 3, u64::MAX],
            inst_cycles: vec![1, 2, 3],
            block_counts: vec![vec![5, 6], vec![]],
            edge_counts: vec![HashMap::new(), HashMap::new()],
            total_cycles: 99,
            total_insts: 42,
            injectable_execs: 17,
            sec_first_step: vec![1, 0],
            sec_last_step: vec![40, 0],
        };
        profile.edge_counts[0].insert((BlockId(0), BlockId(1)), 10);
        profile.edge_counts[0].insert((BlockId(1), BlockId(0)), 9);

        let bytes = encode_golden(&output, &profile, 12345);
        assert_eq!(bytes, encode_golden(&output, &profile, 12345));
        let (o2, p2, steps) = decode_golden(&bytes).unwrap();
        assert_eq!(o2, output);
        assert_eq!(p2.inst_counts, profile.inst_counts);
        assert_eq!(p2.inst_cycles, profile.inst_cycles);
        assert_eq!(p2.block_counts, profile.block_counts);
        assert_eq!(p2.edge_counts, profile.edge_counts);
        assert_eq!(p2.total_cycles, 99);
        assert_eq!(p2.sec_first_step, profile.sec_first_step);
        assert_eq!(p2.sec_last_step, profile.sec_last_step);
        assert_eq!(steps, 12345);
    }

    #[test]
    fn checkpoint_store_round_trips_full_and_delta() {
        for mode in [SnapshotMode::Full, SnapshotMode::Delta] {
            let cfg = CheckpointConfig {
                interval: 1,
                mode,
                keyframe_every: 3,
                ..CheckpointConfig::default()
            };
            let mut coll = CheckpointCollector::new(cfg, 8);
            for i in 0..10u64 {
                let mut st = sample_state(i);
                st.steps = (i + 1) * 100;
                st.inj_ctr = (i + 1) * 10;
                coll.inj_counts[(i % 8) as usize] += 1;
                coll.capture(&st);
            }
            let store = coll.into_store();
            let bytes = encode_checkpoints(&store);
            assert_eq!(bytes, encode_checkpoints(&store), "deterministic");
            let back = decode_checkpoints(&bytes).unwrap();
            assert_eq!(back.len(), store.len());
            assert_eq!(back.total_bytes(), store.total_bytes());
            for i in 0..store.len() {
                assert_eq!(back.steps_at(i), store.steps_at(i));
                assert_eq!(back.inj_ctr_at(i), store.inj_ctr_at(i));
                for dense in 0..8 {
                    assert_eq!(back.inj_count_at(i, dense), store.inj_count_at(i, dense));
                }
                let a = store.materialize(i);
                let b = back.materialize(i);
                states_bit_equal(&a.state, &b.state);
                assert_eq!(a.inj_counts, b.inj_counts);
            }
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let store = CheckpointStore::default();
        let back = decode_checkpoints(&encode_checkpoints(&store)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn malformed_images_error_and_never_panic() {
        let store = {
            let mut coll = CheckpointCollector::new(CheckpointConfig::default(), 4);
            coll.capture(&sample_state(1));
            coll.into_store()
        };
        let good = encode_checkpoints(&store);

        // every truncation point errors cleanly
        for cut in 0..good.len() {
            assert!(decode_checkpoints(&good[..cut]).is_err());
        }
        // bad magic / version
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert_eq!(
            decode_checkpoints(&bad).err(),
            Some(WireError::Invalid("checkpoint magic"))
        );
        let mut bad = good.clone();
        bad[4] ^= 0xff;
        assert_eq!(
            decode_checkpoints(&bad).err(),
            Some(WireError::Invalid("wire version"))
        );
        // trailing garbage is rejected, not silently ignored
        let mut bad = good.clone();
        bad.push(0);
        assert!(decode_checkpoints(&bad).is_err());
        // single flipped bytes either decode or error — never panic
        for pos in 8..good.len() {
            let mut bad = good.clone();
            bad[pos] ^= 0x10;
            let _ = decode_checkpoints(&bad);
        }

        let meta = encode_golden(
            &Output::default(),
            &Profile {
                inst_counts: vec![],
                inst_cycles: vec![],
                block_counts: vec![],
                edge_counts: vec![],
                total_cycles: 0,
                total_insts: 0,
                injectable_execs: 0,
                sec_first_step: vec![],
                sec_last_step: vec![],
            },
            0,
        );
        for cut in 0..meta.len() {
            assert!(decode_golden(&meta[..cut]).is_err());
        }
    }
}
