//! Arithmetic edge cases: the interpreter's integer/float semantics at
//! the boundaries, where an incorrect implementation would silently skew
//! every SDC measurement (a flipped high bit routinely produces values
//! like `i64::MIN` or huge doubles).

use minic::compile;
use minpsid_interp::{ExecConfig, Interp, OutputItem, ProgInput, Scalar, Termination, TrapKind};

fn run(src: &str, args: Vec<Scalar>) -> minpsid_interp::ExecResult {
    let m = compile(src, "edge").expect("compiles");
    Interp::new(&m, ExecConfig::default()).run(&ProgInput::scalars(args))
}

fn out_ints(r: &minpsid_interp::ExecResult) -> Vec<i64> {
    r.output
        .items
        .iter()
        .map(|i| match i {
            OutputItem::I(v) => *v,
            OutputItem::F(v) => panic!("unexpected float {v}"),
        })
        .collect()
}

#[test]
fn integer_overflow_wraps_like_hardware() {
    let r = run(
        "fn main() { out_i(arg_i(0) + 1); out_i(arg_i(0) * 2); }",
        vec![Scalar::I(i64::MAX)],
    );
    assert!(r.exited());
    assert_eq!(out_ints(&r), vec![i64::MIN, -2]);
}

#[test]
fn min_div_minus_one_traps_like_sigfpe() {
    let r = run(
        "fn main() { out_i(arg_i(0) / arg_i(1)); }",
        vec![Scalar::I(i64::MIN), Scalar::I(-1)],
    );
    assert_eq!(r.termination, Termination::Trap(TrapKind::DivByZero));
}

#[test]
fn remainder_follows_truncated_division() {
    let r = run(
        "fn main() { out_i(-7 % 3); out_i(7 % -3); out_i(-7 % -3); }",
        vec![],
    );
    assert_eq!(out_ints(&r), vec![-1, 1, -1]);
}

#[test]
fn float_division_by_zero_is_ieee_not_a_trap() {
    let r = run(
        "fn main() { out_f(1.0 / arg_f(0)); out_f(-1.0 / arg_f(0)); out_f(0.0 / arg_f(0)); }",
        vec![Scalar::F(0.0)],
    );
    assert!(r.exited(), "IEEE semantics: inf/-inf/NaN, no trap");
    let OutputItem::F(a) = r.output.items[0] else {
        panic!()
    };
    let OutputItem::F(b) = r.output.items[1] else {
        panic!()
    };
    let OutputItem::F(c) = r.output.items[2] else {
        panic!()
    };
    assert_eq!(a, f64::INFINITY);
    assert_eq!(b, f64::NEG_INFINITY);
    assert!(c.is_nan());
}

#[test]
fn float_to_int_cast_saturates() {
    let r = run(
        "fn main() { out_i(int(arg_f(0))); out_i(int(arg_f(1))); out_i(int(arg_f(2))); }",
        vec![Scalar::F(1e300), Scalar::F(-1e300), Scalar::F(f64::NAN)],
    );
    assert!(r.exited());
    assert_eq!(out_ints(&r), vec![i64::MAX, i64::MIN, 0]);
}

#[test]
fn nan_comparisons_are_all_false_except_ne() {
    let src = r#"
        fn main() {
            let x = arg_f(0);
            if x < x { out_i(1); } else { out_i(0); }
            if x == x { out_i(1); } else { out_i(0); }
            if x != x { out_i(1); } else { out_i(0); }
            if x >= x { out_i(1); } else { out_i(0); }
        }
    "#;
    let r = run(src, vec![Scalar::F(f64::NAN)]);
    assert_eq!(out_ints(&r), vec![0, 0, 1, 0]);
}

#[test]
fn abs_of_min_wraps() {
    let r = run(
        "fn main() { out_i(abs(arg_i(0))); }",
        vec![Scalar::I(i64::MIN)],
    );
    assert!(r.exited());
    assert_eq!(out_ints(&r), vec![i64::MIN], "wrapping_abs semantics");
}

#[test]
fn negative_zero_propagates() {
    let r = run("fn main() { out_f(-(0.0)); out_f(0.0 * -1.0); }", vec![]);
    let bits: Vec<u64> = r
        .output
        .items
        .iter()
        .map(|i| match i {
            OutputItem::F(v) => v.to_bits(),
            _ => panic!(),
        })
        .collect();
    assert_eq!(bits, vec![(-0.0f64).to_bits(), (-0.0f64).to_bits()]);
}

#[test]
fn min_max_on_floats_follow_rust_semantics() {
    let r = run(
        "fn main() { out_f(min(arg_f(0), 1.0)); out_f(max(arg_f(0), 1.0)); }",
        vec![Scalar::F(f64::NAN)],
    );
    // f64::min/max ignore NaN when the other side is a number
    let OutputItem::F(a) = r.output.items[0] else {
        panic!()
    };
    let OutputItem::F(b) = r.output.items[1] else {
        panic!()
    };
    assert_eq!(a, 1.0);
    assert_eq!(b, 1.0);
}
