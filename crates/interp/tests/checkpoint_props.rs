//! Property tests for checkpoint/resume (the soundness argument behind
//! checkpointed fault injection): for *random* minic programs and random
//! (checkpoint interval, fault spec) pairs, resuming from any snapshot
//! whose injection counter has not yet reached the fault must be
//! bit-identical to injecting into a from-scratch run.

use minpsid_interp::{ExecConfig, FaultSpec, FaultTarget, Interp, ProgInput, Scalar};
use proptest::prelude::*;

/// Build a random minic program from a vector of statement codes. The
/// grammar is tiny but exercises every structure a snapshot must capture:
/// loops, branches, array stores (linear memory), recursion (frame stack
/// and stack memory), and the output stream.
fn gen_source(stmts: &[(u8, u8)]) -> String {
    let mut body = String::new();
    for (idx, &(op, k)) in stmts.iter().enumerate() {
        let k = k as i64;
        let s = match op % 6 {
            0 => format!("    acc = acc + (a + {k}) * {};\n", idx + 1),
            1 => format!("    acc = acc - b / {};\n", k + 1),
            2 => format!(
                "    if acc % {} == 0 {{ acc = acc * 3 + 1; }} else {{ acc = acc + b; }}\n",
                k + 2
            ),
            3 => format!(
                "    for i = 0 to {} {{ acc = acc + i * a; buf[i % 8] = acc; }}\n",
                k % 13 + 1
            ),
            4 => format!("    acc = acc + rec(a % {} + 1);\n", k % 7 + 2),
            _ => format!("    out_i(acc % {});\n", k + 10),
        };
        body.push_str(&s);
    }
    format!(
        r#"
fn rec(x: int) -> int {{
    if x <= 1 {{ return 1; }}
    return rec(x - 1) + x;
}}

fn main() {{
    let a = arg_i(0);
    let b = arg_i(1);
    let buf: [int] = alloc(8);
    for i = 0 to 8 {{ buf[i] = i; }}
    let acc = 7;
{body}    for i = 0 to 8 {{ out_i(buf[i]); }}
    out_i(acc);
}}
"#
    )
}

/// Faulty runs can diverge into unbounded recursion; cap both the cold
/// and the resumed run identically so bit-identity is preserved.
fn exec() -> ExecConfig {
    ExecConfig {
        step_limit: 300_000,
        ..ExecConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `resume(snapshot, fault)` on every snapshot eligible for a random
    /// dynamic-index fault matches `run_with_fault` bit for bit.
    #[test]
    fn resume_matches_cold_run_for_dynamic_faults(
        stmts in proptest::collection::vec((0u8..6, 0u8..20), 1..8),
        a in 0i64..30,
        b in -10i64..30,
        interval_raw in 1u64..400,
        nth_raw in 0u64..10_000,
        bit in 0u32..64,
    ) {
        let m = minic::compile(&gen_source(&stmts), "prop-ckpt").unwrap();
        let input = ProgInput::scalars(vec![Scalar::I(a), Scalar::I(b)]);
        let interp = Interp::new(&m, exec());
        let golden = interp.run(&input);
        prop_assume!(golden.exited());

        let interval = 1 + interval_raw % golden.steps.max(1);
        let (gold2, snaps) = interp.run_with_checkpoints(&input, interval);
        prop_assert_eq!(&golden.output, &gold2.output);
        prop_assert_eq!(golden.steps, gold2.steps);
        prop_assert!(!snaps.is_empty(), "interval <= steps yields snapshots");

        let nth = nth_raw % golden.steps;
        let fault = FaultSpec { target: FaultTarget::NthDynamic(nth), bit };
        let cold = interp.run_with_fault(&input, fault);

        for snap in snaps.iter().filter(|s| s.inj_ctr() <= nth) {
            let warm = interp.resume(snap, &input, fault);
            prop_assert_eq!(&warm.termination, &cold.termination);
            prop_assert_eq!(&warm.output, &cold.output);
            prop_assert_eq!(warm.steps, cold.steps);
            prop_assert_eq!(warm.fault_applied, cold.fault_applied);
            prop_assert_eq!(&warm.ret, &cold.ret);
        }
    }

    /// Same property for per-static-instruction faults, which restore the
    /// per-instruction injection counter from the snapshot.
    #[test]
    fn resume_matches_cold_run_for_per_inst_faults(
        stmts in proptest::collection::vec((0u8..6, 0u8..20), 1..8),
        a in 0i64..30,
        b in -10i64..30,
        interval_raw in 1u64..400,
        dense_raw in 0usize..10_000,
        nth in 0u64..20,
        bit in 0u32..64,
    ) {
        let m = minic::compile(&gen_source(&stmts), "prop-ckpt").unwrap();
        let input = ProgInput::scalars(vec![Scalar::I(a), Scalar::I(b)]);
        let interp = Interp::new(&m, exec());
        let golden = interp.run(&input);
        prop_assume!(golden.exited());

        let interval = 1 + interval_raw % golden.steps.max(1);
        let (_, snaps) = interp.run_with_checkpoints(&input, interval);

        let numbering = m.numbering();
        let dense = dense_raw % m.num_insts();
        let gid = numbering.id_of(dense);
        let fault = FaultSpec { target: FaultTarget::NthOfInst(gid, nth), bit };
        let cold = interp.run_with_fault(&input, fault);

        for snap in snaps.iter().filter(|s| s.inj_count_of(dense) <= nth) {
            let warm = interp.resume(snap, &input, fault);
            prop_assert_eq!(&warm.termination, &cold.termination);
            prop_assert_eq!(&warm.output, &cold.output);
            prop_assert_eq!(warm.steps, cold.steps);
            prop_assert_eq!(warm.fault_applied, cold.fault_applied);
            prop_assert_eq!(&warm.ret, &cold.ret);
        }
    }
}
