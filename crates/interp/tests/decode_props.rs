//! Property tests for the pre-decoded dispatch loop and delta-encoded
//! snapshots: for *random* minic programs,
//!
//! * the decoded hot loop must be bit-identical to the legacy
//!   tree-walking loop — same termination, output, step count and return
//!   value, with and without an injected fault (the fault model counts
//!   dynamic instructions, so a single off-by-one step in either loop
//!   shows up as a different injection point and fails loudly);
//! * a delta-encoded checkpoint store must materialize to exactly the
//!   snapshots a full-encoding store captures, and resuming a faulty run
//!   from any delta-chain index must match the from-scratch faulty run
//!   bit for bit.

use minpsid_interp::{
    CheckpointConfig, DispatchMode, ExecConfig, ExecScratch, FaultSpec, FaultTarget, Interp,
    ProgInput, Scalar, SnapshotMode,
};
use proptest::prelude::*;

/// Random minic program from statement codes; exercises loops, branches,
/// array stores (linear memory), recursion (frame stack + stack memory),
/// float arithmetic (type-specialized decoded ops), comparisons feeding
/// branches (the fused cmp+br superinstruction) and loads feeding
/// arithmetic (the fused load+binop superinstruction).
fn gen_source(stmts: &[(u8, u8)]) -> String {
    let mut body = String::new();
    for (idx, &(op, k)) in stmts.iter().enumerate() {
        let k = k as i64;
        let s = match op % 8 {
            0 => format!("    acc = acc + (a + {k}) * {};\n", idx + 1),
            1 => format!("    acc = acc - b / {};\n", k + 1),
            2 => format!(
                "    if acc % {} == 0 {{ acc = acc * 3 + 1; }} else {{ acc = acc + b; }}\n",
                k + 2
            ),
            3 => format!(
                "    for i = 0 to {} {{ acc = acc + i * a; buf[i % 8] = acc; }}\n",
                k % 13 + 1
            ),
            4 => format!("    acc = acc + rec(a % {} + 1);\n", k % 7 + 2),
            5 => format!("    f = f * 1.5 + {k}.25; out_f(f);\n"),
            6 => format!(
                "    for i = 0 to {} {{ acc = acc + buf[i % 8] * 2; }}\n",
                k % 9 + 1
            ),
            _ => format!("    out_i(acc % {});\n", k + 10),
        };
        body.push_str(&s);
    }
    format!(
        r#"
fn rec(x: int) -> int {{
    if x <= 1 {{ return 1; }}
    return rec(x - 1) + x;
}}

fn main() {{
    let a = arg_i(0);
    let b = arg_i(1);
    let buf: [int] = alloc(8);
    for i = 0 to 8 {{ buf[i] = i; }}
    let acc = 7;
    let f = 0.5;
{body}    for i = 0 to 8 {{ out_i(buf[i]); }}
    out_i(acc);
}}
"#
    )
}

/// Identical step cap for every variant so bit-identity is preserved
/// even when a faulty run diverges into unbounded recursion.
fn exec(dispatch: DispatchMode) -> ExecConfig {
    ExecConfig {
        step_limit: 300_000,
        dispatch,
        ..ExecConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Decoded dispatch is bit-identical to the legacy loop on clean
    /// runs: termination, output, step count and return value.
    #[test]
    fn decoded_matches_legacy_without_faults(
        stmts in proptest::collection::vec((0u8..8, 0u8..20), 1..8),
        a in 0i64..30,
        b in -10i64..30,
    ) {
        let m = minic::compile(&gen_source(&stmts), "prop-decode").unwrap();
        let input = ProgInput::scalars(vec![Scalar::I(a), Scalar::I(b)]);
        let legacy = Interp::new(&m, exec(DispatchMode::Legacy)).run(&input);
        let decoded = Interp::new(&m, exec(DispatchMode::Decoded)).run(&input);
        prop_assert_eq!(&decoded.termination, &legacy.termination);
        prop_assert_eq!(&decoded.output, &legacy.output);
        prop_assert_eq!(decoded.steps, legacy.steps);
        prop_assert_eq!(&decoded.ret, &legacy.ret);
    }

    /// Decoded dispatch is bit-identical to the legacy loop under a
    /// random single-bit fault at a random dynamic instruction — the
    /// injection counters of the two loops must agree step for step.
    #[test]
    fn decoded_matches_legacy_under_faults(
        stmts in proptest::collection::vec((0u8..8, 0u8..20), 1..8),
        a in 0i64..30,
        b in -10i64..30,
        nth_raw in 0u64..10_000,
        bit in 0u32..64,
    ) {
        let m = minic::compile(&gen_source(&stmts), "prop-decode").unwrap();
        let input = ProgInput::scalars(vec![Scalar::I(a), Scalar::I(b)]);
        let li = Interp::new(&m, exec(DispatchMode::Legacy));
        let golden = li.run(&input);
        prop_assume!(golden.exited());

        let nth = nth_raw % golden.steps;
        let fault = FaultSpec { target: FaultTarget::NthDynamic(nth), bit };
        let lf = li.run_with_fault(&input, fault);
        let df = Interp::new(&m, exec(DispatchMode::Decoded)).run_with_fault(&input, fault);
        prop_assert_eq!(&df.termination, &lf.termination);
        prop_assert_eq!(&df.output, &lf.output);
        prop_assert_eq!(df.steps, lf.steps);
        prop_assert_eq!(df.fault_applied, lf.fault_applied);
        prop_assert_eq!(&df.ret, &lf.ret);
    }

    /// A delta-encoded store materializes to exactly the snapshots the
    /// full-encoding store captures: same count, same step/injection
    /// counters, same per-instruction injection counts, same output
    /// prefix — and every materialized pair round-trips to the same
    /// resumed execution.
    #[test]
    fn delta_store_round_trips_to_full_snapshots(
        stmts in proptest::collection::vec((0u8..8, 0u8..20), 1..8),
        a in 0i64..30,
        b in -10i64..30,
        interval_raw in 1u64..400,
        keyframe_every in 1u32..9,
        dense_raw in 0usize..10_000,
    ) {
        let m = minic::compile(&gen_source(&stmts), "prop-decode").unwrap();
        let input = ProgInput::scalars(vec![Scalar::I(a), Scalar::I(b)]);
        let interp = Interp::new(&m, exec(DispatchMode::Decoded));
        let golden = interp.run(&input);
        prop_assume!(golden.exited());

        let interval = 1 + interval_raw % golden.steps.max(1);
        let full_cfg = CheckpointConfig {
            interval,
            mode: SnapshotMode::Full,
            ..CheckpointConfig::default()
        };
        let delta_cfg = CheckpointConfig {
            interval,
            mode: SnapshotMode::Delta,
            keyframe_every,
            ..CheckpointConfig::default()
        };
        let (rf, full) = interp.run_with_checkpoint_store(&input, full_cfg);
        let (rd, delta) = interp.run_with_checkpoint_store(&input, delta_cfg);
        prop_assert_eq!(&rf.output, &rd.output);
        prop_assert_eq!(rf.steps, rd.steps);
        prop_assert_eq!(full.len(), delta.len());

        let dense = dense_raw % m.num_insts();
        for i in 0..full.len() {
            let sf = full.materialize(i);
            let sd = delta.materialize(i);
            prop_assert_eq!(sd.steps(), sf.steps());
            prop_assert_eq!(sd.inj_ctr(), sf.inj_ctr());
            prop_assert_eq!(sd.inj_count_of(dense), sf.inj_count_of(dense));
            prop_assert_eq!(sd.output(), sf.output());
            prop_assert_eq!(delta.steps_at(i), full.steps_at(i));
            prop_assert_eq!(delta.inj_ctr_at(i), full.inj_ctr_at(i));
            prop_assert_eq!(delta.inj_count_at(i, dense), full.inj_count_at(i, dense));
        }
    }

    /// Resuming a faulty run from any index of a delta-encoded store is
    /// bit-identical to the from-scratch faulty run (the soundness
    /// property checkpointed fault injection rests on, now across
    /// delta-chain reconstruction).
    #[test]
    fn delta_resume_matches_cold_faulty_run(
        stmts in proptest::collection::vec((0u8..8, 0u8..20), 1..8),
        a in 0i64..30,
        b in -10i64..30,
        interval_raw in 1u64..400,
        keyframe_every in 1u32..9,
        nth_raw in 0u64..10_000,
        bit in 0u32..64,
    ) {
        let m = minic::compile(&gen_source(&stmts), "prop-decode").unwrap();
        let input = ProgInput::scalars(vec![Scalar::I(a), Scalar::I(b)]);
        let interp = Interp::new(&m, exec(DispatchMode::Decoded));
        let golden = interp.run(&input);
        prop_assume!(golden.exited());

        let interval = 1 + interval_raw % golden.steps.max(1);
        let cfg = CheckpointConfig {
            interval,
            mode: SnapshotMode::Delta,
            keyframe_every,
            ..CheckpointConfig::default()
        };
        let (_, store) = interp.run_with_checkpoint_store(&input, cfg);
        prop_assert!(!store.is_empty(), "interval <= steps yields snapshots");

        let nth = nth_raw % golden.steps;
        let fault = FaultSpec { target: FaultTarget::NthDynamic(nth), bit };
        let cold = interp.run_with_fault(&input, fault);

        let mut scratch = ExecScratch::default();
        for i in (0..store.len()).filter(|&i| store.inj_ctr_at(i) <= nth) {
            let warm = interp.resume_from(&mut scratch, &store, i, &input, fault);
            prop_assert_eq!(&warm.termination, &cold.termination);
            prop_assert_eq!(&warm.output, &cold.output);
            prop_assert_eq!(warm.steps, cold.steps);
            prop_assert_eq!(warm.fault_applied, cold.fault_applied);
            prop_assert_eq!(&warm.ret, &cold.ret);
        }
    }
}
