//! Resource-limit and robustness tests for the interpreter: every way an
//! execution can be cut short must terminate cleanly with the right
//! classification — campaigns depend on it (a runaway faulty run would
//! stall a whole experiment).

use minic::compile;
use minpsid_interp::{
    ExecConfig, FaultSpec, FaultTarget, Interp, ProgInput, Scalar, Termination, TrapKind,
};

fn run_with(src: &str, args: Vec<Scalar>, cfg: ExecConfig) -> minpsid_interp::ExecResult {
    let m = compile(src, "limit-test").expect("compiles");
    Interp::new(&m, cfg).run(&ProgInput::scalars(args))
}

#[test]
fn unbounded_recursion_hits_the_call_depth_limit() {
    let src = r#"
        fn f(n: int) -> int { return f(n + 1); }
        fn main() { out_i(f(0)); }
    "#;
    let r = run_with(src, vec![], ExecConfig::default());
    assert_eq!(r.termination, Termination::Trap(TrapKind::CallDepth));
}

#[test]
fn runaway_allocation_hits_the_memory_limit() {
    let src = r#"
        fn main() {
            let i = 0;
            while true {
                let a: [int] = alloc(65536);
                a[0] = i;
                i = i + 1;
            }
        }
    "#;
    let cfg = ExecConfig {
        mem_limit: 1 << 20,
        ..ExecConfig::default()
    };
    let r = run_with(src, vec![], cfg);
    assert_eq!(r.termination, Termination::Trap(TrapKind::MemLimit));
}

#[test]
fn output_flood_is_cut_off_as_a_hang() {
    let src = "fn main() { while true { out_i(1); } }";
    let cfg = ExecConfig {
        output_limit: 5000,
        ..ExecConfig::default()
    };
    let r = run_with(src, vec![], cfg);
    assert_eq!(r.termination, Termination::StepLimit);
    assert!(r.output.len() <= 5001);
}

#[test]
fn negative_alloc_traps() {
    let src = r#"
        fn main() {
            let n = arg_i(0);
            let a: [int] = alloc(n);
            a[0] = 1;
            out_i(a[0]);
        }
    "#;
    let r = run_with(src, vec![Scalar::I(-4)], ExecConfig::default());
    assert_eq!(r.termination, Termination::Trap(TrapKind::NegativeAlloc));
}

#[test]
fn missing_argument_traps_cleanly() {
    let src = "fn main() { out_i(arg_i(3)); }";
    let r = run_with(src, vec![Scalar::I(1)], ExecConfig::default());
    assert_eq!(r.termination, Termination::Trap(TrapKind::ArgOutOfRange));
}

#[test]
fn wrong_argument_type_traps_cleanly() {
    let src = "fn main() { out_i(arg_i(0)); }";
    let r = run_with(src, vec![Scalar::F(2.5)], ExecConfig::default());
    assert_eq!(r.termination, Termination::Trap(TrapKind::ArgTypeMismatch));
}

#[test]
fn pointer_fault_can_cross_into_the_stack_space_and_traps() {
    // a heap pointer with bit 62 flipped becomes a stack pointer far out
    // of bounds — the fault model turns it into a crash, never UB
    let src = r#"
        fn main() {
            let a: [int] = alloc(8);
            a[0] = 7;
            out_i(a[0]);
        }
    "#;
    let m = compile(src, "ptr-fault").unwrap();
    let interp = Interp::new(&m, ExecConfig::default());
    // find the alloc's dynamic position: it is the first injectable
    // instruction producing a pointer; sweep the first few sites with
    // bit 62 and require that every outcome is a clean termination
    for nth in 0..6 {
        let fault = FaultSpec {
            target: FaultTarget::NthDynamic(nth),
            bit: 62,
        };
        let r = interp.run_with_fault(&ProgInput::default(), fault);
        assert!(
            matches!(
                r.termination,
                Termination::Exit | Termination::Trap(_) | Termination::StepLimit
            ),
            "nth={nth}: {:?}",
            r.termination
        );
    }
}

#[test]
fn golden_runs_scale_linearly_with_input() {
    // sanity guard on the cost model plumbing: steps grow with n
    let src = r#"
        fn main() {
            let n = arg_i(0);
            let acc = 0;
            for i = 0 to n { acc = acc + i; }
            out_i(acc);
        }
    "#;
    let m = compile(src, "scale").unwrap();
    let interp = Interp::new(&m, ExecConfig::default());
    let steps = |n: i64| interp.run(&ProgInput::scalars(vec![Scalar::I(n)])).steps;
    let s100 = steps(100);
    let s200 = steps(200);
    let per_iter = (s200 - s100) as f64 / 100.0;
    assert!(per_iter > 3.0 && per_iter < 50.0, "per-iter {per_iter}");
}

#[test]
fn trace_mode_matches_untraced_semantics() {
    let src = r#"
        fn main() {
            let n = arg_i(0);
            let acc = 0.0;
            for i = 0 to n { acc = acc + sqrt(float(i)); }
            out_f(acc);
        }
    "#;
    let m = compile(src, "trace").unwrap();
    let plain =
        Interp::new(&m, ExecConfig::default()).run(&ProgInput::scalars(vec![Scalar::I(50)]));
    let traced = Interp::new(
        &m,
        ExecConfig {
            trace: true,
            ..ExecConfig::default()
        },
    )
    .run(&ProgInput::scalars(vec![Scalar::I(50)]));
    assert_eq!(plain.output, traced.output);
    assert_eq!(plain.steps, traced.steps);
    let trace = traced.trace.expect("trace collected");
    assert!(!trace.is_empty());
    // every trace event names a real instruction
    let n_insts = m.num_insts() as u32;
    assert!(trace.iter().all(|e| e.dense < n_insts));
}
