//! Programmatic construction of modules and functions.
//!
//! `ModuleBuilder` pre-declares function signatures (so calls between
//! functions, including recursion, can be emitted before the callee's body
//! exists), then each body is built with a [`FunctionBuilder`] and installed
//! with [`ModuleBuilder::define`].

use crate::inst::{BinOp, CmpOp, Inst, InstId, InstKind, Operand, UnOp};
use crate::module::{Block, BlockId, FuncId, Function, Module};
use crate::types::Ty;

/// Builds a [`Module`] by declaring functions and installing built bodies.
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Declare a function signature; the body starts empty.
    pub fn declare(&mut self, name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> FuncId {
        let id = FuncId(self.module.funcs.len() as u32);
        self.module.funcs.push(Function::new(name, params, ret));
        id
    }

    /// Start building the body of a declared function.
    pub fn body(&self, id: FuncId) -> FunctionBuilder {
        let f = self.module.func(id);
        FunctionBuilder::new(id, &f.name, f.params.clone(), f.ret)
    }

    /// Install a finished body.
    pub fn define(&mut self, fb: FunctionBuilder) {
        let (id, func) = fb.finish();
        self.module.funcs[id.index()] = func;
    }

    /// Set the program entry point (defaults to function 0).
    pub fn set_entry(&mut self, id: FuncId) {
        self.module.entry = id;
    }

    pub fn finish(self) -> Module {
        self.module
    }
}

/// Builds one function body, block by block.
///
/// The entry block is created automatically and `Param` pseudo-instructions
/// for the declared parameters are emitted into it; retrieve them with
/// [`FunctionBuilder::param`].
pub struct FunctionBuilder {
    id: FuncId,
    func: Function,
    cur: BlockId,
    params: Vec<InstId>,
}

impl FunctionBuilder {
    fn new(id: FuncId, name: &str, params: Vec<Ty>, ret: Option<Ty>) -> Self {
        let mut func = Function::new(name, params.clone(), ret);
        func.blocks.push(Block {
            insts: vec![],
            name: Some("entry".into()),
        });
        let mut fb = FunctionBuilder {
            id,
            func,
            cur: BlockId(0),
            params: Vec::new(),
        };
        for (n, ty) in params.into_iter().enumerate() {
            let p = fb.push(InstKind::Param { n: n as u32 }, Some(ty));
            fb.params.push(p);
        }
        fb
    }

    /// The `n`-th parameter value.
    pub fn param(&self, n: usize) -> InstId {
        self.params[n]
    }

    /// Create a new (empty) block; does not switch to it.
    pub fn new_block(&mut self, name: &str) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block {
            insts: vec![],
            name: Some(name.to_string()),
        });
        id
    }

    /// Make subsequent instructions append to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Whether the current block already has its terminator.
    pub fn current_terminated(&self) -> bool {
        self.func
            .block(self.cur)
            .terminator()
            .map(|t| self.func.inst(t).kind.is_terminator())
            .unwrap_or(false)
    }

    fn push(&mut self, kind: InstKind, ty: Option<Ty>) -> InstId {
        assert!(
            !self.current_terminated(),
            "appending {:?} to terminated block {:?} of `{}`",
            kind.mnemonic(),
            self.cur,
            self.func.name
        );
        let id = InstId(self.func.insts.len() as u32);
        self.func.insts.push(Inst::new(kind, ty));
        self.func.blocks[self.cur.index()].insts.push(id);
        id
    }

    /// Attach a source-level name to the most recent instruction.
    pub fn name_last(&mut self, name: &str) {
        if let Some(inst) = self.func.insts.last_mut() {
            inst.name = Some(name.to_string());
        }
    }

    // ---- value-producing instructions ----

    pub fn bin(
        &mut self,
        op: BinOp,
        ty: Ty,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> InstId {
        self.push(
            InstKind::Bin {
                op,
                lhs: lhs.into(),
                rhs: rhs.into(),
            },
            Some(ty),
        )
    }

    pub fn add(&mut self, ty: Ty, l: impl Into<Operand>, r: impl Into<Operand>) -> InstId {
        self.bin(BinOp::Add, ty, l, r)
    }

    pub fn sub(&mut self, ty: Ty, l: impl Into<Operand>, r: impl Into<Operand>) -> InstId {
        self.bin(BinOp::Sub, ty, l, r)
    }

    pub fn mul(&mut self, ty: Ty, l: impl Into<Operand>, r: impl Into<Operand>) -> InstId {
        self.bin(BinOp::Mul, ty, l, r)
    }

    pub fn div(&mut self, ty: Ty, l: impl Into<Operand>, r: impl Into<Operand>) -> InstId {
        self.bin(BinOp::Div, ty, l, r)
    }

    pub fn un(&mut self, op: UnOp, ty: Ty, arg: impl Into<Operand>) -> InstId {
        self.push(
            InstKind::Un {
                op,
                arg: arg.into(),
            },
            Some(ty),
        )
    }

    pub fn cmp(&mut self, op: CmpOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> InstId {
        self.push(
            InstKind::Cmp {
                op,
                lhs: lhs.into(),
                rhs: rhs.into(),
            },
            Some(Ty::Bool),
        )
    }

    pub fn select(
        &mut self,
        ty: Ty,
        cond: impl Into<Operand>,
        then_v: impl Into<Operand>,
        else_v: impl Into<Operand>,
    ) -> InstId {
        self.push(
            InstKind::Select {
                cond: cond.into(),
                then_v: then_v.into(),
                else_v: else_v.into(),
            },
            Some(ty),
        )
    }

    pub fn cast(&mut self, to: Ty, arg: impl Into<Operand>) -> InstId {
        self.push(
            InstKind::Cast {
                to,
                arg: arg.into(),
            },
            Some(to),
        )
    }

    pub fn alloc(&mut self, count: impl Into<Operand>) -> InstId {
        self.push(
            InstKind::Alloc {
                count: count.into(),
            },
            Some(Ty::Ptr),
        )
    }

    /// Stack allocation (freed on function return).
    pub fn salloc(&mut self, count: impl Into<Operand>) -> InstId {
        self.push(
            InstKind::Salloc {
                count: count.into(),
            },
            Some(Ty::Ptr),
        )
    }

    pub fn load(&mut self, ty: Ty, ptr: impl Into<Operand>, idx: impl Into<Operand>) -> InstId {
        self.push(
            InstKind::Load {
                ptr: ptr.into(),
                idx: idx.into(),
                ty,
            },
            Some(ty),
        )
    }

    pub fn store(
        &mut self,
        ptr: impl Into<Operand>,
        idx: impl Into<Operand>,
        value: impl Into<Operand>,
    ) {
        self.push(
            InstKind::Store {
                ptr: ptr.into(),
                idx: idx.into(),
                value: value.into(),
            },
            None,
        );
    }

    /// Call `func`; `ret` must match the callee's declared return type.
    pub fn call(&mut self, func: FuncId, ret: Option<Ty>, args: Vec<Operand>) -> InstId {
        self.push(InstKind::Call { func, args }, ret)
    }

    // ---- I/O intrinsics ----

    pub fn nargs(&mut self) -> InstId {
        self.push(InstKind::NArgs, Some(Ty::I64))
    }

    pub fn arg_i(&mut self, n: impl Into<Operand>) -> InstId {
        self.push(InstKind::ArgI { n: n.into() }, Some(Ty::I64))
    }

    pub fn arg_f(&mut self, n: impl Into<Operand>) -> InstId {
        self.push(InstKind::ArgF { n: n.into() }, Some(Ty::F64))
    }

    pub fn data_len(&mut self, stream: u32) -> InstId {
        self.push(InstKind::DataLen { stream }, Some(Ty::I64))
    }

    pub fn data_i(&mut self, stream: u32, idx: impl Into<Operand>) -> InstId {
        self.push(
            InstKind::DataI {
                stream,
                idx: idx.into(),
            },
            Some(Ty::I64),
        )
    }

    pub fn data_f(&mut self, stream: u32, idx: impl Into<Operand>) -> InstId {
        self.push(
            InstKind::DataF {
                stream,
                idx: idx.into(),
            },
            Some(Ty::F64),
        )
    }

    pub fn out_i(&mut self, v: impl Into<Operand>) {
        self.push(InstKind::OutI { v: v.into() }, None);
    }

    pub fn out_f(&mut self, v: impl Into<Operand>) {
        self.push(InstKind::OutF { v: v.into() }, None);
    }

    /// Emit a duplication check (raises `Detected` at runtime on mismatch).
    /// Ordinarily only the SID transform creates these; the builder exposes
    /// it for tests and hand-protected modules.
    pub fn check(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.push(
            InstKind::Check {
                a: a.into(),
                b: b.into(),
            },
            None,
        );
    }

    // ---- terminators ----

    pub fn br(&mut self, target: BlockId) {
        self.push(InstKind::Br { target }, None);
    }

    pub fn cond_br(&mut self, cond: impl Into<Operand>, then_b: BlockId, else_b: BlockId) {
        self.push(
            InstKind::CondBr {
                cond: cond.into(),
                then_b,
                else_b,
            },
            None,
        );
    }

    pub fn ret(&mut self, v: impl Into<Operand>) {
        self.push(InstKind::Ret { v: Some(v.into()) }, None);
    }

    pub fn ret_void(&mut self) {
        self.push(InstKind::Ret { v: None }, None);
    }

    fn finish(self) -> (FuncId, Function) {
        (self.id, self.func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build `fn main() -> i64 { if 3 < 4 { 1 } else { 0 } }`-shaped IR.
    #[test]
    fn builds_branching_function() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], Some(Ty::I64));
        let mut fb = mb.body(main);
        let t = fb.new_block("then");
        let e = fb.new_block("else");
        let c = fb.cmp(CmpOp::Lt, 3i64, 4i64);
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.ret(1i64);
        fb.switch_to(e);
        fb.ret(0i64);
        mb.define(fb);
        let m = mb.finish();
        let f = m.func(main);
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.insts.len(), 4);
        assert!(f
            .inst(f.block(BlockId(0)).terminator().unwrap())
            .kind
            .is_terminator());
    }

    #[test]
    fn params_are_materialized_in_entry() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare("f", vec![Ty::I64, Ty::F64], Some(Ty::F64));
        let fb = mb.body(f);
        assert_eq!(fb.param(0), InstId(0));
        assert_eq!(fb.param(1), InstId(1));
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn appending_after_terminator_panics() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        fb.ret_void();
        fb.nargs(); // must panic
    }

    #[test]
    fn call_between_declared_functions() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], Some(Ty::I64));
        let helper = mb.declare("helper", vec![Ty::I64], Some(Ty::I64));

        let mut fb = mb.body(helper);
        let p = fb.param(0);
        let r = fb.add(Ty::I64, p, 1i64);
        fb.ret(r);
        mb.define(fb);

        let mut fb = mb.body(main);
        let v = fb.call(helper, Some(Ty::I64), vec![41i64.into()]);
        fb.ret(v);
        mb.define(fb);

        let m = mb.finish();
        assert_eq!(m.num_insts(), 5);
        assert_eq!(m.entry, main);
    }
}
