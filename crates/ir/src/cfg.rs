//! Control-flow graph extraction and traversals.
//!
//! MINPSID's input search engine is driven by the *static CFG* built at
//! compilation (paper Fig. 4 step ③, Fig. 5): each node is a basic block,
//! each edge a possible transfer. The dynamic profiler later attaches
//! execution counts to these edges to form the weighted CFG.

use crate::inst::InstKind;
use crate::module::{BlockId, Function};

/// The static control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    /// All edges `(from, to)` in block order, deduplicated.
    edges: Vec<(BlockId, BlockId)>,
}

impl Cfg {
    /// Build the CFG from a function's terminators.
    pub fn build(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut edges = Vec::new();
        for (bid, block) in func.iter_blocks() {
            let Some(term) = block.terminator() else {
                continue;
            };
            let targets: Vec<BlockId> = match &func.inst(term).kind {
                InstKind::Br { target } => vec![*target],
                InstKind::CondBr { then_b, else_b, .. } => {
                    if then_b == else_b {
                        vec![*then_b]
                    } else {
                        vec![*then_b, *else_b]
                    }
                }
                _ => vec![],
            };
            for t in targets {
                succs[bid.index()].push(t);
                preds[t.index()].push(bid);
                edges.push((bid, t));
            }
        }
        Cfg {
            succs,
            preds,
            edges,
        }
    }

    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// All CFG edges in emission order.
    pub fn edges(&self) -> &[(BlockId, BlockId)] {
        &self.edges
    }

    /// Blocks reachable from the entry, in reverse postorder. Unreachable
    /// blocks are omitted (they get no profile weight either).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.num_blocks();
        if n == 0 {
            return vec![];
        }
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // iterative DFS with explicit successor cursor
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
            if *cursor < self.succs[b.index()].len() {
                let s = self.succs[b.index()][*cursor];
                *cursor += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Blocks not reachable from the entry.
    pub fn unreachable_blocks(&self) -> Vec<BlockId> {
        let rpo = self.reverse_postorder();
        let mut reach = vec![false; self.num_blocks()];
        for b in rpo {
            reach[b.index()] = true;
        }
        (0..self.num_blocks() as u32)
            .map(BlockId)
            .filter(|b| !reach[b.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::CmpOp;
    use crate::types::Ty;

    /// entry -> (loop_head -> loop_body -> loop_head | exit)
    fn loop_func() -> crate::module::Module {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let head = fb.new_block("head");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.br(head);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, 0i64, 10i64);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let _ = fb.add(Ty::I64, 1i64, 1i64);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret_void();
        mb.define(fb);
        mb.finish()
    }

    #[test]
    fn builds_loop_cfg() {
        let m = loop_func();
        let cfg = Cfg::build(m.func(m.entry));
        assert_eq!(cfg.num_blocks(), 4);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1)]);
        assert_eq!(cfg.succs(BlockId(1)), &[BlockId(2), BlockId(3)]);
        assert_eq!(cfg.succs(BlockId(2)), &[BlockId(1)]);
        assert_eq!(cfg.preds(BlockId(1)).len(), 2);
        assert_eq!(cfg.edges().len(), 4);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let m = loop_func();
        let cfg = Cfg::build(m.func(m.entry));
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        assert!(cfg.unreachable_blocks().is_empty());
    }

    #[test]
    fn detects_unreachable_block() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let dead = fb.new_block("dead");
        fb.ret_void();
        fb.switch_to(dead);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let cfg = Cfg::build(m.func(m.entry));
        assert_eq!(cfg.unreachable_blocks(), vec![dead]);
    }

    #[test]
    fn condbr_with_equal_targets_is_single_edge() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let b = fb.new_block("b");
        let c = fb.cmp(CmpOp::Eq, 1i64, 1i64);
        fb.cond_br(c, b, b);
        fb.switch_to(b);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let cfg = Cfg::build(m.func(m.entry));
        assert_eq!(cfg.edges().len(), 1);
    }
}
