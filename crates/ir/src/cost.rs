//! Per-opcode cycle cost model.
//!
//! SID's knapsack *cost* for an instruction is its share of dynamic cycles
//! (paper Eq. 1). Because the reproduction runs interpreted rather than on
//! the authors' Xeon testbed, cycles come from a latency table patterned on
//! published per-op latencies of a modern out-of-order x86 core. Absolute
//! values only need to be *relatively* plausible — the knapsack normalizes
//! by total cycles — so the table favours simplicity.

use crate::inst::{BinOp, InstKind, UnOp};
use crate::types::Ty;

/// Configurable per-opcode cycle latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    pub int_alu: u64,
    pub int_mul: u64,
    pub int_div: u64,
    pub fp_add: u64,
    pub fp_mul: u64,
    pub fp_div: u64,
    pub fp_sqrt: u64,
    pub fp_trans: u64,
    pub mem: u64,
    pub branch: u64,
    pub call: u64,
    pub io: u64,
    pub check: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            fp_add: 3,
            fp_mul: 4,
            fp_div: 14,
            fp_sqrt: 15,
            fp_trans: 25,
            mem: 4,
            branch: 1,
            call: 4,
            io: 4,
            check: 1,
        }
    }
}

impl CostModel {
    /// Cycle cost of one dynamic execution of `kind` with result type `ty`.
    pub fn cycles(&self, kind: &InstKind, ty: Option<Ty>) -> u64 {
        match kind {
            InstKind::Param { .. } => 0,
            InstKind::Bin { op, .. } => {
                let fp = ty == Some(Ty::F64);
                match op {
                    BinOp::Mul => {
                        if fp {
                            self.fp_mul
                        } else {
                            self.int_mul
                        }
                    }
                    BinOp::Div | BinOp::Rem => {
                        if fp {
                            self.fp_div
                        } else {
                            self.int_div
                        }
                    }
                    _ => {
                        if fp {
                            self.fp_add
                        } else {
                            self.int_alu
                        }
                    }
                }
            }
            InstKind::Un { op, .. } => match op {
                UnOp::Sqrt => self.fp_sqrt,
                UnOp::Sin | UnOp::Cos | UnOp::Exp | UnOp::Log => self.fp_trans,
                _ => {
                    if ty == Some(Ty::F64) {
                        self.fp_add
                    } else {
                        self.int_alu
                    }
                }
            },
            InstKind::Cmp { .. } | InstKind::Select { .. } | InstKind::Cast { .. } => self.int_alu,
            InstKind::Alloc { .. } => self.call,
            InstKind::Salloc { .. } => self.int_alu,
            InstKind::Load { .. } | InstKind::Store { .. } => self.mem,
            InstKind::Call { .. } => self.call,
            InstKind::NArgs
            | InstKind::ArgI { .. }
            | InstKind::ArgF { .. }
            | InstKind::DataLen { .. }
            | InstKind::DataI { .. }
            | InstKind::DataF { .. }
            | InstKind::OutI { .. }
            | InstKind::OutF { .. } => self.io,
            InstKind::Check { .. } => self.check,
            InstKind::Br { .. } | InstKind::CondBr { .. } | InstKind::Ret { .. } => self.branch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand;

    #[test]
    fn fp_ops_cost_more_than_int() {
        let cm = CostModel::default();
        let int_add = InstKind::Bin {
            op: BinOp::Add,
            lhs: Operand::ConstI(1),
            rhs: Operand::ConstI(2),
        };
        let fp_add = InstKind::Bin {
            op: BinOp::Add,
            lhs: Operand::ConstF(1.0),
            rhs: Operand::ConstF(2.0),
        };
        assert!(cm.cycles(&fp_add, Some(Ty::F64)) > cm.cycles(&int_add, Some(Ty::I64)));
    }

    #[test]
    fn division_dominates_addition() {
        let cm = CostModel::default();
        let div = InstKind::Bin {
            op: BinOp::Div,
            lhs: Operand::ConstI(1),
            rhs: Operand::ConstI(2),
        };
        let add = InstKind::Bin {
            op: BinOp::Add,
            lhs: Operand::ConstI(1),
            rhs: Operand::ConstI(2),
        };
        assert!(cm.cycles(&div, Some(Ty::I64)) > 10 * cm.cycles(&add, Some(Ty::I64)));
    }

    #[test]
    fn params_are_free() {
        let cm = CostModel::default();
        assert_eq!(cm.cycles(&InstKind::Param { n: 0 }, Some(Ty::I64)), 0);
    }

    #[test]
    fn transcendentals_are_the_most_expensive_alu_ops() {
        let cm = CostModel::default();
        let sin = InstKind::Un {
            op: UnOp::Sin,
            arg: Operand::ConstF(1.0),
        };
        assert_eq!(cm.cycles(&sin, Some(Ty::F64)), cm.fp_trans);
    }
}
