//! Dominator tree (Cooper–Harvey–Kennedy iterative algorithm) and natural
//! loop detection.
//!
//! The verifier uses dominance for definite-assignment checking
//! (a value operand must be defined by an instruction that dominates the
//! use), and the static-analysis reports use loop structure to explain why
//! certain instructions are incubative (loop-bound comparisons such as the
//! FFT `icmp` of paper Fig. 3 are the canonical case).

use crate::cfg::Cfg;
use crate::module::BlockId;

/// Immediate-dominator tree over the reachable blocks of a function.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of `b`; entry's idom is itself.
    /// Unreachable blocks have `None`.
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
    rpo: Vec<BlockId>,
}

impl DomTree {
    pub fn build(cfg: &Cfg) -> DomTree {
        let n = cfg.num_blocks();
        let rpo = cfg.reverse_postorder();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 || rpo.is_empty() {
            return DomTree {
                idom,
                rpo_index,
                rpo,
            };
        }
        let entry = rpo[0];
        idom[entry.index()] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // first processed predecessor
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree {
            idom,
            rpo_index,
            rpo,
        }
    }

    /// Immediate dominator of `b` (entry maps to itself); `None` if `b` is
    /// unreachable.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive). Unreachable blocks dominate
    /// nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[a.index()].is_none() || self.idom[b.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let id = self.idom[cur.index()].unwrap();
            if id == cur {
                return false; // reached entry
            }
            cur = id;
        }
    }

    /// Blocks in reverse postorder (reachable only).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in reverse postorder, or `None` if unreachable.
    pub fn rpo_position(&self, b: BlockId) -> Option<usize> {
        let i = self.rpo_index[b.index()];
        (i != usize::MAX).then_some(i)
    }

    /// Back edges `(latch, header)`: edges whose target dominates the source.
    pub fn back_edges(&self, cfg: &Cfg) -> Vec<(BlockId, BlockId)> {
        cfg.edges()
            .iter()
            .copied()
            .filter(|&(from, to)| self.dominates(to, from))
            .collect()
    }

    /// Natural loop of a back edge `(latch, header)`: all blocks that can
    /// reach the latch without passing through the header, plus the header.
    pub fn natural_loop(&self, cfg: &Cfg, latch: BlockId, header: BlockId) -> Vec<BlockId> {
        let mut in_loop = vec![false; cfg.num_blocks()];
        in_loop[header.index()] = true;
        let mut stack = vec![];
        if !in_loop[latch.index()] {
            in_loop[latch.index()] = true;
            stack.push(latch);
        }
        while let Some(b) = stack.pop() {
            for &p in cfg.preds(b) {
                if !in_loop[p.index()] {
                    in_loop[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        (0..cfg.num_blocks() as u32)
            .map(BlockId)
            .filter(|b| in_loop[b.index()])
            .collect()
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].unwrap();
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].unwrap();
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::CmpOp;
    use crate::module::Module;

    /// Diamond: 0 -> {1, 2} -> 3
    fn diamond() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let l = fb.new_block("l");
        let r = fb.new_block("r");
        let join = fb.new_block("join");
        let c = fb.cmp(CmpOp::Lt, 1i64, 2i64);
        fb.cond_br(c, l, r);
        fb.switch_to(l);
        fb.br(join);
        fb.switch_to(r);
        fb.br(join);
        fb.switch_to(join);
        fb.ret_void();
        mb.define(fb);
        mb.finish()
    }

    fn looped() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let head = fb.new_block("head");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.br(head);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, 0i64, 10i64);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret_void();
        mb.define(fb);
        mb.finish()
    }

    #[test]
    fn diamond_dominance() {
        let m = diamond();
        let cfg = Cfg::build(m.func(m.entry));
        let dom = DomTree::build(&cfg);
        let (e, l, r, j) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(dom.idom(l), Some(e));
        assert_eq!(dom.idom(r), Some(e));
        assert_eq!(dom.idom(j), Some(e), "join's idom is the branch block");
        assert!(dom.dominates(e, j));
        assert!(!dom.dominates(l, j));
        assert!(dom.dominates(l, l), "dominance is reflexive");
    }

    #[test]
    fn loop_back_edge_and_body() {
        let m = looped();
        let cfg = Cfg::build(m.func(m.entry));
        let dom = DomTree::build(&cfg);
        let back = dom.back_edges(&cfg);
        assert_eq!(back, vec![(BlockId(2), BlockId(1))]);
        let body = dom.natural_loop(&cfg, BlockId(2), BlockId(1));
        assert_eq!(body, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let dead = fb.new_block("dead");
        fb.ret_void();
        fb.switch_to(dead);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let cfg = Cfg::build(m.func(m.entry));
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.idom(dead), None);
        assert!(!dom.dominates(BlockId(0), dead));
    }
}
