//! Per-function content fingerprints ("section" fingerprints).
//!
//! A section is one function. Its fingerprint covers the function's name,
//! signature, printed instruction text, block structure, and — transitively —
//! the fingerprints of every callee. Two modules that agree on a section's
//! fingerprint therefore agree on everything the fault-injection campaign
//! for that section can observe statically; the remaining dynamic context
//! (input, golden trajectory) is covered separately by the campaign's table
//! signature. Fingerprints are the key under which per-section outcome
//! tables are memoized and composed (FastFlip-style O(diff) re-campaigns).

use crate::inst::InstKind;
use crate::module::{FuncId, Module};
use crate::printer::print_inst;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Streaming FNV-1a accumulator (local copy; `core`'s is crate-private and
/// depends on this crate).
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn finish(self) -> u64 {
        self.0
    }
}

/// The direct callees of each function, deduplicated, in call-site order.
pub fn callees(m: &Module) -> Vec<Vec<FuncId>> {
    m.funcs
        .iter()
        .map(|f| {
            let mut out: Vec<FuncId> = Vec::new();
            for inst in &f.insts {
                if let InstKind::Call { func, .. } = &inst.kind {
                    if !out.contains(func) {
                        out.push(*func);
                    }
                }
            }
            out
        })
        .collect()
}

/// Content hash of one function's own text: name, signature, blocks, and
/// every printed instruction. Call targets appear as positional `FuncId`s
/// here; their *content* is mixed in transitively by
/// [`section_fingerprints`].
fn local_fingerprint(m: &Module, fid: FuncId) -> u64 {
    let f = m.func(fid);
    let mut h = Fnv::new();
    h.bytes(f.name.as_bytes());
    h.u64(f.params.len() as u64);
    for p in &f.params {
        h.bytes(p.to_string().as_bytes());
    }
    match f.ret {
        Some(t) => h.bytes(t.to_string().as_bytes()),
        None => h.bytes(b"void"),
    }
    h.u64(if fid == m.entry { 1 } else { 0 });
    h.u64(f.blocks.len() as u64);
    for b in &f.blocks {
        h.u64(b.insts.len() as u64);
        for &iid in &b.insts {
            h.bytes(print_inst(f, iid).as_bytes());
        }
    }
    h.finish()
}

/// Stable per-section content fingerprints, one per function in module
/// order.
///
/// Computed as a fixpoint over the call graph: each round rehashes every
/// function's local fingerprint together with its callees' fingerprints
/// from the previous round. After `|funcs|` rounds every acyclic call chain
/// has fully propagated and cyclic components have converged to a
/// deterministic value, so editing any function changes the fingerprint of
/// that function and every (transitive) caller, and nothing else.
pub fn section_fingerprints(m: &Module) -> Vec<u64> {
    let n = m.funcs.len();
    let local: Vec<u64> = (0..n)
        .map(|i| local_fingerprint(m, FuncId(i as u32)))
        .collect();
    let calls = callees(m);
    let mut fp = local.clone();
    for _ in 0..n {
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let mut h = Fnv::new();
            h.u64(local[i]);
            for &c in &calls[i] {
                h.u64(fp[c.index()]);
            }
            next.push(h.finish());
        }
        fp = next;
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::Ty;

    fn two_func_module(helper_const: i64) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], Some(Ty::I64));
        let helper = mb.declare("helper", vec![], Some(Ty::I64));

        let mut fb = mb.body(helper);
        let v = fb.add(Ty::I64, helper_const, 1i64);
        fb.ret(v);
        mb.define(fb);

        let mut fb = mb.body(main);
        let v = fb.call(helper, Some(Ty::I64), vec![]);
        fb.ret(v);
        mb.define(fb);

        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let a = section_fingerprints(&two_func_module(7));
        let b = section_fingerprints(&two_func_module(7));
        assert_eq!(a, b);
    }

    #[test]
    fn editing_a_callee_changes_the_caller_fingerprint_too() {
        let a = section_fingerprints(&two_func_module(7));
        let b = section_fingerprints(&two_func_module(8));
        assert_ne!(a[1], b[1], "edited function must change");
        assert_ne!(a[0], b[0], "transitive caller must change");
    }

    #[test]
    fn editing_a_leaf_leaves_unrelated_functions_alone() {
        // Add an unrelated third function to both variants; its fingerprint
        // must not move when `helper` is edited.
        let mk = |c: i64| {
            let mut m = two_func_module(c);
            let mut f = crate::module::Function::new("island", vec![], None);
            f.insts
                .push(crate::inst::Inst::new(InstKind::Ret { v: None }, None));
            f.blocks.push(crate::module::Block {
                insts: vec![crate::inst::InstId(0)],
                name: None,
            });
            m.funcs.push(f);
            m
        };
        let a = section_fingerprints(&mk(7));
        let b = section_fingerprints(&mk(8));
        assert_eq!(a[2], b[2], "untouched function keeps its fingerprint");
        assert_ne!(a[1], b[1]);
    }

    #[test]
    fn recursive_functions_converge() {
        // self-recursive function: fixpoint must terminate deterministically
        let mut mb = ModuleBuilder::new("r");
        let rec = mb.declare("rec", vec![], None);
        let mut fb = mb.body(rec);
        fb.call(rec, None, vec![]);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let a = section_fingerprints(&m);
        let b = section_fingerprints(&m);
        assert_eq!(a, b);
    }
}
